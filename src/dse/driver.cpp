#include "dse/driver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "analyze/analyze.hpp"
#include "core/parallel.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/solvers.hpp"

namespace multival::dse {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One prepared probe submission: which point/probe it belongs to plus the
/// ready-to-send request.
struct Slot {
  std::size_t point = 0;
  std::size_t probe = 0;
  serve::Request request;
  serve::CacheKey key;  ///< content hash, reused for replica routing
};

std::vector<std::string> blocking_diagnostics(const analyze::Analysis& a) {
  std::vector<std::string> rendered;
  for (const core::Diagnostic& d : a.diagnostics) {
    if (d.severity == core::Severity::kError) {
      rendered.push_back(d.to_text());
    }
  }
  return rendered;
}

void dispatch_in_process(const DriverOptions& options,
                         std::vector<Slot>& slots,
                         std::vector<ProbeResult*>& results,
                         SweepResult& out) {
  serve::ServiceOptions sopts;
  sopts.workers = options.workers;
  // The whole sweep is submitted at once and every probe matters: size the
  // queue so saturation shedding cannot reject sweep points.
  sopts.queue_capacity = std::max<std::size_t>(slots.size(), 256);
  sopts.default_deadline = options.deadline;
  const std::size_t solve_log_before = core::solve_log().size();
  serve::Service service(sopts);

  for (unsigned pass = 0; pass < std::max(1u, options.repeat); ++pass) {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = slots.size();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const auto t0 = Clock::now();
      service.submit_async(
          slots[i].request, [&, i, t0](serve::Response response) {
            ProbeResult* pr = results[i];
            pr->status = response.status;
            pr->body = std::move(response.body);
            pr->wall_ms = ms_since(t0);
            std::lock_guard<std::mutex> lock(mu);
            --remaining;
            cv.notify_one();
          });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }

  out.have_service_metrics = true;
  out.service = service.metrics();
  const std::vector<core::SolveStat> log = core::solve_log();
  for (std::size_t i = solve_log_before; i < log.size(); ++i) {
    ++out.solver.solves;
    out.solver.iterations += log[i].iterations;
    out.solver.max_residual =
        std::max(out.solver.max_residual, log[i].residual);
  }
}

std::vector<std::string> split_endpoints(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (i > start) {
        out.push_back(csv.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

void dispatch_socket(const DriverOptions& options, std::vector<Slot>& slots,
                     std::vector<ProbeResult*>& results) {
  const unsigned workers =
      options.workers != 0 ? options.workers : core::parallel_threads();
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, workers), std::max<std::size_t>(slots.size(), 1)));
  // One shared ring (and shared replica-health state), one RoutedClient —
  // hence one connection per replica — per worker thread.  With a single
  // endpoint the ring is trivial and this degrades to the old direct path.
  const auto router =
      std::make_shared<serve::Router>(split_endpoints(options.socket));
  for (unsigned pass = 0; pass < std::max(1u, options.repeat); ++pass) {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    std::mutex error_mu;
    std::string first_error;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        try {
          serve::RoutedClient client(router, options.connect_timeout);
          for (std::size_t i = next.fetch_add(1); i < slots.size();
               i = next.fetch_add(1)) {
            const auto t0 = Clock::now();
            serve::Response response =
                client.call(slots[i].request, slots[i].key);
            ProbeResult* pr = results[i];
            pr->status = response.status;
            pr->body = std::move(response.body);
            pr->wall_ms = ms_since(t0);
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.empty()) {
            first_error = e.what();
          }
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    if (!first_error.empty()) {
      throw std::runtime_error("dse: socket evaluation failed: " +
                               first_error);
    }
  }
}

// ---- rendering --------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "\"" + serve::format_double(v) + "\"";  // inf/nan are not JSON
  }
  return serve::format_double(v);
}

std::string json_axis_value(const AxisValue& v) {
  if (const long* l = std::get_if<long>(&v)) {
    return std::to_string(*l);
  }
  if (const double* d = std::get_if<double>(&v)) {
    return json_number(*d);
  }
  return "\"" + json_escape(std::get<std::string>(v)) + "\"";
}

}  // namespace

bool SweepResult::all_ok() const {
  return std::all_of(points.begin(), points.end(),
                     [](const PointResult& p) { return p.status == "ok"; });
}

SweepResult run_sweep(const SweepSpec& spec, const DriverOptions& options) {
  const auto t0 = Clock::now();
  SweepResult out;
  out.name = spec.name;
  out.objectives = resolve_objectives(spec.objectives);
  for (const Space& space : spec.spaces) {
    if (!known_family(space.family)) {
      throw SpecError("unknown family '" + space.family +
                      "' (known: noc, fame, xstream)");
    }
    out.raw_points += space.raw_size();
  }

  const std::vector<Point> points =
      expand(spec, &derived_quantities, &out.pruned);

  // Instantiate and lint-gate every point before anything is submitted:
  // a gated point never costs a solver run.  One bounded pipeline cache
  // spans the whole sweep, so neighbouring points (which share most of
  // their composed components) skip re-minimising unchanged subtrees.
  compose::LruMinimizeCache pipeline_cache(options.pipeline_cache_bytes);
  std::vector<Instantiated> instances(points.size());
  out.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult pr;
    pr.point = points[i];
    instances[i] = instantiate(points[i], options.strategy, &pipeline_cache);
    pr.model_states = instances[i].model_states;
    pr.status = "ok";
    for (const GateModel& gate : instances[i].gates) {
      const analyze::Analysis a =
          analyze::lint_program(gate.program, proc::call(gate.entry, {}));
      if (!a.clean()) {
        pr.status = "gated";
        for (std::string& d : blocking_diagnostics(a)) {
          pr.gate_errors.push_back(gate.name + ": " + std::move(d));
        }
      }
    }
    out.points.push_back(std::move(pr));
  }
  out.pipeline = pipeline_cache.stats();

  // Prepare all requests of the surviving points, computing each probe's
  // content hash locally (the same serve::prepare_request the service
  // runs), so provenance and the duplicate flags are backend-independent.
  std::vector<Slot> slots;
  std::vector<ProbeResult*> slot_results;
  std::unordered_set<serve::CacheKey, serve::CacheKeyHash> seen;
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    if (out.points[i].status != "ok") {
      continue;
    }
    for (std::size_t j = 0; j < instances[i].probes.size(); ++j) {
      const Probe& probe = instances[i].probes[j];
      Slot slot;
      slot.point = i;
      slot.probe = j;
      slot.request.id = static_cast<std::uint64_t>(slots.size() + 1);
      slot.request.verb = probe.verb;
      slot.request.deadline = options.deadline;
      slot.request.arg = probe.arg;
      slot.request.payload = probe.payload;

      ProbeResult pr;
      pr.name = probe.name;
      pr.verb = std::string(serve::to_string(probe.verb));
      pr.imc_states = probe.imc_states;
      const serve::CacheKey key = serve::prepare_request(slot.request).key;
      slot.key = key;
      pr.key = key.hex();
      pr.duplicate = !seen.insert(key).second;
      out.points[i].probes.push_back(std::move(pr));
      slots.push_back(std::move(slot));
    }
  }
  out.distinct_keys = seen.size();
  out.probes_submitted = slots.size();
  slot_results.reserve(slots.size());
  for (const Slot& slot : slots) {
    slot_results.push_back(&out.points[slot.point].probes[slot.probe]);
  }

  if (!slots.empty()) {
    if (options.socket.empty()) {
      dispatch_in_process(options, slots, slot_results, out);
    } else {
      dispatch_socket(options, slots, slot_results);
    }
  }

  // Fold probe bodies into metric vectors; any non-kOk probe downgrades
  // its point to "error".
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    PointResult& pr = out.points[i];
    if (pr.status != "ok") {
      continue;
    }
    std::map<std::string, std::string> bodies;
    for (const ProbeResult& probe : pr.probes) {
      if (probe.status != serve::Status::kOk) {
        pr.status = "error";
      } else {
        bodies[probe.name] = probe.body;
      }
    }
    if (pr.status != "ok") {
      continue;
    }
    try {
      pr.metrics = derive_metrics(pr.point, instances[i], bodies);
    } catch (const std::exception&) {
      pr.status = "error";
    }
  }

  // Rank the survivors.  Ties inside a rank keep expansion order, so the
  // front listing is deterministic.
  std::vector<std::size_t> ok_index;
  std::vector<Metrics> ok_metrics;
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    if (out.points[i].status == "ok") {
      ok_index.push_back(i);
      ok_metrics.push_back(out.points[i].metrics);
    }
  }
  const std::vector<int> ranks = pareto_ranks(ok_metrics, out.objectives);
  for (std::size_t k = 0; k < ok_index.size(); ++k) {
    out.points[ok_index[k]].rank = ranks[k];
    if (ranks[k] == 0) {
      out.front.push_back(out.points[ok_index[k]].point.id);
    }
  }

  out.wall_ms = ms_since(t0);
  return out;
}

std::string to_json(const SweepResult& r, bool include_timing) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"sweep\": \"" << json_escape(r.name) << "\",\n";
  os << "  \"objectives\": [";
  for (std::size_t i = 0; i < r.objectives.size(); ++i) {
    os << (i != 0 ? ", " : "") << "{\"metric\": \""
       << json_escape(r.objectives[i].metric) << "\", \"direction\": \""
       << (r.objectives[i].maximise ? "max" : "min") << "\"}";
  }
  os << "],\n";
  os << "  \"raw_points\": " << r.raw_points << ",\n";
  os << "  \"pruned\": " << r.pruned << ",\n";
  os << "  \"evaluated\": " << r.points.size() << ",\n";
  os << "  \"distinct_keys\": " << r.distinct_keys << ",\n";
  os << "  \"probes_submitted\": " << r.probes_submitted << ",\n";
  os << "  \"front\": [";
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    os << (i != 0 ? ", " : "") << "\"" << json_escape(r.front[i]) << "\"";
  }
  os << "],\n";
  os << "  \"points\": [";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const PointResult& p = r.points[i];
    os << (i != 0 ? "," : "") << "\n    {\"id\": \""
       << json_escape(p.point.id) << "\", \"family\": \""
       << json_escape(p.point.family) << "\", \"status\": \"" << p.status
       << "\", \"rank\": " << p.rank << ", \"model_states\": "
       << p.model_states << ",\n     \"axes\": {";
    bool first = true;
    for (const std::string& axis : p.point.axis_order) {
      os << (first ? "" : ", ") << "\"" << json_escape(axis)
         << "\": " << json_axis_value(p.point.axes.at(axis));
      first = false;
    }
    os << "},\n     \"metrics\": {\"latency\": " << json_number(
              p.metrics.latency)
       << ", \"latency_width\": " << json_number(p.metrics.latency_width)
       << ", \"throughput\": " << json_number(p.metrics.throughput)
       << ", \"occupancy\": " << json_number(p.metrics.occupancy)
       << ", \"states\": " << json_number(p.metrics.states) << "},\n";
    if (!p.gate_errors.empty()) {
      os << "     \"gate_errors\": [";
      for (std::size_t g = 0; g < p.gate_errors.size(); ++g) {
        os << (g != 0 ? ", " : "") << "\"" << json_escape(p.gate_errors[g])
           << "\"";
      }
      os << "],\n";
    }
    os << "     \"probes\": [";
    for (std::size_t q = 0; q < p.probes.size(); ++q) {
      const ProbeResult& probe = p.probes[q];
      os << (q != 0 ? ", " : "") << "{\"name\": \"" << probe.name
         << "\", \"verb\": \"" << probe.verb << "\", \"key\": \"" << probe.key
         << "\", \"imc_states\": " << probe.imc_states << ", \"duplicate\": "
         << (probe.duplicate ? "true" : "false") << ", \"status\": \""
         << serve::to_string(probe.status) << "\"";
      if (include_timing) {
        os << ", \"wall_ms\": " << json_number(probe.wall_ms);
      }
      os << "}";
    }
    os << "]}";
  }
  os << "\n  ]";
  // Instantiation-side pipeline cache counters: driven only by the (fully
  // deterministic) expansion order, so they are stable across backends,
  // worker counts and reruns.
  os << ",\n  \"pipeline\": {\"hits\": " << r.pipeline.hits
     << ", \"misses\": " << r.pipeline.misses
     << ", \"insertions\": " << r.pipeline.insertions
     << ", \"evictions\": " << r.pipeline.evictions << "}";
  if (r.have_service_metrics) {
    // The reuse total (cache hits + coalesced joins) is deterministic; the
    // split between the two depends on scheduling, so it rides with timing.
    os << ",\n  \"service\": {\"solves\": " << r.service.solves
       << ", \"reused\": " << (r.service.cache_hits + r.service.coalesced)
       << ", \"shed\": " << r.service.shed
       << ", \"timed_out\": " << r.service.timed_out
       << ", \"invalid\": " << r.service.invalid
       << ", \"failed\": " << r.service.failed;
    if (include_timing) {
      os << ", \"cache_hits\": " << r.service.cache_hits
         << ", \"coalesced\": " << r.service.coalesced
         << ", \"latency_p50_ms\": " << json_number(r.service.latency_p50_ms)
         << ", \"latency_p99_ms\": " << json_number(r.service.latency_p99_ms);
    }
    os << "},\n  \"solver\": {\"solves\": " << r.solver.solves
       << ", \"iterations\": " << r.solver.iterations
       << ", \"max_residual\": " << json_number(r.solver.max_residual) << "}";
  }
  if (include_timing) {
    os << ",\n  \"wall_ms\": " << json_number(r.wall_ms);
  }
  os << "\n}\n";
  return std::move(os).str();
}

std::string to_csv(const SweepResult& r) {
  std::ostringstream os;
  os << "id,family,status,rank,latency,latency_width,throughput,occupancy,"
        "states\n";
  for (const PointResult& p : r.points) {
    os << "\"" << p.point.id << "\"," << p.point.family << "," << p.status
       << "," << p.rank << "," << serve::format_double(p.metrics.latency)
       << "," << serve::format_double(p.metrics.latency_width) << ","
       << serve::format_double(p.metrics.throughput) << ","
       << serve::format_double(p.metrics.occupancy) << ","
       << serve::format_double(p.metrics.states) << "\n";
  }
  return std::move(os).str();
}

core::Table front_table(const SweepResult& r) {
  core::Table table("Pareto ranking (" + r.name + ")",
                    {"rank", "point", "latency", "throughput", "occupancy",
                     "states"});
  std::vector<const PointResult*> ok;
  for (const PointResult& p : r.points) {
    if (p.status == "ok") {
      ok.push_back(&p);
    }
  }
  std::stable_sort(ok.begin(), ok.end(),
                   [](const PointResult* a, const PointResult* b) {
                     return a->rank < b->rank;
                   });
  for (const PointResult* p : ok) {
    table.add_row({std::to_string(p->rank), p->point.id,
                   core::fmt(p->metrics.latency), core::fmt(
                       p->metrics.throughput),
                   core::fmt(p->metrics.occupancy),
                   std::to_string(static_cast<std::size_t>(
                       p->metrics.states))});
  }
  return table;
}

}  // namespace multival::dse
