#include "dse/scenario.hpp"

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "analyze/analyze.hpp"
#include "analyze/bounds.hpp"
#include "core/flow.hpp"
#include "fame/mpi.hpp"
#include "fame/topology.hpp"
#include "imc/imc_io.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "xmas/compile.hpp"
#include "xmas/netlist.hpp"
#include "xstream/queue_model.hpp"

namespace multival::dse {

namespace {

/// Rejects axes the family does not define, so a typo in a spec fails the
/// whole sweep loudly instead of silently sweeping a default.
void check_axes(const Point& p, const std::set<std::string>& known) {
  for (const auto& [name, value] : p.axes) {
    if (known.count(name) == 0) {
      std::string hint;
      for (const std::string& k : known) {
        hint += (hint.empty() ? "" : ", ") + k;
      }
      throw SpecError("point " + p.id + ": family '" + p.family +
                      "' has no axis '" + name + "' (known: " + hint + ")");
    }
  }
}

void check_range(const Point& p, const std::string& axis, long v, long lo,
                 long hi) {
  if (v < lo || v > hi) {
    throw SpecError("point " + p.id + ": " + axis + "=" + std::to_string(v) +
                    " outside " + std::to_string(lo) + ".." +
                    std::to_string(hi));
  }
}

Probe imc_probe(std::string name, serve::Verb verb, std::string arg,
                const imc::Imc& m) {
  Probe probe;
  probe.name = std::move(name);
  probe.verb = verb;
  probe.arg = std::move(arg);
  probe.payload = imc::to_aut(m);
  probe.imc_states = m.num_states();
  return probe;
}

Instantiated instantiate_noc(const Point& p, compose::Strategy strategy,
                             compose::MinimizeCache* cache) {
  check_axes(p, {"width", "height", "buffer", "src", "dst", "inject_rate",
                 "link_rate", "eject_rate"});
  noc::MeshDims dims;
  dims.width = static_cast<int>(p.get_long("width", 2));
  dims.height = static_cast<int>(p.get_long("height", 2));
  dims.buffer_depth = static_cast<int>(p.get_long("buffer", 1));
  check_range(p, "width", dims.width, 2, 4);
  check_range(p, "height", dims.height, 2, 4);
  check_range(p, "buffer", dims.buffer_depth, 1, 3);
  const int src = static_cast<int>(p.get_long("src", 0));
  const int dst =
      static_cast<int>(p.get_long("dst", static_cast<long>(dims.nodes() - 1)));
  check_range(p, "src", src, 0, dims.nodes() - 1);
  check_range(p, "dst", dst, 0, dims.nodes() - 1);
  if (src == dst) {
    throw SpecError("point " + p.id + ": src == dst");
  }
  noc::NocRates rates;
  rates.inject_rate = p.get_double("inject_rate", rates.inject_rate);
  rates.link_rate = p.get_double("link_rate", rates.link_rate);
  rates.eject_rate = p.get_double("eject_rate", rates.eject_rate);

  Instantiated inst;
  inst.gates.push_back(
      {"noc/single-packet",
       noc::single_packet_program(src, dst, /*hide_links=*/false, dims),
       "Scenario"});
  inst.gates.push_back(
      {"noc/stream",
       noc::stream_program({noc::Flow{src, dst}}, /*hide_links=*/false, dims),
       "Scenario"});

  const std::map<std::string, double> table = noc::rate_table(rates, dims);
  inst.probes.push_back(imc_probe(
      "latency", serve::Verb::kBounds, "",
      core::decorate_with_rates(
          noc::single_packet_lts(src, dst, /*hide_links=*/false, dims,
                                 strategy, cache),
          table)));
  // Arbitration races (two packets for one output port) are resolved
  // uniformly, matching noc::delivery_throughput.
  inst.probes.push_back(imc_probe(
      "throughput", serve::Verb::kThroughput, "uniform:LO*",
      core::decorate_with_rates(
          noc::stream_lts({noc::Flow{src, dst}}, /*hide_links=*/false, dims,
                          strategy, cache),
          table)));
  return inst;
}

Instantiated instantiate_fame(const Point& p, compose::Strategy strategy,
                              compose::MinimizeCache* cache) {
  check_axes(p, {"protocol", "topology", "mpi", "rounds", "base_rate"});
  fame::PingPongConfig config;
  const std::string protocol = p.get_word("protocol", "msi");
  if (protocol == "msi") {
    config.protocol = fame::Protocol::kMsi;
  } else if (protocol == "mesi") {
    config.protocol = fame::Protocol::kMesi;
  } else {
    throw SpecError("point " + p.id + ": unknown protocol '" + protocol + "'");
  }
  const std::string topology = p.get_word("topology", "bus");
  if (topology == "bus") {
    config.topology = fame::Topology::kBus;
  } else if (topology == "ring") {
    config.topology = fame::Topology::kRing;
  } else if (topology == "crossbar") {
    config.topology = fame::Topology::kCrossbar;
  } else {
    throw SpecError("point " + p.id + ": unknown topology '" + topology + "'");
  }
  const std::string impl = p.get_word("mpi", "eager");
  if (impl == "eager") {
    config.impl = fame::MpiImpl::kEager;
  } else if (impl == "rendezvous") {
    config.impl = fame::MpiImpl::kRendezvous;
  } else {
    throw SpecError("point " + p.id + ": unknown mpi mode '" + impl + "'");
  }
  config.rounds = static_cast<int>(p.get_long("rounds", 1));
  check_range(p, "rounds", config.rounds, 1, 8);
  config.base_rate = p.get_double("base_rate", 1.0);
  if (!(config.base_rate > 0.0)) {
    throw SpecError("point " + p.id + ": base_rate must be > 0");
  }

  Instantiated inst;
  inst.gates.push_back(
      {"fame/ping-pong", fame::pingpong_program(config), "PingPong"});
  const auto rates = fame::topology_rates(config.topology, {"M", "S0", "S1"},
                                          config.base_rate);
  inst.probes.push_back(
      imc_probe("latency", serve::Verb::kBounds, "",
                core::decorate_with_rates(
                    fame::pingpong_lts(config, strategy, cache), rates)));
  return inst;
}

Instantiated instantiate_xstream(const Point& p, compose::Strategy strategy,
                                 compose::MinimizeCache* cache) {
  check_axes(p, {"capacity", "items", "push_rate", "net_rate", "credit_rate",
                 "pop_rate"});
  xstream::QueueConfig cfg;
  cfg.capacity = static_cast<int>(p.get_long("capacity", 2));
  cfg.max_value = 0;  // payload values do not influence timing
  check_range(p, "capacity", cfg.capacity, 1, 4);
  const int items =
      static_cast<int>(p.get_long("items", static_cast<long>(cfg.capacity)));
  check_range(p, "items", items, 1, 8);
  const std::map<std::string, double> rates = {
      {"PUSH", p.get_double("push_rate", 1.0)},
      {"NET", p.get_double("net_rate", 10.0)},
      {"CREDIT", p.get_double("credit_rate", 10.0)},
      {"POP", p.get_double("pop_rate", 2.0)}};
  for (const auto& [gate, rate] : rates) {
    if (!(rate > 0.0)) {
      throw SpecError("point " + p.id + ": rate of " + gate + " must be > 0");
    }
  }

  Instantiated inst;
  inst.gates.push_back(
      {"xstream/virtual-queue", xstream::virtual_queue_program(cfg),
       "VirtualQueue"});
  inst.gates.push_back({"xstream/drain",
                        xstream::drain_scenario_program(cfg, items),
                        "DrainScenario"});
  inst.probes.push_back(imc_probe(
      "latency", serve::Verb::kBounds, "",
      core::decorate_with_rates(
          xstream::drain_scenario_lts(cfg, items, strategy, cache), rates)));
  // The continuous-queue throughput sub-model does not depend on the
  // 'items' axis: points differing only in items share this payload, and
  // the sweep must solve it exactly once (content-addressed cache).
  inst.probes.push_back(
      imc_probe("throughput", serve::Verb::kThroughput, "POP*",
                core::decorate_with_rates(
                    xstream::virtual_queue_lts_open(cfg), rates)));
  return inst;
}

Instantiated instantiate_xmas(const Point& p, compose::Strategy strategy,
                              compose::MinimizeCache* cache) {
  check_axes(p, {"fabric", "capacity", "items", "inject_rate", "service_rate",
                 "transfer_rate"});
  const std::string fabric = p.get_word("fabric", "credit-loop");
  const int capacity = static_cast<int>(p.get_long("capacity", 2));
  check_range(p, "capacity", capacity, 1, 4);
  const int items =
      static_cast<int>(p.get_long("items", static_cast<long>(capacity)));
  check_range(p, "items", items, 1, 8);
  const double inject = p.get_double("inject_rate", 1.0);
  const double service = p.get_double("service_rate", 2.0);
  const double transfer = p.get_double("transfer_rate", 10.0);
  for (const auto& [axis, rate] : std::map<std::string, double>{
           {"inject_rate", inject},
           {"service_rate", service},
           {"transfer_rate", transfer}}) {
    if (!(rate > 0.0)) {
      throw SpecError("point " + p.id + ": " + axis + " must be > 0");
    }
  }

  xmas::Netlist net;
  try {
    net = xmas::builtin_fabric(fabric, capacity);
  } catch (const std::invalid_argument& e) {
    throw SpecError("point " + p.id + ": " + e.what());
  }
  // The netlist-level gate: a structurally deadlocked fabric (MV031 etc.)
  // never reaches compilation, let alone the solvers — zero states spent.
  const analyze::Analysis lint = analyze::lint_netlist(net);
  if (!lint.clean()) {
    std::string first;
    for (const core::Diagnostic& d : lint.diagnostics) {
      if (d.severity == core::Severity::kError) {
        first = d.to_text();
        break;
      }
    }
    throw SpecError("point " + p.id + ": fabric '" + fabric +
                    "' fails xMAS lint: " + first);
  }

  const xmas::Compiled steady = xmas::compile(net);
  xmas::CompileOptions burst_opts;
  burst_opts.burst = items;
  const xmas::Compiled burst = xmas::compile(net, burst_opts);
  const std::map<std::string, double> rates =
      xmas::rate_table(steady, inject, service, transfer);

  Instantiated inst;
  inst.gates.push_back(
      {"xmas/" + fabric + "/burst", *burst.program, burst.entry});
  inst.gates.push_back(
      {"xmas/" + fabric + "/steady", *steady.program, steady.entry});

  // Every gate is decorated (sources inject, sinks service, fabric-internal
  // transfers), so the closed model has no residual interactive
  // nondeterminism to schedule away.
  inst.probes.push_back(imc_probe(
      "latency", serve::Verb::kBounds, "",
      core::decorate_with_rates(
          xmas::compiled_lts(burst, strategy, {}, cache), rates)));
  std::string sink_glob = steady.sink_gates.front();
  for (const std::string& g : steady.sink_gates) {
    std::size_t i = 0;
    while (i < sink_glob.size() && i < g.size() && sink_glob[i] == g[i]) ++i;
    sink_glob.resize(i);
  }
  inst.probes.push_back(imc_probe(
      "throughput", serve::Verb::kThroughput, "uniform:" + sink_glob + "*",
      core::decorate_with_rates(
          xmas::compiled_lts(steady, strategy, {}, cache), rates)));
  return inst;
}

}  // namespace

std::map<std::string, AxisValue> derived_quantities(
    const std::string& family, const std::map<std::string, AxisValue>& axes) {
  std::map<std::string, AxisValue> d;
  const auto axis_long = [&axes](const char* key, long dflt) {
    if (const auto it = axes.find(key); it != axes.end()) {
      if (const long* l = std::get_if<long>(&it->second)) {
        return *l;
      }
    }
    return dflt;
  };
  const auto axis_word = [&axes](const char* key, const char* dflt) {
    if (const auto it = axes.find(key); it != axes.end()) {
      if (const std::string* w = std::get_if<std::string>(&it->second)) {
        return *w;
      }
    }
    return std::string(dflt);
  };
  // "predicted_states": the static bound of the point's primary gate model
  // (analyze::predicted_bounds — interval abstract interpretation, zero
  // states generated), so a spec can prune points *before* instantiation
  // with e.g. "predicted_states <= 100000".  Saturates to LONG_MAX when the
  // analysis proves a standalone counter unbounded (the xstream drain) or
  // the product overflows; out-of-range axes are left for instantiate() to
  // report, so this never throws.
  const auto predict = [&d](const std::uint64_t states) {
    constexpr auto kLongMax = std::numeric_limits<long>::max();
    d["predicted_states"] =
        states > static_cast<std::uint64_t>(kLongMax)
            ? kLongMax
            : static_cast<long>(states);
  };
  try {
    if (family == "noc") {
      noc::MeshDims dims;
      dims.width = static_cast<int>(axis_long("width", 2));
      dims.height = static_cast<int>(axis_long("height", 2));
      dims.buffer_depth = static_cast<int>(axis_long("buffer", 1));
      const int src = static_cast<int>(axis_long("src", 0));
      const int dst = static_cast<int>(
          axis_long("dst", static_cast<long>(dims.nodes() - 1)));
      const proc::Program p =
          noc::single_packet_program(src, dst, /*hide_links=*/false, dims);
      predict(analyze::predicted_states(p, proc::call("Scenario")));
    } else if (family == "fame") {
      fame::PingPongConfig config;
      config.protocol = axis_word("protocol", "msi") == "mesi"
                            ? fame::Protocol::kMesi
                            : fame::Protocol::kMsi;
      config.rounds = static_cast<int>(axis_long("rounds", 1));
      const proc::Program p = fame::pingpong_program(config);
      predict(analyze::predicted_states(p, proc::call("PingPong")));
    } else if (family == "xstream") {
      xstream::QueueConfig cfg;
      cfg.capacity = static_cast<int>(axis_long("capacity", 2));
      cfg.max_value = 0;
      const int items = static_cast<int>(
          axis_long("items", static_cast<long>(cfg.capacity)));
      const proc::Program p = xstream::drain_scenario_program(cfg, items);
      predict(analyze::predicted_states(p, proc::call("DrainScenario")));
    } else if (family == "xmas") {
      const xmas::Netlist fab =
          xmas::builtin_fabric(axis_word("fabric", "credit-loop"),
                               static_cast<int>(axis_long("capacity", 2)));
      predict(analyze::predicted_states(fab));
    }
  } catch (const std::exception&) {
    // Bad axis combination: no predicted_states entry; instantiate() will
    // reject the point with a proper SpecError if it survives pruning.
  }
  if (family == "noc") {
    long width = 2;
    long height = 2;
    if (const auto it = axes.find("width"); it != axes.end()) {
      if (const long* l = std::get_if<long>(&it->second)) {
        width = *l;
      }
    }
    if (const auto it = axes.find("height"); it != axes.end()) {
      if (const long* l = std::get_if<long>(&it->second)) {
        height = *l;
      }
    }
    d["nodes"] = width * height;
  } else if (family == "xmas") {
    std::string fabric = "credit-loop";
    if (const auto it = axes.find("fabric"); it != axes.end()) {
      if (const std::string* w = std::get_if<std::string>(&it->second)) {
        fabric = *w;
      }
    }
    long queues = 0;
    try {
      const xmas::Netlist fab = xmas::builtin_fabric(fabric);
      for (const auto& e : fab.elements()) {
        if (e.kind == xmas::PrimitiveKind::kQueue) ++queues;
      }
    } catch (const std::invalid_argument&) {
      // unknown fabric: instantiate() reports it with a proper SpecError
    }
    d["queues"] = queues;
  }
  return d;
}

bool known_family(const std::string& family) {
  return family == "noc" || family == "fame" || family == "xstream" ||
         family == "xmas";
}

Instantiated instantiate(const Point& point, compose::Strategy strategy,
                         compose::MinimizeCache* cache) {
  Instantiated inst;
  if (point.family == "noc") {
    inst = instantiate_noc(point, strategy, cache);
  } else if (point.family == "fame") {
    inst = instantiate_fame(point, strategy, cache);
  } else if (point.family == "xstream") {
    inst = instantiate_xstream(point, strategy, cache);
  } else if (point.family == "xmas") {
    inst = instantiate_xmas(point, strategy, cache);
  } else {
    throw SpecError("point " + point.id + ": unknown family '" + point.family +
                    "' (known: noc, fame, xstream, xmas)");
  }
  for (const Probe& probe : inst.probes) {
    inst.model_states += probe.imc_states;
  }
  return inst;
}

std::pair<double, double> parse_time_bounds(const std::string& body) {
  const std::string marker = "time in [";
  const std::size_t at = body.find(marker);
  if (at == std::string::npos) {
    throw std::runtime_error("no time bounds in '" + body + "'");
  }
  std::size_t pos = at + marker.size();
  const auto take = [&]() {
    std::size_t used = 0;
    const double v = std::stod(body.substr(pos), &used);
    pos += used;
    return v;
  };
  try {
    const double lo = take();
    pos = body.find(',', pos);
    if (pos == std::string::npos) {
      throw std::runtime_error("comma");
    }
    ++pos;
    const double hi = take();
    return {lo, hi};
  } catch (const std::exception&) {
    throw std::runtime_error("malformed time bounds in '" + body + "'");
  }
}

double parse_throughput(const std::string& body) {
  const std::size_t eq = body.rfind('=');
  if (eq == std::string::npos) {
    throw std::runtime_error("no throughput value in '" + body + "'");
  }
  try {
    std::size_t used = 0;
    const std::string tail = body.substr(eq + 1);
    const double v = std::stod(tail, &used);
    (void)used;
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("malformed throughput in '" + body + "'");
  }
}

Metrics derive_metrics(const Point& point, const Instantiated& inst,
                       const std::map<std::string, std::string>& bodies) {
  const auto body = [&](const std::string& name) -> const std::string& {
    const auto it = bodies.find(name);
    if (it == bodies.end()) {
      throw std::runtime_error("point " + point.id + ": probe '" + name +
                               "' has no result");
    }
    return it->second;
  };
  Metrics m;
  m.states = static_cast<double>(inst.model_states);
  const auto [lo, hi] = parse_time_bounds(body("latency"));
  double total = 0.5 * (lo + hi);
  m.latency_width = hi - lo;
  if (point.family == "fame") {
    // One serve probe: per-round latency and the round rate both derive
    // from the served total ping-pong time.
    const double rounds = static_cast<double>(point.get_long("rounds", 1));
    m.latency = total / rounds;
    m.throughput = total > 0.0 ? rounds / total : 0.0;
  } else if (point.family == "xstream" || point.family == "xmas") {
    const long capacity = point.get_long("capacity", 2);
    const double items =
        static_cast<double>(point.get_long("items", capacity));
    m.latency = total / items;  // per-item transfer time under saturation
    m.throughput = parse_throughput(body("throughput"));
  } else {
    m.latency = total;
    m.throughput = parse_throughput(body("throughput"));
  }
  m.occupancy = m.latency * m.throughput;
  return m;
}

}  // namespace multival::dse
