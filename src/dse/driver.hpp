// The DSE orchestrator: expand the sweep grid, gate every point through the
// analyze lint, run all probes concurrently through the serve tier, and
// rank the metric vectors into Pareto fronts.
//
// Evaluation backends:
//   - in-process (default): one serve::Service owns the worker pool; all
//     probes of the sweep are submitted asynchronously, so duplicate
//     sub-models coalesce and hit the content-addressed cache, and the
//     service counters (solves, cache hits, shed...) are reported in the
//     SweepResult;
//   - socket (DriverOptions::socket non-empty): one serve::RoutedClient per
//     driver worker thread against one or more running `multival_cli serve`
//     replicas (Unix or TCP, comma-separated), routed by content hash;
//     service counters live server-side and are not included.
//
// Determinism contract: expansion order, probe content hashes, solve
// bodies, metric vectors, Pareto ranks and the JSON/CSV renderings (with
// include_timing=false) are byte-identical across reruns, worker counts and
// backends.  Only "_ms"-suffixed fields and the raw service counter block
// depend on scheduling; to_json() drops exactly those when timing is off.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dse/grid.hpp"
#include "dse/pareto.hpp"
#include "dse/scenario.hpp"
#include "serve/service.hpp"

namespace multival::dse {

struct DriverOptions {
  /// Service worker threads (in-process) or client threads (socket);
  /// 0 = core::parallel_threads().
  unsigned workers = 0;
  /// Non-empty: evaluate over the serve transport instead of in-process.
  /// One endpoint (Unix path or "host:port"), or a comma-separated replica
  /// list — probes are then routed by their content hash over the
  /// consistent-hash ring (serve::Router), so duplicate sub-models land on
  /// the replica that owns their cache entry.
  std::string socket;
  /// Waiting budget when connecting to --socket (exponential backoff).
  std::chrono::milliseconds connect_timeout{5000};
  /// Per-probe solve deadline.
  std::chrono::milliseconds deadline{30000};
  /// Submissions of the full probe set; passes beyond the first are served
  /// from the cache (bench_dse uses this to generate cache-hit traffic).
  unsigned repeat = 1;
  /// How the probe payload LTSs are built: planned generate–minimise–
  /// compose (default) or the monolithic flat baseline (`dse --flat`).
  compose::Strategy strategy = compose::Strategy::kPlanned;
  /// Byte budget of the pipeline (minimisation/subtree) cache shared by all
  /// points of the sweep.
  std::size_t pipeline_cache_bytes = 32u << 20;
};

/// Provenance of one serve request derived from a point.
struct ProbeResult {
  std::string name;          ///< "latency" | "throughput"
  std::string verb;
  std::string key;           ///< content hash of the prepared request (hex)
  std::size_t imc_states = 0;
  bool duplicate = false;    ///< an earlier probe in this sweep has the same
                             ///< key, so this one never reaches a solver
  serve::Status status = serve::Status::kError;
  std::string body;
  double wall_ms = 0.0;      ///< submit-to-completion (timing field)
};

struct PointResult {
  Point point;
  /// "ok" | "gated" (lint errors; never submitted) | "error" (a probe
  /// returned a non-kOk status).
  std::string status;
  std::vector<std::string> gate_errors;  ///< rendered blocking diagnostics
  std::size_t model_states = 0;
  Metrics metrics;   ///< valid when status == "ok"
  int rank = -1;     ///< Pareto rank over the "ok" points; -1 otherwise
  std::vector<ProbeResult> probes;
};

/// Order-independent fold of the core::solve_log entries recorded during
/// the sweep (in-process backend only).
struct SolveAggregate {
  std::size_t solves = 0;
  std::size_t iterations = 0;
  double max_residual = 0.0;
};

struct SweepResult {
  std::string name;
  std::vector<Objective> objectives;
  std::size_t raw_points = 0;  ///< cross-product size before pruning
  std::size_t pruned = 0;      ///< points removed by constraints
  std::vector<PointResult> points;  ///< expansion order
  std::vector<std::string> front;   ///< rank-0 point ids, expansion order
  std::size_t distinct_keys = 0;    ///< distinct probe content hashes
  std::size_t probes_submitted = 0; ///< per pass; repeat passes multiply
  bool have_service_metrics = false;  ///< in-process backend only
  serve::ServiceMetrics service;
  SolveAggregate solver;
  /// Counters of the sweep-wide pipeline cache (instantiation reuses
  /// minimised components across points; deterministic, both backends).
  compose::LruMinimizeCache::Stats pipeline;
  double wall_ms = 0.0;

  /// True when every evaluated point reached "ok".
  [[nodiscard]] bool all_ok() const;
};

/// Runs the sweep.  Throws SpecError on a malformed spec (unknown family,
/// axis or metric) — per-point solver failures are reported in the result,
/// not thrown.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const DriverOptions& options = {});

[[nodiscard]] std::string to_json(const SweepResult& r, bool include_timing);
[[nodiscard]] std::string to_csv(const SweepResult& r);

/// Human-readable ranking: all "ok" points sorted by (rank, expansion
/// order) with their metric vectors.
[[nodiscard]] core::Table front_table(const SweepResult& r);

}  // namespace multival::dse
