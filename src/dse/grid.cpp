#include "dse/grid.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace multival::dse {

namespace {

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) {
    return "";
  }
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream is(line);
  std::string w;
  while (is >> w) {
    words.push_back(w);
  }
  return words;
}

[[noreturn]] void fail(std::size_t lineno, const std::string& message) {
  throw SpecError("line " + std::to_string(lineno) + ": " + message);
}

}  // namespace

AxisValue parse_axis_value(const std::string& text) {
  if (text.empty()) {
    throw SpecError("empty axis value");
  }
  long l = 0;
  auto [lp, lec] = std::from_chars(text.data(), text.data() + text.size(), l);
  if (lec == std::errc{} && lp == text.data() + text.size()) {
    return l;
  }
  try {
    std::size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos == text.size()) {
      return d;
    }
  } catch (const std::out_of_range&) {
    // The token *is* numeric — it parsed, it just does not fit a double
    // ("1e999").  Silently demoting it to a word axis value would make the
    // sweep enumerate it as a string; reject instead.
    throw SpecError("numeric axis value '" + text + "' is out of range");
  } catch (const std::invalid_argument&) {
    // Not numeric at all: fall through to the word case.
  }
  return text;
}

std::string to_string(const AxisValue& v) {
  if (const long* l = std::get_if<long>(&v)) {
    return std::to_string(*l);
  }
  if (const double* d = std::get_if<double>(&v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

std::optional<double> numeric(const AxisValue& v) {
  if (const long* l = std::get_if<long>(&v)) {
    return static_cast<double>(*l);
  }
  if (const double* d = std::get_if<double>(&v)) {
    return *d;
  }
  return std::nullopt;
}

const char* to_string(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLe:
      return "<=";
    case ConstraintOp::kGe:
      return ">=";
    case ConstraintOp::kLt:
      return "<";
    case ConstraintOp::kGt:
      return ">";
    case ConstraintOp::kEq:
      return "==";
    case ConstraintOp::kNe:
      return "!=";
  }
  return "?";
}

ConstraintOp parse_constraint_op(const std::string& text) {
  if (text == "<=") {
    return ConstraintOp::kLe;
  }
  if (text == ">=") {
    return ConstraintOp::kGe;
  }
  if (text == "<") {
    return ConstraintOp::kLt;
  }
  if (text == ">") {
    return ConstraintOp::kGt;
  }
  if (text == "==") {
    return ConstraintOp::kEq;
  }
  if (text == "!=") {
    return ConstraintOp::kNe;
  }
  throw SpecError("unknown constraint operator '" + text + "'");
}

bool Constraint::admits(const std::map<std::string, AxisValue>& point,
                        const std::map<std::string, AxisValue>& derived) const {
  const AxisValue* lhs = nullptr;
  if (const auto it = point.find(name); it != point.end()) {
    lhs = &it->second;
  } else if (const auto it = derived.find(name); it != derived.end()) {
    lhs = &it->second;
  } else {
    throw SpecError("constraint refers to unknown quantity '" + name + "'");
  }
  const std::optional<double> ln = numeric(*lhs);
  const std::optional<double> rn = numeric(value);
  if (ln.has_value() && rn.has_value()) {
    switch (op) {
      case ConstraintOp::kLe:
        return *ln <= *rn;
      case ConstraintOp::kGe:
        return *ln >= *rn;
      case ConstraintOp::kLt:
        return *ln < *rn;
      case ConstraintOp::kGt:
        return *ln > *rn;
      case ConstraintOp::kEq:
        return *ln == *rn;
      case ConstraintOp::kNe:
        return *ln != *rn;
    }
  }
  const std::string ls = to_string(*lhs);
  const std::string rs = to_string(value);
  switch (op) {
    case ConstraintOp::kEq:
      return ls == rs;
    case ConstraintOp::kNe:
      return ls != rs;
    default:
      throw SpecError("constraint '" + name + " " +
                      std::string(to_string(op)) + " " + rs +
                      "': ordering needs numeric operands");
  }
}

std::size_t Space::raw_size() const {
  std::size_t n = 1;
  for (const Axis& a : axes) {
    n *= a.values.size();
  }
  return axes.empty() ? 0 : n;
}

SweepSpec parse_sweep_spec(const std::string& text) {
  SweepSpec spec;
  Space* open = nullptr;  // inside a space ... end block
  std::istringstream is(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string line = trim(raw);
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> words = split_words(line);
    const std::string& head = words[0];
    if (head == "sweep") {
      if (words.size() != 2) {
        fail(lineno, "expected: sweep <name>");
      }
      spec.name = words[1];
    } else if (head == "objective") {
      if (words.size() != 3 || (words[2] != "min" && words[2] != "max")) {
        fail(lineno, "expected: objective <metric> <min|max>");
      }
      spec.objectives.emplace_back(words[1], words[2] == "max");
    } else if (head == "space") {
      if (open != nullptr) {
        fail(lineno, "nested 'space' (missing 'end'?)");
      }
      if (words.size() != 2) {
        fail(lineno, "expected: space <family>");
      }
      spec.spaces.push_back(Space{words[1], {}, {}});
      open = &spec.spaces.back();
    } else if (head == "end") {
      if (open == nullptr) {
        fail(lineno, "'end' outside a space block");
      }
      if (open->axes.empty()) {
        fail(lineno, "space '" + open->family + "' declares no axes");
      }
      open = nullptr;
    } else if (head == "axis") {
      if (open == nullptr) {
        fail(lineno, "'axis' outside a space block");
      }
      // axis <name> = v1, v2, ...
      const std::size_t eq = line.find('=');
      if (words.size() < 2 || eq == std::string::npos) {
        fail(lineno, "expected: axis <name> = v1, v2, ...");
      }
      Axis axis;
      axis.name = trim(line.substr(4, eq - 4));
      if (axis.name.empty() || axis.name.find(' ') != std::string::npos) {
        fail(lineno, "bad axis name");
      }
      for (const Axis& existing : open->axes) {
        if (existing.name == axis.name) {
          fail(lineno, "duplicate axis '" + axis.name + "'");
        }
      }
      std::string values = line.substr(eq + 1);
      std::size_t start = 0;
      while (start <= values.size()) {
        std::size_t comma = values.find(',', start);
        if (comma == std::string::npos) {
          comma = values.size();
        }
        const std::string item = trim(values.substr(start, comma - start));
        if (item.empty()) {
          fail(lineno, "empty axis value");
        }
        AxisValue v;
        try {
          v = parse_axis_value(item);
        } catch (const SpecError& e) {
          fail(lineno, e.what());
        }
        if (std::find(axis.values.begin(), axis.values.end(), v) !=
            axis.values.end()) {
          fail(lineno, "duplicate axis value '" + item + "'");
        }
        axis.values.push_back(v);
        start = comma + 1;
        if (comma == values.size()) {
          break;
        }
      }
      if (axis.values.empty()) {
        fail(lineno, "axis '" + axis.name + "' has no values");
      }
      open->axes.push_back(std::move(axis));
    } else if (head == "constraint") {
      if (open == nullptr) {
        fail(lineno, "'constraint' outside a space block");
      }
      if (words.size() != 4) {
        fail(lineno, "expected: constraint <name> <op> <value>");
      }
      Constraint c;
      c.name = words[1];
      try {
        c.op = parse_constraint_op(words[2]);
        c.value = parse_axis_value(words[3]);
      } catch (const SpecError& e) {
        fail(lineno, e.what());
      }
      open->constraints.push_back(std::move(c));
    } else {
      fail(lineno, "unknown directive '" + head + "'");
    }
  }
  if (open != nullptr) {
    throw SpecError("unterminated space block (missing 'end')");
  }
  if (spec.spaces.empty()) {
    throw SpecError("sweep spec declares no spaces");
  }
  return spec;
}

const std::string& builtin_sweep_spec(const std::string& name) {
  // The D1 exhibit grid: 58 raw points across all four generator families,
  // 4 pruned by the noc node-count constraint (the xmas queues-guard
  // constraint admits every current builtin fabric).  The xstream 'items'
  // axis does not influence the continuous-throughput sub-model, so half of
  // the xstream throughput probes are within-sweep duplicates and must hit
  // the service cache.
  static const std::string kDefault =
      "sweep d1\n"
      "space noc\n"
      "  axis width = 2, 3\n"
      "  axis height = 2, 3\n"
      "  axis buffer = 1, 2\n"
      "  axis link_rate = 1.0, 2.0\n"
      "  constraint nodes <= 6\n"
      "end\n"
      "space fame\n"
      "  axis protocol = msi, mesi\n"
      "  axis topology = bus, ring, crossbar\n"
      "  axis mpi = eager, rendezvous\n"
      "  axis rounds = 1\n"
      "  constraint rounds <= 4\n"
      "end\n"
      "space xstream\n"
      "  axis capacity = 1, 2, 3\n"
      "  axis push_rate = 0.6, 1.2\n"
      "  axis items = 2, 4\n"
      "end\n"
      "space xmas\n"
      "  axis fabric = credit-loop, vc-pair, mesh2\n"
      "  axis capacity = 1, 2, 3\n"
      "  axis inject_rate = 0.6, 1.2\n"
      "  constraint queues <= 3\n"
      "end\n";
  static const std::string kSmoke =
      "sweep smoke\n"
      "space noc\n"
      "  axis width = 2\n"
      "  axis height = 2\n"
      "  axis link_rate = 1.0, 2.0\n"
      "end\n"
      "space fame\n"
      "  axis protocol = msi, mesi\n"
      "  axis topology = bus\n"
      "end\n"
      "space xstream\n"
      "  axis capacity = 1, 2\n"
      "end\n"
      "space xmas\n"
      "  axis fabric = credit-loop\n"
      "  axis capacity = 1, 2\n"
      "end\n";
  if (name == "default") {
    return kDefault;
  }
  if (name == "smoke") {
    return kSmoke;
  }
  throw SpecError("unknown builtin sweep '" + name +
                  "' (known: default, smoke)");
}

long Point::get_long(const std::string& axis, long fallback) const {
  const auto it = axes.find(axis);
  if (it == axes.end()) {
    return fallback;
  }
  if (const long* l = std::get_if<long>(&it->second)) {
    return *l;
  }
  throw SpecError("axis '" + axis + "' of " + id + " must be an integer");
}

double Point::get_double(const std::string& axis, double fallback) const {
  const auto it = axes.find(axis);
  if (it == axes.end()) {
    return fallback;
  }
  if (const std::optional<double> d = numeric(it->second)) {
    return *d;
  }
  throw SpecError("axis '" + axis + "' of " + id + " must be numeric");
}

std::string Point::get_word(const std::string& axis,
                            const std::string& fallback) const {
  const auto it = axes.find(axis);
  if (it == axes.end()) {
    return fallback;
  }
  return to_string(it->second);
}

std::vector<Point> expand(const SweepSpec& spec, DerivedFn derived,
                          std::size_t* pruned) {
  std::vector<Point> points;
  std::size_t dropped = 0;
  for (const Space& space : spec.spaces) {
    std::vector<std::size_t> idx(space.axes.size(), 0);
    bool done = space.axes.empty();
    while (!done) {
      Point p;
      p.family = space.family;
      for (std::size_t a = 0; a < space.axes.size(); ++a) {
        p.axes[space.axes[a].name] = space.axes[a].values[idx[a]];
        p.axis_order.push_back(space.axes[a].name);
      }
      std::string id = space.family + "/";
      for (std::size_t a = 0; a < space.axes.size(); ++a) {
        id += (a == 0 ? "" : ",") + space.axes[a].name + "=" +
              to_string(p.axes[space.axes[a].name]);
      }
      p.id = std::move(id);

      const std::map<std::string, AxisValue> extra =
          derived != nullptr ? derived(space.family, p.axes)
                             : std::map<std::string, AxisValue>{};
      bool admitted = true;
      for (const Constraint& c : space.constraints) {
        admitted = admitted && c.admits(p.axes, extra);
      }
      if (admitted) {
        points.push_back(std::move(p));
      } else {
        ++dropped;
      }

      // Odometer increment, last axis fastest.
      std::size_t a = space.axes.size();
      while (a > 0) {
        --a;
        if (++idx[a] < space.axes[a].values.size()) {
          break;
        }
        idx[a] = 0;
        if (a == 0) {
          done = true;
        }
      }
    }
  }
  if (pruned != nullptr) {
    *pruned = dropped;
  }
  return points;
}

}  // namespace multival::dse
