// Instantiation of design points: each point of a family expands into
//   - gate models: the process programs the analyze lint must pass before
//     any state space is generated (the pre-sweep gate), and
//   - probes: serve-tier requests (verb + arg + .aut/.imc payload) whose
//     results are folded into the point's metric vector.
//
// Families and axes (unset axes take the listed defaults):
//
//   noc      width=2 height=2 buffer=1 src=0 dst=nodes-1
//            inject_rate=4.0 link_rate=2.0 eject_rate=4.0
//            derived: nodes = width*height
//            probes:  latency    = bounds(single-packet IMC), midpoint
//                     throughput = throughput(stream IMC, uniform:LO*)
//
//   fame     protocol=msi topology=bus mpi=eager rounds=1 base_rate=1.0
//            probes:  latency    = bounds(ping-pong IMC), midpoint / rounds
//                     throughput = rounds / total time (derived)
//
//   xstream  capacity=2 items=capacity push_rate=1.0 net_rate=10.0
//            credit_rate=10.0 pop_rate=2.0
//            probes:  latency    = bounds(drain-scenario IMC) / items
//                     throughput = throughput(virtual-queue IMC, POP*)
//
//   xmas     fabric=credit-loop capacity=2 items=capacity inject_rate=1.0
//            service_rate=2.0 transfer_rate=10.0
//            fabric in {credit-loop, vc-pair, mesh2} (builtin_fabric);
//            instantiation is gated on analyze::lint_netlist (MV03x), so a
//            structurally deadlocked fabric is rejected with zero states
//            derived: queues = payload queues in the fabric
//            probes:  latency    = bounds(burst compile, items tokens)/items
//                     throughput = throughput(free-running compile,
//                                  uniform glob over the sink gates)
//
// All families derive occupancy by Little's law (latency x throughput) and
// report the total payload state count as the model-complexity metric.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "compose/plan.hpp"
#include "dse/grid.hpp"
#include "proc/process.hpp"
#include "serve/protocol.hpp"

namespace multival::dse {

/// One model the analyze lint gates before the point may be solved.
struct GateModel {
  std::string name;  ///< e.g. "noc/single-packet"
  proc::Program program;
  std::string entry;
};

/// One serve-tier request derived from a point.
struct Probe {
  std::string name;  ///< "latency" | "throughput"
  serve::Verb verb = serve::Verb::kBounds;
  std::string arg;
  std::string payload;        ///< extended-.aut IMC text
  std::size_t imc_states = 0; ///< payload size before closure
};

struct Instantiated {
  std::vector<GateModel> gates;
  std::vector<Probe> probes;
  std::size_t model_states = 0;  ///< sum of probe payload state counts
};

/// The metric vector every family produces (see pareto.hpp for objectives).
struct Metrics {
  double latency = 0.0;     ///< expected end-to-end time (midpoint of bounds)
  double latency_width = 0.0;  ///< certified scheduler-interval width
  double throughput = 0.0;
  double occupancy = 0.0;   ///< Little's law: latency * throughput
  double states = 0.0;      ///< payload state count (model complexity)
};

/// Derived quantities available to constraints (grid.hpp expand()).
[[nodiscard]] std::map<std::string, AxisValue> derived_quantities(
    const std::string& family, const std::map<std::string, AxisValue>& axes);

/// True for the supported families ("noc", "fame", "xstream", "xmas").
[[nodiscard]] bool known_family(const std::string& family);

/// Builds gate models and probes for @p point.  Throws SpecError on an
/// unknown family, unknown axis, or an axis value outside the generator's
/// documented range.  The probe payload LTSs are built with @p strategy
/// (planned generate–minimise–compose by default; kFlat is the monolithic
/// baseline) and, when @p cache is non-null, share its minimisation/subtree
/// entries across the sweep's points.
[[nodiscard]] Instantiated instantiate(
    const Point& point,
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

/// Folds the solved probe bodies (keyed by probe name) into the metric
/// vector.  Throws std::runtime_error when a body does not parse.
[[nodiscard]] Metrics derive_metrics(
    const Point& point, const Instantiated& inst,
    const std::map<std::string, std::string>& bodies);

/// Body parsers for the serve result grammar (exposed for tests):
/// "reach in [a, b]; time in [c, d]" and "throughput(glob) = v".
[[nodiscard]] std::pair<double, double> parse_time_bounds(
    const std::string& body);
[[nodiscard]] double parse_throughput(const std::string& body);

}  // namespace multival::dse
