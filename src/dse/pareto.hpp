// Dominance-ranked Pareto fronts over the dse metric vectors.
//
// An objective names a metric and a direction; point a dominates point b
// when a is no worse than b in every objective and strictly better in at
// least one.  pareto_ranks() performs non-dominated sorting: rank 0 is the
// Pareto front, rank 1 the front of what remains after removing rank 0, and
// so on.  Ranking depends only on the metric values and the objective list,
// never on evaluation order, and ties inside a rank are presented in
// expansion order — so the ranked output is deterministic across reruns and
// worker counts.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dse/scenario.hpp"

namespace multival::dse {

struct Objective {
  std::string metric;     ///< latency | latency_width | throughput |
                          ///< occupancy | states
  bool maximise = false;  ///< false = minimise
};

/// The shipped default: min latency, max throughput, min occupancy,
/// min states.
[[nodiscard]] std::vector<Objective> default_objectives();

/// Resolves spec overrides (metric, maximise) against the known metric
/// names; empty overrides yield the defaults.  Throws SpecError on an
/// unknown metric or a duplicate.
[[nodiscard]] std::vector<Objective> resolve_objectives(
    const std::vector<std::pair<std::string, bool>>& overrides);

/// Value of the named metric.  Throws SpecError on an unknown name.
[[nodiscard]] double metric_value(const Metrics& m, const std::string& name);

/// True when @p a dominates @p b under @p objectives.
[[nodiscard]] bool dominates(const Metrics& a, const Metrics& b,
                             const std::vector<Objective>& objectives);

/// Non-dominated sorting.  ranks[i] is the front index of points[i]
/// (0 = Pareto-optimal).  O(fronts * n^2); n is small (a sweep).
[[nodiscard]] std::vector<int> pareto_ranks(
    const std::vector<Metrics>& points,
    const std::vector<Objective>& objectives);

}  // namespace multival::dse
