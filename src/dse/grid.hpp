// Parameterised design spaces for the DSE orchestrator (src/dse).
//
// A sweep spec declares one or more *spaces*; each space names a generator
// family ("noc", "fame", "xstream", "xmas") and a typed grid of axes.  An axis is a
// name plus an explicit list of values (integers, reals or enumeration
// words); the grid is the cross product of its axes, pruned by constraint
// predicates.  Expansion order is deterministic: axes vary in declaration
// order with the last axis fastest, so a spec always enumerates the same
// points with the same ids regardless of thread count or platform.
//
// The declarative text format, one directive per line ('#' comments):
//
//   sweep <name>                       optional sweep title
//   objective <metric> <min|max>       optional; defaults in pareto.hpp
//   space <family>
//     axis <name> = v1, v2, ...
//     constraint <name> <op> <value>   op in <= >= < > == !=
//   end
//
// Constraint names refer to axes of the enclosing space or to derived
// quantities the family defines (e.g. "nodes" = width*height for noc).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace multival::dse {

/// Malformed sweep spec (parse error, unknown axis/op, bad value...).
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One axis value: integer, real or enumeration word.  Integers and reals
/// are deliberately distinct types — "2" configures a width, "2.0" a rate —
/// and render back exactly as written.
using AxisValue = std::variant<long, double, std::string>;

/// Parses "3" -> long, "3.5" -> double, anything else -> string.
[[nodiscard]] AxisValue parse_axis_value(const std::string& text);

/// Canonical rendering (longs as decimal, doubles round-trip, words raw).
[[nodiscard]] std::string to_string(const AxisValue& v);

/// Numeric view: longs and doubles convert, words do not.
[[nodiscard]] std::optional<double> numeric(const AxisValue& v);

struct Axis {
  std::string name;
  std::vector<AxisValue> values;  ///< at least one; duplicates rejected
};

enum class ConstraintOp { kLe, kGe, kLt, kGt, kEq, kNe };

[[nodiscard]] const char* to_string(ConstraintOp op);
[[nodiscard]] ConstraintOp parse_constraint_op(const std::string& text);

/// `name op value`, evaluated per candidate point.  Numeric comparison when
/// both sides are numeric; otherwise string equality (== / != only).
struct Constraint {
  std::string name;
  ConstraintOp op = ConstraintOp::kLe;
  AxisValue value;

  /// True when the point satisfies the predicate.  @p derived supplies
  /// quantities that are not axes (family-specific, may return nullopt).
  [[nodiscard]] bool admits(
      const std::map<std::string, AxisValue>& point,
      const std::map<std::string, AxisValue>& derived) const;
};

/// One design space: a generator family plus its grid.
struct Space {
  std::string family;  ///< "noc" | "fame" | "xstream" | "xmas"
  std::vector<Axis> axes;
  std::vector<Constraint> constraints;

  /// Cross-product size before pruning.
  [[nodiscard]] std::size_t raw_size() const;
};

/// One concrete design point: the family, the axis assignment, and a stable
/// human-readable id ("noc/width=2,height=3,buffer=1").
struct Point {
  std::string id;
  std::string family;
  std::map<std::string, AxisValue> axes;
  std::vector<std::string> axis_order;  ///< declaration order, for rendering

  [[nodiscard]] long get_long(const std::string& axis, long fallback) const;
  [[nodiscard]] double get_double(const std::string& axis,
                                  double fallback) const;
  [[nodiscard]] std::string get_word(const std::string& axis,
                                     const std::string& fallback) const;
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<Space> spaces;
  /// Metric/direction overrides; empty = pareto.hpp defaults.
  std::vector<std::pair<std::string, bool>> objectives;  ///< (metric, maximise)
};

/// Parses the declarative text format above.  Throws SpecError with a
/// "line N: ..." message on malformed input.
[[nodiscard]] SweepSpec parse_sweep_spec(const std::string& text);

/// The shipped sweeps: "default" (the ≥24-point noc+fame+xstream+xmas grid
/// of EXPERIMENTS.md D1) and "smoke" (a small subset for CI).
[[nodiscard]] const std::string& builtin_sweep_spec(const std::string& name);

/// Expands every space of @p spec into points, in declaration order, with
/// the last axis varying fastest, dropping points any constraint rejects.
/// @p derived computes family-specific derived quantities for constraint
/// evaluation (see scenario.hpp); @p pruned (optional) receives the number
/// of points removed by constraints.
using DerivedFn = std::map<std::string, AxisValue> (*)(
    const std::string& family, const std::map<std::string, AxisValue>& axes);
[[nodiscard]] std::vector<Point> expand(const SweepSpec& spec,
                                        DerivedFn derived,
                                        std::size_t* pruned = nullptr);

}  // namespace multival::dse
