#include "dse/pareto.hpp"

#include <set>

namespace multival::dse {

std::vector<Objective> default_objectives() {
  return {{"latency", false},
          {"throughput", true},
          {"occupancy", false},
          {"states", false}};
}

std::vector<Objective> resolve_objectives(
    const std::vector<std::pair<std::string, bool>>& overrides) {
  if (overrides.empty()) {
    return default_objectives();
  }
  std::vector<Objective> objectives;
  std::set<std::string> seen;
  for (const auto& [metric, maximise] : overrides) {
    (void)metric_value(Metrics{}, metric);  // validates the name
    if (!seen.insert(metric).second) {
      throw SpecError("duplicate objective '" + metric + "'");
    }
    objectives.push_back({metric, maximise});
  }
  return objectives;
}

double metric_value(const Metrics& m, const std::string& name) {
  if (name == "latency") {
    return m.latency;
  }
  if (name == "latency_width") {
    return m.latency_width;
  }
  if (name == "throughput") {
    return m.throughput;
  }
  if (name == "occupancy") {
    return m.occupancy;
  }
  if (name == "states") {
    return m.states;
  }
  throw SpecError("unknown metric '" + name +
                  "' (known: latency, latency_width, throughput, occupancy, "
                  "states)");
}

bool dominates(const Metrics& a, const Metrics& b,
               const std::vector<Objective>& objectives) {
  bool strictly_better = false;
  for (const Objective& o : objectives) {
    double va = metric_value(a, o.metric);
    double vb = metric_value(b, o.metric);
    if (o.maximise) {
      va = -va;
      vb = -vb;
    }
    if (va > vb) {
      return false;
    }
    if (va < vb) {
      strictly_better = true;
    }
  }
  return strictly_better;
}

std::vector<int> pareto_ranks(const std::vector<Metrics>& points,
                              const std::vector<Objective>& objectives) {
  const std::size_t n = points.size();
  std::vector<int> ranks(n, -1);
  std::size_t assigned = 0;
  for (int rank = 0; assigned < n; ++rank) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < n; ++i) {
      if (ranks[i] != -1) {
        continue;
      }
      bool dominated = false;
      for (std::size_t j = 0; j < n && !dominated; ++j) {
        dominated = j != i && ranks[j] == -1 &&
                    dominates(points[j], points[i], objectives);
      }
      if (!dominated) {
        front.push_back(i);
      }
    }
    for (const std::size_t i : front) {
      ranks[i] = rank;
    }
    assigned += front.size();
  }
  return ranks;
}

}  // namespace multival::dse
