// Performance analysis of the FAUST-style NoC: per-path packet latency and
// delivery throughput under contention, via the IMC flow.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "noc/mesh.hpp"

namespace multival::noc {

struct NocRates {
  double inject_rate = 4.0;  ///< local injection handshake
  double link_rate = 2.0;    ///< one hop across a mesh link
  double eject_rate = 4.0;   ///< local delivery handshake
};

/// Gate -> rate decoration table for a mesh: every link gate maps to
/// link_rate, every LI<r> to inject_rate and every LO<r> to eject_rate.
[[nodiscard]] std::map<std::string, double> rate_table(
    const NocRates& rates, const MeshDims& dims = {});

/// Expected end-to-end latency of a single packet src -> dst (expected time
/// to absorption of the single-packet scenario).
[[nodiscard]] double packet_latency(int src, int dst, const NocRates& rates,
                                    const MeshDims& dims = {});

/// Long-run delivery rate (sum over all LO gates) under the given
/// continuous flows.  Arbitration nondeterminism (two packets racing for
/// one output port) is resolved uniformly.
[[nodiscard]] double delivery_throughput(const std::vector<Flow>& flows,
                                         const NocRates& rates,
                                         const MeshDims& dims = {});

}  // namespace multival::noc
