// Mesh assembly of FAUST-style routers and the traffic scenarios used for
// verification and performance analysis.  The mesh is W x H (default 2x2),
// nodes numbered row-major; the unidirectional link from node a to node b
// is the gate "L<a>_<b>".
#pragma once

#include <string>
#include <vector>

#include "compose/plan.hpp"
#include "lts/lts.hpp"
#include "noc/router.hpp"
#include "proc/process.hpp"

namespace multival::noc {

/// All unidirectional link gate names of the mesh.
[[nodiscard]] std::vector<std::string> mesh_link_gates(
    const MeshDims& dims = {});

/// Builds all routers wired through the link gates; the entry process
/// "Mesh" keeps the links visible (the performance flow attaches rates to
/// them).
[[nodiscard]] proc::Program mesh_program(const MeshDims& dims = {});

/// One packet injected at @p src for @p dst; the environment then waits for
/// the delivery and stops.  Link gates stay visible unless @p hide_links.
/// The *_program variant exposes the closed scenario (entry "Scenario")
/// for on-the-fly exploration.
[[nodiscard]] proc::Program single_packet_program(int src, int dst,
                                                  bool hide_links = true,
                                                  const MeshDims& dims = {});
[[nodiscard]] lts::Lts single_packet_lts(
    int src, int dst, bool hide_links = true, const MeshDims& dims = {},
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

/// A continuous flow src -> dst (inject, wait for delivery, repeat).
struct Flow {
  int src = 0;
  int dst = 0;
};

/// Closed mesh under the given continuous flows (entry "Scenario").
[[nodiscard]] proc::Program stream_program(const std::vector<Flow>& flows,
                                           bool hide_links = true,
                                           const MeshDims& dims = {});
[[nodiscard]] lts::Lts stream_lts(
    const std::vector<Flow>& flows, bool hide_links = true,
    const MeshDims& dims = {},
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

}  // namespace multival::noc
