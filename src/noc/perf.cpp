#include "noc/perf.hpp"

#include <map>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"

namespace multival::noc {

std::map<std::string, double> rate_table(const NocRates& rates,
                                         const MeshDims& dims) {
  std::map<std::string, double> t;
  for (const std::string& g : mesh_link_gates(dims)) {
    t[g] = rates.link_rate;
  }
  for (int r = 0; r < dims.nodes(); ++r) {
    t["LI" + std::to_string(r)] = rates.inject_rate;
    t["LO" + std::to_string(r)] = rates.eject_rate;
  }
  return t;
}

double packet_latency(int src, int dst, const NocRates& rates,
                      const MeshDims& dims) {
  const core::SolveContext solve_ctx("noc/packet-latency");
  const lts::Lts l = single_packet_lts(src, dst, /*hide_links=*/false, dims);
  const imc::Imc m = core::decorate_with_rates(l, rate_table(rates, dims));
  const core::ClosedModel closed =
      core::close_model(m, imc::NondetPolicy::kUniform);
  return markov::expected_absorption_time_from_initial(closed.ctmc);
}

double delivery_throughput(const std::vector<Flow>& flows,
                           const NocRates& rates, const MeshDims& dims) {
  const core::SolveContext solve_ctx("noc/throughput");
  const lts::Lts l = stream_lts(flows, /*hide_links=*/false, dims);
  const imc::Imc m = core::decorate_with_rates(l, rate_table(rates, dims));
  const core::ClosedModel closed =
      core::close_model(m, imc::NondetPolicy::kUniform);
  const auto pi = markov::steady_state(closed.ctmc);
  return markov::throughput(closed.ctmc, pi, "LO*");
}

}  // namespace multival::noc
