// FAUST case study (CEA/Leti): asynchronous Network-on-Chip router.
//
// We model the routers of a W x H mesh with XY (dimension-ordered)
// routing.  Nodes are numbered row-major: node d sits at
// (x, y) = (d % W, d / W).  Each router has an input port with a one-packet
// buffer per incoming direction (local injection plus up to four
// neighbours) and one arbitrated output port per outgoing direction.
// XY routing forbids the Y -> X turn, which makes the mesh deadlock-free.
//
// Packets are abstracted to their destination header (0 .. W*H-1), exactly
// the abstraction used for the real FAUST router's formal verification
// [Salaun et al., ASYNC 2007].
#pragma once

#include <string>

#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::noc {

struct MeshDims {
  int width = 2;
  int height = 2;
  /// Per-input-port packet buffer depth (1 = the classic single-flit
  /// latch; deeper buffers admit more packets in flight).
  int buffer_depth = 1;

  [[nodiscard]] int nodes() const { return width * height; }
  [[nodiscard]] int x_of(int node) const { return node % width; }
  [[nodiscard]] int y_of(int node) const { return node / width; }
};

/// Gate names of one router's ports.  Directions that have no neighbour
/// are empty strings.  Defaults are direction-letter + node id
/// ("EI0"/"EO0" = east in/out of node 0, "LI0"/"LO0" = local).
struct RouterPorts {
  std::string local_in;
  std::string local_out;
  std::string east_in, east_out;
  std::string west_in, west_out;
  std::string north_in, north_out;  // towards smaller y
  std::string south_in, south_out;  // towards larger y
};

/// Default (unconnected) port names for router @p node of @p dims.
[[nodiscard]] RouterPorts default_ports(const MeshDims& dims, int node);

/// Adds the definitions of one router to @p program; the entry process is
/// "Router<node>"; internal request gates are hidden.  Returns the entry
/// process name.
[[nodiscard]] std::string add_router(proc::Program& program,
                                     const MeshDims& dims, int node,
                                     const RouterPorts& ports);

/// LTS of a single free-running router (all ports open).
[[nodiscard]] lts::Lts router_lts(int node, const MeshDims& dims = {});

}  // namespace multival::noc
