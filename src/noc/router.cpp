#include "noc/router.hpp"

#include <set>
#include <stdexcept>
#include <vector>

#include "lts/analysis.hpp"
#include "proc/generator.hpp"

namespace multival::noc {

using namespace multival::proc;

namespace {

void check_node(const MeshDims& dims, int node) {
  if (dims.width < 1 || dims.height < 1 || dims.nodes() > 16) {
    throw std::invalid_argument("noc: mesh must be between 1x1 and 16 nodes");
  }
  if (dims.buffer_depth < 1 || dims.buffer_depth > 3) {
    throw std::invalid_argument("noc: buffer_depth must be in 1..3");
  }
  if (node < 0 || node >= dims.nodes()) {
    throw std::invalid_argument("noc: node out of range");
  }
}

}  // namespace

RouterPorts default_ports(const MeshDims& dims, int node) {
  check_node(dims, node);
  const int x = dims.x_of(node);
  const int y = dims.y_of(node);
  const std::string id = std::to_string(node);
  RouterPorts p;
  p.local_in = "LI" + id;
  p.local_out = "LO" + id;
  if (x + 1 < dims.width) {
    p.east_in = "EI" + id;
    p.east_out = "EO" + id;
  }
  if (x > 0) {
    p.west_in = "WI" + id;
    p.west_out = "WO" + id;
  }
  if (y > 0) {
    p.north_in = "NI" + id;
    p.north_out = "NO" + id;
  }
  if (y + 1 < dims.height) {
    p.south_in = "SI" + id;
    p.south_out = "SO" + id;
  }
  return p;
}

std::string add_router(proc::Program& program, const MeshDims& dims, int node,
                       const RouterPorts& ports) {
  check_node(dims, node);
  const int x = dims.x_of(node);
  const int y = dims.y_of(node);
  const std::string id = std::to_string(node);

  // Internal request gates, one per output direction plus local.
  const std::string rq_e = "RQE" + id;
  const std::string rq_w = "RQW" + id;
  const std::string rq_n = "RQN" + id;
  const std::string rq_s = "RQS" + id;
  const std::string rq_l = "RQL" + id;

  // XY routing decision for a packet destined to @p d.
  const auto request_gate = [&](int d) -> std::string {
    const int dx = dims.x_of(d);
    const int dy = dims.y_of(d);
    if (dx > x) {
      return rq_e;
    }
    if (dx < x) {
      return rq_w;
    }
    if (dy > y) {
      return rq_s;
    }
    if (dy < y) {
      return rq_n;
    }
    return rq_l;
  };

  // Which destinations may legally arrive on each input under XY order.
  const auto valid_local = [&](int) { return true; };
  // From the west neighbour (travelling east): still east of us or done X.
  const auto valid_from_west = [&](int d) { return dims.x_of(d) >= x; };
  const auto valid_from_east = [&](int d) { return dims.x_of(d) <= x; };
  // Y traffic has finished its X leg.
  const auto valid_from_north = [&](int d) {
    return dims.x_of(d) == x && dims.y_of(d) >= y;
  };
  const auto valid_from_south = [&](int d) {
    return dims.x_of(d) == x && dims.y_of(d) <= y;
  };

  std::vector<TermPtr> port_processes;
  // Request gates some port actually touches.  Edge routers have no west /
  // north / ... neighbour, and a gate no side performs must stay out of the
  // sync and hide sets below (the lint flags it as MV005/MV007 dead weight).
  std::set<std::string> used_requests;

  // Each input port is a FIFO of depth dims.buffer_depth holding packet
  // headers; accepting and forwarding interleave (cut-through style).
  const int depth = dims.buffer_depth;
  const auto in_port = [&](const std::string& name,
                           const std::string& in_gate, auto&& valid) {
    if (in_gate.empty()) {
      return;
    }
    std::vector<std::string> fifo_params{"len"};
    for (int b = 0; b < depth; ++b) {
      fifo_params.push_back("q" + std::to_string(b));
    }
    const auto slot = [](int b) { return evar("q" + std::to_string(b)); };
    std::vector<TermPtr> branches;
    // Accept a packet into slot "len" (one branch per fill level and
    // destination so sync stays value-exact).
    for (int fill = 0; fill < depth; ++fill) {
      for (int d = 0; d < dims.nodes(); ++d) {
        if (!valid(d)) {
          continue;
        }
        std::vector<ExprPtr> args{evar("len") + lit(1)};
        for (int b = 0; b < depth; ++b) {
          args.push_back(b == fill ? lit(d) : slot(b));
        }
        branches.push_back(guard(
            evar("len") == lit(fill),
            prefix(in_gate, {accept("d", d, d)},
                   call(name, std::move(args)))));
      }
    }
    // Forward the head to its output-port request gate.
    for (int d = 0; d < dims.nodes(); ++d) {
      if (!valid(d)) {
        continue;
      }
      std::vector<ExprPtr> args{evar("len") - lit(1)};
      for (int b = 0; b + 1 < depth; ++b) {
        args.push_back(slot(b + 1));
      }
      args.push_back(lit(0));
      used_requests.insert(request_gate(d));
      branches.push_back(guard(
          evar("len") > lit(0) && slot(0) == lit(d),
          prefix(request_gate(d), {emit(lit(d))},
                 call(name, std::move(args)))));
    }
    program.define(name, std::move(fifo_params),
                   choice(std::move(branches)));
    std::vector<ExprPtr> init(static_cast<std::size_t>(depth) + 1);
    for (auto& a : init) {
      a = lit(0);
    }
    port_processes.push_back(call(name, std::move(init)));
  };

  in_port("InL" + id, ports.local_in, valid_local);
  in_port("InW" + id, ports.west_in, valid_from_west);
  in_port("InE" + id, ports.east_in, valid_from_east);
  in_port("InN" + id, ports.north_in, valid_from_north);
  in_port("InS" + id, ports.south_in, valid_from_south);

  const auto out_port = [&](const std::string& name,
                            const std::string& req_gate,
                            const std::string& out_gate) {
    if (out_gate.empty()) {
      return;
    }
    used_requests.insert(req_gate);
    program.define(name, {},
                   prefix(req_gate, {accept("d", 0, dims.nodes() - 1)},
                          prefix(out_gate, {emit(evar("d"))}, call(name))));
    port_processes.push_back(call(name));
  };
  out_port("OutL" + id, rq_l, ports.local_out);
  out_port("OutE" + id, rq_e, ports.east_out);
  out_port("OutW" + id, rq_w, ports.west_out);
  out_port("OutN" + id, rq_n, ports.north_out);
  out_port("OutS" + id, rq_s, ports.south_out);

  // Interleave the input side, interleave the output side, then join them
  // on the request gates.
  const std::size_t inputs =
      1 + (ports.west_in.empty() ? 0 : 1) + (ports.east_in.empty() ? 0 : 1) +
      (ports.north_in.empty() ? 0 : 1) + (ports.south_in.empty() ? 0 : 1);
  TermPtr in_side;
  TermPtr out_side;
  for (std::size_t i = 0; i < port_processes.size(); ++i) {
    TermPtr& side = i < inputs ? in_side : out_side;
    side = side == nullptr ? port_processes[i]
                           : interleaving(side, port_processes[i]);
  }

  std::vector<std::string> requests;
  for (const auto& gate : {rq_e, rq_w, rq_n, rq_s, rq_l}) {
    if (used_requests.count(gate) != 0) {
      requests.push_back(gate);
    }
  }
  const std::string entry = "Router" + id;
  program.define(entry, {},
                 hide(requests, par(in_side, requests, out_side)));
  return entry;
}

lts::Lts router_lts(int node, const MeshDims& dims) {
  proc::Program p;
  const std::string entry = add_router(p, dims, node, default_ports(dims, node));
  return lts::trim(generate(p, entry)).lts;
}

}  // namespace multival::noc
