#include "noc/mesh.hpp"

#include <memory>
#include <stdexcept>

#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "proc/generator.hpp"

namespace multival::noc {

using namespace multival::proc;

namespace {

std::string link(int from, int to) {
  return "L" + std::to_string(from) + "_" + std::to_string(to);
}

RouterPorts wired_ports(const MeshDims& dims, int node) {
  const int x = dims.x_of(node);
  const int y = dims.y_of(node);
  RouterPorts p = default_ports(dims, node);
  if (x + 1 < dims.width) {
    p.east_out = link(node, node + 1);
    p.east_in = link(node + 1, node);
  }
  if (x > 0) {
    p.west_out = link(node, node - 1);
    p.west_in = link(node - 1, node);
  }
  if (y > 0) {
    p.north_out = link(node, node - dims.width);
    p.north_in = link(node - dims.width, node);
  }
  if (y + 1 < dims.height) {
    p.south_out = link(node, node + dims.width);
    p.south_in = link(node + dims.width, node);
  }
  return p;
}

std::vector<std::string> local_gates(const MeshDims& dims) {
  std::vector<std::string> gates;
  for (int r = 0; r < dims.nodes(); ++r) {
    gates.push_back("LI" + std::to_string(r));
    gates.push_back("LO" + std::to_string(r));
  }
  return gates;
}

void check_node(const MeshDims& dims, int n) {
  if (n < 0 || n >= dims.nodes()) {
    throw std::invalid_argument("noc mesh: node out of range");
  }
}

}  // namespace

std::vector<std::string> mesh_link_gates(const MeshDims& dims) {
  std::vector<std::string> gates;
  for (int n = 0; n < dims.nodes(); ++n) {
    if (dims.x_of(n) + 1 < dims.width) {
      gates.push_back(link(n, n + 1));
      gates.push_back(link(n + 1, n));
    }
    if (dims.y_of(n) + 1 < dims.height) {
      gates.push_back(link(n, n + dims.width));
      gates.push_back(link(n + dims.width, n));
    }
  }
  return gates;
}

proc::Program mesh_program(const MeshDims& dims) {
  Program p;
  for (int n = 0; n < dims.nodes(); ++n) {
    (void)add_router(p, dims, n, wired_ports(dims, n));
  }
  // Fold each row joining consecutive routers on their shared X links,
  // then fold the rows joining on the Y links between adjacent rows.
  std::vector<TermPtr> rows;
  for (int y = 0; y < dims.height; ++y) {
    TermPtr row;
    for (int x = 0; x < dims.width; ++x) {
      const int n = y * dims.width + x;
      TermPtr router = call("Router" + std::to_string(n));
      if (row == nullptr) {
        row = std::move(router);
      } else {
        row = par(std::move(row), {link(n - 1, n), link(n, n - 1)},
                  std::move(router));
      }
    }
    rows.push_back(std::move(row));
  }
  TermPtr mesh;
  for (int y = 0; y < dims.height; ++y) {
    if (mesh == nullptr) {
      mesh = std::move(rows[static_cast<std::size_t>(y)]);
      continue;
    }
    std::vector<std::string> vertical;
    for (int x = 0; x < dims.width; ++x) {
      const int above = (y - 1) * dims.width + x;
      const int below = y * dims.width + x;
      vertical.push_back(link(above, below));
      vertical.push_back(link(below, above));
    }
    mesh = par(std::move(mesh), std::move(vertical),
               std::move(rows[static_cast<std::size_t>(y)]));
  }
  p.define("Mesh", {}, std::move(mesh));
  return p;
}

proc::Program single_packet_program(int src, int dst, bool hide_links,
                                    const MeshDims& dims) {
  check_node(dims, src);
  check_node(dims, dst);
  Program p = mesh_program(dims);
  p.define("Env", {},
           prefix("LI" + std::to_string(src), {emit(lit(dst))},
                  prefix("LO" + std::to_string(dst), {accept("z", dst, dst)},
                         stop())));
  TermPtr scenario = par(call("Mesh"), local_gates(dims), call("Env"));
  if (hide_links) {
    scenario = hide(mesh_link_gates(dims), scenario);
  }
  p.define("Scenario", {}, std::move(scenario));
  return p;
}

lts::Lts single_packet_lts(int src, int dst, bool hide_links,
                           const MeshDims& dims, compose::Strategy strategy,
                           compose::MinimizeCache* cache) {
  auto p = std::make_shared<const Program>(
      single_packet_program(src, dst, hide_links, dims));
  return core::timed_generation(
      "noc: single packet " + std::to_string(src) + "->" +
          std::to_string(dst),
      [&] {
        if (strategy == compose::Strategy::kFlat) {
          return lts::trim(generate(*p, "Scenario")).lts;
        }
        return compose::pipeline_lts(p, "Scenario", strategy, {}, cache);
      });
}

proc::Program stream_program(const std::vector<Flow>& flows, bool hide_links,
                             const MeshDims& dims) {
  if (flows.empty()) {
    throw std::invalid_argument("stream_program: no flows");
  }
  Program p = mesh_program(dims);
  TermPtr envs;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    check_node(dims, flows[i].src);
    check_node(dims, flows[i].dst);
    const std::string name = "Flow" + std::to_string(i);
    p.define(name, {},
             prefix("LI" + std::to_string(flows[i].src),
                    {emit(lit(flows[i].dst))},
                    prefix("LO" + std::to_string(flows[i].dst),
                           {accept("z", flows[i].dst, flows[i].dst)},
                           call(name))));
    envs = envs == nullptr ? call(name) : interleaving(envs, call(name));
  }
  TermPtr scenario = par(call("Mesh"), local_gates(dims), envs);
  if (hide_links) {
    scenario = hide(mesh_link_gates(dims), scenario);
  }
  p.define("Scenario", {}, std::move(scenario));
  return p;
}

lts::Lts stream_lts(const std::vector<Flow>& flows, bool hide_links,
                    const MeshDims& dims, compose::Strategy strategy,
                    compose::MinimizeCache* cache) {
  auto p = std::make_shared<const Program>(
      stream_program(flows, hide_links, dims));
  return core::timed_generation(
      "noc: stream (" + std::to_string(flows.size()) + " flows)",
      [&] {
        if (strategy == compose::Strategy::kFlat) {
          return lts::trim(generate(*p, "Scenario")).lts;
        }
        return compose::pipeline_lts(p, "Scenario", strategy, {}, cache);
      });
}

}  // namespace multival::noc
