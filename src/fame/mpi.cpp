#include "fame/mpi.hpp"

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "markov/absorption.hpp"
#include "proc/generator.hpp"

namespace multival::fame {

using namespace multival::proc;

const char* to_string(MpiImpl i) {
  return i == MpiImpl::kEager ? "eager" : "rendezvous";
}

namespace {

constexpr const char* kMailbox = "M";
constexpr const char* kTok01 = "TOK01";
constexpr const char* kTok10 = "TOK10";

/// An op-sequence step: prepends one action (or handshake) to a term.
using Step = std::function<TermPtr(TermPtr)>;

Step read_op(int node, const std::string& line) {
  return [=](TermPtr cont) {
    return prefix(line_gate("RD", node, line),
                  prefix(line_gate("RDD", node, line), std::move(cont)));
  };
}

Step write_op(int node, const std::string& line) {
  return [=](TermPtr cont) {
    return prefix(line_gate("WR", node, line),
                  prefix(line_gate("WRD", node, line), std::move(cont)));
  };
}

/// Buffer recycling + unpack: flush, cold read, write on the private
/// scratch line (where MESI's E state pays off).
Step unpack_op(int node) {
  const std::string line = "S" + std::to_string(node);
  return [=](TermPtr cont) {
    return prefix(
        line_gate("FL", node, line),
        prefix(line_gate("FLD", node, line),
               prefix(line_gate("RD", node, line),
                      prefix(line_gate("RDD", node, line),
                             prefix(line_gate("WR", node, line),
                                    prefix(line_gate("WRD", node, line),
                                           std::move(cont)))))));
  };
}

Step token(const char* gate) {
  return [=](TermPtr cont) { return prefix(gate, std::move(cont)); };
}

TermPtr fold(const std::vector<Step>& steps, TermPtr tail) {
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    tail = (*it)(std::move(tail));
  }
  return tail;
}

/// Per-driver op sequences for one full ping-pong round.  Both drivers
/// name the token gates in the same global order, so their composition is
/// the intended linearisation.
std::vector<Step> round_steps(MpiImpl impl, int node) {
  const int other = 1 - node;
  (void)other;
  std::vector<Step> s;
  if (impl == MpiImpl::kEager) {
    if (node == 0) {
      s = {write_op(0, kMailbox), token(kTok01), token(kTok10),
           read_op(0, kMailbox), unpack_op(0)};
    } else {
      s = {token(kTok01), read_op(1, kMailbox), unpack_op(1),
           write_op(1, kMailbox), token(kTok10)};
    }
    return s;
  }
  // Rendezvous: request / ack / data in each direction.
  if (node == 0) {
    s = {write_op(0, kMailbox),  // req ->
         token(kTok01), token(kTok10),
         read_op(0, kMailbox),   // <- ack
         write_op(0, kMailbox),  // data ->
         token(kTok01), token(kTok10),
         read_op(0, kMailbox),   // <- req (reply direction)
         write_op(0, kMailbox),  // ack ->
         token(kTok01), token(kTok10),
         read_op(0, kMailbox),   // <- data
         unpack_op(0)};
  } else {
    s = {token(kTok01),
         read_op(1, kMailbox),   // <- req
         write_op(1, kMailbox),  // ack ->
         token(kTok10), token(kTok01),
         read_op(1, kMailbox),   // <- data
         unpack_op(1),
         write_op(1, kMailbox),  // req -> (reply direction)
         token(kTok10), token(kTok01),
         read_op(1, kMailbox),   // <- ack
         write_op(1, kMailbox),  // data ->
         token(kTok10)};
  }
  return s;
}

}  // namespace

Program pingpong_program(const PingPongConfig& config) {
  if (config.rounds < 1 || config.rounds > 64) {
    throw std::invalid_argument("pingpong: rounds must be in 1..64");
  }
  Program p;
  const std::vector<std::string> lines{"M", "S0", "S1"};
  for (const std::string& line : lines) {
    (void)add_coherent_line(p, line, config.protocol);
  }

  for (int node = 0; node < 2; ++node) {
    const std::string name = "Mpi" + std::to_string(node);
    p.define(name, {"n"},
             choice({guard(evar("n") > lit(0),
                           fold(round_steps(config.impl, node),
                                call(name, {evar("n") - lit(1)}))),
                     guard(evar("n") == lit(0), stop())}));
  }

  std::vector<std::string> all_ops;
  for (const std::string& line : lines) {
    for (const std::string& g : operation_gates(line)) {
      all_ops.push_back(g);
    }
  }
  p.define(
      "PingPong", {},
      par(interleaving(call("Line_M"),
                       interleaving(call("Line_S0"), call("Line_S1"))),
          all_ops,
          par(call("Mpi0", {lit(config.rounds)}), {kTok01, kTok10},
              call("Mpi1", {lit(config.rounds)}))));
  return p;
}

lts::Lts pingpong_lts(const PingPongConfig& config, compose::Strategy strategy,
                      compose::MinimizeCache* cache) {
  auto p = std::make_shared<const Program>(pingpong_program(config));
  if (strategy == compose::Strategy::kFlat) {
    return lts::trim(generate(*p, "PingPong")).lts;
  }
  return compose::pipeline_lts(p, "PingPong", strategy, {}, cache);
}

lts::Lts barrier_lts(const BarrierConfig& config) {
  if (config.rounds < 1 || config.rounds > 64) {
    throw std::invalid_argument("barrier: rounds must be in 1..64");
  }
  Program p;
  const std::vector<std::string> lines{"F0", "F1"};
  for (const std::string& line : lines) {
    (void)add_coherent_line(p, line, config.protocol);
  }
  // Per node i: write own flag, synchronise, read the other's flag.
  for (int node = 0; node < 2; ++node) {
    const std::string own = "F" + std::to_string(node);
    const std::string other = "F" + std::to_string(1 - node);
    const std::string name = "Bar" + std::to_string(node);
    const std::vector<Step> steps{write_op(node, own), token("TOKB"),
                                  read_op(node, other)};
    p.define(name, {"n"},
             choice({guard(evar("n") > lit(0),
                           fold(steps, call(name, {evar("n") - lit(1)}))),
                     guard(evar("n") == lit(0), stop())}));
  }
  std::vector<std::string> all_ops;
  for (const std::string& line : lines) {
    for (const std::string& g : operation_gates(line)) {
      all_ops.push_back(g);
    }
  }
  p.define("Barrier", {},
           par(interleaving(call("Line_F0"), call("Line_F1")), all_ops,
               par(call("Bar0", {lit(config.rounds)}), {"TOKB"},
                   call("Bar1", {lit(config.rounds)}))));
  return lts::trim(generate(p, "Barrier")).lts;
}

BarrierResult barrier_latency(const BarrierConfig& config) {
  const core::SolveContext solve_ctx("fame/barrier");
  const lts::Lts l = barrier_lts(config);
  const auto rates =
      topology_rates(config.topology, {"F0", "F1"}, config.base_rate);
  const imc::Imc m = core::decorate_with_rates(l, rates);
  const core::ClosedModel closed = core::close_model(m);
  BarrierResult r;
  r.ctmc_states = closed.ctmc.num_states();
  r.total_time = markov::expected_absorption_time_from_initial(closed.ctmc);
  r.round_latency = r.total_time / static_cast<double>(config.rounds);
  return r;
}

PingPongResult pingpong_latency(const PingPongConfig& config) {
  const core::SolveContext solve_ctx("fame/pingpong");
  const lts::Lts l = pingpong_lts(config);
  const auto rates =
      topology_rates(config.topology, {"M", "S0", "S1"}, config.base_rate);
  const imc::Imc m = core::decorate_with_rates(l, rates);
  const core::ClosedModel closed = core::close_model(m);
  PingPongResult r;
  r.ctmc_states = closed.ctmc.num_states();
  r.total_time = markov::expected_absorption_time_from_initial(closed.ctmc);
  r.round_latency = r.total_time / static_cast<double>(config.rounds);
  r.p95_total = markov::absorption_time_quantile(closed.ctmc, 0.95);
  return r;
}

}  // namespace multival::fame
