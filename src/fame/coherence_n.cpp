#include "fame/coherence_n.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "proc/generator.hpp"

namespace multival::fame {

using namespace multival::proc;

namespace {

void check_nodes(int nodes) {
  if (nodes < 2 || nodes > 4) {
    throw std::invalid_argument("coherence_n: nodes must be in 2..4");
  }
}

/// Conjunction of @p terms (empty -> true).
ExprPtr conj(std::vector<ExprPtr> terms) {
  if (terms.empty()) {
    return lit(1);
  }
  ExprPtr e = terms[0];
  for (std::size_t i = 1; i < terms.size(); ++i) {
    e = std::move(e) && terms[i];
  }
  return e;
}

std::string pvar(int j) { return "p" + std::to_string(j); }

/// The N-node cache is identical to the 2-node one (it only talks to the
/// directory), regenerated here with per-node gate names.
void define_cache_n(Program& p, const std::string& line, int i) {
  const auto g = [&](const char* base) { return line_gate(base, i, line); };
  const std::string id = std::to_string(i) + "n_" + line;
  const std::string name = "CacheN" + id;
  const std::string want_m = "CacheNWantM" + id;
  const std::string flushing = "CacheNFlush" + id;

  {
    std::vector<TermPtr> branches;
    branches.push_back(guard(
        evar("s") >= lit(1),
        prefix(g("RD"), prefix(g("RDD"), call(name, {evar("s")})))));
    branches.push_back(guard(
        evar("s") == lit(0),
        prefix(g("RD"),
               prefix(g("RQS"),
                      prefix(g("GRS"), {accept("ns", 1, 3)},
                             prefix(g("RDD"), call(name, {evar("ns")})))))));
    branches.push_back(guard(
        evar("s") >= lit(2),
        prefix(g("WR"), prefix(g("WRD"), call(name, {lit(2)})))));
    branches.push_back(guard(evar("s") <= lit(1),
                             prefix(g("WR"), call(want_m, {evar("s")}))));
    branches.push_back(guard(evar("s") >= lit(1),
                             prefix(g("INV"), call(name, {lit(0)}))));
    branches.push_back(guard(evar("s") >= lit(2),
                             prefix(g("WB"), call(name, {lit(1)}))));
    branches.push_back(prefix(g("FL"), call(flushing, {evar("s")})));
    p.define(name, {"s"}, choice(std::move(branches)));
  }
  {
    std::vector<TermPtr> branches;
    branches.push_back(
        prefix(g("RQM"),
               prefix(g("GRM"), prefix(g("WRD"), call(name, {lit(2)})))));
    branches.push_back(guard(evar("s") == lit(1),
                             prefix(g("INV"), call(want_m, {lit(0)}))));
    p.define(want_m, {"s"}, choice(std::move(branches)));
  }
  {
    std::vector<TermPtr> branches;
    branches.push_back(
        guard(evar("s") >= lit(1),
              prefix(g("EV"), prefix(g("FLD"), call(name, {lit(0)})))));
    branches.push_back(guard(evar("s") == lit(0),
                             prefix(g("FLD"), call(name, {lit(0)}))));
    branches.push_back(guard(evar("s") >= lit(1),
                             prefix(g("INV"), call(flushing, {lit(0)}))));
    branches.push_back(guard(evar("s") >= lit(2),
                             prefix(g("WB"), call(flushing, {lit(1)}))));
    p.define(flushing, {"s"}, choice(std::move(branches)));
  }
}

void define_directory_n(Program& p, const std::string& line,
                        Protocol protocol, int n) {
  const std::string name = "DirN_" + line;
  const auto g = [&](const char* base, int node) {
    return line_gate(base, node, line);
  };
  std::vector<std::string> params;
  for (int j = 0; j < n; ++j) {
    params.push_back(pvar(j));
  }

  const auto args_with = [&](int i, ExprPtr vi) {
    std::vector<ExprPtr> args;
    for (int j = 0; j < n; ++j) {
      args.push_back(j == i ? vi : evar(pvar(j)));
    }
    return args;
  };
  const auto args_with2 = [&](int i, ExprPtr vi, int j2, ExprPtr vj) {
    std::vector<ExprPtr> args;
    for (int j = 0; j < n; ++j) {
      args.push_back(j == i ? vi : (j == j2 ? vj : evar(pvar(j))));
    }
    return args;
  };
  const auto others_invalid = [&](int i) {
    std::vector<ExprPtr> terms;
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        terms.push_back(evar(pvar(j)) == lit(0));
      }
    }
    return conj(std::move(terms));
  };
  const auto no_other_owner = [&](int i) {
    std::vector<ExprPtr> terms;
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        terms.push_back(evar(pvar(j)) <= lit(1));
      }
    }
    return conj(std::move(terms));
  };

  std::vector<TermPtr> branches;
  for (int i = 0; i < n; ++i) {
    // Read miss: writeback the owner first (at most one exists).
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      branches.push_back(guard(
          evar(pvar(j)) >= lit(2),
          prefix(g("RQS", i),
                 prefix(g("WB", j),
                        prefix(g("GRS", i), {emit(lit(1))},
                               call(name, args_with2(i, lit(1), j,
                                                     lit(1))))))));
    }
    // Read miss, no other copy at all: MESI grants Exclusive.
    const Value grant_alone = protocol == Protocol::kMesi ? 3 : 1;
    branches.push_back(guard(
        others_invalid(i),
        prefix(g("RQS", i),
               prefix(g("GRS", i), {emit(lit(grant_alone))},
                      call(name, args_with(i, lit(grant_alone)))))));
    // Read miss, sharers but no owner.
    {
      branches.push_back(guard(
          !others_invalid(i) && no_other_owner(i),
          prefix(g("RQS", i), prefix(g("GRS", i), {emit(lit(1))},
                                     call(name, args_with(i, lit(1)))))));
    }
    // Write miss / upgrade: sequence of invalidations in a sub-process.
    const std::string invm = "DirNInvM" + std::to_string(i) + "_" + line;
    branches.push_back(prefix(g("RQM", i), call(invm, [&] {
      std::vector<ExprPtr> args;
      for (int j = 0; j < n; ++j) {
        args.push_back(evar(pvar(j)));
      }
      return args;
    }())));
    // Eviction notice.
    branches.push_back(guard(evar(pvar(i)) >= lit(1),
                             prefix(g("EV", i),
                                    call(name, args_with(i, lit(0))))));
  }
  p.define(name, params, choice(std::move(branches)));

  // Invalidation sub-processes: one INV per remaining copy, then grant.
  for (int i = 0; i < n; ++i) {
    const std::string invm = "DirNInvM" + std::to_string(i) + "_" + line;
    std::vector<TermPtr> branches2;
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      branches2.push_back(guard(evar(pvar(j)) >= lit(1),
                                prefix(g("INV", j), call(invm, [&] {
                                  std::vector<ExprPtr> args;
                                  for (int k = 0; k < n; ++k) {
                                    args.push_back(k == j ? lit(0)
                                                          : evar(pvar(k)));
                                  }
                                  return args;
                                }()))));
    }
    branches2.push_back(
        guard(others_invalid(i),
              prefix(g("GRM", i), call(name, args_with(i, lit(2))))));
    p.define(invm, params, choice(std::move(branches2)));
  }
}

void define_observer_n(Program& p, const std::string& line, int n) {
  const std::string name = "ObsN_" + line;
  const std::string err = "ERR_" + line;
  std::vector<std::string> params;
  for (int j = 0; j < n; ++j) {
    params.push_back("o" + std::to_string(j));
  }
  const auto ovar = [](int j) { return evar("o" + std::to_string(j)); };
  const auto args_with = [&](int i, ExprPtr vi) {
    std::vector<ExprPtr> args;
    for (int j = 0; j < n; ++j) {
      args.push_back(j == i ? vi : ovar(j));
    }
    return args;
  };

  std::vector<TermPtr> branches;
  for (int i = 0; i < n; ++i) {
    const auto g = [&](const char* base) { return line_gate(base, i, line); };
    // Violation predicates over the other nodes.
    std::vector<ExprPtr> other_owner_terms;
    std::vector<ExprPtr> other_any_terms;
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        other_owner_terms.push_back(ovar(j) >= lit(2));
        other_any_terms.push_back(ovar(j) != lit(0));
      }
    }
    const auto disj = [](std::vector<ExprPtr> terms) {
      ExprPtr e = lit(0);
      for (auto& t : terms) {
        e = std::move(e) || std::move(t);
      }
      return e;
    };
    const ExprPtr other_owner = disj(other_owner_terms);
    const ExprPtr other_any = disj(other_any_terms);

    branches.push_back(prefix(
        g("GRS"), {accept("ns", 1, 3)},
        choice({guard(other_owner ||
                          (evar("ns") == lit(3) && other_any),
                      prefix(err, stop())),
                guard(!(other_owner ||
                        (evar("ns") == lit(3) && other_any)),
                      call(name, args_with(i, evar("ns"))))})));
    branches.push_back(prefix(
        g("GRM"),
        choice({guard(other_any, prefix(err, stop())),
                guard(!other_any, call(name, args_with(i, lit(2))))})));
    branches.push_back(prefix(g("INV"), call(name, args_with(i, lit(0)))));
    branches.push_back(prefix(g("WB"), call(name, args_with(i, lit(1)))));
    branches.push_back(prefix(g("EV"), call(name, args_with(i, lit(0)))));
    branches.push_back(prefix(
        g("RDD"),
        choice({guard(ovar(i) == lit(0), prefix(err, stop())),
                guard(ovar(i) != lit(0), call(name, args_with(i, ovar(i))))})));
    branches.push_back(prefix(
        g("WRD"),
        choice({guard(ovar(i) < lit(2), prefix(err, stop())),
                guard(ovar(i) >= lit(2), call(name, args_with(i, lit(2))))})));
    for (const char* transparent : {"RD", "WR", "FL", "FLD", "RQS", "RQM"}) {
      branches.push_back(
          prefix(g(transparent), call(name, args_with(i, ovar(i)))));
    }
  }
  p.define(name, params, choice(std::move(branches)));
}

std::vector<std::string> gates_n(const std::string& line, int n,
                                 bool transactions) {
  std::vector<std::string> gates;
  for (int i = 0; i < n; ++i) {
    if (transactions) {
      for (const char* base : {"RQS", "GRS", "RQM", "GRM", "INV", "WB",
                               "EV"}) {
        gates.push_back(line_gate(base, i, line));
      }
    } else {
      for (const char* base : {"RD", "RDD", "WR", "WRD", "FL", "FLD"}) {
        gates.push_back(line_gate(base, i, line));
      }
    }
  }
  return gates;
}

}  // namespace

std::string add_coherent_line_n(proc::Program& program,
                                const std::string& line, Protocol protocol,
                                int nodes) {
  check_nodes(nodes);
  TermPtr caches;
  for (int i = 0; i < nodes; ++i) {
    define_cache_n(program, line, i);
    TermPtr c = call("CacheN" + std::to_string(i) + "n_" + line, {lit(0)});
    caches = caches == nullptr ? std::move(c)
                               : interleaving(std::move(caches), std::move(c));
  }
  define_directory_n(program, line, protocol, nodes);
  std::vector<ExprPtr> dir_args(static_cast<std::size_t>(nodes));
  for (auto& a : dir_args) {
    a = lit(0);
  }
  const std::string entry = "LineN_" + line;
  program.define(entry, {},
                 par(std::move(caches), gates_n(line, nodes, true),
                     call("DirN_" + line, std::move(dir_args))));
  return entry;
}

proc::Program coherence_system_n_program(Protocol protocol, int nodes) {
  check_nodes(nodes);
  Program p;
  const std::string line = "M";
  const std::string sys = add_coherent_line_n(p, line, protocol, nodes);
  define_observer_n(p, line, nodes);

  TermPtr drivers;
  for (int i = 0; i < nodes; ++i) {
    const std::string name = "DriverN" + std::to_string(i);
    p.define(name, {},
             choice({prefix(line_gate("RD", i, line),
                            prefix(line_gate("RDD", i, line), call(name))),
                     prefix(line_gate("WR", i, line),
                            prefix(line_gate("WRD", i, line), call(name))),
                     prefix(line_gate("FL", i, line),
                            prefix(line_gate("FLD", i, line), call(name)))}));
    drivers = drivers == nullptr
                  ? call(name)
                  : interleaving(std::move(drivers), call(name));
  }

  std::vector<std::string> watched = gates_n(line, nodes, true);
  for (const std::string& g : gates_n(line, nodes, false)) {
    watched.push_back(g);
  }
  std::vector<ExprPtr> obs_args(static_cast<std::size_t>(nodes));
  for (auto& a : obs_args) {
    a = lit(0);
  }
  p.define("SystemN", {},
           par(par(call(sys), gates_n(line, nodes, false), drivers), watched,
               call("ObsN_" + line, std::move(obs_args))));
  return p;
}

lts::Lts coherence_system_n_lts(Protocol protocol, int nodes,
                                compose::Strategy strategy,
                                compose::MinimizeCache* cache) {
  auto p = std::make_shared<const Program>(
      coherence_system_n_program(protocol, nodes));
  return core::timed_generation(
      std::string("fame: coherence system (") + to_string(protocol) + ", " +
          std::to_string(nodes) + " nodes)",
      [&] {
        if (strategy == compose::Strategy::kFlat) {
          return lts::trim(generate(*p, "SystemN")).lts;
        }
        return compose::pipeline_lts(p, "SystemN", strategy, {}, cache);
      });
}

}  // namespace multival::fame
