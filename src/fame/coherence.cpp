#include "fame/coherence.hpp"

#include <stdexcept>

#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "proc/generator.hpp"

namespace multival::fame {

using namespace multival::proc;

const char* to_string(Protocol p) {
  return p == Protocol::kMsi ? "MSI" : "MESI";
}

std::string line_gate(const std::string& base, int node,
                      const std::string& line) {
  return base + std::to_string(node) + "_" + line;
}

std::vector<std::string> transaction_gates(const std::string& line) {
  std::vector<std::string> gates;
  for (int i = 0; i < 2; ++i) {
    for (const char* base : {"RQS", "GRS", "RQM", "GRM", "INV", "WB", "EV"}) {
      gates.push_back(line_gate(base, i, line));
    }
  }
  return gates;
}

std::vector<std::string> operation_gates(const std::string& line) {
  std::vector<std::string> gates;
  for (int i = 0; i < 2; ++i) {
    for (const char* base : {"RD", "RDD", "WR", "WRD", "FL", "FLD"}) {
      gates.push_back(line_gate(base, i, line));
    }
  }
  return gates;
}

namespace {

/// Cache of node @p i for one line.  State s: 0=I, 1=S, 2=M, 3=E.
///
/// While waiting to issue a request to the (serialised) directory, the
/// cache keeps servicing directory-initiated invalidations — otherwise two
/// caches requesting at once deadlock against the directory's in-flight
/// transaction (the classic request-request race).
void define_cache(Program& p, const std::string& line, int i) {
  const auto g = [&](const char* base) { return line_gate(base, i, line); };
  const std::string id = std::to_string(i) + "_" + line;
  const std::string name = "Cache" + id;
  const std::string want_m = "CacheWantM" + id;
  const std::string flushing = "CacheFlush" + id;

  {
    std::vector<TermPtr> branches;
    // Read hit: any valid copy.
    branches.push_back(guard(
        evar("s") >= lit(1),
        prefix(g("RD"), prefix(g("RDD"), call(name, {evar("s")})))));
    // Read miss: fetch; the grant carries the new state (1=S, 3=E).  The
    // directory never targets an invalid node, so no interleaved INV/WB
    // can arrive here.
    branches.push_back(guard(
        evar("s") == lit(0),
        prefix(g("RD"),
               prefix(g("RQS"),
                      prefix(g("GRS"), {accept("ns", 1, 3)},
                             prefix(g("RDD"), call(name, {evar("ns")})))))));
    // Write hit: M or E (an E write is silent and moves to M).
    branches.push_back(guard(
        evar("s") >= lit(2),
        prefix(g("WR"), prefix(g("WRD"), call(name, {lit(2)})))));
    // Write miss / upgrade from I or S: wait state below.
    branches.push_back(guard(evar("s") <= lit(1),
                             prefix(g("WR"), call(want_m, {evar("s")}))));
    // Directory-initiated invalidation (any valid copy).
    branches.push_back(guard(evar("s") >= lit(1),
                             prefix(g("INV"), call(name, {lit(0)}))));
    // Directory-initiated writeback/downgrade (owner only).
    branches.push_back(guard(evar("s") >= lit(2),
                             prefix(g("WB"), call(name, {lit(1)}))));
    // Driver-initiated flush (buffer recycling): wait state below.
    branches.push_back(prefix(g("FL"), call(flushing, {evar("s")})));
    p.define(name, {"s"}, choice(std::move(branches)));
  }

  // Waiting to issue the write-miss/upgrade request.  A concurrent
  // invalidation (for the other node's transaction) is honoured.
  {
    std::vector<TermPtr> branches;
    branches.push_back(
        prefix(g("RQM"),
               prefix(g("GRM"), prefix(g("WRD"), call(name, {lit(2)})))));
    branches.push_back(guard(evar("s") == lit(1),
                             prefix(g("INV"), call(want_m, {lit(0)}))));
    p.define(want_m, {"s"}, choice(std::move(branches)));
  }

  // Waiting to complete a flush; invalidations and writebacks are honoured
  // (an invalidation even saves the eviction notice).
  {
    std::vector<TermPtr> branches;
    branches.push_back(
        guard(evar("s") >= lit(1),
              prefix(g("EV"), prefix(g("FLD"), call(name, {lit(0)})))));
    branches.push_back(guard(evar("s") == lit(0),
                             prefix(g("FLD"), call(name, {lit(0)}))));
    branches.push_back(guard(evar("s") >= lit(1),
                             prefix(g("INV"), call(flushing, {lit(0)}))));
    branches.push_back(guard(evar("s") >= lit(2),
                             prefix(g("WB"), call(flushing, {lit(1)}))));
    p.define(flushing, {"s"}, choice(std::move(branches)));
  }
}

/// The directory serialises transactions.  p0/p1 mirror the cache states.
void define_directory(Program& p, const std::string& line,
                      Protocol protocol) {
  const std::string name = "Dir_" + line;
  const auto g = [&](const char* base, int node) {
    return line_gate(base, node, line);
  };

  std::vector<TermPtr> branches;
  for (int i = 0; i < 2; ++i) {
    const int j = 1 - i;
    const std::string pi = "p" + std::to_string(i);
    const std::string pj = "p" + std::to_string(j);
    const auto next = [&](ExprPtr vi, ExprPtr vj) {
      std::vector<ExprPtr> args(2);
      args[static_cast<std::size_t>(i)] = std::move(vi);
      args[static_cast<std::size_t>(j)] = std::move(vj);
      return call(name, std::move(args));
    };

    // Read miss from i, other node owns the line: downgrade first.
    branches.push_back(guard(
        evar(pj) >= lit(2),
        prefix(g("RQS", i),
               prefix(g("WB", j),
                      prefix(g("GRS", i), {emit(lit(1))},
                             next(lit(1), lit(1)))))));
    // Read miss from i, other node has no copy: MESI grants Exclusive.
    const Value grant_alone = protocol == Protocol::kMesi ? 3 : 1;
    branches.push_back(guard(
        evar(pj) == lit(0),
        prefix(g("RQS", i),
               prefix(g("GRS", i), {emit(lit(grant_alone))},
                      next(lit(grant_alone), lit(0))))));
    // Read miss from i, other node shares: grant Shared.
    branches.push_back(guard(
        evar(pj) == lit(1),
        prefix(g("RQS", i),
               prefix(g("GRS", i), {emit(lit(1))}, next(lit(1), lit(1))))));
    // Write miss / upgrade from i: invalidate the other copy first.
    branches.push_back(guard(
        evar(pj) >= lit(1),
        prefix(g("RQM", i),
               prefix(g("INV", j),
                      prefix(g("GRM", i), next(lit(2), lit(0)))))));
    branches.push_back(guard(
        evar(pj) == lit(0),
        prefix(g("RQM", i), prefix(g("GRM", i), next(lit(2), lit(0))))));
    // Eviction notice from i.
    branches.push_back(guard(evar(pi) >= lit(1),
                             prefix(g("EV", i), next(lit(0), evar(pj)))));
  }
  p.define(name, {"p0", "p1"}, choice(std::move(branches)));
}

}  // namespace

std::string add_coherent_line(proc::Program& program, const std::string& line,
                              Protocol protocol) {
  define_cache(program, line, 0);
  define_cache(program, line, 1);
  define_directory(program, line, protocol);
  const std::string entry = "Line_" + line;
  program.define(
      entry, {},
      par(interleaving(call("Cache0_" + line, {lit(0)}),
                       call("Cache1_" + line, {lit(0)})),
          transaction_gates(line), call("Dir_" + line, {lit(0), lit(0)})));
  return entry;
}

std::string add_swmr_observer(proc::Program& program, const std::string& line,
                              Protocol protocol) {
  (void)protocol;  // the observer checks the same invariant for both
  const std::string name = "Obs_" + line;
  const std::string err = "ERR_" + line;

  std::vector<TermPtr> branches;
  for (int i = 0; i < 2; ++i) {
    const int j = 1 - i;
    const std::string oi = "o" + std::to_string(i);
    const std::string oj = "o" + std::to_string(j);
    const auto g = [&](const char* base) { return line_gate(base, i, line); };
    const auto next = [&](ExprPtr vi, ExprPtr vj) {
      std::vector<ExprPtr> args(2);
      args[static_cast<std::size_t>(i)] = std::move(vi);
      args[static_cast<std::size_t>(j)] = std::move(vj);
      return call(name, std::move(args));
    };
    const auto keep = [&]() { return next(evar(oi), evar(oj)); };

    // Shared grant: legal unless the other node owns the line.
    branches.push_back(
        prefix(g("GRS"), {accept("ns", 1, 3)},
               choice({guard(evar(oj) >= lit(2) ||
                                 (evar("ns") == lit(3) && evar(oj) != lit(0)),
                             prefix(err, stop())),
                       guard(!(evar(oj) >= lit(2) ||
                               (evar("ns") == lit(3) && evar(oj) != lit(0))),
                             next(evar("ns"), evar(oj)))})));
    // Modified grant: the other node must hold no copy (it was invalidated).
    branches.push_back(prefix(
        g("GRM"), choice({guard(evar(oj) != lit(0), prefix(err, stop())),
                          guard(evar(oj) == lit(0), next(lit(2), evar(oj)))})));
    branches.push_back(prefix(g("INV"), next(lit(0), evar(oj))));
    branches.push_back(prefix(g("WB"), next(lit(1), evar(oj))));
    // Local operations must be backed by a sufficient copy.
    branches.push_back(prefix(
        g("RDD"), choice({guard(evar(oi) == lit(0), prefix(err, stop())),
                          guard(evar(oi) != lit(0), keep())})));
    branches.push_back(prefix(
        g("WRD"), choice({guard(evar(oi) < lit(2), prefix(err, stop())),
                          guard(evar(oi) >= lit(2), next(lit(2), evar(oj)))})));
    branches.push_back(prefix(g("EV"), next(lit(0), evar(oj))));
    // Transparent for the remaining watched gates.
    branches.push_back(prefix(g("RD"), keep()));
    branches.push_back(prefix(g("WR"), keep()));
    branches.push_back(prefix(g("FL"), keep()));
    branches.push_back(prefix(g("FLD"), keep()));
    branches.push_back(prefix(g("RQS"), keep()));
    branches.push_back(prefix(g("RQM"), keep()));
  }
  program.define(name, {"o0", "o1"}, choice(std::move(branches)));
  return name;
}

proc::Program coherence_system_program(Protocol protocol) {
  Program p;
  const std::string line = "M";
  const std::string sys = add_coherent_line(p, line, protocol);
  const std::string obs = add_swmr_observer(p, line, protocol);

  // Free drivers: each node keeps issuing reads and writes.
  for (int i = 0; i < 2; ++i) {
    const std::string name = "Driver" + std::to_string(i);
    p.define(name, {},
             choice({prefix(line_gate("RD", i, line),
                            prefix(line_gate("RDD", i, line), call(name))),
                     prefix(line_gate("WR", i, line),
                            prefix(line_gate("WRD", i, line), call(name))),
                     prefix(line_gate("FL", i, line),
                            prefix(line_gate("FLD", i, line), call(name)))}));
  }

  std::vector<std::string> watched = transaction_gates(line);
  for (const std::string& g : operation_gates(line)) {
    watched.push_back(g);
  }
  p.define("System", {},
           par(par(call(sys), operation_gates(line),
                   interleaving(call("Driver0"), call("Driver1"))),
               watched, call(obs, {lit(0), lit(0)})));
  return p;
}

lts::Lts coherence_system_lts(Protocol protocol) {
  const Program p = coherence_system_program(protocol);
  return core::timed_generation(
      std::string("fame: coherence system (") + to_string(protocol) + ")",
      [&] { return lts::trim(generate(p, "System")).lts; });
}

}  // namespace multival::fame
