// Interconnect topology models for FAME2: the same coherence protocol runs
// over different fabrics, which show up as different transaction rates.
// The paper's claim is that the flow predicts MPI latency across
// *different topologies*; the three models below order as
// crossbar (fastest) < ring < bus (slowest, shared medium).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace multival::fame {

enum class Topology { kBus, kRing, kCrossbar };

[[nodiscard]] const char* to_string(Topology t);

/// Rate assignment for the transaction gates of the given lines.
/// @p base_rate scales everything (1/base_rate = one bus transfer time).
///  - bus:      every message pays the shared-medium arbitration: rate 1x,
///  - ring:     requests/grants 1.5x; third-party messages (INV/WB) travel
///              an extra hop: 1x,
///  - crossbar: dedicated paths: 3x for everything.
/// Driver-local operation gates (RD/RDD/WR/WRD) are cache-speed: 20x.
[[nodiscard]] std::map<std::string, double> topology_rates(
    Topology t, const std::vector<std::string>& lines, double base_rate = 1.0);

}  // namespace multival::fame
