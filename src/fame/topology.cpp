#include "fame/topology.hpp"

#include <stdexcept>

#include "fame/coherence.hpp"

namespace multival::fame {

const char* to_string(Topology t) {
  switch (t) {
    case Topology::kBus:
      return "bus";
    case Topology::kRing:
      return "ring";
    case Topology::kCrossbar:
      return "crossbar";
  }
  return "?";
}

std::map<std::string, double> topology_rates(
    Topology t, const std::vector<std::string>& lines, double base_rate) {
  if (!(base_rate > 0.0)) {
    throw std::invalid_argument("topology_rates: base_rate must be > 0");
  }
  double request = 0.0;
  double third_party = 0.0;
  switch (t) {
    case Topology::kBus:
      request = 1.0;
      third_party = 1.0;
      break;
    case Topology::kRing:
      request = 1.5;
      third_party = 1.0;
      break;
    case Topology::kCrossbar:
      request = 3.0;
      third_party = 3.0;
      break;
  }
  std::map<std::string, double> rates;
  for (const std::string& line : lines) {
    for (int i = 0; i < 2; ++i) {
      for (const char* base : {"RQS", "GRS", "RQM", "GRM"}) {
        rates[line_gate(base, i, line)] = request * base_rate;
      }
      for (const char* base : {"INV", "WB", "EV"}) {
        rates[line_gate(base, i, line)] = third_party * base_rate;
      }
      for (const char* base : {"RD", "RDD", "WR", "WRD", "FL", "FLD"}) {
        rates[line_gate(base, i, line)] = 20.0 * base_rate;
      }
    }
  }
  return rates;
}

}  // namespace multival::fame
