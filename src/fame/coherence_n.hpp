// N-node generalisation of the FAME2 coherence model (2 <= N <= 4): the
// directory tracks one state per node and serialises transactions,
// invalidating every other sharer (one INV message each) before granting
// ownership.  The 2-node model in coherence.hpp is kept as the workhorse
// for the MPI benchmarks; this module scales the *verification* story to
// the multi-node CC-NUMA configurations FAME2 actually shipped with.
//
// Gate conventions match coherence.hpp (RD<i>_<line>, RQS<i>_<line>, ...).
#pragma once

#include <string>

#include "compose/plan.hpp"
#include "fame/coherence.hpp"
#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::fame {

/// Adds caches 0..n-1 and the n-node directory for one line; entry process
/// "LineN_<line>".  Returns the entry name.
[[nodiscard]] std::string add_coherent_line_n(proc::Program& program,
                                              const std::string& line,
                                              Protocol protocol, int nodes);

/// Closed verification system as a process program: one line, free
/// read/write/flush drivers on all @p nodes, plus an SWMR observer raising
/// ERR_<line>.  Entry process "SystemN".
[[nodiscard]] proc::Program coherence_system_n_program(Protocol protocol,
                                                      int nodes);

/// LTS of coherence_system_n_program; generation time is recorded in
/// core::report's generation log.  The default strategy plans the
/// composition (generate–minimise–compose) and returns the canonical
/// minimal LTS; Strategy::kFlat is the legacy monolithic generation
/// (trimmed, unminimised).
[[nodiscard]] lts::Lts coherence_system_n_lts(
    Protocol protocol, int nodes,
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

}  // namespace multival::fame
