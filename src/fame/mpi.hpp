// MPI software layer over the FAME2 coherent memory, and the ping-pong
// benchmark whose latency the paper predicts "in different topologies,
// different software implementations of the MPI primitives, and different
// cache coherency protocols".
//
// Message transfer is modelled at the coherence level:
//  - eager:      the sender writes payload+flag into the receiver's mailbox
//                line (one write), the receiver reads it (one read);
//  - rendezvous: request write / ack read+write / data write+read — three
//                mailbox round-trips per message.
// After each receive the receiver unpacks into a freshly recycled local
// buffer (flush + cold read + write on its private scratch line) — the
// access pattern on which MESI's Exclusive state saves an upgrade
// transaction over MSI.
#pragma once

#include "compose/plan.hpp"
#include "fame/coherence.hpp"
#include "fame/topology.hpp"
#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::fame {

enum class MpiImpl { kEager, kRendezvous };

[[nodiscard]] const char* to_string(MpiImpl i);

struct PingPongConfig {
  Protocol protocol = Protocol::kMsi;
  Topology topology = Topology::kBus;
  MpiImpl impl = MpiImpl::kEager;
  int rounds = 2;          ///< ping-pong rounds executed before stopping
  double base_rate = 1.0;  ///< interconnect speed scale
};

/// Process program of the ping-pong scenario (entry "PingPong": mailbox
/// line "M", scratch lines "S0"/"S1"); terminates after config.rounds.
[[nodiscard]] proc::Program pingpong_program(const PingPongConfig& config);

/// Functional LTS of the ping-pong scenario (mailbox line "M", scratch
/// lines "S0"/"S1", token gates hidden); terminates after config.rounds.
/// The default strategy plans the composition and returns the canonical
/// minimal LTS; Strategy::kFlat is the legacy monolithic generation.
[[nodiscard]] lts::Lts pingpong_lts(
    const PingPongConfig& config,
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

struct PingPongResult {
  double total_time = 0.0;     ///< expected time for all rounds
  double round_latency = 0.0;  ///< total_time / rounds
  double p95_total = 0.0;      ///< 95th percentile of the total time
  std::size_t ctmc_states = 0;
};

/// Expected ping-pong latency through the IMC flow: decorate the scenario
/// with topology rates, close, and compute the expected absorption time.
[[nodiscard]] PingPongResult pingpong_latency(const PingPongConfig& config);

/// MPI barrier benchmark: each node writes its own flag line, both
/// synchronise, then each reads the other's flag — two concurrent
/// coherence transactions per round (unlike the serialised ping-pong).
struct BarrierConfig {
  Protocol protocol = Protocol::kMsi;
  Topology topology = Topology::kBus;
  int rounds = 2;
  double base_rate = 1.0;
};

/// Functional LTS of the barrier scenario (flag lines "F0"/"F1").
[[nodiscard]] lts::Lts barrier_lts(const BarrierConfig& config);

struct BarrierResult {
  double total_time = 0.0;
  double round_latency = 0.0;
  std::size_t ctmc_states = 0;
};

[[nodiscard]] BarrierResult barrier_latency(const BarrierConfig& config);

}  // namespace multival::fame
