// FAME2 case study (Bull): CC-NUMA cache coherency.
//
// We model one cache line kept coherent across two nodes by a directory
// controller, with atomic (serialised) transactions — the abstraction level
// of the FAME2 protocol-circuit models mentioned in the paper.  Two
// protocols are supported:
//   MSI  — read misses are always granted Shared,
//   MESI — a read miss with no other sharer is granted Exclusive, making
//          the subsequent write silent (no directory transaction).
//
// Per-line gates (suffix "_<line>", node index <i> in {0,1}):
//   RD<i>/RDD<i>    — driver requests / completes a read
//   WR<i>/WRD<i>    — driver requests / completes a write
//   RQS<i>, GRS<i>  — read-miss transaction (grant carries the new state:
//                     1 = Shared, 3 = Exclusive)
//   RQM<i>, GRM<i>  — write-miss / upgrade transaction
//   INV<i>          — directory invalidates node i's copy
//   WB<i>           — directory downgrades the owner to Shared
//   FL<i>/FLD<i>    — driver flushes (recycles) its buffer copy
//   EV<i>           — eviction notice to the directory
//   ERR             — raised by the SWMR observer on a coherence violation
//
// Cache states: 0 = Invalid, 1 = Shared, 2 = Modified, 3 = Exclusive.
#pragma once

#include <string>
#include <vector>

#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::fame {

enum class Protocol { kMsi, kMesi };

[[nodiscard]] const char* to_string(Protocol p);

/// Gate name helpers ("RD0_M", "RQS1_M", ...).
[[nodiscard]] std::string line_gate(const std::string& base, int node,
                                    const std::string& line);

/// All directory-transaction gates of @p line (these carry the interconnect
/// cost and get topology-dependent rates).
[[nodiscard]] std::vector<std::string> transaction_gates(
    const std::string& line);

/// All driver-facing operation gates of @p line.
[[nodiscard]] std::vector<std::string> operation_gates(const std::string& line);

/// Adds the two caches and the directory of one coherent line to
/// @p program; entry process "Line_<line>" (caches ||| caches |[tx]| dir).
/// Returns the entry name.
[[nodiscard]] std::string add_coherent_line(proc::Program& program,
                                            const std::string& line,
                                            Protocol protocol);

/// Adds the SWMR observer of @p line: a transparent process watching grant,
/// invalidate, writeback and operation gates, raising ERR_<line> on any
/// single-writer-multiple-reader violation.  Returns the entry name.
[[nodiscard]] std::string add_swmr_observer(proc::Program& program,
                                            const std::string& line,
                                            Protocol protocol);

/// Closed verification system as a process program: one line, free
/// read/write drivers on both nodes, observer attached; transaction gates
/// visible.  Entry process "System".  This is what the on-the-fly
/// exploration engine (src/explore) consumes.
[[nodiscard]] proc::Program coherence_system_program(Protocol protocol);

/// Generated LTS of coherence_system_program (trimmed); generation time is
/// recorded in core::report's generation log.
[[nodiscard]] lts::Lts coherence_system_lts(Protocol protocol);

}  // namespace multival::fame
