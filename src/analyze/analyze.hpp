// Compositional static analysis ("model lint") over process-calculus
// programs and IMC inputs — the pre-flight layer of the flow.
//
// Everything here runs in time polynomial in the *syntax* of the model
// (respectively linear in the transitions of an already-built IMC) and
// never constructs a state space: the whole point is to catch design
// errors before a potentially exponential generation or a wasted solver
// run, the way CADP's static checkers front-load CAESAR.
//
// The analysis is built on one lattice: per-definition action alphabets,
// elements of the powerset of gate names ordered by inclusion, computed as
// the least fixed point of the (monotone) syntactic transfer functions of
// the operators.  alpha(P) *over-approximates* the set of visible gates P
// can ever perform, so "g not in alpha(P)" soundly proves that g can never
// fire — the direction every never-firing-gate verdict below relies on.
//
// Checks (stable codes; see README for the reference table):
//   MV001 error    reference to an undefined process
//   MV002 error    process call arity mismatch
//   MV003 error    sync gate that can never fire, and every initial action
//                  of the offering operand needs such a gate: the component
//                  is stuck from its initial state (structural deadlock)
//   MV004 advice   sync gate that can never fire, operand not provably
//                  stuck (restriction idiom; possibly intentional)
//   MV005 warning  sync-set gate never performed by either operand
//   MV006 warning  dead choice branch (guard constantly false)
//   MV007 warning  hide/rename of a gate the operand never performs
//   MV008 error    synchronisation on a gate hidden inside an operand
//   MV009 error    unbound value variable
//   MV010 error    malformed model text (wraps parse failures)
//   MV011 warning  Markovian delay racing unresolved nondeterminism
//   MV012 warning  Markovian delay cut by maximal progress (dead rate)
//   MV013 advice   residual interactive nondeterminism (scheduler bounds)
//   MV020 advice   fixed-delay phase-type approximation advisory
//   MV021 advice   hide-placement: a hidden gate local to one operand of a
//                  composition could be hidden below it (smaller products)
//   MV030 error    xMAS netlist structural error (dangling or doubly-driven
//                  port, bad attribute, unknown channel endpoint)
//   MV031 error    xMAS join input on a token-free cycle: no initial token
//                  and no path from a source can ever reach it, so the join
//                  (and everything behind it) is structurally deadlocked
//   MV032 warning  xMAS fork feeding both inputs of one join through paths
//                  of unequal queue capacity (the classic overflow/deadlock
//                  idiom: the deeper path fills while the shallower blocks)
//   MV033 warning  xMAS merge input that can never carry a token because a
//                  constant switch predicate upstream kills its only feed
//                  (merge starvation; the arbiter degenerates)
//   MV040 advice   predicted state-space bound report (interval abstract
//                  interpretation; see analyze/bounds.hpp)
//   MV041 err/warn a process parameter grows without bound along a recursion
//                  (error when provably unguarded and unthrottled)
//   MV042 advice   a parallel component's predicted bound exceeds the given
//                  budget (names the operand to split)
//
// Soundness directions: MV001/002/005/007/008/009 are exact (syntactic);
// MV003/MV004's "never fires" part is sound (alphabet over-approximation),
// and the error severity additionally requires a proof that the offering
// component cannot take ANY first action (every initial path needs a
// never-firing gate) — occurrences behind other prefixes may be unreachable
// for value/reachability reasons the lattice cannot see, so they only ever
// downgrade to advice; MV006 only folds closed constant guards (no false
// positives); MV011-013 are exact on the given IMC.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/diag.hpp"
#include "imc/imc.hpp"
#include "proc/process.hpp"
#include "xmas/netlist.hpp"

namespace multival::analyze {

using GateSet = std::set<std::string>;

/// Work counters of one lint pass.  states_generated is structurally zero —
/// the analyzer has no path into proc::generate or the explore engine —
/// and is carried explicitly so callers (tests, bench_analyze) can assert
/// the "no state-space generation" contract.
struct AnalysisStats {
  std::size_t definitions = 0;
  std::size_t terms_visited = 0;     ///< syntax nodes walked by the checks
  std::size_t fixpoint_passes = 0;   ///< Kleene iterations over all defs
  std::size_t states_generated = 0;  ///< always 0: lint never explores
  double seconds = 0.0;
};

struct Analysis {
  std::vector<core::Diagnostic> diagnostics;
  AnalysisStats stats;

  [[nodiscard]] bool clean() const {
    return !core::has_errors(diagnostics);
  }
  [[nodiscard]] std::size_t count(core::Severity s) const;
  /// "2 errors, 1 warning, 0 advisories (5 defs, 42 terms, 3 passes)".
  [[nodiscard]] std::string summary() const;
};

/// Per-definition over-approximate action alphabets, least fixed point over
/// the (possibly mutually recursive) definitions of @p program.
[[nodiscard]] std::map<std::string, GateSet> alphabets(
    const proc::Program& program);

/// Over-approximate alphabet of an arbitrary subterm under the fixed point
/// @p defs (as returned by alphabets()).  This is the stable entry point the
/// compositional planner (compose/plan) scores composition orders with —
/// one syntactic transfer-function application, no state-space contact.
[[nodiscard]] GateSet term_alphabet(const proc::TermPtr& t,
                                    const std::map<std::string, GateSet>& defs);

/// Lints every definition of @p program, plus (when non-null) the anonymous
/// root term @p root — typically the entry call an exploration would start
/// from, so unbound-entry errors surface here too.
[[nodiscard]] Analysis lint_program(const proc::Program& program,
                                    const proc::TermPtr& root = nullptr);

/// Lints an IMC: nondeterministic-delay races, maximal-progress-dead rates,
/// residual nondeterminism (MV011/MV012/MV013).
[[nodiscard]] Analysis lint_imc(const imc::Imc& m);

/// Lints an xMAS netlist on pure structure: Netlist::check()'s MV030
/// well-formedness errors, then — on well-formed netlists only — the
/// deadlock-idiom checks MV031 (join input on a token-free cycle, via a
/// least fixed point of "this channel can ever carry a token"), MV032
/// (fork->join reconvergence through unequal queue capacity) and MV033
/// (merge starvation under constant switch predicates).  Zero states
/// generated, like every other check here; MV031's carriability fixed point
/// is sound (a non-carriable join input really never fires), the
/// warning-severity idioms are heuristic.
[[nodiscard]] Analysis lint_netlist(const xmas::Netlist& n);

/// MV020: the Erlang order k needed to approximate a deterministic delay
/// @p delay within relative Wasserstein-1 error @p rel_error (0 < e < 1),
/// and its state-space cost.  Uses the asymptotic k ~ 2/(pi e^2) law and
/// refines against phase::evaluate_fixed_delay_fit for small orders.
[[nodiscard]] core::Diagnostic fixed_delay_advisory(double delay,
                                                    double rel_error);

/// Thrown by the pre-flight gates (explore generation, the evaluation
/// service) when a model has error-severity findings.  what() carries the
/// rendered diagnostics.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(std::vector<core::Diagnostic> diagnostics);
  [[nodiscard]] const std::vector<core::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<core::Diagnostic> diagnostics_;
};

/// Pre-flight gate: lints and throws ModelError on error-severity findings
/// (warnings and advice never block).
void require_well_formed(const proc::Program& program,
                         const proc::TermPtr& root = nullptr);

}  // namespace multival::analyze
