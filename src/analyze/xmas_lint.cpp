// MV03x: structural deadlock-idiom lint over xMAS netlists.
//
// All three idiom checks run on the wiring graph alone — no process terms,
// no state space (stats.states_generated stays 0 by construction):
//
//   MV031  a least fixed point of "channel c can ever carry a token":
//            source.out        carries
//            queue.out         carries iff init > 0 or queue.in carries
//            function/fork.out carries iff .in carries
//            join.out          carries iff BOTH .in0 and .in1 carry
//            merge.out         carries iff EITHER input carries
//            switch.out0/.out1 per the predicate (a constant predicate
//                              kills the other side)
//          Monotone on the powerset of channels, so the fixed point is the
//          exact set of channels with any token supply; a join input
//          outside it can never fire — error, the fabric is structurally
//          deadlocked at that join.
//   MV032  both outputs of one fork reach the two inputs of one join via
//          linear paths (queues/functions only) whose queue capacities
//          differ — the unequal-buffer reconvergence idiom (warning).
//   MV033  a merge input outside the carriability fixed point: the arbiter
//          degenerates to a wire (warning; typically a constant switch
//          predicate upstream).
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "xmas/netlist.hpp"

namespace multival::analyze {
namespace {

using xmas::Element;
using xmas::Netlist;
using xmas::PrimitiveKind;

core::Diagnostic idiom(std::string code, core::Severity sev, std::string msg,
                       std::string path, std::string hint) {
  core::Diagnostic d;
  d.code = std::move(code);
  d.severity = sev;
  d.message = std::move(msg);
  d.path = std::move(path);
  d.hint = std::move(hint);
  return d;
}

/// Follows a channel forward through linear elements (queue, function)
/// only, summing queue capacities, until it hits a join input (returned) or
/// anything else (nullopt).
struct JoinArrival {
  const Element* join = nullptr;
  std::size_t input = 0;   ///< 0 or 1
  int capacity = 0;        ///< queue places along the path
};

std::optional<JoinArrival> follow_to_join(const Netlist& n,
                                          std::size_t channel) {
  int capacity = 0;
  for (std::size_t hops = 0; hops <= n.elements().size(); ++hops) {
    const auto& target = n.channels()[channel].target;
    const Element* e = n.find(target.element);
    if (e == nullptr) return std::nullopt;
    if (e->kind == PrimitiveKind::kJoin) {
      JoinArrival a;
      a.join = e;
      a.input = target.port == e->input_port(1) ? 1 : 0;
      a.capacity = capacity;
      return a;
    }
    if (e->kind == PrimitiveKind::kQueue) {
      capacity += e->capacity;
      channel = n.output_channel(*e, 0);
    } else if (e->kind == PrimitiveKind::kFunction) {
      channel = n.output_channel(*e, 0);
    } else {
      return std::nullopt;  // fork/switch/merge/sink end the linear path
    }
  }
  return std::nullopt;  // cycle without a join
}

}  // namespace

Analysis lint_netlist(const Netlist& n) {
  auto start = std::chrono::steady_clock::now();
  Analysis out;
  out.stats.definitions = n.elements().size();
  out.stats.terms_visited = n.elements().size() + n.channels().size();

  out.diagnostics = n.check();  // MV030
  if (!core::has_errors(out.diagnostics)) {
    // Structure is sound; the idiom checks may dereference ports freely.
    std::vector<bool> carry =
        xmas::carriable_channels(n, &out.stats.fixpoint_passes);

    for (const Element& e : n.elements()) {
      const std::string path = n.name + "/" + e.name;
      if (e.kind == PrimitiveKind::kJoin) {
        for (std::size_t i = 0; i < 2; ++i) {
          if (!carry[n.input_channel(e, i)]) {
            out.diagnostics.push_back(idiom(
                "MV031", core::Severity::kError,
                "join input " + e.name + "." + e.input_port(i) +
                    " can never carry a token (it lies on a token-free "
                    "cycle, or nothing feeds it): the join is structurally "
                    "deadlocked",
                path,
                "seed a queue on the starved path with init tokens, or "
                "route a source into it"));
          }
        }
      } else if (e.kind == PrimitiveKind::kMerge) {
        for (std::size_t i = 0; i < 2; ++i) {
          if (!carry[n.input_channel(e, i)]) {
            out.diagnostics.push_back(idiom(
                "MV033", core::Severity::kWarning,
                "merge input " + e.name + "." + e.input_port(i) +
                    " can never carry a token (a constant switch predicate "
                    "or an empty feed upstream starves it): the arbiter "
                    "degenerates to a wire",
                path,
                "drop the merge, or make the upstream switch predicate "
                "data-dependent"));
          }
        }
      } else if (e.kind == PrimitiveKind::kFork) {
        auto a0 = follow_to_join(n, n.output_channel(e, 0));
        auto a1 = follow_to_join(n, n.output_channel(e, 1));
        if (a0 && a1 && a0->join == a1->join && a0->input != a1->input &&
            a0->capacity != a1->capacity) {
          out.diagnostics.push_back(idiom(
              "MV032", core::Severity::kWarning,
              "fork " + e.name + " feeds both inputs of join " +
                  a0->join->name +
                  " through unequal queue capacity (" +
                  std::to_string(a0->capacity) + " vs " +
                  std::to_string(a1->capacity) +
                  "): the deeper path can fill while the shallower blocks",
              path, "equalise the path capacities"));
        }
      }
    }
  }

  out.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace multival::analyze
