#include "analyze/bounds.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "proc/expr.hpp"
#include "xmas/compile.hpp"

namespace multival::analyze {

// ---- saturating count arithmetic --------------------------------------------

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  if (a == kUnboundedStates || b == kUnboundedStates) {
    return kUnboundedStates;
  }
  std::uint64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return kUnboundedStates;
  }
  return r;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a == kUnboundedStates || b == kUnboundedStates) {
    return kUnboundedStates;
  }
  std::uint64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    return kUnboundedStates;
  }
  return r;
}

std::string format_states(std::uint64_t n) {
  return n == kUnboundedStates ? "unbounded" : std::to_string(n);
}

// ---- intervals ---------------------------------------------------------------

std::uint64_t Interval::width() const {
  if (lo == kNegInf || hi == kPosInf) {
    return kUnboundedStates;
  }
  if (lo > hi) {
    return 0;
  }
  return (static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo)) + 1;
}

std::string Interval::to_string() const {
  std::string out = lo == kNegInf ? "(-inf" : "[" + std::to_string(lo);
  out += ", ";
  out += hi == kPosInf ? "+inf)" : std::to_string(hi) + "]";
  return out;
}

namespace {

using proc::BinaryOp;
using proc::Expr;
using proc::ExprPtr;
using proc::Term;
using proc::TermPtr;
using proc::UnaryOp;

constexpr std::int64_t kNegInf = Interval::kNegInf;
constexpr std::int64_t kPosInf = Interval::kPosInf;

// Saturating int64 endpoint arithmetic.  Invariant throughout: a lower
// endpoint is kNegInf or finite, an upper endpoint kPosInf or finite, so
// the sentinel cases below never see +inf and -inf competing for the same
// endpoint.
std::int64_t sat_add64(std::int64_t a, std::int64_t b) {
  if (a == kPosInf || b == kPosInf) {
    return kPosInf;
  }
  if (a == kNegInf || b == kNegInf) {
    return kNegInf;
  }
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return a > 0 ? kPosInf : kNegInf;
  }
  return r;
}

std::int64_t sat_sub64(std::int64_t a, std::int64_t b) {
  if (a == kPosInf || b == kNegInf) {
    return kPosInf;
  }
  if (a == kNegInf || b == kPosInf) {
    return kNegInf;
  }
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    return a > b ? kPosInf : kNegInf;
  }
  return r;
}

std::int64_t neg64(std::int64_t v) {
  if (v == kPosInf) {
    return kNegInf;
  }
  if (v == kNegInf) {
    return kPosInf;
  }
  return -v;
}

Interval iv_add(const Interval& a, const Interval& b) {
  return {sat_add64(a.lo, b.lo), sat_add64(a.hi, b.hi)};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  return {sat_sub64(a.lo, b.hi), sat_sub64(a.hi, b.lo)};
}

Interval iv_neg(const Interval& a) { return {neg64(a.hi), neg64(a.lo)}; }

std::int64_t clamp128(__int128 v) {
  if (v >= static_cast<__int128>(kPosInf)) {
    return kPosInf;
  }
  if (v <= static_cast<__int128>(kNegInf)) {
    return kNegInf;
  }
  return static_cast<std::int64_t>(v);
}

Interval iv_mul(const Interval& a, const Interval& b) {
  if (!a.bounded() || !b.bounded()) {
    return Interval::top();
  }
  const __int128 p[4] = {
      static_cast<__int128>(a.lo) * b.lo, static_cast<__int128>(a.lo) * b.hi,
      static_cast<__int128>(a.hi) * b.lo, static_cast<__int128>(a.hi) * b.hi};
  return {clamp128(std::min({p[0], p[1], p[2], p[3]})),
          clamp128(std::max({p[0], p[1], p[2], p[3]}))};
}

bool def_zero(const Interval& x) { return x.lo == 0 && x.hi == 0; }
bool def_nonzero(const Interval& x) { return x.lo > 0 || x.hi < 0; }

Interval bool_iv(bool def_true, bool def_false) {
  if (def_true) {
    return Interval::exactly(1);
  }
  if (def_false) {
    return Interval::exactly(0);
  }
  return Interval::range(0, 1);
}

bool is_cmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// a op b  <=>  b flip(op) a
BinaryOp flip_cmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

// !(a op b)  <=>  a negate(op) b
BinaryOp negate_cmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    default:
      return BinaryOp::kEq;  // kNe
  }
}

Interval cmp_iv(BinaryOp op, const Interval& a, const Interval& b) {
  switch (op) {
    case BinaryOp::kEq:
      return bool_iv(a.bounded() && b.bounded() && a.lo == a.hi &&
                         b.lo == b.hi && a.lo == b.lo,
                     a.hi < b.lo || b.hi < a.lo);
    case BinaryOp::kNe:
      return bool_iv(a.hi < b.lo || b.hi < a.lo,
                     a.bounded() && b.bounded() && a.lo == a.hi &&
                         b.lo == b.hi && a.lo == b.lo);
    case BinaryOp::kLt:
      return bool_iv(a.hi < b.lo, a.lo >= b.hi);
    case BinaryOp::kLe:
      return bool_iv(a.hi != kPosInf && a.hi <= b.lo,
                     b.hi != kPosInf && a.lo > b.hi);
    case BinaryOp::kGt:
      return bool_iv(a.lo > b.hi, a.hi <= b.lo);
    case BinaryOp::kGe:
      return bool_iv(b.hi != kPosInf && a.lo >= b.hi,
                     a.hi != kPosInf && a.hi < b.lo);
    default:
      return Interval::range(0, 1);
  }
}

// ---- abstract expression evaluation -----------------------------------------

using AbsEnv = std::map<std::string, Interval>;

Interval aeval(const Expr* e, const AbsEnv& env) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return Interval::exactly(e->constant());
    case Expr::Kind::kVar: {
      const auto it = env.find(e->var_name());
      return it == env.end() ? Interval::top() : it->second;
    }
    case Expr::Kind::kUnary: {
      const Interval a = aeval(e->lhs().get(), env);
      if (e->unary_op() == UnaryOp::kNeg) {
        return iv_neg(a);
      }
      return bool_iv(def_zero(a), def_nonzero(a));
    }
    case Expr::Kind::kBinary: {
      const Interval a = aeval(e->lhs().get(), env);
      const Interval b = aeval(e->rhs().get(), env);
      const BinaryOp op = e->binary_op();
      if (is_cmp(op)) {
        return cmp_iv(op, a, b);
      }
      switch (op) {
        case BinaryOp::kAdd:
          return iv_add(a, b);
        case BinaryOp::kSub:
          return iv_sub(a, b);
        case BinaryOp::kMul:
          return iv_mul(a, b);
        case BinaryOp::kDiv:
          return Interval::top();
        case BinaryOp::kMod: {
          if (b.lo == b.hi && b.lo > 0 && b.lo != kPosInf) {
            const std::int64_t c = b.lo - 1;
            return a.lo >= 0 ? Interval::range(0, c) : Interval::range(-c, c);
          }
          return Interval::top();
        }
        case BinaryOp::kAnd:
          return bool_iv(def_nonzero(a) && def_nonzero(b),
                         def_zero(a) || def_zero(b));
        case BinaryOp::kOr:
          return bool_iv(def_nonzero(a) || def_nonzero(b),
                         def_zero(a) && def_zero(b));
        case BinaryOp::kMin:
          return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
        case BinaryOp::kMax:
          return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
        default:
          return Interval::top();
      }
    }
  }
  return Interval::top();
}

// ---- guard refinement --------------------------------------------------------

// Narrows env[v] against `v op b`; false when the intersection is empty.
bool narrow_var(AbsEnv& env, const std::string& v, BinaryOp op,
                const Interval& b) {
  const auto it = env.find(v);
  Interval x = it == env.end() ? Interval::top() : it->second;
  switch (op) {
    case BinaryOp::kLt:
      if (b.hi != kPosInf) {
        x.hi = std::min(x.hi, b.hi - 1);
      }
      break;
    case BinaryOp::kLe:
      x.hi = std::min(x.hi, b.hi);
      break;
    case BinaryOp::kGt:
      if (b.lo != kNegInf) {
        x.lo = std::max(x.lo, b.lo + 1);
      }
      break;
    case BinaryOp::kGe:
      x.lo = std::max(x.lo, b.lo);
      break;
    case BinaryOp::kEq:
      x.lo = std::max(x.lo, b.lo);
      x.hi = std::min(x.hi, b.hi);
      break;
    case BinaryOp::kNe:
      if (b.lo == b.hi && b.bounded()) {
        if (x.lo == b.lo) {
          x.lo = sat_add64(x.lo, 1);
        }
        if (x.hi == b.lo) {
          x.hi = sat_sub64(x.hi, 1);
        }
      }
      break;
    default:
      break;
  }
  if (x.lo > x.hi) {
    return false;
  }
  env[v] = x;
  return true;
}

bool refine_true(const Expr* e, AbsEnv& env);
bool refine_false(const Expr* e, AbsEnv& env);

bool narrow_cmp(BinaryOp op, const Expr* l, const Expr* r, AbsEnv& env) {
  const Interval a = aeval(l, env);
  const Interval b = aeval(r, env);
  if (def_zero(cmp_iv(op, a, b))) {
    return false;
  }
  if (l->kind() == Expr::Kind::kVar &&
      !narrow_var(env, l->var_name(), op, b)) {
    return false;
  }
  if (r->kind() == Expr::Kind::kVar &&
      !narrow_var(env, r->var_name(), flip_cmp(op), aeval(l, env))) {
    return false;
  }
  return true;
}

bool refine_true(const Expr* e, AbsEnv& env) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e->constant() != 0;
    case Expr::Kind::kVar:
      return narrow_var(env, e->var_name(), BinaryOp::kNe,
                        Interval::exactly(0));
    case Expr::Kind::kUnary:
      if (e->unary_op() == UnaryOp::kNot) {
        return refine_false(e->lhs().get(), env);
      }
      return true;
    case Expr::Kind::kBinary: {
      const BinaryOp op = e->binary_op();
      if (op == BinaryOp::kAnd) {
        return refine_true(e->lhs().get(), env) &&
               refine_true(e->rhs().get(), env);
      }
      if (op == BinaryOp::kOr) {
        const Interval a = aeval(e->lhs().get(), env);
        const Interval b = aeval(e->rhs().get(), env);
        if (def_zero(a) && def_zero(b)) {
          return false;
        }
        if (def_zero(a)) {
          return refine_true(e->rhs().get(), env);
        }
        if (def_zero(b)) {
          return refine_true(e->lhs().get(), env);
        }
        return true;  // either side could hold: no sound narrowing
      }
      if (is_cmp(op)) {
        return narrow_cmp(op, e->lhs().get(), e->rhs().get(), env);
      }
      return !def_zero(aeval(e, env));
    }
  }
  return true;
}

bool refine_false(const Expr* e, AbsEnv& env) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e->constant() == 0;
    case Expr::Kind::kVar:
      return narrow_var(env, e->var_name(), BinaryOp::kEq,
                        Interval::exactly(0));
    case Expr::Kind::kUnary:
      if (e->unary_op() == UnaryOp::kNot) {
        return refine_true(e->lhs().get(), env);
      }
      return true;
    case Expr::Kind::kBinary: {
      const BinaryOp op = e->binary_op();
      if (is_cmp(op)) {
        return narrow_cmp(negate_cmp(op), e->lhs().get(), e->rhs().get(),
                          env);
      }
      if (op == BinaryOp::kOr) {  // !(a || b) => !a && !b
        return refine_false(e->lhs().get(), env) &&
               refine_false(e->rhs().get(), env);
      }
      if (op == BinaryOp::kAnd) {  // !(a && b): refine when one side is known
        const Interval a = aeval(e->lhs().get(), env);
        const Interval b = aeval(e->rhs().get(), env);
        if (def_nonzero(a) && def_nonzero(b)) {
          return false;
        }
        if (def_nonzero(a)) {
          return refine_false(e->rhs().get(), env);
        }
        if (def_nonzero(b)) {
          return refine_false(e->lhs().get(), env);
        }
        return true;
      }
      return !def_nonzero(aeval(e, env));
    }
  }
  return true;
}

// Environment refined by assuming @p cond holds; nullopt when the guard is
// definitely infeasible under @p env.
std::optional<AbsEnv> refine(const ExprPtr& cond, const AbsEnv& env) {
  AbsEnv out = env;
  if (cond.get() != nullptr && !refine_true(cond.get(), out)) {
    return std::nullopt;
  }
  return out;
}

std::string gate_key(const GateSet& s) {
  std::string out;
  for (const std::string& g : s) {
    if (!out.empty()) {
      out += ',';
    }
    out += g;
  }
  return out;
}

// ---- phase A: interprocedural interval fixpoint ------------------------------

struct WidenRec {
  std::string param;   // which parameter widened first
  std::string path;    // "caller -> callee (arg expr)"
  bool guarded = false;  // a crossed guard mentions the growing expression
};

class IntervalFixpoint {
 public:
  IntervalFixpoint(const proc::Program& prog, const BoundOptions& opts,
                   AnalysisStats* stats)
      : prog_(prog), opts_(opts), stats_(stats) {}

  void run(const TermPtr& root) {
    bool changed = true;
    while (changed) {
      ++stats_->fixpoint_passes;
      changed = false;
      contribs_.clear();
      caller_ = "<root>";
      walk(root.get(), AbsEnv{}, {});
      std::vector<std::string> names;
      names.reserve(params_.size());
      for (const auto& [name, ivs] : params_) {
        names.push_back(name);
      }
      for (const std::string& name : names) {
        caller_ = name;
        walk(prog_.definition(name).body.get(), def_env(name), {});
      }
      for (const Contribution& c : contribs_) {
        changed = apply(c) || changed;
      }
    }
  }

  [[nodiscard]] const std::map<std::string, std::vector<Interval>>& params()
      const {
    return params_;
  }
  [[nodiscard]] const std::map<std::string, WidenRec>& widened() const {
    return widen_;
  }

  [[nodiscard]] AbsEnv def_env(const std::string& name) const {
    AbsEnv env;
    const auto& d = prog_.definition(name);
    const auto it = params_.find(name);
    for (std::size_t i = 0; i < d.params.size(); ++i) {
      env[d.params[i]] = it != params_.end() && i < it->second.size()
                             ? it->second[i]
                             : Interval::top();
    }
    return env;
  }

 private:
  struct Contribution {
    std::string caller;
    const Term* site = nullptr;
    std::vector<Interval> args;
    std::set<std::string> guard_vars;
  };

  void walk(const Term* t, AbsEnv env, std::set<std::string> guard_vars) {
    ++stats_->terms_visited;
    switch (t->kind()) {
      case Term::Kind::kStop:
      case Term::Kind::kExit:
        return;
      case Term::Kind::kPrefix: {
        for (const proc::Offer& o : t->offers()) {
          if (o.kind == proc::Offer::Kind::kAccept) {
            env[o.var] = Interval::range(o.lo, o.hi);
          }
        }
        walk(t->children()[0].get(), std::move(env), std::move(guard_vars));
        return;
      }
      case Term::Kind::kGuard: {
        auto refined = refine(t->condition(), env);
        if (!refined) {
          return;  // infeasible path contributes nothing
        }
        if (t->condition().get() != nullptr) {
          const auto& fv = t->condition()->free_vars();
          guard_vars.insert(fv.begin(), fv.end());
        }
        walk(t->children()[0].get(), std::move(*refined),
             std::move(guard_vars));
        return;
      }
      case Term::Kind::kChoice:
      case Term::Kind::kSeq:
      case Term::Kind::kPar:
        for (const TermPtr& c : t->children()) {
          walk(c.get(), env, guard_vars);
        }
        return;
      case Term::Kind::kHide:
      case Term::Kind::kRename:
        walk(t->children()[0].get(), std::move(env), std::move(guard_vars));
        return;
      case Term::Kind::kCall: {
        Contribution c;
        c.caller = caller_;
        c.site = t;
        c.guard_vars = std::move(guard_vars);
        c.args.reserve(t->args().size());
        for (const ExprPtr& a : t->args()) {
          c.args.push_back(aeval(a.get(), env));
        }
        contribs_.push_back(std::move(c));
        return;
      }
    }
  }

  bool apply(const Contribution& c) {
    const std::string& callee = c.site->callee();
    if (!prog_.has_definition(callee)) {
      return false;  // MV001 territory
    }
    const auto& d = prog_.definition(callee);
    auto it = params_.find(callee);
    if (it == params_.end()) {
      std::vector<Interval> ivs(d.params.size(), Interval::top());
      for (std::size_t i = 0; i < std::min(ivs.size(), c.args.size()); ++i) {
        ivs[i] = c.args[i];
      }
      params_.emplace(callee, std::move(ivs));
      lo_ticks_[callee].assign(d.params.size(), 0);
      hi_ticks_[callee].assign(d.params.size(), 0);
      return true;
    }
    bool changed = false;
    std::vector<Interval>& cur = it->second;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const Interval arg =
          i < c.args.size() ? c.args[i] : Interval::top();
      Interval nj = cur[i].join(arg);
      if (nj == cur[i]) {
        continue;
      }
      if (nj.lo < cur[i].lo && ++lo_ticks_[callee][i] > opts_.widen_after) {
        nj.lo = kNegInf;
        record_widen(callee, d, i, c);
      }
      if (nj.hi > cur[i].hi && ++hi_ticks_[callee][i] > opts_.widen_after) {
        nj.hi = kPosInf;
        record_widen(callee, d, i, c);
      }
      cur[i] = nj;
      changed = true;
    }
    return changed;
  }

  void record_widen(const std::string& callee,
                    const proc::Program::Definition& d, std::size_t i,
                    const Contribution& c) {
    if (widen_.contains(callee)) {
      return;  // keep the first proof path per definition
    }
    WidenRec rec;
    rec.param = i < d.params.size() ? d.params[i] : "?";
    std::string arg = "?";
    if (i < c.site->args().size()) {
      arg = c.site->args()[i]->to_string();
      for (const std::string& v : c.site->args()[i]->free_vars()) {
        if (c.guard_vars.contains(v)) {
          rec.guarded = true;
        }
      }
    }
    rec.path = c.caller + " -> " + callee + " (" + arg + ")";
    widen_.emplace(callee, std::move(rec));
  }

  const proc::Program& prog_;
  const BoundOptions& opts_;
  AnalysisStats* stats_;
  std::string caller_;
  std::map<std::string, std::vector<Interval>> params_;
  std::map<std::string, std::vector<std::size_t>> lo_ticks_;
  std::map<std::string, std::vector<std::size_t>> hi_ticks_;
  std::map<std::string, WidenRec> widen_;
  std::vector<Contribution> contribs_;
};

// ---- phase B: location x valuation counting ---------------------------------

// Counts (over-approximately) the configurations the generator's lift()
// can intern, mirroring its semantics: guards and calls resolve away,
// stop/exit/prefix/choice are stable leaf locations with environments
// restricted to their free variables, par/hide/rename/seq wrap structurally.
// Recursion is cut with an in-progress marker (a cycle's locations are
// counted at first entry — exact for tail recursion), and per-definition
// results are memoised per blocked-gate set.  Memoisation is SCC-aware: a
// result computed while an enclosing definition of the same recursive
// component was still open is context-dependent and must not be cached, or
// a later independent entry into the component would undercount (unsound).
class Counter {
 public:
  Counter(const proc::Program& prog,
          const std::map<std::string, std::vector<Interval>>& params,
          AnalysisStats* stats)
      : prog_(prog),
        params_(params),
        stats_(stats),
        alpha_(alphabets(prog)) {}

  [[nodiscard]] std::uint64_t count_term(const Term* t, const AbsEnv& env,
                                         const GateSet& blocked) {
    ++stats_->terms_visited;
    switch (t->kind()) {
      case Term::Kind::kStop:
        return 1;
      case Term::Kind::kExit:
        return 2;  // the exit location plus the post-delta terminated one
      case Term::Kind::kPrefix: {
        const std::uint64_t own = env_width(env, t->free_vars());
        if (blocked.contains(t->gate())) {
          return own;  // the prefix waits forever: continuation unreachable
        }
        AbsEnv e2 = env;
        bind_accepts(*t, e2);
        return saturating_add(own,
                              count_term(t->children()[0].get(), e2, blocked));
      }
      case Term::Kind::kChoice: {
        std::uint64_t n = env_width(env, t->free_vars());
        for (const TermPtr& br : t->children()) {
          n = saturating_add(n, branch_post(br.get(), env, blocked));
        }
        return n;
      }
      case Term::Kind::kGuard: {
        auto refined = refine(t->condition(), env);
        if (!refined) {
          return 1;  // lift() resolves a false guard to the stopped config
        }
        const std::uint64_t n =
            count_term(t->children()[0].get(), *refined, blocked);
        if (t->condition().get() != nullptr &&
            def_nonzero(aeval(t->condition().get(), env))) {
          return n;
        }
        return saturating_add(n, 1);  // some valuations may still stop here
      }
      case Term::Kind::kPar: {
        const auto [bl, br] = par_blocked(t, blocked);
        return saturating_mul(count_term(t->children()[0].get(), env, bl),
                              count_term(t->children()[1].get(), env, br));
      }
      case Term::Kind::kHide: {
        GateSet b2 = blocked;
        for (const std::string& g : t->gates()) {
          b2.erase(g);  // hidden actions fire freely below the hide
        }
        return count_term(t->children()[0].get(), env, b2);
      }
      case Term::Kind::kRename: {
        return count_term(t->children()[0].get(), env,
                          renamed_blocked(t, blocked));
      }
      case Term::Kind::kSeq: {
        const std::uint64_t left =
            count_term(t->children()[0].get(), env, blocked);
        const std::uint64_t right_envs =
            env_width(env, t->children()[1]->free_vars());
        return saturating_add(
            saturating_mul(left, right_envs),
            count_term(t->children()[1].get(), env, blocked));
      }
      case Term::Kind::kCall:
        return count_call(t->callee(), blocked);
    }
    return 1;
  }

  [[nodiscard]] std::uint64_t count_call(const std::string& name,
                                         const GateSet& blocked) {
    if (!prog_.has_definition(name)) {
      return 1;
    }
    const std::string key = "c:" + name + "|" + gate_key(blocked);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second;
    }
    if (in_progress_.contains(key)) {
      touched_.insert(key);
      return 0;  // cycle: these locations were counted at first entry
    }
    in_progress_.insert(key);
    std::set<std::string> saved = std::move(touched_);
    touched_.clear();
    const std::uint64_t v =
        count_term(prog_.definition(name).body.get(), call_env(name), blocked);
    in_progress_.erase(key);
    touched_.erase(key);  // a cycle closed at this frame is self-contained
    if (touched_.empty()) {
      memo_[key] = v;  // no open ancestor was involved: context-free result
    }
    saved.merge(touched_);
    touched_ = std::move(saved);
    return v;
  }

  // The blocked sets the operands of a kPar node run under: a sync gate the
  // other side can never perform (alphabet over-approximation) can never
  // fire, exactly the MV003/MV004 direction.
  [[nodiscard]] std::pair<GateSet, GateSet> par_blocked(
      const Term* t, const GateSet& blocked) const {
    GateSet bl = blocked;
    GateSet br = blocked;
    const GateSet al = term_alphabet(t->children()[0], alpha_);
    const GateSet ar = term_alphabet(t->children()[1], alpha_);
    for (const std::string& g : t->gates()) {
      if (!ar.contains(g)) {
        bl.insert(g);
      }
      if (!al.contains(g)) {
        br.insert(g);
      }
    }
    return {std::move(bl), std::move(br)};
  }

  [[nodiscard]] static GateSet renamed_blocked(const Term* t,
                                               const GateSet& blocked) {
    GateSet b2;
    const auto& map = t->gate_map();
    for (const auto& [from, to] : map) {
      if (blocked.contains(to)) {
        b2.insert(from);
      }
    }
    for (const std::string& g : blocked) {
      if (!map.contains(g)) {
        b2.insert(g);
      }
    }
    return b2;
  }

 private:
  // States reachable AFTER one action of a choice branch: the branch's own
  // prefix/guard spine is transient (lift() re-derives it per transition and
  // only continuations become configurations).
  [[nodiscard]] std::uint64_t branch_post(const Term* t, const AbsEnv& env,
                                          const GateSet& blocked) {
    ++stats_->terms_visited;
    switch (t->kind()) {
      case Term::Kind::kStop:
        return 0;
      case Term::Kind::kExit:
        return 1;
      case Term::Kind::kPrefix: {
        if (blocked.contains(t->gate())) {
          return 0;
        }
        AbsEnv e2 = env;
        bind_accepts(*t, e2);
        return count_term(t->children()[0].get(), e2, blocked);
      }
      case Term::Kind::kGuard: {
        auto refined = refine(t->condition(), env);
        if (!refined) {
          return 0;  // a dead branch offers nothing
        }
        return branch_post(t->children()[0].get(), *refined, blocked);
      }
      case Term::Kind::kChoice: {
        std::uint64_t n = 0;
        for (const TermPtr& br : t->children()) {
          n = saturating_add(n, branch_post(br.get(), env, blocked));
        }
        return n;
      }
      case Term::Kind::kCall:
        return post_call(t->callee(), blocked);
      default:
        // Structural branches (par/hide/rename/seq): every post-action
        // continuation is one of the term's own counted configurations.
        return count_term(t, env, blocked);
    }
  }

  [[nodiscard]] std::uint64_t post_call(const std::string& name,
                                        const GateSet& blocked) {
    if (!prog_.has_definition(name)) {
      return 1;
    }
    const std::string key = "p:" + name + "|" + gate_key(blocked);
    if (in_progress_.contains(key)) {
      touched_.insert(key);
      return 0;  // unguarded recursion through choice: already covered
    }
    in_progress_.insert(key);
    const std::uint64_t v = branch_post(prog_.definition(name).body.get(),
                                        call_env(name), blocked);
    in_progress_.erase(key);
    touched_.erase(key);
    return v;
  }

  [[nodiscard]] AbsEnv call_env(const std::string& name) const {
    AbsEnv env;
    const auto& d = prog_.definition(name);
    const auto it = params_.find(name);
    for (std::size_t i = 0; i < d.params.size(); ++i) {
      env[d.params[i]] = it != params_.end() && i < it->second.size()
                             ? it->second[i]
                             : Interval::top();
    }
    return env;
  }

  static void bind_accepts(const Term& t, AbsEnv& env) {
    for (const proc::Offer& o : t.offers()) {
      if (o.kind == proc::Offer::Kind::kAccept) {
        env[o.var] = Interval::range(o.lo, o.hi);
      }
    }
  }

  // The generator restricts each configuration's environment to the term's
  // free variables, so exactly those widths multiply.  A variable missing
  // from env stays unbound in the restricted environment too (one shared
  // "absent" binding), so it contributes factor 1, not infinity.
  [[nodiscard]] static std::uint64_t env_width(
      const AbsEnv& env, const std::vector<std::string>& vars) {
    std::uint64_t w = 1;
    for (const std::string& v : vars) {
      const auto it = env.find(v);
      if (it == env.end()) {
        continue;
      }
      w = saturating_mul(w, it->second.width());
    }
    return w;
  }

  const proc::Program& prog_;
  const std::map<std::string, std::vector<Interval>>& params_;
  AnalysisStats* stats_;
  std::map<std::string, GateSet> alpha_;
  std::map<std::string, std::uint64_t> memo_;
  std::set<std::string> in_progress_;
  std::set<std::string> touched_;
};

// ---- component decomposition and report assembly ----------------------------

std::string sketch(const Term* t) {
  std::string s = t->to_string();
  if (s.size() > 40) {
    s.resize(37);
    s += "...";
  }
  return s;
}

// Splits the root into its top-level parallel components, descending
// through par/hide/rename and inlining zero-argument calls whose body is
// itself structural — the same spine compose::plan_term flattens.
void collect_leaves(Counter& counter, const proc::Program& prog,
                    const TermPtr& t, const GateSet& blocked,
                    std::set<std::string>& inlined,
                    std::vector<std::pair<TermPtr, GateSet>>& out) {
  switch (t->kind()) {
    case Term::Kind::kPar: {
      const auto [bl, br] = counter.par_blocked(t.get(), blocked);
      collect_leaves(counter, prog, t->children()[0], bl, inlined, out);
      collect_leaves(counter, prog, t->children()[1], br, inlined, out);
      return;
    }
    case Term::Kind::kHide: {
      GateSet b2 = blocked;
      for (const std::string& g : t->gates()) {
        b2.erase(g);
      }
      collect_leaves(counter, prog, t->children()[0], b2, inlined, out);
      return;
    }
    case Term::Kind::kRename:
      collect_leaves(counter, prog, t->children()[0],
                     Counter::renamed_blocked(t.get(), blocked), inlined,
                     out);
      return;
    case Term::Kind::kCall:
      if (t->args().empty() && prog.has_definition(t->callee()) &&
          !inlined.contains(t->callee())) {
        const TermPtr& body = prog.definition(t->callee()).body;
        const Term::Kind k = body->kind();
        if (k == Term::Kind::kPar || k == Term::Kind::kHide ||
            k == Term::Kind::kRename) {
          inlined.insert(t->callee());
          collect_leaves(counter, prog, body, blocked, inlined, out);
          return;
        }
      }
      out.emplace_back(t, blocked);
      return;
    default:
      out.emplace_back(t, blocked);
      return;
  }
}

void collect_callees(const Term* t, std::set<std::string>& out) {
  if (t->kind() == Term::Kind::kCall) {
    out.insert(t->callee());
  }
  for (const TermPtr& c : t->children()) {
    collect_callees(c.get(), out);
  }
}

// Definitions syntactically reachable from @p t through the call graph.
std::set<std::string> reachable_defs(const Term* t,
                                     const proc::Program& prog) {
  std::set<std::string> seen;
  std::vector<std::string> work;
  collect_callees(t, seen);
  work.assign(seen.begin(), seen.end());
  while (!work.empty()) {
    const std::string name = std::move(work.back());
    work.pop_back();
    if (!prog.has_definition(name)) {
      continue;
    }
    std::set<std::string> next;
    collect_callees(prog.definition(name).body.get(), next);
    for (const std::string& n : next) {
      if (seen.insert(n).second) {
        work.push_back(n);
      }
    }
  }
  return seen;
}

void collect_sync_gates(const Term* t, GateSet& out) {
  if (t->kind() == Term::Kind::kPar) {
    out.insert(t->gates().begin(), t->gates().end());
  }
  for (const TermPtr& c : t->children()) {
    collect_sync_gates(c.get(), out);
  }
}

void collect_prefix_gates(const Term* t, GateSet& out) {
  if (t->kind() == Term::Kind::kPrefix) {
    out.insert(t->gate());
  }
  for (const TermPtr& c : t->children()) {
    collect_prefix_gates(c.get(), out);
  }
}

// A widened definition is "throttled" when it (or a callee) performs a gate
// some parallel composition in the model synchronises on: the counter's
// growth rate is then governed by a peer, and the peer may bound it — the
// credit-counter idiom.  Being generous here only ever downgrades MV041
// from error to warning, which is the sound direction.
bool is_throttled(const std::string& def, const proc::Program& prog,
                  const GateSet& sync_gates) {
  GateSet prefixes;
  collect_prefix_gates(prog.definition(def).body.get(), prefixes);
  for (const std::string& callee :
       reachable_defs(prog.definition(def).body.get(), prog)) {
    if (prog.has_definition(callee)) {
      collect_prefix_gates(prog.definition(callee).body.get(), prefixes);
    }
  }
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& g) {
                       return sync_gates.contains(g);
                     });
}

std::string cause_for(const TermPtr& t, const proc::Program& prog,
                      const std::map<std::string, WidenRec>& widen) {
  for (const std::string& name : reachable_defs(t.get(), prog)) {
    const auto it = widen.find(name);
    if (it != widen.end()) {
      return "parameter '" + it->second.param + "' of '" + name +
             "' grows without bound (" + it->second.path + ")";
    }
  }
  if (t->kind() == Term::Kind::kCall) {
    const auto it = widen.find(t->callee());
    if (it != widen.end()) {
      return "parameter '" + it->second.param + "' of '" + t->callee() +
             "' grows without bound (" + it->second.path + ")";
    }
  }
  return "a counter's interval is unbounded";
}

}  // namespace

std::string BoundReport::summary() const {
  std::size_t w = 0;
  for (const DefBound& d : defs) {
    if (d.widened) {
      ++w;
    }
  }
  std::string s = "predicted ";
  s += unbounded() ? "unbounded" : "<= " + std::to_string(total) + " states";
  s += " over " + std::to_string(components.size());
  s += components.size() == 1 ? " component" : " components";
  s += " (" + std::to_string(w);
  s += w == 1 ? " def widened)" : " defs widened)";
  return s;
}

BoundReport predicted_bounds(const proc::Program& program,
                             const proc::TermPtr& root,
                             const BoundOptions& opts) {
  if (root == nullptr) {
    throw std::invalid_argument("analyze::predicted_bounds: null root term");
  }
  const auto t0 = std::chrono::steady_clock::now();
  BoundReport r;

  IntervalFixpoint fix(program, opts, &r.stats);
  fix.run(root);
  r.stats.definitions = fix.params().size();

  Counter counter(program, fix.params(), &r.stats);

  std::set<std::string> inlined;
  std::vector<std::pair<TermPtr, GateSet>> leaves;
  collect_leaves(counter, program, root, opts.blocked, inlined, leaves);

  GateSet sync_gates;
  collect_sync_gates(root.get(), sync_gates);
  for (const auto& [name, def] : program.definitions()) {
    collect_sync_gates(def.body.get(), sync_gates);
  }

  r.total = 1;
  for (const auto& [term, blocked] : leaves) {
    ComponentBound cb;
    cb.name = term->kind() == Term::Kind::kCall ? term->callee()
                                                : sketch(term.get());
    cb.states = counter.count_term(term.get(), {}, blocked);
    if (cb.states == kUnboundedStates) {
      cb.cause = cause_for(term, program, fix.widened());
    }
    r.total = saturating_mul(r.total, cb.states);
    r.components.push_back(std::move(cb));
  }

  for (const auto& [name, ivs] : fix.params()) {
    DefBound db;
    db.name = name;
    db.params = program.definition(name).params;
    db.intervals = ivs;
    db.states = counter.count_call(name, opts.blocked);
    const auto wit = fix.widened().find(name);
    if (wit != fix.widened().end()) {
      db.widened = true;
      db.widening_path = wit->second.path;
    }
    r.defs.push_back(std::move(db));
  }

  // MV040: the predicted-bound report itself.
  {
    core::Diagnostic d;
    d.code = "MV040";
    d.severity = core::Severity::kAdvice;
    d.message = "predicted state bound: " + format_states(r.total) + " over " +
                std::to_string(r.components.size()) +
                (r.components.size() == 1 ? " component" : " components");
    std::string breakdown;
    for (const ComponentBound& cb : r.components) {
      if (!breakdown.empty()) {
        breakdown += " * ";
      }
      breakdown += cb.name + "=" + format_states(cb.states);
    }
    d.hint = breakdown;
    r.diagnostics.push_back(std::move(d));
  }

  // MV041: unbounded-counter proofs, one per widened definition.
  for (const DefBound& db : r.defs) {
    if (!db.widened) {
      continue;
    }
    const WidenRec& rec = fix.widened().at(db.name);
    const bool throttled = is_throttled(db.name, program, sync_gates);
    core::Diagnostic d;
    d.code = "MV041";
    d.severity = (!rec.guarded && !throttled) ? core::Severity::kError
                                              : core::Severity::kWarning;
    d.message = "parameter '" + rec.param + "' of process '" + db.name +
                "' can grow without bound (recursion " + rec.path + ")";
    d.path = db.name;
    if (d.severity == core::Severity::kError) {
      d.hint = "every cycle through this recursion increases '" + rec.param +
               "' and no guard or synchronisation bounds it: generation "
               "from '" +
               db.name + "' diverges";
    } else if (throttled) {
      d.hint = "the growth is throttled by synchronised gate(s), so the "
               "bound may live in a peer component; generating '" +
               db.name + "' standalone would still diverge";
    } else {
      d.hint = "a crossed guard mentions the growing expression, so the "
               "recursion may be bounded for value reasons the interval "
               "domain cannot see";
    }
    r.diagnostics.push_back(std::move(d));
  }

  // MV042: component-exceeds-budget advice.
  if (opts.component_budget > 0) {
    for (const ComponentBound& cb : r.components) {
      if (cb.states <= opts.component_budget) {
        continue;
      }
      core::Diagnostic d;
      d.code = "MV042";
      d.severity = core::Severity::kAdvice;
      d.message = "component '" + cb.name + "' predicted " +
                  format_states(cb.states) + " states exceeds the budget of " +
                  std::to_string(opts.component_budget);
      d.path = cb.name;
      d.hint = "split '" + cb.name +
               "' or compose it with its synchronising peer before "
               "generation; compose::plan_term routes around it (static "
               "skip)";
      if (!cb.cause.empty()) {
        d.hint += "; " + cb.cause;
      }
      r.diagnostics.push_back(std::move(d));
    }
  }

  r.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

std::uint64_t predicted_states(const proc::Program& program,
                               const proc::TermPtr& root,
                               const BoundOptions& opts) {
  return predicted_bounds(program, root, opts).total;
}

BoundReport predicted_bounds(const xmas::Netlist& n,
                             const xmas::CompileOptions& copts,
                             const BoundOptions& opts) {
  const xmas::Compiled c = xmas::compile(n, copts);
  return predicted_bounds(*c.program, proc::call(c.entry), opts);
}

std::uint64_t predicted_states(const xmas::Netlist& n,
                               const xmas::CompileOptions& copts,
                               const BoundOptions& opts) {
  return predicted_bounds(n, copts, opts).total;
}

}  // namespace multival::analyze
