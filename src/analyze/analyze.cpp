#include "analyze/analyze.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "phase/fit.hpp"

namespace multival::analyze {

namespace {

using proc::Term;
using proc::TermPtr;

std::string join(const GateSet& s) {
  std::string out;
  for (const std::string& g : s) {
    if (!out.empty()) {
      out += ',';
    }
    out += g;
  }
  return out;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& g : v) {
    if (!out.empty()) {
      out += ',';
    }
    out += g;
  }
  return out;
}

// ---- alphabet fixed point ---------------------------------------------------

// One application of the syntactic transfer function under the current
// per-definition alphabet assignment.  All transfer functions are monotone in
// `defs` over the powerset-of-gates lattice (kPar drops a sync gate only
// while it is missing from one side, and growing operand alphabets can only
// stop the drop), so Kleene iteration from bottom reaches the least fixed
// point in at most |gates| * |defs| passes.
GateSet alpha_of(const Term* t, const std::map<std::string, GateSet>& defs) {
  switch (t->kind()) {
    case Term::Kind::kStop:
    case Term::Kind::kExit:
      return {};
    case Term::Kind::kPrefix: {
      GateSet a = alpha_of(t->children()[0].get(), defs);
      a.insert(t->gate());
      return a;
    }
    case Term::Kind::kGuard:
      return alpha_of(t->children()[0].get(), defs);
    case Term::Kind::kChoice:
    case Term::Kind::kSeq: {
      GateSet a;
      for (const TermPtr& c : t->children()) {
        GateSet ca = alpha_of(c.get(), defs);
        a.insert(ca.begin(), ca.end());
      }
      return a;
    }
    case Term::Kind::kPar: {
      const GateSet l = alpha_of(t->children()[0].get(), defs);
      const GateSet r = alpha_of(t->children()[1].get(), defs);
      GateSet a = l;
      a.insert(r.begin(), r.end());
      for (const std::string& g : t->gates()) {
        if (!(l.count(g) != 0 && r.count(g) != 0)) {
          a.erase(g);  // a one-sided sync gate can never fire here
        }
      }
      return a;
    }
    case Term::Kind::kHide: {
      GateSet a = alpha_of(t->children()[0].get(), defs);
      for (const std::string& g : t->gates()) {
        a.erase(g);
      }
      return a;
    }
    case Term::Kind::kRename: {
      const GateSet inner = alpha_of(t->children()[0].get(), defs);
      GateSet a;
      const auto& map = t->gate_map();
      for (const std::string& g : inner) {
        auto it = map.find(g);
        a.insert(it == map.end() ? g : it->second);
      }
      return a;
    }
    case Term::Kind::kCall: {
      auto it = defs.find(t->callee());
      return it == defs.end() ? GateSet{} : it->second;
    }
  }
  return {};
}

std::map<std::string, GateSet> alphabets_impl(const proc::Program& program,
                                              AnalysisStats* stats) {
  std::map<std::string, GateSet> a;
  for (const auto& [name, def] : program.definitions()) {
    a.emplace(name, GateSet{});
  }
  bool changed = true;
  while (changed) {
    changed = false;
    if (stats != nullptr) {
      ++stats->fixpoint_passes;
    }
    for (const auto& [name, def] : program.definitions()) {
      GateSet next = alpha_of(def.body.get(), a);
      if (next != a[name]) {
        a[name] = std::move(next);
        changed = true;
      }
    }
  }
  return a;
}

// ---- initially-stuck analysis (MV003 vs MV004 severity split) ---------------

// The gate names inside a rename body that surface as a member of `surface`
// outside it.
GateSet inverse_image(const GateSet& surface,
                      const std::map<std::string, std::string>& map) {
  GateSet inner;
  for (const auto& [from, to] : map) {
    if (surface.count(to) != 0) {
      inner.insert(from);
    }
  }
  for (const std::string& g : surface) {
    if (map.count(g) == 0) {
      inner.insert(g);
    }
  }
  return inner;
}

// What a component can do as its very FIRST action, given a set of gates
// (`never`) proven unable to fire by the enclosing composition:
//   kNoMove  - no initial action at all (stop/exit-like; terminally idle,
//              which is not a defect)
//   kBlocked - it has initial actions, but every one of them needs a gate
//              from `never`: the component is stuck from its initial state
//   kFree    - some initial action does not need a `never` gate
//
// Only first actions are inspected — anything behind another prefix may be
// unreachable for value/reachability reasons the alphabet lattice cannot
// see (e.g. a router output port whose request gate never receives traffic
// for it), so depth-one is exactly how far the verdict stays sound.
// kBlocked is therefore a *proof* of a stuck component, which is what
// upgrades a never-firing sync gate from restriction advice to an error.
enum class InitStatus { kNoMove, kBlocked, kFree };

class InitialBlockScan {
 public:
  InitialBlockScan(const proc::Program& program,
                   const std::map<std::string, GateSet>& defs)
      : program_(program), defs_(defs) {}

  InitStatus status(const Term* t, const GateSet& never) {
    switch (t->kind()) {
      case Term::Kind::kStop:
      case Term::Kind::kExit:
        return InitStatus::kNoMove;
      case Term::Kind::kPrefix:
        return never.count(t->gate()) != 0 ? InitStatus::kBlocked
                                           : InitStatus::kFree;
      case Term::Kind::kGuard: {
        const proc::ExprPtr& c = t->condition();
        if (c->free_vars().empty()) {
          try {
            if (c->eval(proc::Env{}) == 0) {
              return InitStatus::kNoMove;  // dead branch offers nothing
            }
          } catch (const std::domain_error&) {
            return InitStatus::kNoMove;
          }
        }
        return status(t->children()[0].get(), never);
      }
      case Term::Kind::kChoice: {
        InitStatus acc = InitStatus::kNoMove;
        for (const TermPtr& c : t->children()) {
          const InitStatus s = status(c.get(), never);
          if (s == InitStatus::kFree) {
            return InitStatus::kFree;  // an escape branch exists
          }
          if (s == InitStatus::kBlocked) {
            acc = InitStatus::kBlocked;
          }
        }
        return acc;
      }
      case Term::Kind::kPar: {
        // A nested composition adds its own never-firing sync gates.
        GateSet never2 = never;
        const GateSet l = alpha_of(t->children()[0].get(), defs_);
        const GateSet r = alpha_of(t->children()[1].get(), defs_);
        for (const std::string& g : t->gates()) {
          if (!(l.count(g) != 0 && r.count(g) != 0)) {
            never2.insert(g);
          }
        }
        const InitStatus a = status(t->children()[0].get(), never2);
        const InitStatus b = status(t->children()[1].get(), never2);
        if (a == InitStatus::kBlocked || b == InitStatus::kBlocked) {
          return InitStatus::kBlocked;  // a stuck sub-component is stuck
        }
        if (a == InitStatus::kFree || b == InitStatus::kFree) {
          return InitStatus::kFree;
        }
        return InitStatus::kNoMove;
      }
      case Term::Kind::kSeq: {
        const InitStatus s = status(t->children()[0].get(), never);
        // Only an action-less first operand (exit) starts the continuation
        // immediately.
        return s == InitStatus::kNoMove
                   ? status(t->children()[1].get(), never)
                   : s;
      }
      case Term::Kind::kHide: {
        GateSet never2 = never;
        for (const std::string& g : t->gates()) {
          never2.erase(g);  // hidden occurrences fire freely as i
        }
        return status(t->children()[0].get(), never2);
      }
      case Term::Kind::kRename:
        return status(t->children()[0].get(),
                      inverse_image(never, t->gate_map()));
      case Term::Kind::kCall: {
        if (!program_.has_definition(t->callee())) {
          return InitStatus::kNoMove;
        }
        const Term* body = program_.definition(t->callee()).body.get();
        std::string key = t->callee() + '|' + join(never);
        const auto [it, inserted] =
            memo_.emplace(std::move(key), InitStatus::kNoMove);
        if (!inserted) {
          return it->second;  // memoised result, or cycle -> kNoMove
        }
        const InitStatus s = status(body, never);
        it->second = s;
        return s;
      }
    }
    return InitStatus::kNoMove;
  }

 private:
  const proc::Program& program_;
  const std::map<std::string, GateSet>& defs_;
  std::map<std::string, InitStatus> memo_;
};

// True if some occurrence of a gate in `targets` sits under a hide of that
// gate inside @p t (with the hide's operand actually performing it) — the
// MV008 situation: an enclosing composition synchronises on a name whose
// actions have already been internalised.
class HiddenGateScan {
 public:
  HiddenGateScan(const proc::Program& program,
                 const std::map<std::string, GateSet>& defs)
      : program_(program), defs_(defs) {}

  bool scan(const Term* t, const GateSet& targets) {
    if (targets.empty()) {
      return false;
    }
    switch (t->kind()) {
      case Term::Kind::kStop:
      case Term::Kind::kExit:
        return false;
      case Term::Kind::kHide: {
        GateSet remaining = targets;
        for (const std::string& g : t->gates()) {
          if (targets.count(g) != 0 &&
              alpha_of(t->children()[0].get(), defs_).count(g) != 0) {
            return true;
          }
          remaining.erase(g);
        }
        return scan(t->children()[0].get(), remaining);
      }
      case Term::Kind::kRename: {
        GateSet inner;
        const auto& map = t->gate_map();
        for (const auto& [from, to] : map) {
          if (targets.count(to) != 0) {
            inner.insert(from);
          }
        }
        for (const std::string& g : targets) {
          if (map.count(g) == 0) {
            inner.insert(g);
          }
        }
        return scan(t->children()[0].get(), inner);
      }
      case Term::Kind::kCall: {
        if (!program_.has_definition(t->callee())) {
          return false;
        }
        std::string key = t->callee() + '|' + join(targets);
        if (!visited_.insert(std::move(key)).second) {
          return false;
        }
        return scan(program_.definition(t->callee()).body.get(), targets);
      }
      default: {
        for (const TermPtr& c : t->children()) {
          if (scan(c.get(), targets)) {
            return true;
          }
        }
        return false;
      }
    }
  }

 private:
  const proc::Program& program_;
  const std::map<std::string, GateSet>& defs_;
  std::set<std::string> visited_;
};

// ---- the per-term checks ----------------------------------------------------

class Checker {
 public:
  Checker(const proc::Program& program,
          const std::map<std::string, GateSet>& defs, Analysis* out)
      : program_(program), defs_(defs), out_(out) {}

  void check(const Term* t, const std::string& path,
             const std::set<std::string>& bound) {
    ++out_->stats.terms_visited;
    switch (t->kind()) {
      case Term::Kind::kStop:
      case Term::Kind::kExit:
        return;
      case Term::Kind::kPrefix: {
        std::set<std::string> bound2 = bound;
        for (const proc::Offer& o : t->offers()) {
          if (o.kind == proc::Offer::Kind::kEmit) {
            check_vars(o.expr, bound2, path + " / " + t->gate());
          } else {
            bound2.insert(o.var);
          }
        }
        check(t->children()[0].get(), path, bound2);
        return;
      }
      case Term::Kind::kGuard: {
        check_vars(t->condition(), bound, path + " / guard");
        const proc::ExprPtr& c = t->condition();
        if (c->free_vars().empty()) {
          bool dead = false;
          try {
            dead = c->eval(proc::Env{}) == 0;
          } catch (const std::domain_error&) {
            dead = true;
          }
          if (dead) {
            emit("MV006", core::Severity::kWarning,
                 "guard [" + c->to_string() +
                     "] is constantly false; the branch behind it is dead",
                 path + " / guard",
                 "remove the branch or fix the condition");
          }
        }
        check(t->children()[0].get(), path, bound);
        return;
      }
      case Term::Kind::kChoice: {
        for (std::size_t i = 0; i < t->children().size(); ++i) {
          check(t->children()[i].get(),
                path + " / []#" + std::to_string(i + 1), bound);
        }
        return;
      }
      case Term::Kind::kPar: {
        check_par(t, path);
        check(t->children()[0].get(), path + " / left", bound);
        check(t->children()[1].get(), path + " / right", bound);
        return;
      }
      case Term::Kind::kHide: {
        const GateSet& inner = alpha(t->children()[0].get());
        for (const std::string& g : t->gates()) {
          if (inner.count(g) == 0) {
            emit("MV007", core::Severity::kWarning,
                 "hide of gate " + g + " which the operand never performs",
                 path + " / hide",
                 "drop " + g + " from the hide set or fix the gate name");
          }
        }
        check_hide_placement(t, path);
        check(t->children()[0].get(), path, bound);
        return;
      }
      case Term::Kind::kRename: {
        const GateSet& inner = alpha(t->children()[0].get());
        for (const auto& [from, to] : t->gate_map()) {
          if (inner.count(from) == 0) {
            emit("MV007", core::Severity::kWarning,
                 "rename of gate " + from + " (to " + to +
                     ") which the operand never performs",
                 path + " / rename",
                 "drop the mapping or fix the gate name");
          }
        }
        check(t->children()[0].get(), path, bound);
        return;
      }
      case Term::Kind::kSeq: {
        check(t->children()[0].get(), path + " / first", bound);
        check(t->children()[1].get(), path + " / then", bound);
        return;
      }
      case Term::Kind::kCall: {
        if (!program_.has_definition(t->callee())) {
          emit("MV001", core::Severity::kError,
               "reference to undefined process " + t->callee(), path,
               "define process " + t->callee() + " or fix the reference");
        } else {
          const auto& def = program_.definition(t->callee());
          if (def.params.size() != t->args().size()) {
            emit("MV002", core::Severity::kError,
                 "call to " + t->callee() + " with " +
                     std::to_string(t->args().size()) + " argument(s); " +
                     "the definition takes " +
                     std::to_string(def.params.size()),
                 path, "match the parameter list (" + join(def.params) + ")");
          }
        }
        for (const proc::ExprPtr& a : t->args()) {
          check_vars(a, bound, path + " / call " + t->callee());
        }
        return;
      }
    }
  }

  // Memoised alphabet of an arbitrary subterm (the fixed point over the
  // definitions is already computed, so each subterm's alphabet is stable).
  const GateSet& alpha(const Term* t) {
    auto it = memo_.find(t);
    if (it == memo_.end()) {
      it = memo_.emplace(t, alpha_of(t, defs_)).first;
    }
    return it->second;
  }

 private:
  void check_par(const Term* t, const std::string& path) {
    const Term* left = t->children()[0].get();
    const Term* right = t->children()[1].get();
    const GateSet& l = alpha(left);
    const GateSet& r = alpha(right);
    GateSet never;
    for (const std::string& g : t->gates()) {
      if (!(l.count(g) != 0 && r.count(g) != 0)) {
        never.insert(g);
      }
    }
    const std::string par_desc = "par |[" + join(t->gates()) + "]|";
    InitialBlockScan scan(program_, defs_);
    InitStatus side_status[2] = {InitStatus::kNoMove, InitStatus::kNoMove};
    bool side_known[2] = {false, false};
    const auto stuck = [&](bool left_side) {
      const int i = left_side ? 0 : 1;
      if (!side_known[i]) {
        side_status[i] = scan.status(left_side ? left : right, never);
        side_known[i] = true;
      }
      return side_status[i] == InitStatus::kBlocked;
    };
    for (const std::string& g : t->gates()) {
      const bool in_l = l.count(g) != 0;
      const bool in_r = r.count(g) != 0;
      if (in_l && in_r) {
        continue;
      }
      HiddenGateScan hidden(program_, defs_);
      if (hidden.scan(in_l ? right : left, {g}) ||
          (!in_l && !in_r && hidden.scan(left, {g}))) {
        emit("MV008", core::Severity::kError,
             "synchronisation on gate " + g +
                 " which is hidden inside the " +
                 (in_l ? "right" : "left") + " operand",
             path + " / " + par_desc,
             "hidden actions become i and never synchronise; lift the hide "
             "above the composition or drop " +
                 g + " from the sync set");
        continue;
      }
      if (!in_l && !in_r) {
        emit("MV005", core::Severity::kWarning,
             "sync gate " + g + " is performed by neither operand",
             path + " / " + par_desc,
             "drop " + g + " from the sync set or fix the gate name");
        continue;
      }
      const char* offer_side = in_l ? "left" : "right";
      const char* missing_side = in_l ? "right" : "left";
      if (stuck(in_l)) {
        emit("MV003", core::Severity::kError,
             "sync gate " + g + " can never fire: the " + missing_side +
                 " operand never performs it, and every initial action of "
                 "the " +
                 offer_side +
                 " operand needs a never-firing sync gate — the component "
                 "is stuck from its initial state (structural deadlock)",
             path + " / " + par_desc,
             "add a matching " + g + " action to the " + missing_side +
                 " operand or drop " + g + " from the sync set");
      } else {
        emit("MV004", core::Severity::kAdvice,
             "sync gate " + g + " can never fire (the " + missing_side +
                 " operand never performs it); the " + offer_side +
                 " operand is not provably stuck, so this may be "
                 "intentional restriction",
             path + " / " + par_desc,
             "if unintentional, add a matching " + g + " action to the " +
                 missing_side + " operand");
      }
    }
  }

  // MV021: `hide g in (L |[G]| R)` where g is used by exactly one operand
  // and is not synchronised.  The hide can then be pushed into that operand
  // without changing the composed behaviour, turning g's actions into i
  // *before* the product is built — which is exactly what lets the
  // compositional planner (compose/plan) tau-compress the intermediate.
  void check_hide_placement(const Term* t, const std::string& path) {
    const Term* child = t->children()[0].get();
    if (child->kind() != Term::Kind::kPar) {
      return;
    }
    const GateSet& l = alpha(child->children()[0].get());
    const GateSet& r = alpha(child->children()[1].get());
    const GateSet sync(child->gates().begin(), child->gates().end());
    for (const std::string& g : t->gates()) {
      if (sync.count(g) != 0) {
        continue;  // synchronised: hiding must stay above the par
      }
      const bool in_l = l.count(g) != 0;
      const bool in_r = r.count(g) != 0;
      if (in_l == in_r) {
        continue;  // unused (MV007's case) or used by both sides
      }
      const char* side = in_l ? "left" : "right";
      emit("MV021", core::Severity::kAdvice,
           "gate " + g + " is local to the " + side +
               " operand of the composition; hiding it below the |[" +
               join(child->gates()) +
               "]| would shrink the intermediate product",
           path + " / hide / " + side,
           "move " + g + " into a hide inside the " + side +
               " operand (the compositional planner applies this placement "
               "automatically)");
    }
  }

  void check_vars(const proc::ExprPtr& e, const std::set<std::string>& bound,
                  const std::string& path) {
    for (const std::string& v : e->free_vars()) {
      if (bound.count(v) == 0) {
        emit("MV009", core::Severity::kError,
             "unbound value variable " + v + " in " + e->to_string(), path,
             "bind " + v + " with a ?" + v +
                 ":lo..hi offer or a process parameter");
      }
    }
  }

  void emit(std::string code, core::Severity sev, std::string message,
            std::string path, std::string hint) {
    out_->diagnostics.push_back(core::Diagnostic{
        std::move(code), sev, std::move(message), std::move(path), 0, 0,
        std::move(hint)});
  }

  const proc::Program& program_;
  const std::map<std::string, GateSet>& defs_;
  std::map<const Term*, GateSet> memo_;
  Analysis* out_;
};

std::string format_states(const std::vector<lts::StateId>& states) {
  std::string out;
  const std::size_t shown = std::min<std::size_t>(states.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(states[i]);
  }
  if (states.size() > shown) {
    out += ", ... (+" + std::to_string(states.size() - shown) + " more)";
  }
  return out;
}

}  // namespace

// ---- public API -------------------------------------------------------------

std::size_t Analysis::count(core::Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const core::Diagnostic& d) { return d.severity == s; }));
}

std::string Analysis::summary() const {
  std::string out = std::to_string(count(core::Severity::kError)) +
                    " error(s), " +
                    std::to_string(count(core::Severity::kWarning)) +
                    " warning(s), " +
                    std::to_string(count(core::Severity::kAdvice)) +
                    " advisory(ies) (" + std::to_string(stats.definitions) +
                    " defs, " + std::to_string(stats.terms_visited) +
                    " terms, " + std::to_string(stats.fixpoint_passes) +
                    " fixpoint passes, " +
                    std::to_string(stats.states_generated) +
                    " states generated)";
  return out;
}

std::map<std::string, GateSet> alphabets(const proc::Program& program) {
  return alphabets_impl(program, nullptr);
}

GateSet term_alphabet(const proc::TermPtr& t,
                      const std::map<std::string, GateSet>& defs) {
  return t == nullptr ? GateSet{} : alpha_of(t.get(), defs);
}

Analysis lint_program(const proc::Program& program, const TermPtr& root) {
  const auto t0 = std::chrono::steady_clock::now();
  Analysis out;
  out.stats.definitions = program.size();
  const std::map<std::string, GateSet> defs = alphabets_impl(program,
                                                             &out.stats);
  Checker checker(program, defs, &out);
  for (const auto& [name, def] : program.definitions()) {
    std::set<std::string> bound(def.params.begin(), def.params.end());
    checker.check(def.body.get(), name, bound);
  }
  if (root) {
    checker.check(root.get(), "<root>", {});
  }
  out.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

Analysis lint_imc(const imc::Imc& m) {
  const auto t0 = std::chrono::steady_clock::now();
  Analysis out;
  std::vector<lts::StateId> races;      // MV011
  std::vector<lts::StateId> dead_rate;  // MV012
  std::vector<lts::StateId> nondet;     // MV013
  const auto n = static_cast<lts::StateId>(m.num_states());
  for (lts::StateId s = 0; s < n; ++s) {
    const auto inter = m.interactive(s);
    const auto mark = m.markovian(s);
    const bool stable = m.is_stable(s);
    if (!mark.empty() && !stable) {
      dead_rate.push_back(s);
    }
    if (inter.size() > 1) {
      if (stable && !mark.empty()) {
        races.push_back(s);
      } else {
        nondet.push_back(s);
      }
    }
    ++out.stats.terms_visited;
  }
  if (!races.empty()) {
    out.diagnostics.push_back(core::Diagnostic{
        "MV011", core::Severity::kWarning,
        std::to_string(races.size()) +
            " state(s) where a Markovian delay races with interactive "
            "nondeterminism (states " +
            format_states(races) + ")",
        "imc", 0, 0,
        "the imc solvers resolve the race over memoryless schedulers and "
        "report [min,max] interval bounds, not a point value; hide the "
        "competing actions (maximal progress) or refine the model to make "
        "the choice deterministic"});
  }
  if (!dead_rate.empty()) {
    out.diagnostics.push_back(core::Diagnostic{
        "MV012", core::Severity::kWarning,
        std::to_string(dead_rate.size()) +
            " state(s) carry Markovian rates that maximal progress will "
            "cut (outgoing tau at the same state; states " +
            format_states(dead_rate) + ")",
        "imc", 0, 0,
        "these delays are dead after closing the model; remove them or "
        "un-hide the competing interactive action"});
  }
  if (!nondet.empty()) {
    out.diagnostics.push_back(core::Diagnostic{
        "MV013", core::Severity::kAdvice,
        std::to_string(nondet.size()) +
            " state(s) with interactive nondeterminism and no competing "
            "delay (states " +
            format_states(nondet) + ")",
        "imc", 0, 0,
        "harmless for functional analysis; reachability/throughput need a "
        "deterministic closed chain — solve with scheduler interval bounds "
        "('bounds') instead"});
  }
  out.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

core::Diagnostic fixed_delay_advisory(double delay, double rel_error) {
  if (!(delay > 0.0) || !std::isfinite(delay)) {
    throw std::invalid_argument("fixed_delay_advisory: delay must be > 0");
  }
  if (!(rel_error > 0.0) || !(rel_error < 1.0)) {
    throw std::invalid_argument(
        "fixed_delay_advisory: error bound must be in (0, 1)");
  }
  // Wasserstein-1 of Erlang-k against the unit step decays like
  // d * sqrt(2 / (pi k)); invert for the asymptotic order estimate.
  const double pi = 3.14159265358979323846;
  std::size_t k = static_cast<std::size_t>(
      std::ceil(2.0 / (pi * rel_error * rel_error)));
  k = std::max<std::size_t>(k, 1);
  double achieved = std::sqrt(2.0 / (pi * static_cast<double>(k)));
  bool refined = false;
  // For modest orders the grid evaluation in src/phase is cheap: refine the
  // asymptotic estimate to the smallest k actually meeting the bound.
  if (k <= 2048) {
    refined = true;
    std::size_t hi = k;
    double err_hi =
        phase::evaluate_fixed_delay_fit(delay, hi).wasserstein / delay;
    while (err_hi > rel_error && hi < 16384) {
      hi *= 2;
      err_hi = phase::evaluate_fixed_delay_fit(delay, hi).wasserstein / delay;
    }
    std::size_t lo = 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const double err =
          phase::evaluate_fixed_delay_fit(delay, mid).wasserstein / delay;
      if (err <= rel_error) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    k = hi;
    achieved = phase::evaluate_fixed_delay_fit(delay, k).wasserstein / delay;
  }
  std::string msg =
      "approximating a fixed delay of " + std::to_string(delay) +
      " within relative Wasserstein error " + std::to_string(rel_error) +
      " requires an Erlang-" + std::to_string(k) + " (" + std::to_string(k) +
      " phases, " + (refined ? "achieved" : "asymptotic") + " error ~" +
      std::to_string(achieved) +
      "); every occurrence of the delay multiplies the state space by up "
      "to " +
      std::to_string(k);
  return core::Diagnostic{
      "MV020", core::Severity::kAdvice, std::move(msg), "phase", 0, 0,
      "halving the error bound quadruples the phase count; relax the bound "
      "or lump after composition to contain the growth"};
}

ModelError::ModelError(std::vector<core::Diagnostic> diagnostics)
    : std::runtime_error(core::render_text(diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

void require_well_formed(const proc::Program& program, const TermPtr& root) {
  Analysis a = lint_program(program, root);
  if (!a.clean()) {
    std::vector<core::Diagnostic> errors;
    for (core::Diagnostic& d : a.diagnostics) {
      if (d.severity == core::Severity::kError) {
        errors.push_back(std::move(d));
      }
    }
    throw ModelError(std::move(errors));
  }
}

}  // namespace multival::analyze
