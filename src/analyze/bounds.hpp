// Static state-bound prediction: an interprocedural interval abstract
// interpretation over the process calculus (and xMAS netlists) that
// computes, per definition and per parallel component, a sound
// over-approximation of the number of reachable states — *before* any
// state is generated.
//
// The abstract domain is the product of
//
//   - control locations: exactly the term nodes the generator's lift()
//     stabilises on (stop / exit / prefix / choice — guards and calls
//     resolve away at configuration-build time, par/hide/rename/seq wrap
//     sub-configurations structurally), and
//   - value intervals: every counter variable is tracked as an integer
//     interval [lo, hi], seeded from initialisers and accept ranges,
//     refined through guards, joined over call sites and widened to ±inf
//     when a recursion keeps growing it (a Kleene fixpoint in the style of
//     analyze::alphabets and xmas::carriable_channels).
//
// A sequential component then contributes
//
//     sum over reachable locations L of  prod over v in fv(L) width(I(v))
//
// states; parallel composition multiplies component bounds (a par
// configuration is a pair of sub-configurations), with sync-gate-aware
// tightening: a sync gate only one operand performs can never fire, so
// prefixes on it contribute their own location but never their
// continuation (the same never-firing direction MV003/MV004 rely on).
// hide and rename wrap configurations one-to-one and are bound-neutral;
// sequential composition is |left| * (env combinations of the right) plus
// |right|.
//
// Soundness: every reachable generator configuration maps to a counted
// (location, valuation) pair whose variables lie inside the converged
// intervals, so predicted >= actual always (asserted over every builtin
// case study and randomised terms in tests/bounds_test.cpp).  On pure xMAS
// queue fabrics the bound is *exact*: a compiled queue is one choice
// location with n in [0, capacity], contributing exactly capacity+1
// states.  The price of the non-relational domain is honest: counters
// whose bound lives in a synchronising peer (the xstream credit loop)
// widen to infinity — which is precisely the component the compositional
// planner must not generate standalone (the PR 8 runtime fallback, now
// routed around statically).
//
// Diagnostics (stable codes, same contract as analyze.hpp — zero states
// generated):
//   MV040 advice   predicted-bound report (total + per-component factors)
//   MV041 error    a definition parameter grows without bound along a
//                  recursion no guard constrains and no sync gate can
//                  throttle: generation provably diverges (the proof names
//                  the offending recursion path)
//   MV041 warning  same growth, but a guard mentions the counter or the
//                  recursion passes a synchronised gate: the bound may
//                  live in a peer (the credit-counter idiom), so only the
//                  *standalone* component is proved unbounded
//   MV042 advice   a parallel component's predicted bound exceeds the
//                  given budget: names the operand to split or merge first
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "proc/process.hpp"
#include "xmas/compile.hpp"
#include "xmas/netlist.hpp"

namespace multival::analyze {

/// Saturating state-count arithmetic: kUnboundedStates is the absorbing
/// "infinite" element of the counting semiring.
inline constexpr std::uint64_t kUnboundedStates =
    ~static_cast<std::uint64_t>(0);

[[nodiscard]] std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b);
/// "123" or "unbounded".
[[nodiscard]] std::string format_states(std::uint64_t n);

/// An integer interval with +-infinity sentinels.  Finite endpoints are
/// proc::Value (int32) range; arithmetic saturates into the sentinels.
struct Interval {
  static constexpr std::int64_t kNegInf =
      std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kPosInf =
      std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;

  [[nodiscard]] static Interval top() { return {}; }
  [[nodiscard]] static Interval exactly(std::int64_t v) { return {v, v}; }
  [[nodiscard]] static Interval range(std::int64_t lo, std::int64_t hi) {
    return {lo, hi};
  }

  [[nodiscard]] bool bounded() const {
    return lo != kNegInf && hi != kPosInf;
  }
  /// Number of integers in the interval; kUnboundedStates when infinite.
  [[nodiscard]] std::uint64_t width() const;
  [[nodiscard]] Interval join(const Interval& o) const {
    return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }
  /// "[0, 4]", "[0, +inf)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Interval&, const Interval&) = default;
};

struct BoundOptions {
  /// MV042 fires for every parallel component whose predicted bound
  /// exceeds this many states; 0 disables the check (MV040/MV041 still
  /// report).
  std::uint64_t component_budget = 0;
  /// Unstable joins tolerated per definition parameter *per direction*
  /// before that direction is widened to infinity.  The default clears the
  /// guard constants of every in-tree model (queue capacities <= 8, counter
  /// guards < 10), so guard-bounded counters converge exactly; raising it
  /// trades fixpoint passes for exactness on larger constants.
  std::size_t widen_after = 12;
  /// Gates the caller already knows can never fire (e.g. the sync context
  /// of an enclosing composition a component was cut out of).
  GateSet blocked;
};

/// Converged analysis of one reachable definition.
struct DefBound {
  std::string name;
  std::vector<std::string> params;
  /// Converged parameter intervals (joined over every call site), aligned
  /// with params.
  std::vector<Interval> intervals;
  /// States this definition's body contributes under the root's blocked
  /// set (kUnboundedStates when a parameter widened).
  std::uint64_t states = 0;
  bool widened = false;
  /// The MV041 proof path, e.g. "PopSide -> PopSide (owe + 1)"; empty
  /// unless widened.
  std::string widening_path;
};

/// Predicted bound of one top-level parallel component of the root term.
struct ComponentBound {
  std::string name;  ///< callee name or a structural sketch
  std::uint64_t states = 0;
  /// Set when states == kUnboundedStates: which counter diverges.
  std::string cause;
};

struct BoundReport {
  /// Predicted bound of the whole root term (kUnboundedStates when any
  /// factor is unbounded).
  std::uint64_t total = 0;
  [[nodiscard]] bool unbounded() const { return total == kUnboundedStates; }
  /// Top-level parallel components (through par/hide/rename and
  /// zero-argument calls), in term order; total is their product.
  std::vector<ComponentBound> components;
  /// Reachable definitions, name order.
  std::vector<DefBound> defs;
  /// MV040 report + any MV041/MV042 findings.
  std::vector<core::Diagnostic> diagnostics;
  AnalysisStats stats;  ///< states_generated is structurally 0

  /// "predicted <= 1328 states over 4 components (2 defs widened)".
  [[nodiscard]] std::string summary() const;
};

/// Runs the interval fixpoint and the counting pass over closed term
/// @p root of @p program.  Never generates a state; never throws on a
/// model the parser accepted (unknown callees count as one location and
/// are MV001 territory, not ours).
[[nodiscard]] BoundReport predicted_bounds(const proc::Program& program,
                                           const proc::TermPtr& root,
                                           const BoundOptions& opts = {});

/// Convenience: predicted_bounds(...).total.
[[nodiscard]] std::uint64_t predicted_states(const proc::Program& program,
                                             const proc::TermPtr& root,
                                             const BoundOptions& opts = {});

/// Structural bound of a checked xMAS netlist, mirroring the compiler's
/// element semantics exactly: a live queue is one choice location with
/// occupancy in [0, capacity] (capacity+1 states), a drain-only queue
/// init+1, a switch latch 2, a merge arbiter 3 (2 when one feed is
/// starved), a burst source burst+1, free sources and sinks 1; dead
/// structure (outside the carriability fixed point) contributes nothing.
/// Exact (== the explored state count) on pure queue fabrics, an upper
/// bound everywhere else.  Implemented by compiling the netlist and
/// analysing the result, so the factors track the compiler by
/// construction; throws what xmas::compile throws (MV030 structural
/// errors, MV031 deadlocks).
[[nodiscard]] BoundReport predicted_bounds(const xmas::Netlist& n,
                                           const xmas::CompileOptions& copts =
                                               {},
                                           const BoundOptions& opts = {});

[[nodiscard]] std::uint64_t predicted_states(const xmas::Netlist& n,
                                             const xmas::CompileOptions&
                                                 copts = {},
                                             const BoundOptions& opts = {});

}  // namespace multival::analyze
