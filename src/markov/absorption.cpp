#include "markov/absorption.hpp"

#include "markov/transient.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/report.hpp"

namespace multival::markov {

namespace {

/// States from which a state in @p seed is reachable (backward closure
/// over the transition graph).
std::vector<bool> backward_closure(const Ctmc& c, std::vector<bool> seed) {
  const std::size_t n = c.num_states();
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (const RateTransition& t : c.transitions()) {
    pred[t.dst].push_back(t.src);
  }
  std::vector<std::uint32_t> stack;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (seed[s]) {
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (const std::uint32_t p : pred[s]) {
      if (!seed[p]) {
        seed[p] = true;
        stack.push_back(p);
      }
    }
  }
  return seed;
}

}  // namespace

std::vector<double> expected_time_to_absorption(const Ctmc& c,
                                                const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<double> exits = c.exit_rates();

  std::vector<bool> absorbing(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    absorbing[s] = exits[s] <= 0.0;
  }
  // Exact graph-based divergence classification: a state has finite
  // expected time iff it absorbs almost surely, i.e. iff it cannot reach a
  // bottom SCC that is not an absorbing singleton.  (The previous
  // numeric test `reach > 1 - 1e-9` could misclassify whenever the
  // reachability solve converged to a coarser tolerance.)
  const BsccDecomposition d = bscc_decomposition(c);
  std::vector<bool> bad(n, false);
  {
    std::vector<std::uint32_t> comp_size(d.num_components, 0);
    for (std::size_t s = 0; s < n; ++s) {
      ++comp_size[d.component_of[s]];
    }
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t comp = d.component_of[s];
      bad[s] = d.is_bottom[comp] &&
               (comp_size[comp] > 1 || !absorbing[s]);
    }
  }
  const std::vector<bool> diverging = backward_closure(c, std::move(bad));

  std::vector<std::vector<Entry>> out(n);
  for (const RateTransition& t : c.transitions()) {
    out[t.src].push_back(Entry{t.dst, t.rate});
  }

  // Interval (two-sided) value iteration over the finite states.  The
  // Bellman backup  x[s] = (1 + sum_{d != s} rate * x[d]) / (exit - self)
  // is monotone, so a vector started at 0 stays a lower bound under
  // asynchronous sweeps, and any pre-fixpoint (Phi(U) <= U) stays an upper
  // bound.  The upper start is found optimistically: inflate the lower
  // vector and verify the pre-fixpoint property with one Jacobi sweep.
  std::vector<std::uint32_t> active;  // finite, non-absorbing states
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!absorbing[s] && !diverging[s]) {
      active.push_back(s);
    }
  }
  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n, 0.0);

  const auto backup = [&](const std::vector<double>& x, std::uint32_t s) {
    double acc = 1.0;  // one expected sojourn numerator
    double self = 0.0;
    for (const Entry& e : out[s]) {
      if (e.col == s) {
        self += e.value;
      } else if (!diverging[e.col]) {
        acc += e.value * x[e.col];
      }
      // diverging successors are unreachable from finite states
    }
    const double denom = exits[s] - self;
    if (denom <= 0.0) {
      throw SolverFailure(
          "expected_time_to_absorption: self-loop-only state classified "
          "finite");
    }
    return acc / denom;
  };
  // Expected times are unbounded, so the tolerance is relative: all stopping
  // tests scale by max(1, ||x||_inf).  An absolute test would sit below the
  // floating-point resolution of the iterates themselves once values reach
  // ~1e3 / tolerance ~1e-12 (one ulp of 1000 is ~1.1e-13) and never trigger.
  double scale = 1.0;
  const auto sweep = [&](std::vector<double>& x) {
    double delta = 0.0;
    for (const std::uint32_t s : active) {
      const double next = backup(x, s);
      delta = std::max(delta, std::abs(next - x[s]));
      x[s] = next;
      scale = std::max(scale, next);
    }
    return delta;
  };

  std::size_t iterations = 0;
  double width = 0.0;
  if (!active.empty()) {
    // Phase 1: lower iteration to near-convergence.
    for (;; ++iterations) {
      if (iterations >= opts.max_iterations) {
        throw SolverFailure("expected_time_to_absorption: did not converge");
      }
      if (sweep(lower) < opts.tolerance * scale) {
        break;
      }
    }
    // Phase 2: optimistic upper start, verified as a pre-fixpoint.
    double inflation = std::max(opts.tolerance, 1e-12);
    bool verified = false;
    while (!verified) {
      for (const std::uint32_t s : active) {
        upper[s] = lower[s] + inflation * (1.0 + lower[s]);
      }
      verified = true;
      for (const std::uint32_t s : active) {
        if (backup(upper, s) > upper[s]) {  // Jacobi check against old upper
          verified = false;
          break;
        }
      }
      if (!verified) {
        inflation *= 8.0;
        for (int extra = 0; extra < 16; ++extra, ++iterations) {
          (void)sweep(lower);
        }
        if (iterations >= opts.max_iterations) {
          throw SolverFailure(
              "expected_time_to_absorption: no verified upper bound");
        }
      }
    }
    // Phase 3: contract both bounds until the interval is certified.
    for (;; ++iterations) {
      width = 0.0;
      for (const std::uint32_t s : active) {
        width = std::max(width, upper[s] - lower[s]);
      }
      if (width < opts.tolerance * scale) {
        break;
      }
      if (iterations >= opts.max_iterations) {
        throw SolverFailure("expected_time_to_absorption: did not converge");
      }
      (void)sweep(lower);
      (void)sweep(upper);
    }
  }

  std::vector<double> time(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (diverging[s]) {
      time[s] = kInfiniteTime;
    } else if (!absorbing[s]) {
      time[s] = 0.5 * (lower[s] + upper[s]);
    }
  }
  core::record_solve(core::SolveStat{
      "absorption_time[interval]", {}, n, iterations, width,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count()});
  return time;
}

std::vector<double> mean_first_passage_time(const Ctmc& c,
                                            const std::vector<bool>& target,
                                            const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  if (target.size() != n) {
    throw std::invalid_argument("mean_first_passage_time: size mismatch");
  }
  // Copy the chain with target states made absorbing.
  Ctmc cut;
  cut.add_states(n);
  for (const RateTransition& t : c.transitions()) {
    if (!target[t.src]) {
      cut.add_transition(t.src, t.dst, t.rate, t.label);
    }
  }
  return expected_time_to_absorption(cut, opts);
}

namespace {

std::vector<bool> absorbing_set(const Ctmc& c) {
  // One pass over the transitions instead of is_absorbing per state
  // (which rescans the whole transition list each call).
  std::vector<bool> absorbing(c.num_states(), true);
  for (const RateTransition& t : c.transitions()) {
    absorbing[t.src] = false;
  }
  return absorbing;
}

}  // namespace

double absorption_probability_by(const Ctmc& c, double t, double epsilon) {
  return transient_probability(c, absorbing_set(c), t, epsilon);
}

double absorption_time_quantile(const Ctmc& c, double q, double max_horizon) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument(
        "absorption_time_quantile: q must be in (0, 1)");
  }
  // Bracket the quantile by doubling, then bisect.  The absorbing set is
  // computed once and every probe reuses the chain's cached uniformised
  // DTMC; only the Poisson weights differ per probe.
  const std::vector<bool> absorbing = absorbing_set(c);
  const auto probe = [&](double horizon) {
    return transient_probability(c, absorbing, horizon, 1e-12);
  };
  double lo = 0.0;
  double hi = std::max(1e-6, expected_absorption_time_from_initial(c));
  if (std::isinf(hi)) {
    throw SolverFailure(
        "absorption_time_quantile: absorption is not almost sure");
  }
  while (probe(hi) < q) {
    hi *= 2.0;
    if (hi > max_horizon) {
      throw SolverFailure(
          "absorption_time_quantile: quantile beyond max horizon");
    }
  }
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double expected_absorption_time_from_initial(const Ctmc& c,
                                             const SolverOptions& opts) {
  const std::vector<double> time = expected_time_to_absorption(c, opts);
  const std::vector<double> pi0 = c.initial_distribution();
  double acc = 0.0;
  for (std::size_t s = 0; s < time.size(); ++s) {
    if (pi0[s] > 0.0) {
      if (std::isinf(time[s])) {
        return kInfiniteTime;
      }
      acc += pi0[s] * time[s];
    }
  }
  return acc;
}

}  // namespace multival::markov
