#include "markov/absorption.hpp"

#include "markov/transient.hpp"

#include <cmath>
#include <stdexcept>

namespace multival::markov {

std::vector<double> expected_time_to_absorption(const Ctmc& c,
                                                const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  const std::vector<double> exits = c.exit_rates();

  std::vector<bool> absorbing(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    absorbing[s] = exits[s] <= 0.0;
  }
  // Which states reach absorption with probability 1?  A state has finite
  // expected time iff it cannot reach a non-absorbing BSCC and can reach an
  // absorbing state.  We compute reach probability and require ~1.
  const std::vector<double> reach =
      reachability_probability(c, absorbing, opts);

  std::vector<std::vector<Entry>> out(n);
  for (const RateTransition& t : c.transitions()) {
    out[t.src].push_back(Entry{t.dst, t.rate});
  }

  std::vector<double> time(n, 0.0);
  std::vector<bool> finite(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    finite[s] = absorbing[s] || reach[s] > 1.0 - 1e-9;
  }
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (absorbing[s] || !finite[s]) {
        continue;
      }
      double acc = 1.0;  // one expected sojourn numerator
      double self = 0.0;
      for (const Entry& e : out[s]) {
        if (e.col == s) {
          self += e.value;
        } else if (finite[e.col]) {
          acc += e.value * time[e.col];
        }
      }
      const double denom = exits[s] - self;
      if (denom <= 0.0) {
        throw SolverFailure(
            "expected_time_to_absorption: self-loop-only state marked "
            "finite");
      }
      const double next = acc / denom;
      delta = std::max(delta, std::abs(next - time[s]));
      time[s] = next;
    }
    if (delta < opts.tolerance) {
      break;
    }
    if (iter + 1 == opts.max_iterations) {
      throw SolverFailure("expected_time_to_absorption: did not converge");
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!finite[s]) {
      time[s] = kInfiniteTime;
    }
  }
  return time;
}

std::vector<double> mean_first_passage_time(const Ctmc& c,
                                            const std::vector<bool>& target,
                                            const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  if (target.size() != n) {
    throw std::invalid_argument("mean_first_passage_time: size mismatch");
  }
  // Copy the chain with target states made absorbing.
  Ctmc cut;
  cut.add_states(n);
  for (const RateTransition& t : c.transitions()) {
    if (!target[t.src]) {
      cut.add_transition(t.src, t.dst, t.rate, t.label);
    }
  }
  return expected_time_to_absorption(cut, opts);
}

double absorption_probability_by(const Ctmc& c, double t, double epsilon) {
  std::vector<bool> absorbing(c.num_states(), false);
  for (MState s = 0; s < c.num_states(); ++s) {
    absorbing[s] = c.is_absorbing(s);
  }
  return transient_probability(c, absorbing, t, epsilon);
}

double absorption_time_quantile(const Ctmc& c, double q, double max_horizon) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument(
        "absorption_time_quantile: q must be in (0, 1)");
  }
  // Bracket the quantile by doubling, then bisect.
  double lo = 0.0;
  double hi = std::max(1e-6, expected_absorption_time_from_initial(c));
  if (std::isinf(hi)) {
    throw SolverFailure(
        "absorption_time_quantile: absorption is not almost sure");
  }
  while (absorption_probability_by(c, hi) < q) {
    hi *= 2.0;
    if (hi > max_horizon) {
      throw SolverFailure(
          "absorption_time_quantile: quantile beyond max horizon");
    }
  }
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (absorption_probability_by(c, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double expected_absorption_time_from_initial(const Ctmc& c,
                                             const SolverOptions& opts) {
  const std::vector<double> time = expected_time_to_absorption(c, opts);
  const std::vector<double> pi0 = c.initial_distribution();
  double acc = 0.0;
  for (std::size_t s = 0; s < time.size(); ++s) {
    if (pi0[s] > 0.0) {
      if (std::isinf(time[s])) {
        return kInfiniteTime;
      }
      acc += pi0[s] * time[s];
    }
  }
  return acc;
}

}  // namespace multival::markov
