#include "markov/rewards.hpp"

#include <cmath>
#include <stdexcept>

#include "markov/absorption.hpp"
#include "mc/formula.hpp"

namespace multival::markov {

namespace {

/// Shared Gauss–Seidel skeleton for "expected accumulated quantity until
/// absorption": solves x(s) = (gain(s) + sum_{u != s} R(s,u) x(u)) /
/// (E(s) - R(s,s)) on the states that reach absorption almost surely.
std::vector<double> accumulate_until_absorption(
    const Ctmc& c, const std::vector<double>& gain,
    const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  const std::vector<double> exits = c.exit_rates();

  std::vector<bool> absorbing(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    absorbing[s] = exits[s] <= 0.0;
  }
  const std::vector<double> reach =
      reachability_probability(c, absorbing, opts);

  std::vector<std::vector<Entry>> out(n);
  for (const RateTransition& t : c.transitions()) {
    out[t.src].push_back(Entry{t.dst, t.rate});
  }

  std::vector<bool> finite(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    finite[s] = absorbing[s] || reach[s] > 1.0 - 1e-9;
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (absorbing[s] || !finite[s]) {
        continue;
      }
      double acc = gain[s];
      double self = 0.0;
      for (const Entry& e : out[s]) {
        if (e.col == s) {
          self += e.value;
        } else if (finite[e.col]) {
          acc += e.value * x[e.col];
        }
      }
      const double denom = exits[s] - self;
      if (denom <= 0.0) {
        throw SolverFailure(
            "accumulate_until_absorption: self-loop-only state");
      }
      const double next = acc / denom;
      delta = std::max(delta, std::abs(next - x[s]));
      x[s] = next;
    }
    if (delta < opts.tolerance) {
      break;
    }
    if (iter + 1 == opts.max_iterations) {
      throw SolverFailure("accumulate_until_absorption: did not converge");
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!finite[s]) {
      x[s] = kInfiniteTime;
    }
  }
  return x;
}

}  // namespace

std::vector<double> expected_accumulated_reward(const Ctmc& c,
                                                std::span<const double> reward,
                                                const SolverOptions& opts) {
  if (reward.size() != c.num_states()) {
    throw std::invalid_argument("expected_accumulated_reward: size mismatch");
  }
  // gain(s) = reward(s): the sojourn integral contributes reward * time,
  // and the skeleton divides by the effective exit rate.
  std::vector<double> gain(reward.begin(), reward.end());
  return accumulate_until_absorption(c, gain, opts);
}

std::vector<double> expected_transition_count(const Ctmc& c,
                                              std::string_view label_glob,
                                              const SolverOptions& opts) {
  // gain(s) = sum of matching outgoing rates: each jump via a matching
  // transition contributes one count, and rate/E(s) is its probability
  // weight per sojourn.
  std::vector<double> gain(c.num_states(), 0.0);
  for (const RateTransition& t : c.transitions()) {
    if (mc::glob_match(label_glob, t.label)) {
      gain[t.src] += t.rate;
    }
  }
  return accumulate_until_absorption(c, gain, opts);
}

}  // namespace multival::markov
