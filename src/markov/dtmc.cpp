#include "markov/dtmc.hpp"

#include <cmath>
#include <stdexcept>

namespace multival::markov {

Dtmc::Dtmc(SparseMatrix p, std::vector<double> initial)
    : p_(std::move(p)), initial_(std::move(initial)) {
  if (p_.num_rows() != p_.num_cols()) {
    throw std::invalid_argument("Dtmc: matrix must be square");
  }
  if (initial_.size() != p_.num_rows()) {
    throw std::invalid_argument("Dtmc: initial distribution size mismatch");
  }
  std::vector<Triplet> fixups;
  for (std::size_t r = 0; r < p_.num_rows(); ++r) {
    double sum = 0.0;
    for (const Entry& e : p_.row(r)) {
      if (e.value < -1e-12) {
        throw std::invalid_argument("Dtmc: negative probability");
      }
      sum += e.value;
    }
    if (p_.row(r).empty()) {
      fixups.push_back(Triplet{static_cast<std::uint32_t>(r),
                               static_cast<std::uint32_t>(r), 1.0});
    } else if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("Dtmc: row " + std::to_string(r) +
                                  " sums to " + std::to_string(sum));
    }
  }
  if (!fixups.empty()) {
    for (std::size_t r = 0; r < p_.num_rows(); ++r) {
      for (const Entry& e : p_.row(r)) {
        fixups.push_back(Triplet{static_cast<std::uint32_t>(r), e.col,
                                 e.value});
      }
    }
    p_ = SparseMatrix::from_triplets(p_.num_rows(), p_.num_cols(),
                                     std::move(fixups));
  }
}

std::vector<double> Dtmc::distribution_after(std::size_t steps) const {
  std::vector<double> v = initial_;
  for (std::size_t k = 0; k < steps; ++k) {
    v = p_.multiply_left(v);
  }
  return v;
}

std::vector<double> Dtmc::stationary(const SolverOptions& opts) const {
  const std::size_t n = num_states();
  if (n == 0) {
    return {};
  }
  // Power iteration on the damped kernel (P + I) / 2: the damping removes
  // periodicity without changing the stationary distribution, so plain
  // iteration converges geometrically.
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    std::vector<double> next = p_.multiply_left(v);
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      next[s] = 0.5 * (next[s] + v[s]);
      delta = std::max(delta, std::abs(next[s] - v[s]));
    }
    v = std::move(next);
    if (delta < opts.tolerance) {
      break;
    }
  }
  double total = 0.0;
  for (const double x : v) {
    total += x;
  }
  for (double& x : v) {
    x /= total;
  }
  return v;
}

Dtmc embedded_dtmc(const Ctmc& c) {
  const std::vector<double> exits = c.exit_rates();
  std::vector<Triplet> ts;
  ts.reserve(c.transitions().size());
  for (const RateTransition& t : c.transitions()) {
    ts.push_back(Triplet{t.src, t.dst, t.rate / exits[t.src]});
  }
  SparseMatrix p = SparseMatrix::from_triplets(c.num_states(),
                                               c.num_states(), std::move(ts));
  return Dtmc(std::move(p), c.initial_distribution());
}

}  // namespace multival::markov
