#include "markov/sparse.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"

namespace multival::markov {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> ts) {
  for (const Triplet& t : ts) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("SparseMatrix: triplet out of range");
    }
  }
  std::sort(ts.begin(), ts.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  SparseMatrix m;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.entries_.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < ts.size() && ts[j].row == ts[i].row && ts[j].col == ts[i].col) {
      sum += ts[j].value;
      ++j;
    }
    m.entries_.push_back(Entry{ts[i].col, sum});
    ++m.row_ptr_[ts[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  // CSC side by counting sort of the deduplicated CSR entries; within each
  // column the entries stay in increasing row order, which fixes the
  // accumulation order of multiply_left.
  m.col_ptr_.assign(cols + 1, 0);
  for (const Entry& e : m.entries_) {
    ++m.col_ptr_[e.col + 1];
  }
  for (std::size_t c = 0; c < cols; ++c) {
    m.col_ptr_[c + 1] += m.col_ptr_[c];
  }
  m.centries_.resize(m.entries_.size());
  std::vector<std::size_t> next(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = m.row_ptr_[r]; k < m.row_ptr_[r + 1]; ++k) {
      const Entry& e = m.entries_[k];
      m.centries_[next[e.col]++] =
          Entry{static_cast<std::uint32_t>(r), e.value};
    }
  }
  return m;
}

std::span<const Entry> SparseMatrix::row(std::size_t i) const {
  if (i + 1 >= row_ptr_.size()) {
    throw std::out_of_range("SparseMatrix::row");
  }
  return {entries_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

std::span<const Entry> SparseMatrix::column(std::size_t j) const {
  if (j + 1 >= col_ptr_.size()) {
    throw std::out_of_range("SparseMatrix::column");
  }
  return {centries_.data() + col_ptr_[j], col_ptr_[j + 1] - col_ptr_[j]};
}

std::vector<double> SparseMatrix::multiply_left(
    std::span<const double> x) const {
  if (x.size() != num_rows()) {
    throw std::invalid_argument("multiply_left: size mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  const std::size_t grain =
      num_nonzeros() < kParallelNonzeros ? cols_ + 1 : 512;
  core::parallel_for(cols_, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      double acc = 0.0;
      for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
        acc += x[centries_[k].col] * centries_[k].value;
      }
      y[c] = acc;
    }
  });
  return y;
}

std::vector<double> SparseMatrix::multiply_right(
    std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("multiply_right: size mismatch");
  }
  const std::size_t rows = num_rows();
  std::vector<double> y(rows, 0.0);
  const std::size_t grain =
      num_nonzeros() < kParallelNonzeros ? rows + 1 : 512;
  core::parallel_for(rows, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += entries_[k].value * x[entries_[k].col];
      }
      y[r] = acc;
    }
  });
  return y;
}

SparseMatrix SparseMatrix::transpose() const {
  // The CSC layout *is* the transposed CSR layout: swap the two sides.
  SparseMatrix t;
  t.cols_ = num_rows();
  t.row_ptr_ = col_ptr_;
  t.entries_ = centries_;
  t.col_ptr_ = row_ptr_;
  t.centries_ = entries_;
  if (t.row_ptr_.empty()) {
    t.row_ptr_.assign(1, 0);
  }
  if (t.col_ptr_.empty()) {
    t.col_ptr_.assign(1, 0);
  }
  return t;
}

}  // namespace multival::markov
