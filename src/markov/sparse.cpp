#include "markov/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace multival::markov {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> ts) {
  for (const Triplet& t : ts) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("SparseMatrix: triplet out of range");
    }
  }
  std::sort(ts.begin(), ts.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  SparseMatrix m;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.entries_.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < ts.size() && ts[j].row == ts[i].row && ts[j].col == ts[i].col) {
      sum += ts[j].value;
      ++j;
    }
    m.entries_.push_back(Entry{ts[i].col, sum});
    ++m.row_ptr_[ts[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

std::span<const Entry> SparseMatrix::row(std::size_t i) const {
  if (i + 1 >= row_ptr_.size()) {
    throw std::out_of_range("SparseMatrix::row");
  }
  return {entries_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

std::vector<double> SparseMatrix::multiply_left(
    std::span<const double> x) const {
  if (x.size() != num_rows()) {
    throw std::invalid_argument("multiply_left: size mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < num_rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    for (const Entry& e : row(r)) {
      y[e.col] += xr * e.value;
    }
  }
  return y;
}

std::vector<double> SparseMatrix::multiply_right(
    std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("multiply_right: size mismatch");
  }
  std::vector<double> y(num_rows(), 0.0);
  for (std::size_t r = 0; r < num_rows(); ++r) {
    double acc = 0.0;
    for (const Entry& e : row(r)) {
      acc += e.value * x[e.col];
    }
    y[r] = acc;
  }
  return y;
}

SparseMatrix SparseMatrix::transpose() const {
  std::vector<Triplet> ts;
  ts.reserve(entries_.size());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (const Entry& e : row(r)) {
      ts.push_back(Triplet{e.col, static_cast<std::uint32_t>(r), e.value});
    }
  }
  return from_triplets(cols_, num_rows(), std::move(ts));
}

}  // namespace multival::markov
