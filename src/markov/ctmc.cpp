#include "markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mc/formula.hpp"

namespace multival::markov {

namespace {
constexpr double kMinLambda = 1e-9;
}

Ctmc::Ctmc(const Ctmc& other)
    : num_states_(other.num_states_),
      transitions_(other.transitions_),
      initial_(other.initial_),
      initial_state_(other.initial_state_) {}

Ctmc& Ctmc::operator=(const Ctmc& other) {
  if (this != &other) {
    num_states_ = other.num_states_;
    transitions_ = other.transitions_;
    initial_ = other.initial_;
    initial_state_ = other.initial_state_;
    invalidate_cache();
  }
  return *this;
}

Ctmc::Ctmc(Ctmc&& other) noexcept
    : num_states_(other.num_states_),
      transitions_(std::move(other.transitions_)),
      initial_(std::move(other.initial_)),
      initial_state_(other.initial_state_) {}

Ctmc& Ctmc::operator=(Ctmc&& other) noexcept {
  if (this != &other) {
    num_states_ = other.num_states_;
    transitions_ = std::move(other.transitions_);
    initial_ = std::move(other.initial_);
    initial_state_ = other.initial_state_;
    invalidate_cache();
  }
  return *this;
}

void Ctmc::invalidate_cache() {
  const core::MutexLock lock(cache_mutex_);
  cache_.rate.reset();
  cache_.uniformized.reset();
  cache_.lambda = 0.0;
  cache_.factor = 0.0;
}

MState Ctmc::add_state() {
  return add_states(1);
}

MState Ctmc::add_states(std::size_t n) {
  const auto first = static_cast<MState>(num_states_);
  num_states_ += n;
  invalidate_cache();
  return first;
}

void Ctmc::check_state(MState s, const char* what) const {
  if (s >= num_states_) {
    throw std::out_of_range(std::string("Ctmc: unknown state in ") + what);
  }
}

void Ctmc::add_transition(MState src, MState dst, double rate,
                          std::string_view label) {
  check_state(src, "add_transition(src)");
  check_state(dst, "add_transition(dst)");
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Ctmc::add_transition: rate must be > 0");
  }
  transitions_.push_back(
      RateTransition{src, dst, rate, std::string(label)});
  invalidate_cache();
}

void Ctmc::set_initial_state(MState s) {
  check_state(s, "set_initial_state");
  initial_state_ = s;
  initial_.clear();
}

void Ctmc::set_initial_distribution(std::vector<double> pi0) {
  if (pi0.size() != num_states_) {
    throw std::invalid_argument("set_initial_distribution: size mismatch");
  }
  double sum = 0.0;
  for (const double p : pi0) {
    if (p < 0.0) {
      throw std::invalid_argument(
          "set_initial_distribution: negative probability");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(
        "set_initial_distribution: probabilities must sum to 1");
  }
  initial_ = std::move(pi0);
}

std::vector<double> Ctmc::initial_distribution() const {
  if (!initial_.empty()) {
    return initial_;
  }
  std::vector<double> pi0(num_states_, 0.0);
  if (num_states_ > 0) {
    pi0[initial_state_] = 1.0;
  }
  return pi0;
}

std::vector<double> Ctmc::exit_rates() const {
  std::vector<double> e(num_states_, 0.0);
  for (const RateTransition& t : transitions_) {
    e[t.src] += t.rate;
  }
  return e;
}

const SparseMatrix& Ctmc::rate_matrix() const {
  const core::MutexLock lock(cache_mutex_);
  if (!cache_.rate) {
    std::vector<Triplet> ts;
    ts.reserve(transitions_.size());
    for (const RateTransition& t : transitions_) {
      ts.push_back(Triplet{t.src, t.dst, t.rate});
    }
    cache_.rate = std::make_unique<const SparseMatrix>(
        SparseMatrix::from_triplets(num_states_, num_states_, std::move(ts)));
  }
  return *cache_.rate;
}

const SparseMatrix& Ctmc::uniformized_dtmc(double& lambda_out,
                                           double factor) const {
  const core::MutexLock lock(cache_mutex_);
  if (!cache_.uniformized || cache_.factor != factor) {
    const std::vector<double> exits = exit_rates();
    double max_exit = 0.0;
    for (const double e : exits) {
      max_exit = std::max(max_exit, e);
    }
    const double lambda = std::max(max_exit * factor, kMinLambda);

    std::vector<Triplet> ts;
    ts.reserve(transitions_.size() + num_states_);
    for (const RateTransition& t : transitions_) {
      ts.push_back(Triplet{t.src, t.dst, t.rate / lambda});
    }
    for (MState s = 0; s < num_states_; ++s) {
      const double self = 1.0 - exits[s] / lambda;
      if (self > 0.0) {
        ts.push_back(Triplet{s, s, self});
      }
    }
    cache_.uniformized = std::make_unique<const SparseMatrix>(
        SparseMatrix::from_triplets(num_states_, num_states_, std::move(ts)));
    cache_.lambda = lambda;
    cache_.factor = factor;
  }
  lambda_out = cache_.lambda;
  return *cache_.uniformized;
}

bool Ctmc::is_absorbing(MState s) const {
  check_state(s, "is_absorbing");
  for (const RateTransition& t : transitions_) {
    if (t.src == s) {
      return false;
    }
  }
  return true;
}

double expected_reward(std::span<const double> pi,
                       std::span<const double> reward) {
  if (pi.size() != reward.size()) {
    throw std::invalid_argument("expected_reward: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    acc += pi[i] * reward[i];
  }
  return acc;
}

double throughput(const Ctmc& c, std::span<const double> pi,
                  std::string_view label_glob) {
  if (pi.size() != c.num_states()) {
    throw std::invalid_argument("throughput: size mismatch");
  }
  double acc = 0.0;
  for (const RateTransition& t : c.transitions()) {
    if (mc::glob_match(label_glob, t.label)) {
      acc += pi[t.src] * t.rate;
    }
  }
  return acc;
}

}  // namespace multival::markov
