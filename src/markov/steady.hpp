// Steady-state analysis of CTMCs (the role of BCG_STEADY in CADP).
//
// Irreducible chains are solved by Gauss–Seidel on the global balance
// equations.  Reducible chains are decomposed into bottom strongly connected
// components (BSCCs): each BSCC is solved locally and weighted by the
// probability of reaching it from the initial distribution.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "markov/ctmc.hpp"

namespace multival::markov {

struct SolverOptions {
  /// Certified interval width at which iteration stops: absolute for
  /// probabilities (values in [0,1]), relative to max(1, largest value)
  /// for expected times (values unbounded).
  double tolerance = 1e-12;
  std::size_t max_iterations = 200000;
};

/// Thrown when an iterative solver fails to reach the tolerance.
struct SolverFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Steady-state distribution of @p c from its initial distribution.
/// Works for reducible chains (BSCC decomposition).
[[nodiscard]] std::vector<double> steady_state(const Ctmc& c,
                                               const SolverOptions& opts = {});

/// Bottom strongly connected components of the rate graph.
struct BsccDecomposition {
  /// scc id of each state.
  std::vector<std::uint32_t> component_of;
  std::size_t num_components = 0;
  /// Which components are bottom (no edge leaving the component).
  std::vector<bool> is_bottom;
};
[[nodiscard]] BsccDecomposition bscc_decomposition(const Ctmc& c);

/// Probability, for each state, of eventually reaching @p target (a state
/// set); computed on the embedded jump chain by Gauss–Seidel.
[[nodiscard]] std::vector<double> reachability_probability(
    const Ctmc& c, const std::vector<bool>& target,
    const SolverOptions& opts = {});

}  // namespace multival::markov
