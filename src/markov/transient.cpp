#include "markov/transient.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/report.hpp"

namespace multival::markov {

PoissonWeights poisson_weights(double lambda_t, double epsilon) {
  if (lambda_t < 0.0 || !std::isfinite(lambda_t)) {
    throw std::invalid_argument("poisson_weights: bad lambda*t");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    throw std::invalid_argument("poisson_weights: epsilon must be in (0,1)");
  }
  PoissonWeights out;
  if (lambda_t == 0.0) {
    out.weights = {1.0};
    return out;
  }
  // Work outwards from the mode with the ratio recurrence
  // p(k+1)/p(k) = lambda_t/(k+1), in scaled arithmetic (mode weight = 1),
  // then normalise.  Truncation is controlled by the *total dropped mass*:
  // the weight ratios shrink monotonically away from the mode, so once the
  // next ratio r is below 1 the untruncated remainder of that side is
  // bounded by the geometric tail w * r / (1 - r).  Each side cuts when
  // that bound drops below (epsilon/2) of the scaled mass accumulated so
  // far (a lower bound on the final normaliser), which keeps the two-sided
  // relative truncation error below epsilon.  The previous per-weight
  // cutoff (epsilon * 1e-4 relative to the mode weight) bounded no such
  // total.
  const auto mode = static_cast<long long>(std::floor(lambda_t));
  constexpr double kUnderflow = 1e-300;  // stop once scaled weights vanish

  double total = 1.0;  // scaled mass kept so far (mode weight included)

  std::vector<double> down;  // weights for k = mode-1, mode-2, ...
  double w = 1.0;
  for (long long k = mode; k > 0; --k) {
    const double r = static_cast<double>(k) / lambda_t;  // w(k-1) / w(k)
    if (r < 1.0 && w * r / (1.0 - r) <= 0.5 * epsilon * total) {
      break;  // the whole remaining lower tail is negligible
    }
    w *= r;
    if (w < kUnderflow) {
      break;
    }
    down.push_back(w);
    total += w;
  }
  std::vector<double> up;  // weights for k = mode+1, ...
  w = 1.0;
  for (long long k = mode;; ++k) {
    const double r = lambda_t / static_cast<double>(k + 1);  // w(k+1) / w(k)
    // r < 1 always holds here: k >= mode = floor(lambda_t).
    if (w * r / (1.0 - r) <= 0.5 * epsilon * total) {
      break;
    }
    w *= r;
    if (w < kUnderflow) {
      break;
    }
    up.push_back(w);
    total += w;
  }

  out.left = static_cast<std::size_t>(mode - static_cast<long long>(down.size()));
  out.weights.reserve(down.size() + 1 + up.size());
  for (auto it = down.rbegin(); it != down.rend(); ++it) {
    out.weights.push_back(*it);
  }
  out.weights.push_back(1.0);
  for (const double u : up) {
    out.weights.push_back(u);
  }
  for (double& x : out.weights) {
    x /= total;
  }
  return out;
}

std::vector<double> transient_distribution(const Ctmc& c, double t,
                                           double epsilon) {
  if (t < 0.0) {
    throw std::invalid_argument("transient_distribution: negative time");
  }
  std::vector<double> v = c.initial_distribution();
  if (t == 0.0 || c.num_states() == 0) {
    return v;
  }
  const auto t0 = std::chrono::steady_clock::now();
  double lambda = 0.0;
  const SparseMatrix& p = c.uniformized_dtmc(lambda);
  const PoissonWeights pw = poisson_weights(lambda * t, epsilon);

  const std::size_t n = c.num_states();
  std::vector<double> acc(n, 0.0);
  const std::size_t grain = n < (1u << 14) ? n + 1 : 4096;
  const std::size_t last = pw.left + pw.weights.size() - 1;
  for (std::size_t k = 0; k <= last; ++k) {
    if (k >= pw.left) {
      const double w = pw.weights[k - pw.left];
      core::parallel_for(n, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          acc[s] += w * v[s];
        }
      });
    }
    if (k < last) {
      v = p.multiply_left(v);
    }
  }
  core::record_solve(core::SolveStat{
      "transient[uniformization]", {}, n, last, epsilon,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count()});
  return acc;
}

double transient_probability(const Ctmc& c, const std::vector<bool>& set,
                             double t, double epsilon) {
  if (set.size() != c.num_states()) {
    throw std::invalid_argument("transient_probability: size mismatch");
  }
  const std::vector<double> pi = transient_distribution(c, t, epsilon);
  double acc = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (set[s]) {
      acc += pi[s];
    }
  }
  return acc;
}

double bounded_reachability(const Ctmc& c, const std::vector<bool>& target,
                            double t, double epsilon) {
  if (target.size() != c.num_states()) {
    throw std::invalid_argument("bounded_reachability: size mismatch");
  }
  // Make the target absorbing: once reached, stay.
  Ctmc cut;
  cut.add_states(c.num_states());
  for (const RateTransition& tr : c.transitions()) {
    if (!target[tr.src]) {
      cut.add_transition(tr.src, tr.dst, tr.rate, tr.label);
    }
  }
  cut.set_initial_distribution(c.initial_distribution());
  return transient_probability(cut, target, t, epsilon);
}

}  // namespace multival::markov
