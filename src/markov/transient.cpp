#include "markov/transient.hpp"

#include <cmath>
#include <stdexcept>

namespace multival::markov {

PoissonWeights poisson_weights(double lambda_t, double epsilon) {
  if (lambda_t < 0.0 || !std::isfinite(lambda_t)) {
    throw std::invalid_argument("poisson_weights: bad lambda*t");
  }
  PoissonWeights out;
  if (lambda_t == 0.0) {
    out.weights = {1.0};
    return out;
  }
  // Work outwards from the mode with the ratio recurrence
  // p(k+1)/p(k) = lambda_t/(k+1), in scaled arithmetic (mode weight = 1),
  // then normalise.  This is the simplified Fox–Glynn scheme: the scaled
  // tail weights fall below any epsilon quickly, and the final division by
  // the scaled total compensates the truncation.
  const auto mode = static_cast<long long>(std::floor(lambda_t));
  const double cutoff = epsilon * 1e-4;  // relative to the mode weight

  std::vector<double> down;  // weights for k = mode-1, mode-2, ...
  double w = 1.0;
  for (long long k = mode; k > 0; --k) {
    w *= static_cast<double>(k) / lambda_t;
    if (w < cutoff) {
      break;
    }
    down.push_back(w);
  }
  std::vector<double> up;  // weights for k = mode+1, ...
  w = 1.0;
  for (long long k = mode + 1;; ++k) {
    w *= lambda_t / static_cast<double>(k);
    if (w < cutoff) {
      break;
    }
    up.push_back(w);
  }

  out.left = static_cast<std::size_t>(mode - static_cast<long long>(down.size()));
  out.weights.reserve(down.size() + 1 + up.size());
  for (auto it = down.rbegin(); it != down.rend(); ++it) {
    out.weights.push_back(*it);
  }
  out.weights.push_back(1.0);
  for (const double u : up) {
    out.weights.push_back(u);
  }
  double total = 0.0;
  for (const double x : out.weights) {
    total += x;
  }
  for (double& x : out.weights) {
    x /= total;
  }
  return out;
}

std::vector<double> transient_distribution(const Ctmc& c, double t,
                                           double epsilon) {
  if (t < 0.0) {
    throw std::invalid_argument("transient_distribution: negative time");
  }
  std::vector<double> v = c.initial_distribution();
  if (t == 0.0 || c.num_states() == 0) {
    return v;
  }
  double lambda = 0.0;
  const SparseMatrix p = c.uniformized_dtmc(lambda);
  const PoissonWeights pw = poisson_weights(lambda * t, epsilon);

  std::vector<double> acc(c.num_states(), 0.0);
  const std::size_t last = pw.left + pw.weights.size() - 1;
  for (std::size_t k = 0; k <= last; ++k) {
    if (k >= pw.left) {
      const double w = pw.weights[k - pw.left];
      for (std::size_t s = 0; s < acc.size(); ++s) {
        acc[s] += w * v[s];
      }
    }
    if (k < last) {
      v = p.multiply_left(v);
    }
  }
  return acc;
}

double transient_probability(const Ctmc& c, const std::vector<bool>& set,
                             double t, double epsilon) {
  if (set.size() != c.num_states()) {
    throw std::invalid_argument("transient_probability: size mismatch");
  }
  const std::vector<double> pi = transient_distribution(c, t, epsilon);
  double acc = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (set[s]) {
      acc += pi[s];
    }
  }
  return acc;
}

double bounded_reachability(const Ctmc& c, const std::vector<bool>& target,
                            double t, double epsilon) {
  if (target.size() != c.num_states()) {
    throw std::invalid_argument("bounded_reachability: size mismatch");
  }
  // Make the target absorbing: once reached, stay.
  Ctmc cut;
  cut.add_states(c.num_states());
  for (const RateTransition& tr : c.transitions()) {
    if (!target[tr.src]) {
      cut.add_transition(tr.src, tr.dst, tr.rate, tr.label);
    }
  }
  cut.set_initial_distribution(c.initial_distribution());
  return transient_probability(cut, target, t, epsilon);
}

}  // namespace multival::markov
