// Continuous-Time Markov Chains with optionally-labelled transitions.
//
// Labels serve throughput queries in the style of CADP's BCG_STEADY: the
// throughput of label L under steady-state distribution pi is
// sum over transitions (s -rate,L-> t) of pi(s) * rate.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.hpp"
#include "markov/sparse.hpp"

namespace multival::markov {

using MState = std::uint32_t;

struct RateTransition {
  MState src = 0;
  MState dst = 0;
  double rate = 0.0;
  std::string label;  // empty = unlabelled
};

class Ctmc {
 public:
  Ctmc() = default;

  MState add_state();
  MState add_states(std::size_t n);

  /// Adds a transition with positive @p rate.
  void add_transition(MState src, MState dst, double rate,
                      std::string_view label = {});

  [[nodiscard]] std::size_t num_states() const { return num_states_; }
  [[nodiscard]] std::size_t num_transitions() const {
    return transitions_.size();
  }
  [[nodiscard]] const std::vector<RateTransition>& transitions() const {
    return transitions_;
  }

  void set_initial_state(MState s);
  /// Sets a full initial distribution (must sum to ~1).
  void set_initial_distribution(std::vector<double> pi0);
  [[nodiscard]] std::vector<double> initial_distribution() const;

  /// Total outgoing rate of each state.
  [[nodiscard]] std::vector<double> exit_rates() const;

  /// Rate matrix R (R[s][t] = sum of rates s->t), as CSR.  Built on first
  /// use and cached; the reference stays valid until the chain is mutated.
  [[nodiscard]] const SparseMatrix& rate_matrix() const;

  /// Uniformised DTMC P = I + Q/lambda with lambda = factor * max exit rate
  /// (at least kMinLambda); returns P and stores lambda in @p lambda_out.
  /// Cached per @p factor like rate_matrix(), so repeated transient solves
  /// (e.g. quantile bisection) do not rebuild the triplets.
  [[nodiscard]] const SparseMatrix& uniformized_dtmc(double& lambda_out,
                                                     double factor = 1.02) const;

  /// True if @p s has no outgoing transition.
  [[nodiscard]] bool is_absorbing(MState s) const;

 private:
  void check_state(MState s, const char* what) const;
  void invalidate_cache();

  std::size_t num_states_ = 0;
  std::vector<RateTransition> transitions_;
  std::vector<double> initial_;  // empty = point mass on initial_state_
  MState initial_state_ = 0;

  // Derived-matrix cache.  Copying a chain drops the cache (it is rebuilt
  // on demand); mutation invalidates it.  Guarded so concurrent *solves*
  // on one const chain are safe; concurrent mutation is not (as before).
  struct MatrixCache {
    std::unique_ptr<const SparseMatrix> rate;
    std::unique_ptr<const SparseMatrix> uniformized;
    double lambda = 0.0;
    double factor = 0.0;
  };
  mutable core::Mutex cache_mutex_;
  mutable MatrixCache cache_ MV_GUARDED_BY(cache_mutex_);

 public:
  Ctmc(const Ctmc& other);
  Ctmc& operator=(const Ctmc& other);
  Ctmc(Ctmc&& other) noexcept;
  Ctmc& operator=(Ctmc&& other) noexcept;
};

/// Expected value of @p reward under distribution @p pi.
[[nodiscard]] double expected_reward(std::span<const double> pi,
                                     std::span<const double> reward);

/// Throughput of all transitions whose label matches @p label_glob
/// ('*'/'?' wildcards, as in mc::glob_match) under distribution @p pi.
[[nodiscard]] double throughput(const Ctmc& c, std::span<const double> pi,
                                std::string_view label_glob);

}  // namespace multival::markov
