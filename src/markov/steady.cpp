#include "markov/steady.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/report.hpp"

namespace multival::markov {

namespace {

/// Iterative Tarjan over an adjacency list.
std::pair<std::vector<std::uint32_t>, std::size_t> tarjan(
    const std::vector<std::vector<std::uint32_t>>& adj) {
  const std::size_t n = adj.size();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> comp(n, kUnvisited);
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };
  std::vector<Frame> call;
  std::uint32_t next_index = 0;
  std::size_t ncomp = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      const std::uint32_t v = fr.v;
      bool descended = false;
      while (fr.edge < adj[v].size()) {
        const std::uint32_t w = adj[v][fr.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::uint32_t w = kUnvisited;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = static_cast<std::uint32_t>(ncomp);
        } while (w != v);
        ++ncomp;
      }
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }
  return {std::move(comp), ncomp};
}

}  // namespace

BsccDecomposition bscc_decomposition(const Ctmc& c) {
  const std::size_t n = c.num_states();
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const RateTransition& t : c.transitions()) {
    adj[t.src].push_back(t.dst);
  }
  auto [comp, ncomp] = tarjan(adj);
  std::vector<bool> bottom(ncomp, true);
  for (const RateTransition& t : c.transitions()) {
    if (comp[t.src] != comp[t.dst]) {
      bottom[comp[t.src]] = false;
    }
  }
  return BsccDecomposition{std::move(comp), ncomp, std::move(bottom)};
}

namespace {

/// Gauss–Seidel solve of the local steady state of an irreducible sub-chain
/// given by @p members (global state ids).  Accumulates sweeps into
/// @p iterations for solve telemetry.
std::vector<double> solve_bscc(const Ctmc& c,
                               const std::vector<std::uint32_t>& members,
                               const SolverOptions& opts,
                               std::size_t& iterations) {
  const std::size_t m = members.size();
  if (m == 1) {
    return {1.0};
  }
  std::vector<std::uint32_t> local(c.num_states(),
                                   static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < m; ++i) {
    local[members[i]] = static_cast<std::uint32_t>(i);
  }
  // Incoming edges within the BSCC and local exit rates.
  std::vector<std::vector<Entry>> in(m);
  std::vector<double> exit(m, 0.0);
  for (const RateTransition& t : c.transitions()) {
    const std::uint32_t ls = local[t.src];
    const std::uint32_t ld = local[t.dst];
    if (ls == static_cast<std::uint32_t>(-1)) {
      continue;
    }
    // BSCC: all successors stay inside.
    exit[ls] += t.rate;
    in[ld].push_back(Entry{ls, t.rate});
  }
  std::vector<double> pi(m, 1.0 / static_cast<double>(m));
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    ++iterations;
    double delta = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      double inflow = 0.0;
      for (const Entry& e : in[i]) {
        if (e.col != i) {
          inflow += pi[e.col] * e.value;
        }
      }
      // Self-loops contribute equally to inflow and exit; drop them.
      double self_rate = 0.0;
      for (const Entry& e : in[i]) {
        if (e.col == i) {
          self_rate += e.value;
        }
      }
      const double denom = exit[i] - self_rate;
      if (denom <= 0.0) {
        throw SolverFailure("steady_state: zero exit rate inside a BSCC");
      }
      const double next = inflow / denom;
      delta = std::max(delta, std::abs(next - pi[i]));
      pi[i] = next;
    }
    // Normalise.
    double sum = 0.0;
    for (const double p : pi) {
      sum += p;
    }
    if (sum <= 0.0) {
      throw SolverFailure("steady_state: distribution collapsed to zero");
    }
    for (double& p : pi) {
      p /= sum;
    }
    if (delta < opts.tolerance * sum) {
      return pi;
    }
  }
  throw SolverFailure("steady_state: Gauss-Seidel did not converge");
}

/// Backward closure of @p seed over @p pred (which states reach the seed).
std::vector<bool> closure(const std::vector<std::vector<std::uint32_t>>& pred,
                          std::vector<bool> seed) {
  std::vector<std::uint32_t> stack;
  for (std::uint32_t s = 0; s < seed.size(); ++s) {
    if (seed[s]) {
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (const std::uint32_t p : pred[s]) {
      if (!seed[p]) {
        seed[p] = true;
        stack.push_back(p);
      }
    }
  }
  return seed;
}

}  // namespace

std::vector<double> reachability_probability(const Ctmc& c,
                                             const std::vector<bool>& target,
                                             const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  if (target.size() != n) {
    throw std::invalid_argument("reachability_probability: size mismatch");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Exact qualitative precomputation on the graph:
  //  prob0 = states that cannot reach the target at all;
  //  prob1 = states that cannot reach prob0 without first passing through
  //          the target (closure computed with target states made
  //          absorbing), i.e. states that reach the target almost surely.
  std::vector<std::vector<std::uint32_t>> pred(n);
  std::vector<std::vector<std::uint32_t>> pred_cut(n);  // target absorbing
  for (const RateTransition& t : c.transitions()) {
    pred[t.dst].push_back(t.src);
    if (!target[t.src]) {
      pred_cut[t.dst].push_back(t.src);
    }
  }
  std::vector<bool> can = closure(pred, target);
  std::vector<bool> prob0(n, false);
  for (std::uint32_t s = 0; s < n; ++s) {
    prob0[s] = !can[s];
  }
  std::vector<bool> not_prob1 = closure(pred_cut, prob0);

  const std::vector<double> exits = c.exit_rates();
  std::vector<std::vector<Entry>> out(n);
  for (const RateTransition& t : c.transitions()) {
    out[t.src].push_back(Entry{t.dst, t.rate});
  }

  std::vector<std::uint32_t> active;  // the quantitative "?" states
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!target[s] && !prob0[s] && not_prob1[s]) {
      active.push_back(s);
    }
  }

  // Interval (two-sided) value iteration: the lower vector starts at the
  // qualitative 0/1 assignment, the upper vector at 1 on every "?" state.
  // Both converge monotonically to the unique fixpoint, so stopping when
  // sup |upper - lower| < tolerance certifies the result -- unlike the
  // previous delta-based stop, which could declare convergence while still
  // far from the fixpoint on slowly-mixing chains.
  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (target[s] || !not_prob1[s]) {
      lower[s] = upper[s] = 1.0;
    } else if (!prob0[s]) {
      upper[s] = 1.0;
    }
  }
  const auto sweep = [&](std::vector<double>& x) {
    for (const std::uint32_t s : active) {
      double acc = 0.0;
      double self = 0.0;
      for (const Entry& e : out[s]) {
        if (e.col == s) {
          self += e.value;
        } else {
          acc += e.value * x[e.col];
        }
      }
      const double denom = exits[s] - self;
      if (denom <= 0.0) {
        throw SolverFailure(
            "reachability_probability: self-loop-only state escaped "
            "prob0 precomputation");
      }
      x[s] = acc / denom;
    }
  };

  std::size_t iterations = 0;
  double width = 0.0;
  if (!active.empty()) {
    for (;; ++iterations) {
      width = 0.0;
      for (const std::uint32_t s : active) {
        width = std::max(width, upper[s] - lower[s]);
      }
      if (width < opts.tolerance) {
        break;
      }
      if (iterations >= opts.max_iterations) {
        throw SolverFailure("reachability_probability: did not converge");
      }
      sweep(lower);
      sweep(upper);
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    x[s] = 0.5 * (lower[s] + upper[s]);
  }
  core::record_solve(core::SolveStat{
      "reachability[interval]", {}, n, iterations, width,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count()});
  return x;
}

std::vector<double> steady_state(const Ctmc& c, const SolverOptions& opts) {
  const std::size_t n = c.num_states();
  if (n == 0) {
    return {};
  }
  const auto t0 = std::chrono::steady_clock::now();
  const BsccDecomposition d = bscc_decomposition(c);
  const std::vector<double> pi0 = c.initial_distribution();

  // Group states by component.
  std::vector<std::vector<std::uint32_t>> members(d.num_components);
  for (std::uint32_t s = 0; s < n; ++s) {
    members[d.component_of[s]].push_back(s);
  }

  std::size_t iterations = 0;
  std::vector<double> pi(n, 0.0);
  for (std::uint32_t comp = 0; comp < d.num_components; ++comp) {
    if (!d.is_bottom[comp]) {
      continue;
    }
    // Weight = probability of reaching this BSCC.
    std::vector<bool> target(n, false);
    for (const std::uint32_t s : members[comp]) {
      target[s] = true;
    }
    double weight = 0.0;
    bool need_solve = false;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (pi0[s] > 0.0 && !target[s]) {
        need_solve = true;
      }
    }
    if (need_solve) {
      const std::vector<double> h = reachability_probability(c, target, opts);
      for (std::uint32_t s = 0; s < n; ++s) {
        weight += pi0[s] * h[s];
      }
    } else {
      for (const std::uint32_t s : members[comp]) {
        weight += pi0[s];
      }
    }
    if (weight <= 0.0) {
      continue;
    }
    const std::vector<double> local =
        solve_bscc(c, members[comp], opts, iterations);
    for (std::size_t i = 0; i < members[comp].size(); ++i) {
      pi[members[comp][i]] += weight * local[i];
    }
  }
  core::record_solve(core::SolveStat{
      "steady_state[bscc]", {}, n, iterations, opts.tolerance,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count()});
  return pi;
}

}  // namespace multival::markov
