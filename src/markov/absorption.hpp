// Absorption analysis: expected time to absorption, first-passage times,
// absorption probabilities.  Used for latency predictions (e.g. the expected
// round-trip time of the FAME2 MPI ping-pong benchmark).
#pragma once

#include <limits>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/steady.hpp"

namespace multival::markov {

inline constexpr double kInfiniteTime = std::numeric_limits<double>::infinity();

/// Expected time, from each state, until reaching an absorbing state
/// (no outgoing transitions).  States that cannot reach one get
/// kInfiniteTime.
[[nodiscard]] std::vector<double> expected_time_to_absorption(
    const Ctmc& c, const SolverOptions& opts = {});

/// Expected time, from each state, until first hitting @p target (the
/// target states are made absorbing).  kInfiniteTime where unreachable.
[[nodiscard]] std::vector<double> mean_first_passage_time(
    const Ctmc& c, const std::vector<bool>& target,
    const SolverOptions& opts = {});

/// Expected time to absorption from the initial distribution.
[[nodiscard]] double expected_absorption_time_from_initial(
    const Ctmc& c, const SolverOptions& opts = {});

/// P[absorbed by time t] from the initial distribution (transient
/// probability of the absorbing set).
[[nodiscard]] double absorption_probability_by(const Ctmc& c, double t,
                                               double epsilon = 1e-12);

/// The @p q-quantile of the absorption-time distribution (e.g. q = 0.99
/// gives the 99th-percentile latency), found by bisection.  Requires
/// 0 < q < 1 and almost-sure absorption; throws SolverFailure if the
/// quantile is not bracketed within @p max_horizon.
[[nodiscard]] double absorption_time_quantile(const Ctmc& c, double q,
                                              double max_horizon = 1e7);

}  // namespace multival::markov
