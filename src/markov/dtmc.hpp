// Discrete-time Markov chains and the embedded jump chain of a CTMC.
//
// The embedded chain is the view the equivalence between steady-state
// formulations rests on: if psi is the stationary distribution of the jump
// chain and E(s) the CTMC exit rates, then the CTMC stationary distribution
// is pi(s) ∝ psi(s) / E(s) (sojourn-time weighting).
#pragma once

#include <cstdint>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/sparse.hpp"
#include "markov/steady.hpp"

namespace multival::markov {

/// A DTMC as a row-stochastic sparse matrix plus an initial distribution.
class Dtmc {
 public:
  Dtmc() = default;

  /// @p p must be square and row-stochastic (rows sum to 1 within 1e-9;
  /// empty rows denote absorbing states and are given a self-loop).
  Dtmc(SparseMatrix p, std::vector<double> initial);

  [[nodiscard]] std::size_t num_states() const { return p_.num_rows(); }
  [[nodiscard]] const SparseMatrix& matrix() const { return p_; }
  [[nodiscard]] const std::vector<double>& initial() const {
    return initial_;
  }

  /// Distribution after @p steps.
  [[nodiscard]] std::vector<double> distribution_after(
      std::size_t steps) const;

  /// Stationary distribution (power iteration with Cesàro averaging, which
  /// also converges for periodic chains).  Requires an irreducible chain
  /// for a meaningful result.
  [[nodiscard]] std::vector<double> stationary(
      const SolverOptions& opts = {}) const;

 private:
  SparseMatrix p_;
  std::vector<double> initial_;
};

/// The embedded jump chain of @p c: P(s,t) = R(s,t) / E(s); absorbing CTMC
/// states become absorbing DTMC states.
[[nodiscard]] Dtmc embedded_dtmc(const Ctmc& c);

}  // namespace multival::markov
