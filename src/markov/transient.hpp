// Transient analysis of CTMCs by uniformisation (the role of BCG_TRANSIENT
// in CADP), with Fox–Glynn-style Poisson weight computation.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/steady.hpp"

namespace multival::markov {

/// Truncated, normalised Poisson(lambda_t) weights: weights[k] approximates
/// P[N = left + k].  The two-sided truncation error is below epsilon.
struct PoissonWeights {
  std::size_t left = 0;
  std::vector<double> weights;
};

[[nodiscard]] PoissonWeights poisson_weights(double lambda_t,
                                             double epsilon = 1e-12);

/// State distribution at time @p t, starting from the initial distribution.
[[nodiscard]] std::vector<double> transient_distribution(
    const Ctmc& c, double t, double epsilon = 1e-12);

/// Probability of being in @p set at time @p t.
[[nodiscard]] double transient_probability(const Ctmc& c,
                                           const std::vector<bool>& set,
                                           double t, double epsilon = 1e-12);

/// Time-bounded reachability P[ reach @p target within time t ] (the CSL
/// operator P(true U<=t target)): computed by making the target absorbing
/// and taking the transient probability of sitting in it at t.
[[nodiscard]] double bounded_reachability(const Ctmc& c,
                                          const std::vector<bool>& target,
                                          double t, double epsilon = 1e-12);

}  // namespace multival::markov
