// Minimal sparse-matrix support for the Markov solvers (CSR + CSC, double).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace multival::markov {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// One stored entry of a CSR row (or, with `col` holding the row index,
/// of a CSC column).
struct Entry {
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Immutable sparse matrix.  Duplicate (row, col) triplets are summed.
///
/// Both a row-major (CSR) and a column-major (CSC) layout are stored: the
/// CSR side drives y = A x (one output per row), the CSC side drives
/// y = x A (one output per column).  Each output element is accumulated in
/// a fixed index order, so the parallel products below are bitwise
/// identical for any thread count (see core/parallel.hpp).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  [[nodiscard]] static SparseMatrix from_triplets(std::size_t rows,
                                                  std::size_t cols,
                                                  std::vector<Triplet> ts);

  [[nodiscard]] std::size_t num_rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t num_cols() const { return cols_; }
  [[nodiscard]] std::size_t num_nonzeros() const { return entries_.size(); }

  [[nodiscard]] std::span<const Entry> row(std::size_t i) const;

  /// Column @p j as (row, value) entries sorted by row.
  [[nodiscard]] std::span<const Entry> column(std::size_t j) const;

  /// y = x A (row vector times matrix); x.size() == num_rows().
  /// Parallel over columns above kParallelNonzeros stored entries.
  [[nodiscard]] std::vector<double> multiply_left(
      std::span<const double> x) const;

  /// y = A x; x.size() == num_cols().  Parallel over rows above
  /// kParallelNonzeros stored entries.
  [[nodiscard]] std::vector<double> multiply_right(
      std::span<const double> x) const;

  [[nodiscard]] SparseMatrix transpose() const;

  /// Matrices below this many stored entries multiply serially: the thread
  /// fan-out costs more than the product on small chains.
  static constexpr std::size_t kParallelNonzeros = 1u << 15;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows+1
  std::vector<Entry> entries_;        // CSR: (col, value) by row
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<Entry> centries_;       // CSC: (row, value) by column
};

}  // namespace multival::markov
