// Minimal sparse-matrix support for the Markov solvers (CSR, double).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace multival::markov {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// One stored entry of a CSR row.
struct Entry {
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix.  Duplicate (row, col) triplets are summed.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  [[nodiscard]] static SparseMatrix from_triplets(std::size_t rows,
                                                  std::size_t cols,
                                                  std::vector<Triplet> ts);

  [[nodiscard]] std::size_t num_rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t num_cols() const { return cols_; }
  [[nodiscard]] std::size_t num_nonzeros() const { return entries_.size(); }

  [[nodiscard]] std::span<const Entry> row(std::size_t i) const;

  /// y = x A (row vector times matrix); x.size() == num_rows().
  [[nodiscard]] std::vector<double> multiply_left(
      std::span<const double> x) const;

  /// y = A x; x.size() == num_cols().
  [[nodiscard]] std::vector<double> multiply_right(
      std::span<const double> x) const;

  [[nodiscard]] SparseMatrix transpose() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows+1
  std::vector<Entry> entries_;
};

}  // namespace multival::markov
