// Reward-based measures on CTMCs: accumulated state rewards and expected
// transition counts until absorption.  Used for cost/energy-style
// predictions on the latency scenarios (e.g. "interconnect messages per
// MPI round").
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/steady.hpp"

namespace multival::markov {

/// Expected total accumulated reward until absorption, from each state:
/// E[ integral of reward(X_t) dt until absorption ].  States that cannot
/// reach absorption get +infinity.  Absorbing states accumulate 0.
[[nodiscard]] std::vector<double> expected_accumulated_reward(
    const Ctmc& c, std::span<const double> reward,
    const SolverOptions& opts = {});

/// Expected number of transitions matching @p label_glob taken until
/// absorption, from each state (+infinity where absorption is unreachable).
[[nodiscard]] std::vector<double> expected_transition_count(
    const Ctmc& c, std::string_view label_glob,
    const SolverOptions& opts = {});

}  // namespace multival::markov
