#include "phase/phase_type.hpp"

#include <cmath>
#include <stdexcept>

#include "markov/transient.hpp"

namespace multival::phase {

PhaseType::PhaseType(std::vector<double> alpha, std::vector<double> rates,
                     std::vector<double> cont)
    : alpha_(std::move(alpha)), rates_(std::move(rates)), cont_(std::move(cont)) {
  const std::size_t k = rates_.size();
  if (k == 0) {
    throw std::invalid_argument("PhaseType: no phases");
  }
  if (alpha_.size() != k || cont_.size() != k) {
    throw std::invalid_argument("PhaseType: inconsistent sizes");
  }
  double asum = 0.0;
  for (const double a : alpha_) {
    if (a < 0.0 || a > 1.0) {
      throw std::invalid_argument("PhaseType: bad initial probability");
    }
    asum += a;
  }
  if (std::abs(asum - 1.0) > 1e-9) {
    throw std::invalid_argument("PhaseType: alpha must sum to 1");
  }
  for (const double r : rates_) {
    if (!(r > 0.0) || !std::isfinite(r)) {
      throw std::invalid_argument("PhaseType: rates must be > 0");
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (cont_[i] < 0.0 || cont_[i] > 1.0 ||
        (i + 1 == k && cont_[i] != 0.0)) {
      throw std::invalid_argument("PhaseType: bad continuation probability");
    }
  }
}

namespace {

/// Per-stage first and second moments of the remaining absorption time,
/// computed backwards along the Coxian chain.
struct StageMoments {
  std::vector<double> m1;
  std::vector<double> m2;
};

StageMoments stage_moments(const std::vector<double>& rates,
                           const std::vector<double>& cont) {
  const std::size_t k = rates.size();
  StageMoments sm;
  sm.m1.assign(k, 0.0);
  sm.m2.assign(k, 0.0);
  for (std::size_t idx = k; idx-- > 0;) {
    const double inv = 1.0 / rates[idx];
    const double next1 = idx + 1 < k ? sm.m1[idx + 1] : 0.0;
    const double next2 = idx + 1 < k ? sm.m2[idx + 1] : 0.0;
    // T = Exp(r) + [continue] T_next.
    sm.m1[idx] = inv + cont[idx] * next1;
    sm.m2[idx] =
        2.0 * inv * inv + cont[idx] * (2.0 * inv * next1 + next2);
  }
  return sm;
}

}  // namespace

double PhaseType::mean() const {
  const StageMoments sm = stage_moments(rates_, cont_);
  double acc = 0.0;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    acc += alpha_[i] * sm.m1[i];
  }
  return acc;
}

double PhaseType::variance() const {
  const StageMoments sm = stage_moments(rates_, cont_);
  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    m1 += alpha_[i] * sm.m1[i];
    m2 += alpha_[i] * sm.m2[i];
  }
  return m2 - m1 * m1;
}

double PhaseType::cv2() const {
  const double m = mean();
  return variance() / (m * m);
}

markov::Ctmc PhaseType::absorbing_ctmc() const {
  const std::size_t k = rates_.size();
  markov::Ctmc c;
  c.add_states(k + 1);  // phases 0..k-1, absorbing k
  for (std::size_t i = 0; i < k; ++i) {
    const auto s = static_cast<markov::MState>(i);
    if (cont_[i] > 0.0 && i + 1 < k) {
      c.add_transition(s, s + 1, rates_[i] * cont_[i]);
    }
    const double absorb = rates_[i] * (1.0 - cont_[i]);
    if (absorb > 0.0) {
      c.add_transition(s, static_cast<markov::MState>(k), absorb);
    }
  }
  std::vector<double> pi0(k + 1, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    pi0[i] = alpha_[i];
  }
  c.set_initial_distribution(std::move(pi0));
  return c;
}

double PhaseType::cdf(double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  const markov::Ctmc c = absorbing_ctmc();
  std::vector<bool> absorbed(c.num_states(), false);
  absorbed.back() = true;
  return markov::transient_probability(c, absorbed, t);
}

PhaseType PhaseType::exponential(double rate) {
  return PhaseType({1.0}, {rate}, {0.0});
}

PhaseType PhaseType::erlang(std::size_t k, double stage_rate) {
  if (k == 0) {
    throw std::invalid_argument("erlang: k must be >= 1");
  }
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  std::vector<double> cont(k, 1.0);
  cont[k - 1] = 0.0;
  return PhaseType(std::move(alpha), std::vector<double>(k, stage_rate),
                   std::move(cont));
}

PhaseType PhaseType::hypoexponential(std::vector<double> rates) {
  const std::size_t k = rates.size();
  if (k == 0) {
    throw std::invalid_argument("hypoexponential: no stages");
  }
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  std::vector<double> cont(k, 1.0);
  cont[k - 1] = 0.0;
  return PhaseType(std::move(alpha), std::move(rates), std::move(cont));
}

PhaseType PhaseType::hyperexponential(std::vector<double> probs,
                                      std::vector<double> rates) {
  if (probs.size() != rates.size() || probs.empty()) {
    throw std::invalid_argument("hyperexponential: inconsistent sizes");
  }
  // Branches never continue: alpha = probs, cont = 0 everywhere.
  return PhaseType(std::move(probs), std::move(rates),
                   std::vector<double>(rates.size(), 0.0));
}

imc::Imc delay_process(const PhaseType& dist, std::string_view start_label,
                       std::string_view end_label) {
  bool point_mass = dist.alpha()[0] == 1.0;
  for (std::size_t i = 1; i < dist.alpha().size(); ++i) {
    point_mass = point_mass && dist.alpha()[i] == 0.0;
  }
  if (!point_mass) {
    throw std::invalid_argument(
        "delay_process: only distributions starting deterministically in "
        "phase 0 (exponential / Erlang / hypoexponential) can be inserted "
        "constraint-orientedly");
  }
  const std::size_t k = dist.num_phases();
  imc::Imc m;
  const imc::StateId idle = m.add_state();
  const imc::StateId first_phase = m.add_states(k);
  const imc::StateId done = m.add_state();
  m.set_initial_state(idle);
  m.add_interactive(idle, start_label, first_phase);
  for (std::size_t i = 0; i < k; ++i) {
    const imc::StateId s = first_phase + static_cast<imc::StateId>(i);
    const double cont = dist.continuation()[i];
    if (cont > 0.0 && i + 1 < k) {
      m.add_markovian(s, dist.rates()[i] * cont, s + 1);
    }
    const double absorb = dist.rates()[i] * (1.0 - cont);
    if (absorb > 0.0) {
      m.add_markovian(s, absorb, done, std::string(end_label));
    }
  }
  m.add_interactive(done, end_label, idle);
  return m;
}

}  // namespace multival::phase
