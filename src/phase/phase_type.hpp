// Phase-type distributions: the timing vocabulary of the Multival flow.
//
// A phase-type distribution is the time to absorption of a small CTMC.  The
// paper's constraint-oriented decoration expresses each delay of the
// functional model as an auxiliary process that synchronises on the delay's
// START/END gates and spends phase-type-distributed time in between; the
// conclusion of the paper discusses the space-accuracy trade-off of
// approximating *fixed* (deterministic) delays this way, which Erlang-k does
// with CV^2 = 1/k at the cost of k phases (reproduced by bench exp_f7).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "imc/imc.hpp"
#include "markov/ctmc.hpp"

namespace multival::phase {

/// A (sub)class of phase-type distributions: a chain of stages, where stage
/// i has exponential rate rates[i] and continues to stage i+1 with
/// probability cont[i] (Coxian form; cont.back() is ignored/0).
/// Erlang, hypoexponential, exponential and hyperexponential distributions
/// are all expressible (hyperexponential via the initial distribution).
class PhaseType {
 public:
  /// Coxian chain with initial stage probabilities @p alpha (size = number
  /// of stages; may be sub-stochastic only by rounding).
  PhaseType(std::vector<double> alpha, std::vector<double> rates,
            std::vector<double> cont);

  [[nodiscard]] std::size_t num_phases() const { return rates_.size(); }
  [[nodiscard]] const std::vector<double>& alpha() const { return alpha_; }
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }
  [[nodiscard]] const std::vector<double>& continuation() const {
    return cont_;
  }

  /// First moment (mean).
  [[nodiscard]] double mean() const;
  /// Variance.
  [[nodiscard]] double variance() const;
  /// Squared coefficient of variation (variance / mean^2).
  [[nodiscard]] double cv2() const;

  /// Cumulative distribution function P[T <= t] (via the underlying
  /// absorbing CTMC and uniformisation).
  [[nodiscard]] double cdf(double t) const;

  /// The absorbing CTMC whose absorption time has this distribution; the
  /// last state is the absorbing one.
  [[nodiscard]] markov::Ctmc absorbing_ctmc() const;

  // -- named constructors --

  /// Exponential(rate).
  [[nodiscard]] static PhaseType exponential(double rate);
  /// Erlang-k with total mean k/rate_per_stage... given as (k, stage rate).
  [[nodiscard]] static PhaseType erlang(std::size_t k, double stage_rate);
  /// Hypoexponential: stages with the given rates in sequence.
  [[nodiscard]] static PhaseType hypoexponential(std::vector<double> rates);
  /// Hyperexponential: branch i taken with probability probs[i], then
  /// Exponential(rates[i]).
  [[nodiscard]] static PhaseType hyperexponential(std::vector<double> probs,
                                                  std::vector<double> rates);

 private:
  std::vector<double> alpha_;
  std::vector<double> rates_;
  std::vector<double> cont_;
};

/// Builds the constraint-oriented delay process for @p dist as an IMC:
///
///     idle --START(interactive)--> phase_1 --rates...--> done
///          <---------------END(interactive)------------- done
///
/// Composing it with a functional model that performs START when the delay
/// begins and END when it may complete inserts the distribution into the
/// model (step 3 of the paper's decoration recipe).
[[nodiscard]] imc::Imc delay_process(const PhaseType& dist,
                                     std::string_view start_label,
                                     std::string_view end_label);

}  // namespace multival::phase
