// Approximation of fixed-time (deterministic) delays by phase-type
// distributions, and the error metrics used to quantify the space-accuracy
// trade-off the paper's conclusion discusses.
#pragma once

#include <cstddef>

#include "phase/phase_type.hpp"

namespace multival::phase {

/// Erlang-k approximation of a deterministic delay @p d: mean d, CV^2 = 1/k.
/// Larger k is more deterministic but costs k phases of state space.
[[nodiscard]] PhaseType erlang_for_fixed_delay(double d, std::size_t k);

/// Sup-norm (Kolmogorov) distance between @p dist's CDF and the unit step at
/// @p d (the CDF of the deterministic delay), estimated on @p grid_points
/// evenly spaced over [0, 3d].  Note: against a deterministic target this
/// converges to ~0.5 (the jump cannot be matched pointwise); use the
/// Wasserstein distance as the accuracy metric of the trade-off curve.
[[nodiscard]] double kolmogorov_distance_to_fixed(const PhaseType& dist,
                                                  double d,
                                                  std::size_t grid_points = 200);

/// Wasserstein-1 distance (area between the CDFs, = E|T - d| for unimodal
/// fits): integral of |F(t) - H(t - d)| over [0, 3d], estimated on a grid.
/// For Erlang-k this decays like d * sqrt(2 / (pi k)).
[[nodiscard]] double wasserstein_distance_to_fixed(
    const PhaseType& dist, double d, std::size_t grid_points = 200);

/// Summary of one point of the space-accuracy trade-off curve.
struct FixedDelayFit {
  std::size_t phases = 0;       ///< state-space cost of the approximation
  double mean_error = 0.0;      ///< |mean - d| / d (0 by construction)
  double cv2 = 0.0;             ///< residual squared coefficient of variation
  double kolmogorov = 0.0;      ///< sup-norm CDF error (saturates near 0.5)
  double wasserstein = 0.0;     ///< area between CDFs (decays ~ 1/sqrt(k))
};

[[nodiscard]] FixedDelayFit evaluate_fixed_delay_fit(double d, std::size_t k,
                                                     std::size_t grid_points = 200);

}  // namespace multival::phase
