#include "phase/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace multival::phase {

PhaseType erlang_for_fixed_delay(double d, std::size_t k) {
  if (!(d > 0.0)) {
    throw std::invalid_argument("erlang_for_fixed_delay: delay must be > 0");
  }
  if (k == 0) {
    throw std::invalid_argument("erlang_for_fixed_delay: k must be >= 1");
  }
  return PhaseType::erlang(k, static_cast<double>(k) / d);
}

double kolmogorov_distance_to_fixed(const PhaseType& dist, double d,
                                    std::size_t grid_points) {
  if (!(d > 0.0) || grid_points == 0) {
    throw std::invalid_argument("kolmogorov_distance_to_fixed: bad arguments");
  }
  double sup = 0.0;
  for (std::size_t i = 1; i <= grid_points; ++i) {
    const double t =
        3.0 * d * static_cast<double>(i) / static_cast<double>(grid_points);
    const double f = dist.cdf(t);
    const double h = t >= d ? 1.0 : 0.0;
    sup = std::max(sup, std::abs(f - h));
  }
  // The step point itself is the usual supremum location; sample both sides.
  sup = std::max(sup, dist.cdf(d * (1.0 - 1e-9)));
  sup = std::max(sup, 1.0 - dist.cdf(d * (1.0 + 1e-9)));
  return sup;
}

double wasserstein_distance_to_fixed(const PhaseType& dist, double d,
                                     std::size_t grid_points) {
  if (!(d > 0.0) || grid_points == 0) {
    throw std::invalid_argument(
        "wasserstein_distance_to_fixed: bad arguments");
  }
  const double dt = 3.0 * d / static_cast<double>(grid_points);
  double area = 0.0;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double t = dt * (static_cast<double>(i) + 0.5);  // midpoint rule
    const double f = dist.cdf(t);
    const double h = t >= d ? 1.0 : 0.0;
    area += std::abs(f - h) * dt;
  }
  return area;
}

FixedDelayFit evaluate_fixed_delay_fit(double d, std::size_t k,
                                       std::size_t grid_points) {
  const PhaseType dist = erlang_for_fixed_delay(d, k);
  FixedDelayFit fit;
  fit.phases = dist.num_phases();
  fit.mean_error = std::abs(dist.mean() - d) / d;
  fit.cv2 = dist.cv2();
  fit.kolmogorov = kolmogorov_distance_to_fixed(dist, d, grid_points);
  fit.wasserstein = wasserstein_distance_to_fixed(dist, d, grid_points);
  return fit;
}

}  // namespace multival::phase
