// Strong bisimulation minimisation by signature-based partition refinement
// (Kanellakis–Smolka style with hashed signatures).
#pragma once

#include "bisim/partition.hpp"
#include "lts/lts.hpp"

namespace multival::bisim {

/// Quotient LTS together with the partition that produced it.
struct MinimizeResult {
  lts::Lts quotient;
  Partition partition;
};

/// Coarsest strong-bisimulation partition refining @p initial.
[[nodiscard]] Partition strong_partition(const lts::Lts& l,
                                         const Partition& initial);

/// Coarsest strong-bisimulation partition (trivial initial partition).
[[nodiscard]] Partition strong_partition(const lts::Lts& l);

/// Minimal LTS modulo strong bisimulation.
[[nodiscard]] MinimizeResult minimize_strong(const lts::Lts& l);

/// Coarsest weak-bisimulation (observational-equivalence) partition: strong
/// refinement over the tau-saturated transition relation
/// (s =tau*=> a =tau*=> t for visible a; s =tau*=> t for tau).
[[nodiscard]] Partition weak_partition(const lts::Lts& l);

/// Minimal LTS modulo weak bisimulation (inert tau transitions dropped).
[[nodiscard]] MinimizeResult minimize_weak(const lts::Lts& l);

/// Builds the quotient LTS of @p l under @p p: one state per block, one
/// transition (B,a,B') per pair of related blocks.  When @p skip_inert_tau is
/// true, tau self-block transitions are dropped (branching quotients).
[[nodiscard]] lts::Lts quotient_lts(const lts::Lts& l, const Partition& p,
                                    bool skip_inert_tau);

}  // namespace multival::bisim
