#include "bisim/partition.hpp"

#include <stdexcept>
#include <unordered_map>

namespace multival::bisim {

Partition::Partition(std::size_t n)
    : block_of_(n, 0), num_blocks_(n == 0 ? 0 : 1) {}

Partition::Partition(std::vector<BlockId> block_of, std::size_t num_blocks)
    : block_of_(std::move(block_of)), num_blocks_(num_blocks) {
  for (const BlockId b : block_of_) {
    if (b >= num_blocks_) {
      throw std::invalid_argument("Partition: block id out of range");
    }
  }
}

void Partition::set_block(lts::StateId s, BlockId b) {
  if (s >= block_of_.size()) {
    throw std::out_of_range("Partition::set_block: unknown state");
  }
  block_of_[s] = b;
  if (b >= num_blocks_) {
    num_blocks_ = b + 1;
  }
}

std::size_t Partition::normalize() {
  std::unordered_map<BlockId, BlockId> remap;
  remap.reserve(num_blocks_);
  for (BlockId& b : block_of_) {
    const auto it = remap.find(b);
    if (it == remap.end()) {
      const auto nb = static_cast<BlockId>(remap.size());
      remap.emplace(b, nb);
      b = nb;
    } else {
      b = it->second;
    }
  }
  num_blocks_ = remap.size();
  return num_blocks_;
}

bool Partition::same_grouping(const Partition& other) const {
  if (block_of_.size() != other.block_of_.size()) {
    return false;
  }
  // Two partitions are equal iff the mapping between their block ids is a
  // bijection consistent across all states.
  std::unordered_map<BlockId, BlockId> fwd;
  std::unordered_map<BlockId, BlockId> bwd;
  for (std::size_t s = 0; s < block_of_.size(); ++s) {
    const BlockId a = block_of_[s];
    const BlockId b = other.block_of_[s];
    const auto fit = fwd.find(a);
    if (fit == fwd.end()) {
      fwd.emplace(a, b);
    } else if (fit->second != b) {
      return false;
    }
    const auto bit = bwd.find(b);
    if (bit == bwd.end()) {
      bwd.emplace(b, a);
    } else if (bit->second != a) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<lts::StateId>> Partition::blocks() const {
  std::vector<std::vector<lts::StateId>> out(num_blocks_);
  for (std::size_t s = 0; s < block_of_.size(); ++s) {
    out[block_of_[s]].push_back(static_cast<lts::StateId>(s));
  }
  return out;
}

Partition Partition::intersect(const Partition& a, const Partition& b) {
  if (a.num_states() != b.num_states()) {
    throw std::invalid_argument("Partition::intersect: size mismatch");
  }
  std::vector<BlockId> out(a.num_states(), 0);
  std::unordered_map<std::uint64_t, BlockId> pairs;
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a.block_of_[s]) << 32) | b.block_of_[s];
    const auto it = pairs.find(key);
    if (it == pairs.end()) {
      const auto nb = static_cast<BlockId>(pairs.size());
      pairs.emplace(key, nb);
      out[s] = nb;
    } else {
      out[s] = it->second;
    }
  }
  return Partition(std::move(out), pairs.empty() ? 0 : pairs.size());
}

}  // namespace multival::bisim
