// Equivalence checking of two LTSs, in the style of CADP's BISIMULATOR /
// ALDEBARAN: build the disjoint union, run partition refinement, and compare
// the blocks of the two initial states.
#pragma once

#include "bisim/partition.hpp"
#include "bisim/strong.hpp"
#include "lts/lts.hpp"

namespace multival::bisim {

enum class Equivalence {
  kStrong,
  kWeak,  ///< observational equivalence (tau* a tau* saturation)
  kBranching,
  kDivergenceBranching,
};

/// Human-readable name of @p e ("strong", "branching", ...).
[[nodiscard]] const char* to_string(Equivalence e);

/// Disjoint union of two LTSs (shared action table); the initial state is
/// a's.  Returns the union and the state offset of b's copy.
struct DisjointUnion {
  lts::Lts lts;
  lts::StateId b_offset = 0;
};
[[nodiscard]] DisjointUnion disjoint_union(const lts::Lts& a,
                                           const lts::Lts& b);

/// True if the initial states of @p a and @p b are related by @p e.
[[nodiscard]] bool equivalent(const lts::Lts& a, const lts::Lts& b,
                              Equivalence e);

/// Minimises @p l modulo @p e.
[[nodiscard]] MinimizeResult minimize(const lts::Lts& l, Equivalence e);

}  // namespace multival::bisim
