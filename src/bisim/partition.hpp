// State partitions for bisimulation minimisation.
//
// A Partition maps every state of an LTS (or IMC) to a block id in
// 0..num_blocks()-1.  Partition-refinement algorithms start from an initial
// partition (a single block, or a reward-compatible grouping) and split
// blocks until signatures stabilise.
#pragma once

#include <cstdint>
#include <vector>

#include "lts/lts.hpp"

namespace multival::bisim {

using BlockId = std::uint32_t;

class Partition {
 public:
  /// Trivial partition: all @p n states in block 0 (no block if n == 0).
  explicit Partition(std::size_t n);

  /// Partition from an explicit assignment.  Block ids must be dense
  /// (every id in 0..max used at least once is not verified; callers use
  /// normalize() when needed).
  Partition(std::vector<BlockId> block_of, std::size_t num_blocks);

  [[nodiscard]] BlockId block_of(lts::StateId s) const {
    return block_of_[s];
  }
  [[nodiscard]] std::size_t num_blocks() const { return num_blocks_; }
  [[nodiscard]] std::size_t num_states() const { return block_of_.size(); }

  void set_block(lts::StateId s, BlockId b);

  /// Renumbers block ids densely (0..k-1) preserving the grouping; returns
  /// the number of blocks.
  std::size_t normalize();

  /// True if both partitions induce the same grouping of states.
  [[nodiscard]] bool same_grouping(const Partition& other) const;

  /// The states of each block.
  [[nodiscard]] std::vector<std::vector<lts::StateId>> blocks() const;

  /// Intersection refinement: the coarsest partition finer than both.
  [[nodiscard]] static Partition intersect(const Partition& a,
                                           const Partition& b);

 private:
  std::vector<BlockId> block_of_;
  std::size_t num_blocks_ = 0;
};

}  // namespace multival::bisim
