// Reduction entry points for the compositional pipeline (compose/plan):
//
//   - tau_compress: collapse inert tau *chains* — states whose unique
//     outgoing transition is tau are bisimilar to their successor, so the
//     chain contracts to its endpoint.  Tau cycles made entirely of such
//     states contract to one representative that keeps a tau self-loop, so
//     the reduction is divergence-preserving (livelocks survive).  This is
//     the cheap O(states + transitions) pass applied on the fly to every
//     intermediate product (see explore::tau_compress for the oracle
//     variant); full branching minimisation still runs at the plan's
//     minimisation points.
//
//   - canonical_form: an isomorphism-invariant renumbering.  On a
//     bisimulation-minimal LTS (no two states equivalent — which every
//     quotient out of bisim::minimize is) iterated signature refinement
//     separates all states, and the resulting rank order depends only on
//     the isomorphism class of the LTS, never on generation order.  Two
//     pipelines that produce bisimilar minimal LTSs — e.g. the planned
//     compositional path and the flat monolithic path — therefore produce
//     *byte-identical* canonical forms, which is what lets the plan
//     machinery assert "same result" by comparing serialised bytes.
#pragma once

#include "bisim/equivalence.hpp"
#include "lts/lts.hpp"

namespace multival::bisim {

/// Contracts every maximal chain/cycle of states whose single outgoing
/// transition is tau ("i").  Divergence-preserving: a contracted tau cycle
/// keeps a tau self-loop on its representative.  Duplicate transitions
/// created by the contraction are dropped (set semantics, like quotients).
[[nodiscard]] lts::Lts tau_compress(const lts::Lts& l);

/// Deterministic, isomorphism-invariant renumbering: states are ordered by
/// iterated strong-bisimulation signature ranks (initial state first),
/// actions are re-interned in sorted label order, and each state's
/// transitions are sorted by (label, destination).  Canonical on
/// bisimulation-minimal inputs; still deterministic (but possibly
/// generation-order dependent) if equivalent states remain.
[[nodiscard]] lts::Lts canonical_form(const lts::Lts& l);

/// The normal form both the planned and the flat pipeline end at:
/// canonical_form(minimize(l, e).quotient).  Solvers fed through either
/// path therefore see byte-identical inputs.
[[nodiscard]] lts::Lts canonical_minimized(
    const lts::Lts& l, Equivalence e = Equivalence::kDivergenceBranching);

}  // namespace multival::bisim
