#include "bisim/branching.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "lts/analysis.hpp"

namespace multival::bisim {

namespace {

using lts::ActionId;
using lts::ActionTable;
using lts::Lts;
using lts::OutEdge;
using lts::StateId;

using SigElem = std::uint64_t;

// Signature element tags (upper bits) keep the element kinds disjoint.
constexpr SigElem kEdgeTag = 1ull << 63;
constexpr SigElem kDivergentMark = (1ull << 62);

SigElem edge_elem(ActionId a, BlockId b) {
  return kEdgeTag | (static_cast<SigElem>(a) << 32) | b;
}

struct SigHash {
  std::size_t operator()(const std::vector<SigElem>& v) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (const SigElem e : v) {
      h ^= e;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

void sort_unique(std::vector<SigElem>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// The contracted graph: tau-SCCs (restricted to tau edges joining states of
// the same initial block) are collapsed to single nodes.
struct Contracted {
  std::vector<StateId> comp_of;          // state -> component
  std::size_t num_components = 0;
  std::vector<std::vector<OutEdge>> out;  // component -> edges (action, comp)
  std::vector<bool> divergent;            // component had an intra tau cycle
};

Contracted contract(const Lts& l, const Partition& initial) {
  // Tau edges within the same initial block are candidates for collapse.
  const auto inertish = [&](const OutEdge& e, StateId src) {
    return ActionTable::is_tau(e.action) &&
           initial.block_of(src) == initial.block_of(e.dst);
  };
  // strongly_connected_components takes an edge filter without the source,
  // so we filter on block equality via a wrapper LTS scan instead: build the
  // SCCs manually over the filtered relation.
  // Reuse lts::strongly_connected_components by encoding the filter: it only
  // sees the edge, so we need the source.  Do a local Tarjan instead.
  const std::size_t n = l.num_states();
  std::vector<StateId> comp_of(n, lts::kNoState);
  std::size_t ncomp = 0;
  {
    constexpr StateId kUnvisited = lts::kNoState;
    std::vector<StateId> index(n, kUnvisited);
    std::vector<StateId> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<StateId> scc_stack;
    struct Frame {
      StateId state;
      std::size_t edge;
    };
    std::vector<Frame> call;
    StateId next_index = 0;
    for (StateId root = 0; root < n; ++root) {
      if (index[root] != kUnvisited) {
        continue;
      }
      call.push_back(Frame{root, 0});
      index[root] = lowlink[root] = next_index++;
      scc_stack.push_back(root);
      on_stack[root] = true;
      while (!call.empty()) {
        Frame& fr = call.back();
        const StateId v = fr.state;
        const auto edges = l.out(v);
        bool descended = false;
        while (fr.edge < edges.size()) {
          const OutEdge& e = edges[fr.edge++];
          if (!inertish(e, v)) {
            continue;
          }
          const StateId w = e.dst;
          if (index[w] == kUnvisited) {
            index[w] = lowlink[w] = next_index++;
            scc_stack.push_back(w);
            on_stack[w] = true;
            call.push_back(Frame{w, 0});
            descended = true;
            break;
          }
          if (on_stack[w]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (descended) {
          continue;
        }
        if (lowlink[v] == index[v]) {
          StateId w = lts::kNoState;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            comp_of[w] = static_cast<StateId>(ncomp);
          } while (w != v);
          ++ncomp;
        }
        call.pop_back();
        if (!call.empty()) {
          lowlink[call.back().state] =
              std::min(lowlink[call.back().state], lowlink[v]);
        }
      }
    }
  }

  Contracted c;
  c.comp_of = std::move(comp_of);
  c.num_components = ncomp;
  c.out.resize(ncomp);
  c.divergent.assign(ncomp, false);
  std::vector<std::size_t> comp_size(ncomp, 0);
  for (StateId s = 0; s < n; ++s) {
    ++comp_size[c.comp_of[s]];
  }
  for (StateId s = 0; s < n; ++s) {
    const StateId cs = c.comp_of[s];
    for (const OutEdge& e : l.out(s)) {
      const StateId ct = c.comp_of[e.dst];
      if (ActionTable::is_tau(e.action) && cs == ct) {
        // Intra-component tau: collapsed; witnesses divergence if the
        // component is a real cycle (size > 1 or self-loop).
        if (comp_size[cs] > 1 || e.dst == s) {
          c.divergent[cs] = true;
        }
        continue;
      }
      c.out[cs].push_back(OutEdge{e.action, ct});
    }
  }
  return c;
}

}  // namespace

Partition branching_partition(const Lts& l, const Partition& initial,
                              const BranchingOptions& opts) {
  const std::size_t n = l.num_states();
  if (initial.num_states() != n) {
    throw std::invalid_argument(
        "branching_partition: partition size mismatch");
  }
  if (n == 0) {
    return Partition(0);
  }
  const Contracted c = contract(l, initial);
  const std::size_t nc = c.num_components;

  // Partition over components, seeded from the initial state partition
  // (every state of a component shares the initial block by construction).
  // Divergence is handled in the signatures, where the marker propagates
  // backwards over inert tau — a state that can silently reach a divergence
  // is divergence-equivalent to it.
  std::vector<BlockId> comp_block(nc, 0);
  {
    std::unordered_map<std::uint64_t, BlockId> seed;
    for (StateId s = 0; s < n; ++s) {
      const StateId comp = c.comp_of[s];
      const std::uint64_t key = initial.block_of(s);
      const auto [it, inserted] =
          seed.emplace(key, static_cast<BlockId>(seed.size()));
      comp_block[comp] = it->second;
    }
  }
  std::size_t nblocks = 0;
  for (const BlockId b : comp_block) {
    nblocks = std::max<std::size_t>(nblocks, b + 1);
  }

  std::vector<std::vector<SigElem>> sigs(nc);

  while (true) {
    // Inner fixpoint: propagate signatures across inert tau edges.  The
    // contracted tau relation is (nearly) acyclic and Tarjan numbers
    // components so that tau edges go from higher to lower ids, so one
    // ascending pass usually converges; we iterate to cover residual
    // cross-block cycles.
    for (StateId comp = 0; comp < nc; ++comp) {
      sigs[comp].clear();
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (StateId comp = 0; comp < nc; ++comp) {
        std::vector<SigElem> sig;
        sig.push_back(comp_block[comp]);  // old block: monotone refinement
        if (opts.divergence_sensitive && c.divergent[comp]) {
          sig.push_back(kDivergentMark);
        }
        for (const OutEdge& e : c.out[comp]) {
          const bool inert = ActionTable::is_tau(e.action) &&
                             comp_block[e.dst] == comp_block[comp];
          if (inert) {
            // Union the successor's current signature minus its old-block
            // element (shared with ours).
            for (const SigElem x : sigs[e.dst]) {
              if (x >= kDivergentMark) {
                sig.push_back(x);
              }
            }
          } else {
            sig.push_back(edge_elem(e.action, comp_block[e.dst]));
          }
        }
        sort_unique(sig);
        if (sig != sigs[comp]) {
          sigs[comp] = std::move(sig);
          changed = true;
        }
      }
    }

    // Re-block by signature.
    std::unordered_map<std::vector<SigElem>, BlockId, SigHash> table;
    std::vector<BlockId> next(nc, 0);
    for (StateId comp = 0; comp < nc; ++comp) {
      const auto [it, inserted] =
          table.emplace(sigs[comp], static_cast<BlockId>(table.size()));
      next[comp] = it->second;
    }
    const bool stable = table.size() == nblocks;
    nblocks = table.size();
    comp_block = std::move(next);
    if (stable) {
      break;
    }
  }

  std::vector<BlockId> block_of(n, 0);
  for (StateId s = 0; s < n; ++s) {
    block_of[s] = comp_block[c.comp_of[s]];
  }
  return Partition(std::move(block_of), nblocks);
}

Partition branching_partition(const Lts& l, const BranchingOptions& opts) {
  return branching_partition(l, Partition(l.num_states()), opts);
}

MinimizeResult minimize_branching(const Lts& l, const BranchingOptions& opts) {
  Partition p = branching_partition(l, opts);
  Lts q = quotient_lts(l, p, /*skip_inert_tau=*/true);
  if (opts.divergence_sensitive) {
    // Re-add a tau self-loop on every divergent block so livelocks survive.
    const Contracted c = contract(l, Partition(l.num_states()));
    std::vector<bool> block_divergent(p.num_blocks(), false);
    for (StateId s = 0; s < l.num_states(); ++s) {
      if (c.divergent[c.comp_of[s]]) {
        block_divergent[p.block_of(s)] = true;
      }
    }
    for (BlockId b = 0; b < block_divergent.size(); ++b) {
      if (block_divergent[b]) {
        q.add_transition(b, ActionTable::kTau, b);
      }
    }
  }
  return MinimizeResult{std::move(q), std::move(p)};
}

}  // namespace multival::bisim
