// Branching bisimulation minimisation (Groote–Vaandrager style, implemented
// with tau-SCC collapse followed by signature refinement in topological
// order of the inert-tau DAG).
//
// The divergence-sensitive variant keeps a "divergent" marker on states
// lying on a tau cycle, so that livelocks are preserved by minimisation
// (divergence-preserving branching bisimulation in the sense used by CADP's
// BCG_MIN "divbranching" option).
#pragma once

#include "bisim/partition.hpp"
#include "bisim/strong.hpp"
#include "lts/lts.hpp"

namespace multival::bisim {

struct BranchingOptions {
  bool divergence_sensitive = false;
};

/// Coarsest branching-bisimulation partition refining @p initial.
[[nodiscard]] Partition branching_partition(const lts::Lts& l,
                                            const Partition& initial,
                                            const BranchingOptions& opts = {});

/// Coarsest branching-bisimulation partition (trivial initial partition).
[[nodiscard]] Partition branching_partition(const lts::Lts& l,
                                            const BranchingOptions& opts = {});

/// Minimal LTS modulo (divergence-preserving) branching bisimulation.
/// Inert tau transitions are removed; with divergence sensitivity, divergent
/// blocks keep a tau self-loop.
[[nodiscard]] MinimizeResult minimize_branching(
    const lts::Lts& l, const BranchingOptions& opts = {});

}  // namespace multival::bisim
