#include "bisim/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "bisim/equivalence.hpp"

namespace multival::bisim {

namespace {

using lts::ActionId;
using lts::Lts;
using lts::StateId;

using Subset = std::vector<StateId>;  // sorted, deduplicated

Subset tau_closure(const Lts& l, Subset seed) {
  std::vector<bool> in(l.num_states(), false);
  std::vector<StateId> stack;
  for (const StateId s : seed) {
    if (!in[s]) {
      in[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const lts::OutEdge& e : l.out(s)) {
      if (lts::ActionTable::is_tau(e.action) && !in[e.dst]) {
        in[e.dst] = true;
        stack.push_back(e.dst);
      }
    }
  }
  Subset out;
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (in[s]) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

lts::Lts determinize(const Lts& l, const DeterminizeOptions& opts) {
  Lts d;
  if (l.num_states() == 0) {
    return d;
  }
  std::map<Subset, StateId> ids;
  std::vector<Subset> worklist;

  const auto subset_state = [&](Subset subset) {
    const auto it = ids.find(subset);
    if (it != ids.end()) {
      return it->second;
    }
    if (ids.size() >= opts.max_states) {
      throw std::runtime_error("determinize: subset construction exceeds " +
                               std::to_string(opts.max_states) + " states");
    }
    const StateId s = d.add_state();
    ids.emplace(subset, s);
    worklist.push_back(std::move(subset));
    return s;
  };

  d.set_initial_state(subset_state(tau_closure(l, {l.initial_state()})));

  while (!worklist.empty()) {
    const Subset subset = std::move(worklist.back());
    worklist.pop_back();
    const StateId src = ids.at(subset);
    // Collect visible successors per action.
    std::map<ActionId, Subset> succ;
    for (const StateId s : subset) {
      for (const lts::OutEdge& e : l.out(s)) {
        if (!lts::ActionTable::is_tau(e.action)) {
          succ[e.action].push_back(e.dst);
        }
      }
    }
    for (auto& [action, states] : succ) {
      std::sort(states.begin(), states.end());
      states.erase(std::unique(states.begin(), states.end()), states.end());
      const Subset closed = tau_closure(l, std::move(states));
      const StateId dst = subset_state(closed);
      d.add_transition(src, l.actions().name(action), dst);
    }
  }
  return d;
}

bool weak_trace_equivalent(const Lts& a, const Lts& b,
                           const DeterminizeOptions& opts) {
  // For deterministic LTSs, strong bisimilarity coincides with trace-set
  // equality; determinise both and compare.
  const Lts da = determinize(a, opts);
  const Lts db = determinize(b, opts);
  return equivalent(da, db, Equivalence::kStrong);
}

}  // namespace multival::bisim
