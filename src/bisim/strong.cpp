#include "bisim/strong.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace multival::bisim {

namespace {

using lts::ActionId;
using lts::Lts;
using lts::OutEdge;
using lts::StateId;

// A signature element packs (action, destination block).
using SigElem = std::uint64_t;

SigElem sig_elem(ActionId a, BlockId b) {
  return (static_cast<SigElem>(a) << 32) | b;
}

struct SigHash {
  std::size_t operator()(const std::vector<SigElem>& v) const noexcept {
    // FNV-1a over the packed elements.
    std::uint64_t h = 1469598103934665603ull;
    for (const SigElem e : v) {
      h ^= e;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

Partition strong_partition(const Lts& l, const Partition& initial) {
  const std::size_t n = l.num_states();
  if (initial.num_states() != n) {
    throw std::invalid_argument("strong_partition: partition size mismatch");
  }
  Partition p = initial;
  p.normalize();

  std::vector<SigElem> sig;
  while (true) {
    // key: (old block, signature) -> new block id.
    std::unordered_map<std::vector<SigElem>, BlockId, SigHash> table;
    std::vector<BlockId> next(n, 0);
    for (StateId s = 0; s < n; ++s) {
      sig.clear();
      sig.push_back(p.block_of(s));  // old block, keeps refinement monotone
      for (const OutEdge& e : l.out(s)) {
        sig.push_back(sig_elem(e.action, p.block_of(e.dst)) + (1ull << 63));
      }
      std::sort(sig.begin() + 1, sig.end());
      sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
      const auto [it, inserted] =
          table.emplace(sig, static_cast<BlockId>(table.size()));
      next[s] = it->second;
    }
    const std::size_t new_blocks = table.size();
    const bool stable = new_blocks == p.num_blocks();
    p = Partition(std::move(next), new_blocks == 0 ? 0 : new_blocks);
    if (stable) {
      break;
    }
  }
  return p;
}

Partition strong_partition(const Lts& l) {
  return strong_partition(l, Partition(l.num_states()));
}

lts::Lts quotient_lts(const Lts& l, const Partition& p, bool skip_inert_tau) {
  Lts q;
  q.add_states(p.num_blocks());
  if (l.num_states() > 0) {
    q.set_initial_state(p.block_of(l.initial_state()));
  }
  std::vector<ActionId> amap(l.actions().size(), lts::kNoState);
  // Exact (block, block) dedup per action.
  std::vector<std::unordered_set<std::uint64_t>> seen(l.actions().size());
  for (StateId s = 0; s < l.num_states(); ++s) {
    const BlockId bs = p.block_of(s);
    for (const OutEdge& e : l.out(s)) {
      const BlockId bt = p.block_of(e.dst);
      if (skip_inert_tau && lts::ActionTable::is_tau(e.action) && bs == bt) {
        continue;
      }
      const std::uint64_t key = (static_cast<std::uint64_t>(bs) << 32) | bt;
      if (!seen[e.action].insert(key).second) {
        continue;
      }
      if (amap[e.action] == lts::kNoState) {
        amap[e.action] = q.actions().intern(l.actions().name(e.action));
      }
      q.add_transition(bs, amap[e.action], bt);
    }
  }
  return q;
}

namespace {

/// Tau-saturation: the weak transition relation as an explicit LTS.
Lts saturate(const Lts& l) {
  const std::size_t n = l.num_states();
  // Tau-closure per state (forward).
  std::vector<std::vector<StateId>> closure(n);
  for (StateId s = 0; s < n; ++s) {
    std::vector<bool> in(n, false);
    std::vector<StateId> stack{s};
    in[s] = true;
    while (!stack.empty()) {
      const StateId v = stack.back();
      stack.pop_back();
      closure[s].push_back(v);
      for (const OutEdge& e : l.out(v)) {
        if (lts::ActionTable::is_tau(e.action) && !in[e.dst]) {
          in[e.dst] = true;
          stack.push_back(e.dst);
        }
      }
    }
  }
  Lts w;
  w.add_states(n);
  if (n > 0) {
    w.set_initial_state(l.initial_state());
  }
  std::vector<ActionId> amap(l.actions().size(), lts::kNoState);
  for (StateId s = 0; s < n; ++s) {
    std::vector<std::unordered_set<std::uint64_t>> seen(l.actions().size());
    // Weak tau moves: s =tau*=> u (including the empty move).
    for (const StateId u : closure[s]) {
      if (seen[lts::ActionTable::kTau]
              .insert(static_cast<std::uint64_t>(u))
              .second) {
        w.add_transition(s, lts::ActionTable::kTau, u);
      }
    }
    // Weak visible moves: s =tau*=> s' -a-> t =tau*=> u.
    for (const StateId sp : closure[s]) {
      for (const OutEdge& e : l.out(sp)) {
        if (lts::ActionTable::is_tau(e.action)) {
          continue;
        }
        if (amap[e.action] == lts::kNoState) {
          amap[e.action] = w.actions().intern(l.actions().name(e.action));
        }
        for (const StateId u : closure[e.dst]) {
          if (seen[e.action].insert(static_cast<std::uint64_t>(u)).second) {
            w.add_transition(s, amap[e.action], u);
          }
        }
      }
    }
  }
  return w;
}

}  // namespace

Partition weak_partition(const Lts& l) {
  if (l.num_states() == 0) {
    return Partition(0);
  }
  return strong_partition(saturate(l));
}

MinimizeResult minimize_weak(const Lts& l) {
  Partition p = weak_partition(l);
  Lts q = quotient_lts(l, p, /*skip_inert_tau=*/true);
  return MinimizeResult{std::move(q), std::move(p)};
}

MinimizeResult minimize_strong(const Lts& l) {
  Partition p = strong_partition(l);
  Lts q = quotient_lts(l, p, /*skip_inert_tau=*/false);
  return MinimizeResult{std::move(q), std::move(p)};
}

}  // namespace multival::bisim
