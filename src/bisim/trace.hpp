// Weak-trace (language) equivalence via tau-closure determinisation —
// the coarsest useful equivalence in the CADP spectrum, appropriate for
// pure safety comparisons where branching structure is irrelevant.
#pragma once

#include <cstddef>

#include "bisim/strong.hpp"
#include "lts/lts.hpp"

namespace multival::bisim {

struct DeterminizeOptions {
  /// Subset construction can explode; exceeding this throws.
  std::size_t max_states = 1u << 20;
};

/// Deterministic LTS accepting the same weak traces (tau-closed subset
/// construction).  The result has no tau transitions and at most one
/// successor per (state, label).
[[nodiscard]] lts::Lts determinize(const lts::Lts& l,
                                   const DeterminizeOptions& opts = {});

/// True if @p a and @p b have the same weak traces (observable language).
/// Weak trace equivalence is strictly coarser than branching bisimilarity.
[[nodiscard]] bool weak_trace_equivalent(const lts::Lts& a, const lts::Lts& b,
                                         const DeterminizeOptions& opts = {});

}  // namespace multival::bisim
