#include "bisim/equivalence.hpp"

#include <stdexcept>

#include "bisim/branching.hpp"
#include "bisim/strong.hpp"

namespace multival::bisim {

const char* to_string(Equivalence e) {
  switch (e) {
    case Equivalence::kStrong:
      return "strong";
    case Equivalence::kWeak:
      return "weak";
    case Equivalence::kBranching:
      return "branching";
    case Equivalence::kDivergenceBranching:
      return "divbranching";
  }
  return "?";
}

DisjointUnion disjoint_union(const lts::Lts& a, const lts::Lts& b) {
  DisjointUnion u;
  u.lts = a;
  u.b_offset = static_cast<lts::StateId>(a.num_states());
  u.lts.add_states(b.num_states());
  for (lts::StateId s = 0; s < b.num_states(); ++s) {
    for (const lts::OutEdge& e : b.out(s)) {
      u.lts.add_transition(u.b_offset + s, b.actions().name(e.action),
                           u.b_offset + e.dst);
    }
  }
  u.lts.set_initial_state(a.initial_state());
  return u;
}

namespace {

Partition run_partition(const lts::Lts& l, Equivalence e) {
  switch (e) {
    case Equivalence::kStrong:
      return strong_partition(l);
    case Equivalence::kWeak:
      return weak_partition(l);
    case Equivalence::kBranching:
      return branching_partition(l, BranchingOptions{false});
    case Equivalence::kDivergenceBranching:
      return branching_partition(l, BranchingOptions{true});
  }
  throw std::logic_error("run_partition: bad equivalence");
}

}  // namespace

bool equivalent(const lts::Lts& a, const lts::Lts& b, Equivalence e) {
  if (a.num_states() == 0 || b.num_states() == 0) {
    return a.num_states() == b.num_states();
  }
  const DisjointUnion u = disjoint_union(a, b);
  const Partition p = run_partition(u.lts, e);
  return p.block_of(a.initial_state()) ==
         p.block_of(u.b_offset + b.initial_state());
}

MinimizeResult minimize(const lts::Lts& l, Equivalence e) {
  switch (e) {
    case Equivalence::kStrong:
      return minimize_strong(l);
    case Equivalence::kWeak:
      return minimize_weak(l);
    case Equivalence::kBranching:
      return minimize_branching(l, BranchingOptions{false});
    case Equivalence::kDivergenceBranching:
      return minimize_branching(l, BranchingOptions{true});
  }
  throw std::logic_error("minimize: bad equivalence");
}

}  // namespace multival::bisim
