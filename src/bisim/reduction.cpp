#include "bisim/reduction.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace multival::bisim {

namespace {

using lts::ActionId;
using lts::ActionTable;
using lts::StateId;

constexpr StateId kUnresolved = static_cast<StateId>(-1);

/// True if @p s's only move is a tau step (the state is inert).
bool compressible(const lts::Lts& l, StateId s) {
  const auto out = l.out(s);
  return out.size() == 1 && ActionTable::is_tau(out[0].action);
}

}  // namespace

lts::Lts tau_compress(const lts::Lts& l) {
  const std::size_t n = l.num_states();
  lts::Lts out;
  if (n == 0) {
    return out;
  }

  // rep[s]: the endpoint of the inert-tau chain starting at s.  Chains are
  // followed iteratively with path memoisation; a chain that bites its own
  // tail is a tau cycle, contracted to its smallest member (which keeps a
  // tau self-loop: its one tau step leads back into the cycle, whose
  // representative is itself).
  std::vector<StateId> rep(n, kUnresolved);
  std::vector<char> on_path(n, 0);
  std::vector<StateId> path;
  for (StateId s = 0; s < n; ++s) {
    if (rep[s] != kUnresolved) {
      continue;
    }
    path.clear();
    StateId cur = s;
    StateId target = kUnresolved;
    while (true) {
      if (rep[cur] != kUnresolved) {
        target = rep[cur];
        break;
      }
      if (!compressible(l, cur)) {
        target = cur;
        break;
      }
      if (on_path[cur]) {
        // Tau cycle path[it..end): representative = smallest state id.
        const auto it = std::find(path.begin(), path.end(), cur);
        target = *std::min_element(it, path.end());
        break;
      }
      on_path[cur] = 1;
      path.push_back(cur);
      cur = l.out(cur)[0].dst;
    }
    for (const StateId p : path) {
      rep[p] = target;
      on_path[p] = 0;
    }
    rep[s] = target;
  }

  // Kept states: chain endpoints, renumbered in ascending old-id order.
  std::vector<StateId> new_id(n, kUnresolved);
  StateId next = 0;
  for (StateId s = 0; s < n; ++s) {
    if (rep[s] == s) {
      new_id[s] = next++;
    }
  }
  out.add_states(next);
  out.set_initial_state(new_id[rep[l.initial_state()]]);
  std::vector<lts::OutEdge> edges;
  for (StateId s = 0; s < n; ++s) {
    if (rep[s] != s) {
      continue;
    }
    edges.clear();
    for (const auto& e : l.out(s)) {
      edges.push_back({e.action, new_id[rep[e.dst]]});
    }
    std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
      return a.action != b.action ? a.action < b.action : a.dst < b.dst;
    });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const auto& e : edges) {
      out.add_transition(new_id[s], l.actions().name(e.action), e.dst);
    }
  }
  return out;
}

lts::Lts canonical_form(const lts::Lts& l) {
  const std::size_t n = l.num_states();
  lts::Lts out;
  if (n == 0) {
    return out;
  }

  // Order actions by label text (isomorphism-invariant, unlike interning
  // order) for use inside signatures.
  const std::size_t num_actions = l.actions().size();
  std::vector<ActionId> by_label(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    by_label[a] = a;
  }
  std::sort(by_label.begin(), by_label.end(), [&](ActionId a, ActionId b) {
    return l.actions().name(a) < l.actions().name(b);
  });
  std::vector<std::uint32_t> action_rank(num_actions);
  for (std::uint32_t i = 0; i < by_label.size(); ++i) {
    action_rank[by_label[i]] = i;
  }

  // Iterated signature refinement.  sig_{k+1}(s) = (rank_k(s), sorted
  // multiset of (action label rank, rank_k(dst))); new ranks are the
  // lexicographic order of signatures, so rank 0 stays with the initial
  // state and the whole order is isomorphism-invariant whenever refinement
  // reaches singletons (always, on a bisimulation-minimal LTS).
  std::vector<std::uint32_t> rank(n, 1);
  rank[l.initial_state()] = 0;
  std::size_t distinct = n == 1 ? 1 : 2;
  using Sig = std::pair<std::uint32_t,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>>>;
  while (distinct < n) {
    std::map<Sig, std::vector<StateId>> buckets;
    for (StateId s = 0; s < n; ++s) {
      Sig sig{rank[s], {}};
      for (const auto& e : l.out(s)) {
        sig.second.emplace_back(action_rank[e.action], rank[e.dst]);
      }
      std::sort(sig.second.begin(), sig.second.end());
      buckets[std::move(sig)].push_back(s);
    }
    if (buckets.size() == distinct) {
      break;  // stable without reaching singletons (non-minimal input)
    }
    std::uint32_t next = 0;
    for (const auto& [sig, states] : buckets) {
      for (const StateId s : states) {
        rank[s] = next;
      }
      ++next;
    }
    distinct = buckets.size();
  }

  // Total order: rank, ties (non-minimal inputs only) by old id.
  std::vector<StateId> order(n);
  for (StateId s = 0; s < n; ++s) {
    order[s] = s;
  }
  std::stable_sort(order.begin(), order.end(), [&](StateId a, StateId b) {
    return rank[a] < rank[b];
  });
  std::vector<StateId> new_id(n);
  for (StateId i = 0; i < n; ++i) {
    new_id[order[i]] = i;
  }

  // Rebuild: "i"/"exit" keep their fixed ids, every other label is interned
  // in sorted order; per-state transitions sorted by (label rank, dst).
  out.add_states(n);
  out.set_initial_state(new_id[l.initial_state()]);
  for (const ActionId a : by_label) {
    out.actions().intern(l.actions().name(a));
  }
  std::vector<lts::OutEdge> edges;
  for (StateId i = 0; i < n; ++i) {
    const StateId s = order[i];
    edges.clear();
    for (const auto& e : l.out(s)) {
      edges.push_back({e.action, new_id[e.dst]});
    }
    std::sort(edges.begin(), edges.end(), [&](const auto& a, const auto& b) {
      return action_rank[a.action] != action_rank[b.action]
                 ? action_rank[a.action] < action_rank[b.action]
                 : a.dst < b.dst;
    });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const auto& e : edges) {
      out.add_transition(i, l.actions().name(e.action), e.dst);
    }
  }
  return out;
}

lts::Lts canonical_minimized(const lts::Lts& l, Equivalence e) {
  return canonical_form(minimize(l, e).quotient);
}

}  // namespace multival::bisim
