// Textual front end for the property language (the EVALUATOR role):
// parses action formulas and state formulas from strings, so properties can
// be stored in files / passed on a command line instead of built in C++.
//
// Grammar (precedence low to high; all operators right-associative):
//
//   state   ::= 'mu' IDENT '.' state | 'nu' IDENT '.' state
//             | or
//   or      ::= and ('||' and)*
//   and     ::= unary ('&&' unary)*
//   unary   ::= '!' unary
//             | '<' action '>' unary | '[' action ']' unary
//             | 'tt' | 'ff' | IDENT | '(' state ')'
//
//   action  ::= aor
//   aor     ::= aand ('|' aand)*
//   aand    ::= aunary ('&' aunary)*
//   aunary  ::= '!' aunary | 'any' | 'tau' | 'visible'
//             | '\'' glob '\'' | '"' glob '"' | '(' action ')'
//
// Examples:
//   nu X. (<any> tt && [any] X)                      — deadlock freedom
//   [ 'PUSH*' ] mu Y. (<any> tt && [ !'POP*' ] Y)    — every push is popped
#pragma once

#include <stdexcept>
#include <string_view>

#include "mc/formula.hpp"

namespace multival::mc {

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses a state formula; throws ParseError with position info.
[[nodiscard]] FormulaPtr parse_formula(std::string_view text);

/// Parses an action formula.
[[nodiscard]] ActionPtr parse_action_formula(std::string_view text);

}  // namespace multival::mc
