#include "mc/parser.hpp"

#include <cctype>
#include <string>

namespace multival::mc {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  FormulaPtr parse_state() {
    FormulaPtr f = state_expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing input");
    }
    return f;
  }

  ActionPtr parse_action() {
    ActionPtr a = action_or();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing input");
    }
    return a;
  }

 private:
  // ---- state formulas ----------------------------------------------------

  FormulaPtr state_expr() {
    skip_ws();
    if (eat_keyword("mu")) {
      const std::string v = ident();
      expect('.');
      return mu(v, state_expr());
    }
    if (eat_keyword("nu")) {
      const std::string v = ident();
      expect('.');
      return nu(v, state_expr());
    }
    return state_or();
  }

  FormulaPtr state_or() {
    FormulaPtr f = state_and();
    while (true) {
      skip_ws();
      if (!eat_symbol("||")) {
        return f;
      }
      f = f_or(std::move(f), state_and());
    }
  }

  FormulaPtr state_and() {
    FormulaPtr f = state_unary();
    while (true) {
      skip_ws();
      if (!eat_symbol("&&")) {
        return f;
      }
      f = f_and(std::move(f), state_unary());
    }
  }

  FormulaPtr state_unary() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of formula");
    }
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      return f_not(state_unary());
    }
    if (c == '<') {
      ++pos_;
      ActionPtr a = action_or();
      expect('>');
      return dia(std::move(a), state_unary());
    }
    if (c == '[') {
      ++pos_;
      ActionPtr a = action_or();
      expect(']');
      return box(std::move(a), state_unary());
    }
    if (c == '(') {
      ++pos_;
      // A parenthesised formula may itself start with mu/nu.
      FormulaPtr f = state_expr_inner();
      expect(')');
      return f;
    }
    if (eat_keyword("tt")) {
      return f_true();
    }
    if (eat_keyword("ff")) {
      return f_false();
    }
    if (eat_keyword("mu")) {
      const std::string v = ident();
      expect('.');
      return mu(v, state_expr_inner());
    }
    if (eat_keyword("nu")) {
      const std::string v = ident();
      expect('.');
      return nu(v, state_expr_inner());
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return var(ident());
    }
    fail("expected a state formula");
  }

  /// Like state_expr but without the end-of-input check (used inside
  /// parentheses).
  FormulaPtr state_expr_inner() {
    skip_ws();
    if (eat_keyword("mu")) {
      const std::string v = ident();
      expect('.');
      return mu(v, state_expr_inner());
    }
    if (eat_keyword("nu")) {
      const std::string v = ident();
      expect('.');
      return nu(v, state_expr_inner());
    }
    return state_or();
  }

  // ---- action formulas -----------------------------------------------------

  ActionPtr action_or() {
    ActionPtr a = action_and();
    while (true) {
      skip_ws();
      // '|' but not '||' (which belongs to the state level).
      if (pos_ + 1 < text_.size() && text_[pos_] == '|' &&
          text_[pos_ + 1] == '|') {
        return a;
      }
      if (!eat_symbol("|")) {
        return a;
      }
      a = act_or(std::move(a), action_and());
    }
  }

  ActionPtr action_and() {
    ActionPtr a = action_unary();
    while (true) {
      skip_ws();
      if (pos_ + 1 < text_.size() && text_[pos_] == '&' &&
          text_[pos_ + 1] == '&') {
        return a;
      }
      if (!eat_symbol("&")) {
        return a;
      }
      a = act_and(std::move(a), action_unary());
    }
  }

  ActionPtr action_unary() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of action formula");
    }
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      return act_not(action_unary());
    }
    if (c == '(') {
      ++pos_;
      ActionPtr a = action_or();
      expect(')');
      return a;
    }
    if (c == '\'' || c == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != c) {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated label literal");
      }
      const std::string glob(text_.substr(start, pos_ - start));
      ++pos_;
      return act(glob);
    }
    if (eat_keyword("any")) {
      return act_any();
    }
    if (eat_keyword("tau")) {
      return act_tau();
    }
    if (eat_keyword("visible")) {
      return act_visible();
    }
    fail("expected an action formula");
  }

  // ---- lexing helpers ---------------------------------------------------------

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat_symbol(std::string_view sym) {
    skip_ws();
    if (text_.substr(pos_).starts_with(sym)) {
      pos_ += sym.size();
      return true;
    }
    return false;
  }

  /// Consumes @p kw only if it is a full word.
  bool eat_keyword(std::string_view kw) {
    skip_ws();
    if (!text_.substr(pos_).starts_with(kw)) {
      return false;
    }
    const std::size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  std::string ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected an identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("formula parse error at position " +
                     std::to_string(pos_) + ": " + what + " in \"" +
                     std::string(text_) + "\"");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FormulaPtr parse_formula(std::string_view text) {
  return Parser(text).parse_state();
}

ActionPtr parse_action_formula(std::string_view text) {
  return Parser(text).parse_action();
}

}  // namespace multival::mc
