#include "mc/evaluator.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_map>

namespace multival::mc {

// ---------------------------------------------------------------- StateSet --

std::size_t StateSet::count() const {
  std::size_t c = 0;
  for (const auto w : bits_) {
    c += static_cast<std::size_t>(std::popcount(w));
  }
  return c;
}

std::vector<lts::StateId> StateSet::members() const {
  std::vector<lts::StateId> out;
  for (lts::StateId s = 0; s < size_; ++s) {
    if (contains(s)) {
      out.push_back(s);
    }
  }
  return out;
}

StateSet& StateSet::operator&=(const StateSet& o) {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] &= o.bits_[i];
  }
  return *this;
}

StateSet& StateSet::operator|=(const StateSet& o) {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] |= o.bits_[i];
  }
  return *this;
}

void StateSet::complement() {
  for (auto& w : bits_) {
    w = ~w;
  }
  trim();
}

void StateSet::trim() {
  const std::size_t used = size_ & 63;
  if (!bits_.empty() && used != 0) {
    bits_.back() &= (1ull << used) - 1;
  }
}

// --------------------------------------------------------------- evaluator --

namespace {

using lts::ActionId;
using lts::Lts;
using lts::StateId;

class Evaluator {
 public:
  explicit Evaluator(const Lts& l) : lts_(l) {}

  StateSet eval(const StateFormula& f) {
    using Kind = StateFormula::Kind;
    const std::size_t n = lts_.num_states();
    switch (f.kind()) {
      case Kind::kTrue: {
        StateSet s(n);
        s.fill();
        return s;
      }
      case Kind::kFalse:
        return StateSet(n);
      case Kind::kAnd: {
        StateSet s = eval(*f.lhs());
        s &= eval(*f.rhs());
        return s;
      }
      case Kind::kOr: {
        StateSet s = eval(*f.lhs());
        s |= eval(*f.rhs());
        return s;
      }
      case Kind::kNot: {
        if (!f.lhs()->free_vars().empty()) {
          throw std::invalid_argument(
              "mu-calculus: negation over an open formula: " +
              f.to_string());
        }
        StateSet s = eval(*f.lhs());
        s.complement();
        return s;
      }
      case Kind::kDiamond:
        return modal(f, /*diamond=*/true);
      case Kind::kBox:
        return modal(f, /*diamond=*/false);
      case Kind::kMu:
        return fixpoint(f, /*least=*/true);
      case Kind::kNu:
        return fixpoint(f, /*least=*/false);
      case Kind::kVar: {
        const auto it = env_.find(f.var());
        if (it == env_.end()) {
          throw std::invalid_argument("mu-calculus: unbound variable " +
                                      f.var());
        }
        return it->second;
      }
    }
    throw std::logic_error("evaluate: bad formula kind");
  }

 private:
  /// Per-action match mask for an action formula (cached per node pointer).
  const std::vector<bool>& action_mask(const ActionFormula* af) {
    auto it = masks_.find(af);
    if (it != masks_.end()) {
      return it->second;
    }
    std::vector<bool> mask(lts_.actions().size(), false);
    for (ActionId a = 0; a < lts_.actions().size(); ++a) {
      mask[a] = af->matches(lts_.actions().name(a),
                            lts::ActionTable::is_tau(a));
    }
    return masks_.emplace(af, std::move(mask)).first->second;
  }

  StateSet modal(const StateFormula& f, bool diamond) {
    const StateSet inner = eval(*f.lhs());
    const auto& mask = action_mask(f.action().get());
    StateSet out(lts_.num_states());
    for (StateId s = 0; s < lts_.num_states(); ++s) {
      bool exists = false;
      bool all = true;
      for (const lts::OutEdge& e : lts_.out(s)) {
        if (!mask[e.action]) {
          continue;
        }
        if (inner.contains(e.dst)) {
          exists = true;
        } else {
          all = false;
        }
      }
      if (diamond ? exists : all) {
        out.insert(s);
      }
    }
    return out;
  }

  StateSet fixpoint(const StateFormula& f, bool least) {
    StateSet current(lts_.num_states());
    if (!least) {
      current.fill();
    }
    // Naive iteration; converges in at most num_states rounds for the
    // alternation-free fragment.
    while (true) {
      env_[f.var()] = current;
      StateSet next = eval(*f.lhs());
      if (next == current) {
        env_.erase(f.var());
        return next;
      }
      current = std::move(next);
    }
  }

  const Lts& lts_;
  std::unordered_map<std::string, StateSet> env_;
  std::unordered_map<const ActionFormula*, std::vector<bool>> masks_;
};

}  // namespace

StateSet evaluate(const Lts& l, const FormulaPtr& f) {
  if (f == nullptr) {
    throw std::invalid_argument("evaluate: null formula");
  }
  if (!f->free_vars().empty()) {
    throw std::invalid_argument("evaluate: formula has free variables: " +
                                f->to_string());
  }
  Evaluator ev(l);
  return ev.eval(*f);
}

bool check(const Lts& l, const FormulaPtr& f) {
  if (l.num_states() == 0) {
    return true;
  }
  return evaluate(l, f).contains(l.initial_state());
}

}  // namespace multival::mc
