// Global evaluation of alternation-free mu-calculus formulas over an LTS.
//
// The evaluator computes the full satisfaction set of a formula by naive
// fixpoint iteration over state bitsets; action formulas are compiled once
// per formula node into a per-ActionId match mask.  Negation is restricted
// to closed operands (guaranteeing monotonicity of all fixpoints), which
// covers the alternation-free fragment used by the canned properties.
#pragma once

#include <cstdint>
#include <vector>

#include "lts/lts.hpp"
#include "mc/formula.hpp"

namespace multival::mc {

/// A set of LTS states, as a packed bitset.
class StateSet {
 public:
  StateSet() = default;
  explicit StateSet(std::size_t n) : bits_((n + 63) / 64, 0), size_(n) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(lts::StateId s) const {
    return (bits_[s >> 6] >> (s & 63)) & 1u;
  }
  void insert(lts::StateId s) { bits_[s >> 6] |= (1ull << (s & 63)); }
  void erase(lts::StateId s) { bits_[s >> 6] &= ~(1ull << (s & 63)); }
  void fill() {
    for (auto& w : bits_) {
      w = ~0ull;
    }
    trim();
  }
  void clear() {
    for (auto& w : bits_) {
      w = 0;
    }
  }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::vector<lts::StateId> members() const;

  friend bool operator==(const StateSet&, const StateSet&) = default;

  StateSet& operator&=(const StateSet& o);
  StateSet& operator|=(const StateSet& o);
  /// Complement (within 0..size-1).
  void complement();

 private:
  void trim();
  std::vector<std::uint64_t> bits_;
  std::size_t size_ = 0;
};

/// Evaluates @p f over @p l, returning the set of satisfying states.
/// Throws std::invalid_argument if the formula has free variables or a
/// negation over a non-closed operand.
[[nodiscard]] StateSet evaluate(const lts::Lts& l, const FormulaPtr& f);

/// True if the initial state of @p l satisfies @p f.
[[nodiscard]] bool check(const lts::Lts& l, const FormulaPtr& f);

}  // namespace multival::mc
