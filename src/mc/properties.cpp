#include "mc/properties.hpp"

#include "lts/analysis.hpp"
#include "mc/diagnostic.hpp"

namespace multival::mc {

FormulaPtr deadlock_freedom() {
  return nu("X", f_and(dia(act_any(), f_true()), box(act_any(), var("X"))));
}

FormulaPtr can_do(ActionPtr af) {
  return mu("X", f_or(dia(std::move(af), f_true()), dia(act_any(), var("X"))));
}

FormulaPtr inevitable(ActionPtr af) {
  return mu("X", f_and(dia(act_any(), f_true()),
                       box(act_not(std::move(af)), var("X"))));
}

FormulaPtr never(ActionPtr af) {
  return always(box(std::move(af), f_false()));
}

FormulaPtr response(ActionPtr trigger, ActionPtr resp) {
  return always(box(std::move(trigger), inevitable(std::move(resp))));
}

FormulaPtr always(FormulaPtr f) {
  return nu("AlwaysX", f_and(std::move(f), box(act_any(), var("AlwaysX"))));
}

std::vector<PropertyResult> standard_battery(
    const lts::Lts& l,
    const std::vector<std::pair<std::string, FormulaPtr>>& extra) {
  std::vector<PropertyResult> out;

  {
    const auto deadlocks = lts::deadlock_states(l);
    PropertyResult r;
    r.name = "deadlock freedom";
    r.holds = deadlocks.empty();
    if (r.holds) {
      r.detail = "no reachable deadlock";
    } else {
      r.detail = std::to_string(deadlocks.size()) +
                 " reachable deadlock state(s); shortest trace: " +
                 deadlock_trace(l).to_string();
    }
    out.push_back(std::move(r));
  }
  {
    const auto divergent = lts::divergent_states(l);
    PropertyResult r;
    r.name = "livelock freedom";
    r.holds = divergent.empty();
    r.detail = r.holds ? "no reachable tau cycle"
                       : std::to_string(divergent.size()) +
                             " state(s) on a tau cycle, e.g. state " +
                             std::to_string(divergent.front());
    out.push_back(std::move(r));
  }
  for (const auto& [name, formula] : extra) {
    PropertyResult r;
    r.name = name;
    r.holds = check(l, formula);
    r.detail = formula->to_string();
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace multival::mc
