#include "mc/formula.hpp"

#include <algorithm>
#include <stdexcept>

namespace multival::mc {

// ---------------------------------------------------------------- actions --

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with '*' backtracking and '?' single-char wildcard.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

ActionPtr ActionFormula::make(Kind k, std::string pattern, ActionPtr l,
                              ActionPtr r) {
  auto node = std::make_shared<ActionFormula>();
  node->kind_ = k;
  node->pattern_ = std::move(pattern);
  node->lhs_ = std::move(l);
  node->rhs_ = std::move(r);
  return node;
}

bool ActionFormula::matches(std::string_view label, bool is_tau) const {
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kTau:
      return is_tau;
    case Kind::kVisible:
      return !is_tau;
    case Kind::kGlob:
      return !is_tau && glob_match(pattern_, label);
    case Kind::kNot:
      return !lhs_->matches(label, is_tau);
    case Kind::kAnd:
      return lhs_->matches(label, is_tau) && rhs_->matches(label, is_tau);
    case Kind::kOr:
      return lhs_->matches(label, is_tau) || rhs_->matches(label, is_tau);
  }
  return false;
}

std::string ActionFormula::to_string() const {
  switch (kind_) {
    case Kind::kAny:
      return "any";
    case Kind::kTau:
      return "tau";
    case Kind::kVisible:
      return "visible";
    case Kind::kGlob:
      return "'" + pattern_ + "'";
    case Kind::kNot:
      return "!" + lhs_->to_string();
    case Kind::kAnd:
      return "(" + lhs_->to_string() + " & " + rhs_->to_string() + ")";
    case Kind::kOr:
      return "(" + lhs_->to_string() + " | " + rhs_->to_string() + ")";
  }
  return "?";
}

ActionPtr act_any() {
  return ActionFormula::make(ActionFormula::Kind::kAny, {}, nullptr, nullptr);
}
ActionPtr act_tau() {
  return ActionFormula::make(ActionFormula::Kind::kTau, {}, nullptr, nullptr);
}
ActionPtr act_visible() {
  return ActionFormula::make(ActionFormula::Kind::kVisible, {}, nullptr,
                             nullptr);
}
ActionPtr act(std::string_view glob) {
  return ActionFormula::make(ActionFormula::Kind::kGlob, std::string(glob),
                             nullptr, nullptr);
}
ActionPtr act_not(ActionPtr a) {
  return ActionFormula::make(ActionFormula::Kind::kNot, {}, std::move(a),
                             nullptr);
}
ActionPtr act_and(ActionPtr a, ActionPtr b) {
  return ActionFormula::make(ActionFormula::Kind::kAnd, {}, std::move(a),
                             std::move(b));
}
ActionPtr act_or(ActionPtr a, ActionPtr b) {
  return ActionFormula::make(ActionFormula::Kind::kOr, {}, std::move(a),
                             std::move(b));
}

// ----------------------------------------------------------------- states --

FormulaPtr StateFormula::make(Kind k, std::string v, ActionPtr a, FormulaPtr l,
                              FormulaPtr r) {
  auto node = std::make_shared<StateFormula>();
  node->kind_ = k;
  node->var_ = std::move(v);
  node->action_ = std::move(a);
  node->lhs_ = std::move(l);
  node->rhs_ = std::move(r);
  return node;
}

namespace {

void collect_free(const StateFormula& f, std::vector<std::string>& bound,
                  std::vector<std::string>& out) {
  using Kind = StateFormula::Kind;
  switch (f.kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kVar:
      if (std::find(bound.begin(), bound.end(), f.var()) == bound.end()) {
        out.push_back(f.var());
      }
      return;
    case Kind::kMu:
    case Kind::kNu:
      bound.push_back(f.var());
      collect_free(*f.lhs(), bound, out);
      bound.pop_back();
      return;
    case Kind::kNot:
    case Kind::kDiamond:
    case Kind::kBox:
      collect_free(*f.lhs(), bound, out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      collect_free(*f.lhs(), bound, out);
      collect_free(*f.rhs(), bound, out);
      return;
  }
}

}  // namespace

std::vector<std::string> StateFormula::free_vars() const {
  std::vector<std::string> bound;
  std::vector<std::string> out;
  collect_free(*this, bound, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string StateFormula::to_string() const {
  switch (kind_) {
    case Kind::kTrue:
      return "tt";
    case Kind::kFalse:
      return "ff";
    case Kind::kAnd:
      return "(" + lhs_->to_string() + " && " + rhs_->to_string() + ")";
    case Kind::kOr:
      return "(" + lhs_->to_string() + " || " + rhs_->to_string() + ")";
    case Kind::kNot:
      return "!" + lhs_->to_string();
    case Kind::kDiamond:
      return "<" + action_->to_string() + "> " + lhs_->to_string();
    case Kind::kBox:
      return "[" + action_->to_string() + "] " + lhs_->to_string();
    case Kind::kMu:
      return "mu " + var_ + ". " + lhs_->to_string();
    case Kind::kNu:
      return "nu " + var_ + ". " + lhs_->to_string();
    case Kind::kVar:
      return var_;
  }
  return "?";
}

FormulaPtr f_true() {
  return StateFormula::make(StateFormula::Kind::kTrue, {}, nullptr, nullptr,
                            nullptr);
}
FormulaPtr f_false() {
  return StateFormula::make(StateFormula::Kind::kFalse, {}, nullptr, nullptr,
                            nullptr);
}
FormulaPtr f_and(FormulaPtr a, FormulaPtr b) {
  return StateFormula::make(StateFormula::Kind::kAnd, {}, nullptr,
                            std::move(a), std::move(b));
}
FormulaPtr f_or(FormulaPtr a, FormulaPtr b) {
  return StateFormula::make(StateFormula::Kind::kOr, {}, nullptr, std::move(a),
                            std::move(b));
}
FormulaPtr f_not(FormulaPtr a) {
  return StateFormula::make(StateFormula::Kind::kNot, {}, nullptr,
                            std::move(a), nullptr);
}
FormulaPtr dia(ActionPtr a, FormulaPtr f) {
  return StateFormula::make(StateFormula::Kind::kDiamond, {}, std::move(a),
                            std::move(f), nullptr);
}
FormulaPtr box(ActionPtr a, FormulaPtr f) {
  return StateFormula::make(StateFormula::Kind::kBox, {}, std::move(a),
                            std::move(f), nullptr);
}
FormulaPtr mu(std::string_view v, FormulaPtr body) {
  return StateFormula::make(StateFormula::Kind::kMu, std::string(v), nullptr,
                            std::move(body), nullptr);
}
FormulaPtr nu(std::string_view v, FormulaPtr body) {
  return StateFormula::make(StateFormula::Kind::kNu, std::string(v), nullptr,
                            std::move(body), nullptr);
}
FormulaPtr var(std::string_view name) {
  return StateFormula::make(StateFormula::Kind::kVar, std::string(name),
                            nullptr, nullptr, nullptr);
}

}  // namespace multival::mc
