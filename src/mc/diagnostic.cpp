#include "mc/diagnostic.hpp"

#include <algorithm>
#include <deque>

#include "lts/analysis.hpp"

namespace multival::mc {

std::string Trace::to_string() const {
  if (!found) {
    return "<none>";
  }
  if (labels.empty()) {
    return "<initial state>";
  }
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += " -> ";
    }
    out += labels[i];
  }
  return out;
}

namespace {

using lts::Lts;
using lts::StateId;

/// BFS parent links: for each reached state, the (predecessor, action).
struct Bfs {
  std::vector<StateId> parent;
  std::vector<lts::ActionId> via;
  std::vector<bool> seen;
};

Bfs bfs_from_initial(const Lts& l) {
  Bfs b;
  b.parent.assign(l.num_states(), lts::kNoState);
  b.via.assign(l.num_states(), 0);
  b.seen.assign(l.num_states(), false);
  if (l.num_states() == 0) {
    return b;
  }
  std::deque<StateId> queue{l.initial_state()};
  b.seen[l.initial_state()] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const lts::OutEdge& e : l.out(s)) {
      if (!b.seen[e.dst]) {
        b.seen[e.dst] = true;
        b.parent[e.dst] = s;
        b.via[e.dst] = e.action;
        queue.push_back(e.dst);
      }
    }
  }
  return b;
}

Trace unwind(const Lts& l, const Bfs& b, StateId target) {
  Trace t;
  t.found = true;
  t.final_state = target;
  StateId s = target;
  while (s != l.initial_state()) {
    t.labels.emplace_back(l.actions().name(b.via[s]));
    s = b.parent[s];
  }
  std::reverse(t.labels.begin(), t.labels.end());
  return t;
}

}  // namespace

Trace shortest_trace_to(const Lts& l, const StateSet& targets) {
  if (l.num_states() == 0) {
    return {};
  }
  // BFS layer order guarantees the first target found is at minimal depth;
  // scan in BFS order by re-running the search with an early exit.
  Bfs b;
  b.parent.assign(l.num_states(), lts::kNoState);
  b.via.assign(l.num_states(), 0);
  b.seen.assign(l.num_states(), false);
  std::deque<StateId> queue{l.initial_state()};
  b.seen[l.initial_state()] = true;
  if (targets.contains(l.initial_state())) {
    Trace t;
    t.found = true;
    t.final_state = l.initial_state();
    return t;
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const lts::OutEdge& e : l.out(s)) {
      if (b.seen[e.dst]) {
        continue;
      }
      b.seen[e.dst] = true;
      b.parent[e.dst] = s;
      b.via[e.dst] = e.action;
      if (targets.contains(e.dst)) {
        return unwind(l, b, e.dst);
      }
      queue.push_back(e.dst);
    }
  }
  return {};
}

Trace shortest_trace_to_action(const Lts& l, const ActionPtr& af) {
  if (l.num_states() == 0 || af == nullptr) {
    return {};
  }
  const Bfs b = bfs_from_initial(l);
  // Find the matching transition whose source is at minimal depth by BFS
  // over depth: simplest correct approach — search all reachable matching
  // transitions, take the one minimising |trace to src| (+1).
  Trace best;
  std::size_t best_len = static_cast<std::size_t>(-1);
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (!b.seen[s]) {
      continue;
    }
    for (const lts::OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      if (!af->matches(label, lts::ActionTable::is_tau(e.action))) {
        continue;
      }
      Trace t = unwind(l, b, s);
      t.labels.emplace_back(label);
      t.final_state = e.dst;
      if (t.labels.size() < best_len) {
        best_len = t.labels.size();
        best = std::move(t);
      }
    }
  }
  return best;
}

Trace deadlock_trace(const lts::Lts& l) {
  StateSet dead(l.num_states());
  for (const StateId s : lts::deadlock_states(l)) {
    dead.insert(s);
  }
  return shortest_trace_to(l, dead);
}

}  // namespace multival::mc
