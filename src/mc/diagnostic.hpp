// Diagnostic generation: shortest witness/counterexample traces, the
// "example paths" a verification engineer needs when a verdict is FAIL.
#pragma once

#include <string>
#include <vector>

#include "lts/lts.hpp"
#include "mc/evaluator.hpp"
#include "mc/formula.hpp"

namespace multival::mc {

/// A finite execution: the labels of a path from the initial state.
struct Trace {
  bool found = false;
  std::vector<std::string> labels;
  lts::StateId final_state = lts::kNoState;

  /// "IN !1 -> i -> OUT !1" (or "<initial state>" for the empty trace,
  /// "<none>" if not found).
  [[nodiscard]] std::string to_string() const;
};

/// Shortest path (by transition count) from the initial state to any state
/// in @p targets.
[[nodiscard]] Trace shortest_trace_to(const lts::Lts& l,
                                      const StateSet& targets);

/// Shortest path whose last transition matches @p af — a witness for
/// can_do(af) / a counterexample for never(af).
[[nodiscard]] Trace shortest_trace_to_action(const lts::Lts& l,
                                             const ActionPtr& af);

/// Shortest path to a reachable deadlock state.
[[nodiscard]] Trace deadlock_trace(const lts::Lts& l);

}  // namespace multival::mc
