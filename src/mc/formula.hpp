// Action formulas and state formulas of the alternation-free modal
// mu-calculus, the property language of the functional-verification flow
// (the role played by EVALUATOR in CADP).
//
// Action formulas describe sets of transition labels:
//    any, tau, visible, "PUSH*" (glob), !af, af & af, af | af
// State formulas:
//    tt, ff, f && f, f || f, !f (closed operand only),
//    <af> f, [af] f, mu X. f, nu X. f, X
//
// Formulas are immutable trees built with the free functions below; they are
// cheap to copy (shared_ptr nodes).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace multival::mc {

// ---------------------------------------------------------------- actions --

class ActionFormula;
using ActionPtr = std::shared_ptr<const ActionFormula>;

class ActionFormula {
 public:
  enum class Kind { kAny, kTau, kVisible, kGlob, kNot, kAnd, kOr };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& pattern() const { return pattern_; }
  [[nodiscard]] const ActionPtr& lhs() const { return lhs_; }
  [[nodiscard]] const ActionPtr& rhs() const { return rhs_; }

  /// True if a transition labelled @p label (tau iff @p is_tau) matches.
  [[nodiscard]] bool matches(std::string_view label, bool is_tau) const;

  /// Renders the formula ("'PUSH*' | tau" style).
  [[nodiscard]] std::string to_string() const;

  // Node factory (used by the builder functions below).
  static ActionPtr make(Kind k, std::string pattern, ActionPtr l, ActionPtr r);

 private:
  Kind kind_ = Kind::kAny;
  std::string pattern_;
  ActionPtr lhs_;
  ActionPtr rhs_;
};

/// Matches every transition (including tau).
[[nodiscard]] ActionPtr act_any();
/// Matches only tau ("i").
[[nodiscard]] ActionPtr act_tau();
/// Matches every visible (non-tau) transition.
[[nodiscard]] ActionPtr act_visible();
/// Glob on the full label: '*' matches any run of characters, '?' one.
/// A pattern without wildcards matches the label exactly.
[[nodiscard]] ActionPtr act(std::string_view glob);
[[nodiscard]] ActionPtr act_not(ActionPtr a);
[[nodiscard]] ActionPtr act_and(ActionPtr a, ActionPtr b);
[[nodiscard]] ActionPtr act_or(ActionPtr a, ActionPtr b);

/// Standalone glob matcher (exposed for reuse and tests).
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

// ----------------------------------------------------------------- states --

class StateFormula;
using FormulaPtr = std::shared_ptr<const StateFormula>;

class StateFormula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAnd,
    kOr,
    kNot,
    kDiamond,
    kBox,
    kMu,
    kNu,
    kVar,
  };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& var() const { return var_; }
  [[nodiscard]] const ActionPtr& action() const { return action_; }
  [[nodiscard]] const FormulaPtr& lhs() const { return lhs_; }
  [[nodiscard]] const FormulaPtr& rhs() const { return rhs_; }

  [[nodiscard]] std::string to_string() const;

  /// Free fixpoint variables of the formula.
  [[nodiscard]] std::vector<std::string> free_vars() const;

  static FormulaPtr make(Kind k, std::string var, ActionPtr a, FormulaPtr l,
                         FormulaPtr r);

 private:
  Kind kind_ = Kind::kTrue;
  std::string var_;
  ActionPtr action_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
};

[[nodiscard]] FormulaPtr f_true();
[[nodiscard]] FormulaPtr f_false();
[[nodiscard]] FormulaPtr f_and(FormulaPtr a, FormulaPtr b);
[[nodiscard]] FormulaPtr f_or(FormulaPtr a, FormulaPtr b);
/// Negation; the operand must be closed (checked at evaluation time).
[[nodiscard]] FormulaPtr f_not(FormulaPtr a);
/// <af> f : some af-transition leads to a state satisfying f.
[[nodiscard]] FormulaPtr dia(ActionPtr a, FormulaPtr f);
/// [af] f : every af-transition leads to a state satisfying f.
[[nodiscard]] FormulaPtr box(ActionPtr a, FormulaPtr f);
[[nodiscard]] FormulaPtr mu(std::string_view var, FormulaPtr body);
[[nodiscard]] FormulaPtr nu(std::string_view var, FormulaPtr body);
[[nodiscard]] FormulaPtr var(std::string_view name);

}  // namespace multival::mc
