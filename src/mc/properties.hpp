// Canned correctness properties used throughout the Multival case studies,
// expressed in the mu-calculus (plus a few direct graph algorithms where
// they are clearer).
#pragma once

#include <string>
#include <vector>

#include "lts/lts.hpp"
#include "mc/evaluator.hpp"
#include "mc/formula.hpp"

namespace multival::mc {

/// AG <any> tt — no reachable deadlock:  nu X. (<any>tt && [any]X).
[[nodiscard]] FormulaPtr deadlock_freedom();

/// Possibly @p af:  mu X. (<af>tt || <any>X).
[[nodiscard]] FormulaPtr can_do(ActionPtr af);

/// Inevitably @p af: every (infinite or maximal) path performs af —
/// mu X. (<any>tt && [!af]X).  Divergences falsify it, as usual for
/// action-based inevitability.
[[nodiscard]] FormulaPtr inevitable(ActionPtr af);

/// AG [af] ff — no reachable af-transition.
[[nodiscard]] FormulaPtr never(ActionPtr af);

/// Response: after every @p trigger, @p response is inevitable —
/// nu X. ([trigger] inevitable(response) && [any]X).
[[nodiscard]] FormulaPtr response(ActionPtr trigger, ActionPtr response);

/// AG (<af>tt => f) convenience: nu X. ((![af]ff... ) ) is awkward in the
/// negation-restricted fragment, so we provide "always": nu X. (f && [any]X).
[[nodiscard]] FormulaPtr always(FormulaPtr f);

/// A verification verdict with a one-line explanation (used by reports).
struct PropertyResult {
  std::string name;
  bool holds = false;
  std::string detail;
};

/// Runs the standard battery (deadlock freedom, livelock freedom) plus
/// user-supplied named formulas; returns one verdict per property.
[[nodiscard]] std::vector<PropertyResult> standard_battery(
    const lts::Lts& l,
    const std::vector<std::pair<std::string, FormulaPtr>>& extra = {});

}  // namespace multival::mc
