// The Multival flows, end to end.
//
// Functional verification flow (paper section 3):
//   model (proc/) -> LTS (proc/generator) -> minimisation (bisim/) ->
//   properties (mc/)                            ... verify()
//
// Performance evaluation flow (paper section 4):
//   (1) locate delays in the functional model and expose START/END gates,
//   (2) decorate: insert_delays() composes the model with phase-type delay
//       processes (constraint-oriented), or decorate_with_rates() replaces
//       gate transitions by Markovian ones directly,
//   (3) close_model(): hide everything, apply maximal progress, lump,
//       extract the CTMC,
//   (4) solve: steady-state / transient probabilities, throughputs,
//       expected latencies (markov/).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "imc/compose.hpp"
#include "imc/imc.hpp"
#include "imc/lump.hpp"
#include "lts/lts.hpp"
#include "markov/ctmc.hpp"
#include "mc/properties.hpp"
#include "phase/phase_type.hpp"

namespace multival::core {

// ----------------------------------------------------------- verification --

struct ModelStats {
  std::size_t states = 0;
  std::size_t transitions = 0;
};

struct VerificationReport {
  ModelStats raw;
  ModelStats minimized;  ///< modulo divergence-preserving branching bisim
  std::vector<mc::PropertyResult> properties;

  [[nodiscard]] bool all_hold() const;
  [[nodiscard]] std::string to_string() const;
};

/// Runs the functional-verification flow on @p l: sizes, minimisation,
/// deadlock/livelock detection, plus any extra named formulas.
[[nodiscard]] VerificationReport verify(
    const lts::Lts& l,
    const std::vector<std::pair<std::string, mc::FormulaPtr>>& extra = {});

// ------------------------------------------------------------ decoration --

/// Direct decoration: every transition whose gate appears in
/// @p gate_rates becomes a Markovian transition with that rate, labelled
/// with the original full label (so throughputs can be measured); all other
/// transitions stay interactive.
[[nodiscard]] imc::Imc decorate_with_rates(
    const lts::Lts& l, const std::map<std::string, double>& gate_rates);

/// One constraint-oriented delay: the functional model performs
/// @p start_gate when the delay begins and @p end_gate when it may end;
/// the delay process spends @p dist-distributed time in between.
/// Both gates must be offer-free (plain labels).
struct DelaySpec {
  std::string start_gate;
  std::string end_gate;
  phase::PhaseType dist;
};

/// Constraint-oriented decoration (the paper's three-step recipe): composes
/// @p l with one delay process per spec, synchronising on the START/END
/// gates and hiding them.
[[nodiscard]] imc::Imc insert_delays(const lts::Lts& l,
                                     const std::vector<DelaySpec>& delays);

/// Phase-type variant of decorate_with_rates: every transition whose gate
/// appears in @p gate_delays is expanded into the Coxian chain of the given
/// distribution (its final stage labelled with the original full label);
/// other transitions stay interactive.  This is how fixed-time delays
/// (Erlang-k fits) are attached to individual actions such as NoC link
/// hops.  Distributions must start deterministically in phase 0.
[[nodiscard]] imc::Imc decorate_with_phase_type(
    const lts::Lts& l, const std::map<std::string, phase::PhaseType>& gate_delays);

// ---------------------------------------------------------------- closure --

struct FlowStats {
  std::size_t imc_states = 0;
  std::size_t lumped_states = 0;
  std::size_t ctmc_states = 0;
};

struct ClosedModel {
  markov::Ctmc ctmc;
  /// ctmc state -> lumped-IMC state.
  std::vector<imc::StateId> imc_state_of;
  imc::Imc lumped;
  FlowStats stats;
};

/// Hides all remaining visible actions, applies maximal progress, lumps
/// (branching, unless @p lump is false) and extracts the CTMC.
[[nodiscard]] ClosedModel close_model(
    const imc::Imc& m,
    imc::NondetPolicy policy = imc::NondetPolicy::kReject, bool lump = true);

}  // namespace multival::core
