#include "core/diag.hpp"

namespace multival::core {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kAdvice:
      return "advice";
  }
  return "?";
}

std::string Diagnostic::to_text() const {
  std::string out(to_string(severity));
  out += ' ';
  out += code;
  if (!path.empty()) {
    out += " at ";
    out += path;
  }
  if (line > 0) {
    out += " (line ";
    out += std::to_string(line);
    if (column > 0) {
      out += ", column ";
      out += std::to_string(column);
    }
    out += ')';
  }
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " [hint: ";
    out += hint;
    out += ']';
  }
  return out;
}

std::string Diagnostic::to_json() const {
  std::string out = "{\"code\":";
  append_json_string(out, code);
  out += ",\"severity\":";
  append_json_string(out, to_string(severity));
  out += ",\"message\":";
  append_json_string(out, message);
  out += ",\"path\":";
  append_json_string(out, path);
  out += ",\"line\":" + std::to_string(line);
  out += ",\"column\":" + std::to_string(column);
  out += ",\"hint\":";
  append_json_string(out, hint);
  out += '}';
  return out;
}

std::string render_text(std::span<const Diagnostic> diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.to_text();
    out += '\n';
  }
  return out;
}

std::string render_json(std::span<const Diagnostic> diags) {
  std::string out = "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '\n';
    out += "  " + diags[i].to_json();
  }
  out += diags.empty() ? "]" : "\n]";
  return out;
}

bool has_errors(std::span<const Diagnostic> diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      return true;
    }
  }
  return false;
}

}  // namespace multival::core
