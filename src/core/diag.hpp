// Structured diagnostics shared by the proc parser and the static analyzer
// (src/analyze): one stable representation for everything the toolchain can
// report about a model *before* touching its state space.
//
// Every diagnostic carries a stable code ("MV0xx", see README's reference
// table), a severity, a human message, the term path / source position it
// anchors to, and an optional fix hint.  Text and JSON renderers live here
// so the CLI, the parser and the evaluation service all print identically.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace multival::core {

enum class Severity {
  kError,    ///< the model is ill-formed; downstream tools must reject it
  kWarning,  ///< almost certainly a modelling mistake, but well-formed
  kAdvice,   ///< informational (intentional idioms, approximation notes)
};

[[nodiscard]] std::string_view to_string(Severity s);

struct Diagnostic {
  std::string code;     ///< stable "MV0xx" identifier
  Severity severity = Severity::kError;
  std::string message;  ///< one-line description of the finding
  std::string path;     ///< term path, e.g. "System: par |[GO]| / right"
  std::size_t line = 0;    ///< 1-based source line; 0 = no position
  std::size_t column = 0;  ///< 1-based source column; 0 = no position
  std::string hint;     ///< optional fix hint

  /// "error MV003 at System: par |[GO]| — message (hint: ...)".
  [[nodiscard]] std::string to_text() const;
  /// One JSON object with all fields (strings escaped).
  [[nodiscard]] std::string to_json() const;
};

/// Renders one diagnostic per line.
[[nodiscard]] std::string render_text(std::span<const Diagnostic> diags);
/// Renders a JSON array of diagnostic objects.
[[nodiscard]] std::string render_json(std::span<const Diagnostic> diags);

/// True if any diagnostic has severity kError.
[[nodiscard]] bool has_errors(std::span<const Diagnostic> diags);

}  // namespace multival::core
