// Clang thread-safety analysis wrappers: a std::mutex / condition_variable
// pair whose lock discipline the compiler can check statically.
//
// The annotations follow the capability model of
// clang.llvm.org/docs/ThreadSafetyAnalysis.html: a Mutex is a capability,
// data members carry MV_GUARDED_BY(mu_), and functions that expect the
// lock to be held carry MV_REQUIRES(mu_).  Under clang the CI builds with
// -Werror=thread-safety, so forgetting a lock (or taking two in an
// inconsistent order across REQUIRES boundaries) is a compile error, not a
// data race found in production.  Under any other compiler every macro
// expands to nothing and the wrappers are zero-cost aliases for the
// standard primitives.
//
// Usage:
//   core::Mutex mu_;
//   core::CondVar cv_;
//   std::deque<Job> queue_ MV_GUARDED_BY(mu_);
//   ...
//   core::MutexLock lock(mu_);
//   cv_.wait(mu_, [this]() MV_REQUIRES(mu_) { return !queue_.empty(); });
//
// The condition variable waits on the *Mutex* (abseil style), not on a
// std::unique_lock, so the analysis sees the capability being released and
// reacquired across the wait.  Annotate wait predicates with
// MV_REQUIRES(mu) — they run with the lock held but are otherwise analysed
// as standalone functions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define MV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MV_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define MV_CAPABILITY(x) MV_THREAD_ANNOTATION(capability(x))
#define MV_SCOPED_CAPABILITY MV_THREAD_ANNOTATION(scoped_lockable)
#define MV_GUARDED_BY(x) MV_THREAD_ANNOTATION(guarded_by(x))
#define MV_PT_GUARDED_BY(x) MV_THREAD_ANNOTATION(pt_guarded_by(x))
#define MV_ACQUIRE(...) MV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MV_RELEASE(...) MV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MV_TRY_ACQUIRE(...) \
  MV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MV_REQUIRES(...) MV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MV_EXCLUDES(...) MV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MV_RETURN_CAPABILITY(x) MV_THREAD_ANNOTATION(lock_returned(x))
#define MV_NO_THREAD_SAFETY_ANALYSIS \
  MV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace multival::core {

/// std::mutex annotated as a thread-safety capability.
class MV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MV_ACQUIRE() { mu_.lock(); }
  void unlock() MV_RELEASE() { mu_.unlock(); }
  bool try_lock() MV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over Mutex — the annotated stand-in for std::lock_guard.
class MV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MV_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a core::Mutex.  The caller holds the
/// mutex (enforced by MV_REQUIRES); internally the wait adopts the held
/// lock, sleeps, and releases ownership back to the caller's MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate stop) MV_REQUIRES(mu) {
    std::unique_lock<std::mutex> held(mu.mu_, std::adopt_lock);
    cv_.wait(held, std::move(stop));
    held.release();  // ownership stays with the caller's MutexLock
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
                Predicate stop) MV_REQUIRES(mu) {
    std::unique_lock<std::mutex> held(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(held, timeout, std::move(stop));
    held.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace multival::core
