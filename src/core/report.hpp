// Small text-report helpers shared by the examples and the benchmark
// harness: aligned tables and number formatting, so every experiment binary
// prints its rows the same way.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace multival::core {

/// A titled table with aligned columns.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// ---- generation log ---------------------------------------------------------
//
// Every state-space generation (case-study models, compositional pipeline
// steps, the exploration engine) reports its wall time and sizes here, so
// that the different generation paths stay comparable in one table.

/// One model-generation measurement.
struct GenerationStat {
  std::string model;
  std::size_t states = 0;
  std::size_t transitions = 0;
  double seconds = 0.0;
};

/// Appends @p stat to the process-wide generation log.  Thread-safe.
void record_generation(GenerationStat stat);

/// Snapshot of the log, in recording order.  Thread-safe.
[[nodiscard]] std::vector<GenerationStat> generation_log();

/// Clears the log (tests and benchmark sections).
void clear_generation_log();

/// Renders the log: model | states | transitions | time (ms) | states/s.
[[nodiscard]] Table generation_table();

/// Runs @p build, records its wall time and the result's
/// num_states()/num_transitions() under @p model, and returns the result.
template <typename Build>
auto timed_generation(const std::string& model, Build&& build) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = build();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  record_generation(GenerationStat{model, result.num_states(),
                                   result.num_transitions(), seconds});
  return result;
}

// ---- solver log -------------------------------------------------------------
//
// Every numerical solve (steady state, transient, absorption, interval
// iteration over schedulers) reports its iteration count, certified
// residual / interval width and wall time here, so solver behaviour is
// observable from every experiment binary and from the CLI.

/// One numerical-solve measurement.
struct SolveStat {
  std::string solver;    ///< e.g. "interval_reach[max]"
  std::string context;   ///< model label from the enclosing SolveContext
  std::size_t states = 0;
  std::size_t iterations = 0;
  /// Final certified interval width (interval iteration) or last sweep
  /// delta (classical iterations).
  double residual = 0.0;
  double seconds = 0.0;
};

/// Appends @p stat to the process-wide solve log (tagging it with the
/// current SolveContext).  Thread-safe; the log is capped, see
/// solve_log_dropped().
void record_solve(SolveStat stat);

/// Snapshot of the log, in recording order.  Thread-safe.
[[nodiscard]] std::vector<SolveStat> solve_log();

/// Number of records dropped because the log cap was reached.
[[nodiscard]] std::size_t solve_log_dropped();

/// Clears the log and the dropped counter.
void clear_solve_log();

/// Renders the log: solver | model | states | iters | residual | time (ms).
[[nodiscard]] Table solve_table();

/// RAII label for solve records: solves performed while a SolveContext is
/// alive on this thread carry its name in their `context` column.  Nests
/// (innermost wins).
class SolveContext {
 public:
  explicit SolveContext(std::string name);
  ~SolveContext();
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  /// The innermost active context name on this thread ("" if none).
  [[nodiscard]] static const std::string& current();

 private:
  std::string previous_;
};

/// Fixed-precision formatting of a double ("3.1416"); "inf" for infinities.
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Scientific-ish compact formatting ("1.2e-05").
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);

/// "x (+/- y)" for simulation estimates.
[[nodiscard]] std::string fmt_ci(double mean, double half_width,
                                 int precision = 4);

}  // namespace multival::core
