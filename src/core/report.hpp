// Small text-report helpers shared by the examples and the benchmark
// harness: aligned tables and number formatting, so every experiment binary
// prints its rows the same way.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace multival::core {

/// A titled table with aligned columns.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// ---- generation log ---------------------------------------------------------
//
// Every state-space generation (case-study models, compositional pipeline
// steps, the exploration engine) reports its wall time and sizes here, so
// that the different generation paths stay comparable in one table.

/// One model-generation measurement.
struct GenerationStat {
  std::string model;
  std::size_t states = 0;
  std::size_t transitions = 0;
  double seconds = 0.0;
};

/// Appends @p stat to the process-wide generation log.  Thread-safe.
void record_generation(GenerationStat stat);

/// Snapshot of the log, in recording order.  Thread-safe.
[[nodiscard]] std::vector<GenerationStat> generation_log();

/// Clears the log (tests and benchmark sections).
void clear_generation_log();

/// Renders the log: model | states | transitions | time (ms) | states/s.
[[nodiscard]] Table generation_table();

/// Runs @p build, records its wall time and the result's
/// num_states()/num_transitions() under @p model, and returns the result.
template <typename Build>
auto timed_generation(const std::string& model, Build&& build) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = build();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  record_generation(GenerationStat{model, result.num_states(),
                                   result.num_transitions(), seconds});
  return result;
}

/// Fixed-precision formatting of a double ("3.1416"); "inf" for infinities.
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Scientific-ish compact formatting ("1.2e-05").
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);

/// "x (+/- y)" for simulation estimates.
[[nodiscard]] std::string fmt_ci(double mean, double half_width,
                                 int precision = 4);

}  // namespace multival::core
