// Small text-report helpers shared by the examples and the benchmark
// harness: aligned tables and number formatting, so every experiment binary
// prints its rows the same way.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace multival::core {

/// A titled table with aligned columns.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting of a double ("3.1416"); "inf" for infinities.
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Scientific-ish compact formatting ("1.2e-05").
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);

/// "x (+/- y)" for simulation estimates.
[[nodiscard]] std::string fmt_ci(double mean, double half_width,
                                 int precision = 4);

}  // namespace multival::core
