#include "core/parallel.hpp"

#include <atomic>

namespace multival::core {

namespace {

std::atomic<unsigned>& thread_budget() {
  static std::atomic<unsigned> budget{0};  // 0 = hardware default
  return budget;
}

}  // namespace

unsigned parallel_threads() {
  const unsigned n = thread_budget().load(std::memory_order_relaxed);
  if (n != 0) {
    return n;
  }
  // hardware_concurrency() is a sysconf call each time; resolve it once.
  static const unsigned hw = [] {
    const unsigned h = std::thread::hardware_concurrency();
    return h == 0 ? 1u : h;
  }();
  return hw;
}

unsigned set_parallel_threads(unsigned n) {
  return thread_budget().exchange(n, std::memory_order_relaxed);
}

}  // namespace multival::core
