#include "core/flow.hpp"

#include <sstream>

#include "bisim/equivalence.hpp"
#include "lts/product.hpp"

namespace multival::core {

bool VerificationReport::all_hold() const {
  for (const auto& p : properties) {
    if (!p.holds) {
      return false;
    }
  }
  return true;
}

std::string VerificationReport::to_string() const {
  std::ostringstream os;
  os << "states: " << raw.states << " (" << minimized.states
     << " after divbranching minimisation), transitions: " << raw.transitions
     << "\n";
  for (const auto& p : properties) {
    os << "  [" << (p.holds ? "PASS" : "FAIL") << "] " << p.name << " — "
       << p.detail << "\n";
  }
  return os.str();
}

VerificationReport verify(
    const lts::Lts& l,
    const std::vector<std::pair<std::string, mc::FormulaPtr>>& extra) {
  VerificationReport r;
  r.raw = ModelStats{l.num_states(), l.num_transitions()};
  const auto min =
      bisim::minimize(l, bisim::Equivalence::kDivergenceBranching);
  r.minimized =
      ModelStats{min.quotient.num_states(), min.quotient.num_transitions()};
  // Properties are checked on the minimised LTS: divergence-preserving
  // branching bisimulation preserves deadlocks, livelocks and the
  // mu-calculus fragment we use, and the smaller state space is faster.
  r.properties = mc::standard_battery(min.quotient, extra);
  return r;
}

imc::Imc decorate_with_rates(const lts::Lts& l,
                             const std::map<std::string, double>& gate_rates) {
  for (const auto& [gate, rate] : gate_rates) {
    if (!(rate > 0.0)) {
      throw std::invalid_argument("decorate_with_rates: rate of gate " +
                                  gate + " must be > 0");
    }
  }
  imc::Imc m;
  m.add_states(l.num_states());
  if (l.num_states() > 0) {
    m.set_initial_state(l.initial_state());
  }
  for (lts::StateId s = 0; s < l.num_states(); ++s) {
    for (const lts::OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      const auto it = gate_rates.find(std::string(lts::label_gate(label)));
      if (it != gate_rates.end() && !lts::ActionTable::is_tau(e.action)) {
        m.add_markovian(s, it->second, e.dst, label);
      } else {
        m.add_interactive(s, label, e.dst);
      }
    }
  }
  return m;
}

imc::Imc insert_delays(const lts::Lts& l,
                       const std::vector<DelaySpec>& delays) {
  imc::Imc m = imc::Imc::from_lts(l);
  std::vector<std::string> delay_gates;
  for (const DelaySpec& spec : delays) {
    const imc::Imc d =
        phase::delay_process(spec.dist, spec.start_gate, spec.end_gate);
    const std::vector<std::string> sync{spec.start_gate, spec.end_gate};
    m = imc::parallel(m, d, sync);
    delay_gates.push_back(spec.start_gate);
    delay_gates.push_back(spec.end_gate);
  }
  return imc::hide(m, delay_gates);
}

imc::Imc decorate_with_phase_type(
    const lts::Lts& l,
    const std::map<std::string, phase::PhaseType>& gate_delays) {
  for (const auto& [gate, dist] : gate_delays) {
    bool point_mass = dist.alpha()[0] == 1.0;
    for (std::size_t i = 1; i < dist.alpha().size(); ++i) {
      point_mass = point_mass && dist.alpha()[i] == 0.0;
    }
    if (!point_mass) {
      throw std::invalid_argument(
          "decorate_with_phase_type: distribution of gate " + gate +
          " must start deterministically in phase 0");
    }
  }
  imc::Imc m;
  m.add_states(l.num_states());
  if (l.num_states() > 0) {
    m.set_initial_state(l.initial_state());
  }
  for (lts::StateId s = 0; s < l.num_states(); ++s) {
    for (const lts::OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      const auto it = gate_delays.find(std::string(lts::label_gate(label)));
      if (it == gate_delays.end() || lts::ActionTable::is_tau(e.action)) {
        m.add_interactive(s, label, e.dst);
        continue;
      }
      // Expand into the Coxian chain: fresh intermediate states; each
      // stage may continue or absorb into the edge target.  Only the
      // stages that can end the delay carry the original label.
      const phase::PhaseType& d = it->second;
      const std::size_t k = d.num_phases();
      imc::StateId cur = s;
      for (std::size_t i = 0; i < k; ++i) {
        const double cont = d.continuation()[i];
        const double absorb_rate = d.rates()[i] * (1.0 - cont);
        const imc::StateId next =
            (i + 1 < k && cont > 0.0) ? m.add_state() : e.dst;
        if (absorb_rate > 0.0) {
          m.add_markovian(cur, absorb_rate, e.dst, label);
        }
        if (i + 1 < k && cont > 0.0) {
          m.add_markovian(cur, d.rates()[i] * cont, next);
        }
        cur = next;
        if (cur == e.dst) {
          break;
        }
      }
    }
  }
  return m;
}

ClosedModel close_model(const imc::Imc& m, imc::NondetPolicy policy,
                        bool lump) {
  ClosedModel out;
  imc::Imc closed = imc::maximal_progress(imc::hide_all(m));
  out.stats.imc_states = closed.num_states();
  if (lump) {
    closed = imc::minimize_imc(closed).quotient;
  }
  out.stats.lumped_states = closed.num_states();
  imc::CtmcExtraction ex = imc::to_ctmc(closed, policy);
  out.stats.ctmc_states = ex.ctmc.num_states();
  out.ctmc = std::move(ex.ctmc);
  out.imc_state_of = std::move(ex.imc_state_of);
  out.lumped = std::move(closed);
  return out;
}

}  // namespace multival::core
