#include "core/report.hpp"

#include <cmath>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace multival::core {

namespace {

std::mutex& generation_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<GenerationStat>& generation_entries() {
  static std::vector<GenerationStat> entries;
  return entries;
}

std::mutex& solve_mutex() {
  static std::mutex mu;
  return mu;
}

struct SolveLog {
  std::vector<SolveStat> entries;
  std::size_t dropped = 0;
};

SolveLog& solve_entries() {
  static SolveLog log;
  return log;
}

/// Bounded so that long property-test sweeps cannot grow without limit.
constexpr std::size_t kSolveLogCap = 4096;

std::string& solve_context_name() {
  thread_local std::string name;
  return name;
}

}  // namespace

void record_solve(SolveStat stat) {
  if (stat.context.empty()) {
    stat.context = SolveContext::current();
  }
  const std::lock_guard<std::mutex> lock(solve_mutex());
  SolveLog& log = solve_entries();
  if (log.entries.size() >= kSolveLogCap) {
    ++log.dropped;
    return;
  }
  log.entries.push_back(std::move(stat));
}

std::vector<SolveStat> solve_log() {
  const std::lock_guard<std::mutex> lock(solve_mutex());
  return solve_entries().entries;
}

std::size_t solve_log_dropped() {
  const std::lock_guard<std::mutex> lock(solve_mutex());
  return solve_entries().dropped;
}

void clear_solve_log() {
  const std::lock_guard<std::mutex> lock(solve_mutex());
  solve_entries().entries.clear();
  solve_entries().dropped = 0;
}

Table solve_table() {
  Table t("numerical solves",
          {"solver", "model", "states", "iters", "residual", "time (ms)"});
  for (const SolveStat& s : solve_log()) {
    t.add_row({s.solver, s.context.empty() ? "-" : s.context,
               std::to_string(s.states), std::to_string(s.iterations),
               fmt_sci(s.residual), fmt(s.seconds * 1e3, 3)});
  }
  return t;
}

SolveContext::SolveContext(std::string name)
    : previous_(std::move(solve_context_name())) {
  solve_context_name() = std::move(name);
}

SolveContext::~SolveContext() {
  solve_context_name() = std::move(previous_);
}

const std::string& SolveContext::current() {
  return solve_context_name();
}

void record_generation(GenerationStat stat) {
  const std::lock_guard<std::mutex> lock(generation_mutex());
  generation_entries().push_back(std::move(stat));
}

std::vector<GenerationStat> generation_log() {
  const std::lock_guard<std::mutex> lock(generation_mutex());
  return generation_entries();
}

void clear_generation_log() {
  const std::lock_guard<std::mutex> lock(generation_mutex());
  generation_entries().clear();
}

Table generation_table() {
  Table t("generated state spaces",
          {"model", "states", "transitions", "time (ms)", "states/s"});
  for (const GenerationStat& g : generation_log()) {
    const double rate =
        g.seconds > 0.0 ? static_cast<double>(g.states) / g.seconds : 0.0;
    t.add_row({g.model, std::to_string(g.states),
               std::to_string(g.transitions), fmt(g.seconds * 1e3, 2),
               fmt(rate, 0)});
  }
  return t;
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: no columns");
  }
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const std::size_t w : width) {
    total += w;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  os << '\n';
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt(double v, int precision) {
  if (std::isinf(v)) {
    return v > 0 ? "inf" : "-inf";
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_ci(double mean, double half_width, int precision) {
  return fmt(mean, precision) + " (+/- " + fmt(half_width, precision) + ")";
}

}  // namespace multival::core
