// Deterministic work-sharing helper shared by the numerical kernels
// (markov/sparse SpMV, transient uniformisation) and the exploration
// engine.
//
// The contract that makes parallel numerics reproducible: [0, n) is split
// into one *contiguous* chunk per worker, every index is processed by
// exactly one worker, and the chunk boundaries depend only on n and the
// worker count — never on scheduling.  A kernel whose per-index computation
// has a fixed internal order (e.g. one output element per index) therefore
// produces bitwise-identical results for any thread count.
#pragma once

#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace multival::core {

/// Current worker-thread budget for parallel_for (see set_parallel_threads).
[[nodiscard]] unsigned parallel_threads();

/// Overrides the worker budget (0 restores the hardware default).
/// Returns the previous setting.  Intended for tests, benchmarks and CLIs.
unsigned set_parallel_threads(unsigned n);

/// Runs body(worker, lo, hi) over a contiguous partition of [0, n) on up to
/// @p max_workers threads; chunks smaller than @p min_grain are not worth a
/// thread, so the worker count is clamped to n / min_grain (at least 1).
/// Worker 0 runs on the calling thread.  The first exception thrown by any
/// worker is rethrown after all workers joined.  Returns the worker count.
template <typename Body>
unsigned parallel_chunks(std::size_t n, unsigned max_workers,
                         std::size_t min_grain, Body&& body) {
  if (min_grain == 0) {
    min_grain = 1;
  }
  std::size_t workers = max_workers == 0 ? 1 : max_workers;
  workers = std::min<std::size_t>(workers, min_grain > 0 ? n / min_grain : n);
  if (workers <= 1) {
    body(0u, std::size_t{0}, n);
    return 1;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    const std::size_t lo = n * w / workers;
    const std::size_t hi = n * (w + 1) / workers;
    threads.emplace_back([&, w, lo, hi] {
      try {
        body(static_cast<unsigned>(w), lo, hi);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  try {
    body(0u, std::size_t{0}, n / workers);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  return static_cast<unsigned>(workers);
}

/// Convenience form: body(lo, hi) over [0, n) with the process-wide thread
/// budget.  Serial (direct call, no thread spawn) when n < 2 * min_grain or
/// the budget is one thread.
template <typename Body>
void parallel_for(std::size_t n, std::size_t min_grain, Body&& body) {
  parallel_chunks(n, parallel_threads(), min_grain,
                  [&body](unsigned /*worker*/, std::size_t lo, std::size_t hi) {
                    body(lo, hi);
                  });
}

}  // namespace multival::core
