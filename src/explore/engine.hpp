// Parallel on-the-fly state-space exploration engine.
//
// Level-synchronous parallel BFS: the frontier of each depth level is
// split over N worker threads, each driving its own clone of the
// SuccessorOracle; discovered states are deduplicated through one shared
// lock-striped StateStore.  Every state is expanded by exactly one worker
// (the one whose insert created its id), so the explored graph is
// identical regardless of thread count or scheduling — and a final
// deterministic breadth-first renumbering makes the *emitted* LTS
// byte-for-byte reproducible across 1..N workers.
//
// A sequential depth-first order is also available (Order::kDfs); it
// yields the same LTS (renumbering normalises the order away) but trades
// peak frontier size for depth, which matters for deep narrow models.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "explore/oracle.hpp"
#include "explore/state_store.hpp"
#include "lts/lts.hpp"

namespace multival::explore {

enum class Order {
  kBfs,
  kDfs,  ///< sequential; workers forced to 1
};

struct ExploreOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned workers = 1;
  Order order = Order::kBfs;
  StoreMode store = StoreMode::kExact;
  int fingerprint_bits = 64;
  /// Hard cap on distinct states; exceeded -> throws LimitExceeded.
  std::size_t max_states = 1u << 22;
};

/// Thrown when the state space exceeds ExploreOptions::max_states.
struct LimitExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct WorkerStats {
  std::size_t states_expanded = 0;
  std::size_t transitions = 0;
};

struct ExploreStats {
  std::size_t num_states = 0;
  std::size_t num_transitions = 0;
  double seconds = 0.0;
  double states_per_sec = 0.0;
  std::size_t peak_frontier = 0;
  std::size_t levels = 0;          ///< BFS depth (DFS: number of pops)
  std::uint64_t dedup_hits = 0;
  std::uint64_t collisions = 0;    ///< fingerprint mode only
  std::vector<WorkerStats> workers;

  /// Two-column metric/value table for core::report-style printing.
  [[nodiscard]] core::Table to_table(const std::string& model) const;
};

struct ExploreResult {
  lts::Lts lts;
  ExploreStats stats;
};

/// Explores the full reachable state space of @p oracle and returns the
/// deterministically renumbered LTS plus statistics.  @p oracle itself is
/// only cloned, never driven.
[[nodiscard]] ExploreResult explore(const SuccessorOracle& oracle,
                                    const ExploreOptions& options = {});

}  // namespace multival::explore
