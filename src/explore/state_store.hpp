// Concurrent hash-compacted state store for the exploration engine.
//
// Maps canonical state encodings to dense ids, allocated in first-insert
// order.  Lock-striped: the key space is split over independent
// mutex-protected shards, so worker threads rarely contend.  Two memory
// modes:
//
//   kExact        — stores the full state bytes; no false dedup ever.
//   kFingerprint  — stores only a fingerprint of the state (Holzmann-style
//                   hash compaction).  Two distinct states may collide on
//                   the fingerprint, in which case the second is treated as
//                   already visited (its subtree may be truncated).  A
//                   32-bit independent check hash detects (and counts) the
//                   vast majority of such collisions; `collisions()` is
//                   therefore a lower bound, zero in exact mode.
//
// `fingerprint_bits` narrows the fingerprint below 64 bits (mainly to make
// collisions reproducible in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "lts/lts.hpp"

namespace multival::explore {

enum class StoreMode {
  kExact,
  kFingerprint,
};

class StateStore {
 public:
  struct Options {
    StoreMode mode = StoreMode::kExact;
    int fingerprint_bits = 64;  ///< 1..64, kFingerprint only
    unsigned stripes = 64;      ///< number of lock stripes (power of two)
  };

  struct Inserted {
    lts::StateId id = 0;
    bool fresh = false;  ///< true iff this call created the id
  };

  StateStore();  // exact mode, 64 stripes
  explicit StateStore(const Options& options);

  /// Returns the id of @p state, allocating the next dense id if unseen.
  /// Thread-safe.
  Inserted insert(std::string_view state);

  /// Number of distinct ids allocated.
  [[nodiscard]] std::size_t size() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Inserts that found an existing entry (states seen more than once).
  [[nodiscard]] std::uint64_t dedup_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

  /// Detected fingerprint collisions (distinct states merged); 0 in exact
  /// mode.
  [[nodiscard]] std::uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] StoreMode mode() const { return options_.mode; }

 private:
  struct Stripe {
    core::Mutex mu;
    std::unordered_map<std::string, lts::StateId> exact MV_GUARDED_BY(mu);
    // fingerprint -> (check hash, id)
    std::unordered_map<std::uint64_t, std::pair<std::uint32_t, lts::StateId>>
        compact MV_GUARDED_BY(mu);
  };

  Options options_;
  std::uint64_t mask_ = ~0ull;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint32_t> next_id_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace multival::explore
