#include "explore/engine.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/parallel.hpp"

namespace multival::explore {

namespace {

/// The out-edges of one expanded state, labels interned per worker.
struct Row {
  lts::StateId src = 0;
  std::uint32_t ctx = 0;  // owning worker (resolves local label ids)
  std::vector<std::pair<std::uint32_t, lts::StateId>> edges;
};

struct WorkerCtx {
  OraclePtr oracle;
  std::uint32_t index = 0;
  std::vector<std::string> labels;  // local label id -> text
  std::unordered_map<std::string, std::uint32_t> label_ids;
  std::vector<Row> rows;
  std::vector<std::pair<lts::StateId, std::string>> next;  // fresh states
  WorkerStats stats;
  std::vector<Step> steps;  // scratch

  std::uint32_t label_id(const std::string& label) {
    const auto it = label_ids.find(label);
    if (it != label_ids.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(labels.size());
    labels.push_back(label);
    label_ids.emplace(label, id);
    return id;
  }

  void expand(lts::StateId id, const std::string& bytes, StateStore& store,
              std::size_t max_states) {
    steps.clear();
    oracle->successors(bytes, steps);
    Row row;
    row.src = id;
    row.ctx = index;
    row.edges.reserve(steps.size());
    for (Step& s : steps) {
      const StateStore::Inserted r = store.insert(s.dst);
      if (r.fresh) {
        next.emplace_back(r.id, std::move(s.dst));
      }
      row.edges.emplace_back(label_id(s.label), r.id);
    }
    ++stats.states_expanded;
    stats.transitions += row.edges.size();
    rows.push_back(std::move(row));
    if (store.size() > max_states) {
      throw LimitExceeded("explore: state space exceeds " +
                          std::to_string(max_states) + " states");
    }
  }
};

using Frontier = std::vector<std::pair<lts::StateId, std::string>>;

void expand_level(std::vector<WorkerCtx>& ctxs, const Frontier& frontier,
                  StateStore& store, std::size_t max_states) {
  // Contiguous chunks per worker (small frontiers collapse to one worker);
  // worker w owns ctxs[w], so label interning stays lock-free.
  core::parallel_chunks(frontier.size(), ctxs.size(), /*min_grain=*/4,
                        [&](unsigned w, std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            ctxs[w].expand(frontier[i].first,
                                           frontier[i].second, store,
                                           max_states);
                          }
                        });
}

/// Deterministic BFS renumbering from the initial state (id 0: the very
/// first insert) and emission into a fresh Lts.  The traversal only looks
/// at the explored graph, so the result is independent of how the ids were
/// interleaved across workers.
lts::Lts renumber_and_emit(const std::vector<WorkerCtx>& ctxs,
                           std::size_t num_states) {
  std::vector<const Row*> row_of(num_states, nullptr);
  for (const WorkerCtx& ctx : ctxs) {
    for (const Row& row : ctx.rows) {
      row_of[row.src] = &row;
    }
  }
  std::vector<lts::StateId> renum(num_states, lts::kNoState);
  std::vector<lts::StateId> order;
  order.reserve(num_states);
  renum[0] = 0;
  order.push_back(0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& [label, dst] : row_of[order[i]]->edges) {
      if (renum[dst] == lts::kNoState) {
        renum[dst] = static_cast<lts::StateId>(order.size());
        order.push_back(dst);
      }
    }
  }
  lts::Lts out;
  out.add_states(order.size());
  out.set_initial_state(0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Row& row = *row_of[order[i]];
    for (const auto& [label, dst] : row.edges) {
      out.add_transition(static_cast<lts::StateId>(i),
                         std::string_view(ctxs[row.ctx].labels[label]),
                         renum[dst]);
    }
  }
  return out;
}

}  // namespace

ExploreResult explore(const SuccessorOracle& oracle,
                      const ExploreOptions& options) {
  unsigned workers =
      options.workers != 0 ? options.workers : core::parallel_threads();
  if (options.order == Order::kDfs) {
    workers = 1;  // DFS is inherently sequential (one stack)
  }

  StateStore store(StateStore::Options{options.store, options.fingerprint_bits,
                                       /*stripes=*/64});
  std::vector<WorkerCtx> ctxs(workers);
  for (unsigned w = 0; w < workers; ++w) {
    ctxs[w].oracle = oracle.clone();
    ctxs[w].index = w;
  }

  ExploreResult result;
  ExploreStats& stats = result.stats;
  const auto t0 = std::chrono::steady_clock::now();

  std::string init = ctxs[0].oracle->initial();
  const StateStore::Inserted r0 = store.insert(init);
  Frontier frontier;
  frontier.emplace_back(r0.id, std::move(init));

  if (options.order == Order::kDfs) {
    // frontier doubles as the DFS stack.
    while (!frontier.empty()) {
      stats.peak_frontier = std::max(stats.peak_frontier, frontier.size());
      ++stats.levels;
      auto [id, bytes] = std::move(frontier.back());
      frontier.pop_back();
      ctxs[0].expand(id, bytes, store, options.max_states);
      for (auto& fresh : ctxs[0].next) {
        frontier.push_back(std::move(fresh));
      }
      ctxs[0].next.clear();
    }
  } else {
    while (!frontier.empty()) {
      stats.peak_frontier = std::max(stats.peak_frontier, frontier.size());
      ++stats.levels;
      expand_level(ctxs, frontier, store, options.max_states);
      frontier.clear();
      for (WorkerCtx& ctx : ctxs) {
        for (auto& fresh : ctx.next) {
          frontier.push_back(std::move(fresh));
        }
        ctx.next.clear();
      }
    }
  }

  result.lts = renumber_and_emit(ctxs, store.size());

  const auto t1 = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.num_states = result.lts.num_states();
  stats.num_transitions = result.lts.num_transitions();
  stats.states_per_sec =
      stats.seconds > 0.0 ? static_cast<double>(stats.num_states) / stats.seconds
                          : 0.0;
  stats.dedup_hits = store.dedup_hits();
  stats.collisions = store.collisions();
  stats.workers.reserve(workers);
  for (const WorkerCtx& ctx : ctxs) {
    stats.workers.push_back(ctx.stats);
  }
  return result;
}

core::Table ExploreStats::to_table(const std::string& model) const {
  core::Table t("exploration: " + model, {"metric", "value"});
  t.add_row({"states", std::to_string(num_states)});
  t.add_row({"transitions", std::to_string(num_transitions)});
  t.add_row({"time (s)", core::fmt(seconds)});
  t.add_row({"states/sec", core::fmt(states_per_sec, 0)});
  t.add_row({"peak frontier", std::to_string(peak_frontier)});
  t.add_row({"levels", std::to_string(levels)});
  t.add_row({"dedup hits", std::to_string(dedup_hits)});
  t.add_row({"fp collisions", std::to_string(collisions)});
  t.add_row({"workers", std::to_string(workers.size())});
  for (std::size_t w = 0; w < workers.size(); ++w) {
    t.add_row({"  worker " + std::to_string(w) + " expanded",
               std::to_string(workers[w].states_expanded)});
  }
  return t;
}

}  // namespace multival::explore
