#include "explore/lts_stream.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace multival::explore {

namespace {

constexpr char kMagic[4] = {'M', 'V', 'L', 'S'};
constexpr std::uint8_t kVersion = 1;

enum Record : std::uint8_t {
  kEnd = 0x00,
  kLabelDef = 0x01,
  kTransition = 0x02,
  kInitial = 0x03,
  kStateCount = 0x04,
};

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

// Reader cursor: counts consumed bytes so every error names the offset at
// which the stream stopped making sense.
class Cursor {
 public:
  explicit Cursor(std::istream& is) : is_(is) {}

  [[nodiscard]] std::uint64_t offset() const { return offset_; }

  /// Next byte, or EOF sentinel (without advancing the offset).
  int get() {
    const int c = is_.get();
    if (c != std::istream::traits_type::eof()) {
      ++offset_;
    }
    return c;
  }

  void read(char* data, std::size_t n, const char* what) {
    is_.read(data, static_cast<std::streamsize>(n));
    const auto got = static_cast<std::uint64_t>(is_.gcount());
    offset_ += got;
    if (got != n) {
      fail(std::string("truncated ") + what);
    }
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const int c = get();
      if (c == std::istream::traits_type::eof()) {
        fail(std::string("truncated varint in ") + what);
      }
      if (shift > 63) {
        fail(std::string("overlong varint in ") + what);
      }
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) {
        return v;
      }
      shift += 7;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("lts_stream: " + what + " at byte " +
                             std::to_string(offset_));
  }

 private:
  std::istream& is_;
  std::uint64_t offset_ = 0;
};

}  // namespace

LtsStreamWriter::LtsStreamWriter(std::ostream& os) : os_(os) {
  os_.write(kMagic, sizeof kMagic);
  os_.put(static_cast<char>(kVersion));
}

std::uint32_t LtsStreamWriter::label_id(std::string_view label) {
  const auto it = labels_.find(std::string(label));
  if (it != labels_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.emplace(std::string(label), id);
  os_.put(static_cast<char>(kLabelDef));
  put_varint(os_, label.size());
  os_.write(label.data(), static_cast<std::streamsize>(label.size()));
  return id;
}

void LtsStreamWriter::add_transition(lts::StateId src, std::string_view label,
                                     lts::StateId dst) {
  if (finished_) {
    throw std::logic_error("LtsStreamWriter: add_transition after finish");
  }
  const std::uint32_t id = label_id(label);
  os_.put(static_cast<char>(kTransition));
  put_varint(os_, src);
  put_varint(os_, id);
  put_varint(os_, dst);
}

void LtsStreamWriter::set_initial(lts::StateId s) {
  if (finished_ || wrote_initial_) {
    throw std::logic_error("LtsStreamWriter: duplicate or late set_initial");
  }
  wrote_initial_ = true;
  os_.put(static_cast<char>(kInitial));
  put_varint(os_, s);
}

void LtsStreamWriter::finish(std::size_t num_states) {
  if (finished_) {
    throw std::logic_error("LtsStreamWriter: finish called twice");
  }
  if (!wrote_initial_) {
    throw std::logic_error("LtsStreamWriter: finish without set_initial");
  }
  finished_ = true;
  os_.put(static_cast<char>(kStateCount));
  put_varint(os_, num_states);
  os_.put(static_cast<char>(kEnd));
  os_.flush();
  if (!os_) {
    throw std::runtime_error("lts_stream: write failed");
  }
}

void write_lts_stream(std::ostream& os, const lts::Lts& l) {
  LtsStreamWriter w(os);
  w.set_initial(l.initial_state());
  for (const lts::Transition& t : l.all_transitions()) {
    w.add_transition(t.src, l.actions().name(t.action), t.dst);
  }
  w.finish(l.num_states());
}

lts::Lts read_lts_stream(std::istream& is) {
  Cursor in(is);
  char magic[4] = {};
  in.read(magic, sizeof magic, "magic");
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    in.fail("bad magic");
  }
  const int version = in.get();
  if (version == std::istream::traits_type::eof()) {
    in.fail("truncated version");
  }
  if (version != kVersion) {
    in.fail("unsupported version " + std::to_string(version));
  }

  struct Pending {
    std::uint64_t src, label, dst;
  };
  std::vector<std::string> labels;
  std::vector<Pending> transitions;
  std::uint64_t initial = 0;
  std::uint64_t num_states = 0;
  bool saw_initial = false;
  bool saw_count = false;
  bool saw_end = false;

  while (!saw_end) {
    const int rec = in.get();
    if (rec == std::istream::traits_type::eof()) {
      in.fail("missing end record");
    }
    switch (rec) {
      case kEnd:
        saw_end = true;
        break;
      case kLabelDef: {
        const std::uint64_t len = in.varint("label definition");
        std::string label(len, '\0');
        in.read(label.data(), len, "label");
        labels.push_back(std::move(label));
        break;
      }
      case kTransition: {
        Pending p{};
        p.src = in.varint("transition");
        p.label = in.varint("transition");
        p.dst = in.varint("transition");
        if (p.label >= labels.size()) {
          in.fail("undefined label id " + std::to_string(p.label));
        }
        transitions.push_back(p);
        break;
      }
      case kInitial:
        if (saw_initial) {
          in.fail("duplicate initial record");
        }
        saw_initial = true;
        initial = in.varint("initial record");
        break;
      case kStateCount:
        if (saw_count) {
          in.fail("duplicate state count");
        }
        saw_count = true;
        num_states = in.varint("state count");
        break;
      default:
        in.fail("unknown record type " + std::to_string(rec));
    }
  }
  if (is.peek() != std::istream::traits_type::eof()) {
    in.fail("trailing garbage after end record");
  }
  if (!saw_initial || !saw_count) {
    in.fail("missing initial or state count");
  }
  for (const Pending& p : transitions) {
    if (p.src >= num_states || p.dst >= num_states) {
      in.fail("transition state out of range");
    }
  }
  if (num_states > 0 && initial >= num_states) {
    in.fail("initial state out of range");
  }

  lts::Lts out;
  out.add_states(num_states);
  if (num_states > 0) {
    out.set_initial_state(static_cast<lts::StateId>(initial));
  }
  for (const Pending& p : transitions) {
    out.add_transition(static_cast<lts::StateId>(p.src),
                       std::string_view(labels[p.label]),
                       static_cast<lts::StateId>(p.dst));
  }
  return out;
}

void save_lts_stream(const std::string& path, const lts::Lts& l) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("lts_stream: cannot write " + path);
  }
  write_lts_stream(os, l);
}

lts::Lts load_lts_stream(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("lts_stream: cannot open " + path);
  }
  return read_lts_stream(is);
}

}  // namespace multival::explore
