#include "explore/lts_stream.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace multival::explore {

namespace {

constexpr char kMagic[4] = {'M', 'V', 'L', 'S'};
constexpr std::uint8_t kVersion = 1;

enum Record : std::uint8_t {
  kEnd = 0x00,
  kLabelDef = 0x01,
  kTransition = 0x02,
  kInitial = 0x03,
  kStateCount = 0x04,
};

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof() || shift > 63) {
      throw std::runtime_error("lts_stream: truncated varint");
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

}  // namespace

LtsStreamWriter::LtsStreamWriter(std::ostream& os) : os_(os) {
  os_.write(kMagic, sizeof kMagic);
  os_.put(static_cast<char>(kVersion));
}

std::uint32_t LtsStreamWriter::label_id(std::string_view label) {
  const auto it = labels_.find(std::string(label));
  if (it != labels_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.emplace(std::string(label), id);
  os_.put(static_cast<char>(kLabelDef));
  put_varint(os_, label.size());
  os_.write(label.data(), static_cast<std::streamsize>(label.size()));
  return id;
}

void LtsStreamWriter::add_transition(lts::StateId src, std::string_view label,
                                     lts::StateId dst) {
  if (finished_) {
    throw std::logic_error("LtsStreamWriter: add_transition after finish");
  }
  const std::uint32_t id = label_id(label);
  os_.put(static_cast<char>(kTransition));
  put_varint(os_, src);
  put_varint(os_, id);
  put_varint(os_, dst);
}

void LtsStreamWriter::set_initial(lts::StateId s) {
  if (finished_ || wrote_initial_) {
    throw std::logic_error("LtsStreamWriter: duplicate or late set_initial");
  }
  wrote_initial_ = true;
  os_.put(static_cast<char>(kInitial));
  put_varint(os_, s);
}

void LtsStreamWriter::finish(std::size_t num_states) {
  if (finished_) {
    throw std::logic_error("LtsStreamWriter: finish called twice");
  }
  if (!wrote_initial_) {
    throw std::logic_error("LtsStreamWriter: finish without set_initial");
  }
  finished_ = true;
  os_.put(static_cast<char>(kStateCount));
  put_varint(os_, num_states);
  os_.put(static_cast<char>(kEnd));
  os_.flush();
  if (!os_) {
    throw std::runtime_error("lts_stream: write failed");
  }
}

void write_lts_stream(std::ostream& os, const lts::Lts& l) {
  LtsStreamWriter w(os);
  w.set_initial(l.initial_state());
  for (const lts::Transition& t : l.all_transitions()) {
    w.add_transition(t.src, l.actions().name(t.action), t.dst);
  }
  w.finish(l.num_states());
}

lts::Lts read_lts_stream(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw std::runtime_error("lts_stream: bad magic");
  }
  const int version = is.get();
  if (version != kVersion) {
    throw std::runtime_error("lts_stream: unsupported version " +
                             std::to_string(version));
  }

  struct Pending {
    std::uint64_t src, label, dst;
  };
  std::vector<std::string> labels;
  std::vector<Pending> transitions;
  std::uint64_t initial = 0;
  std::uint64_t num_states = 0;
  bool saw_initial = false;
  bool saw_count = false;
  bool saw_end = false;

  while (!saw_end) {
    const int rec = is.get();
    if (rec == std::istream::traits_type::eof()) {
      throw std::runtime_error("lts_stream: missing end record");
    }
    switch (rec) {
      case kEnd:
        saw_end = true;
        break;
      case kLabelDef: {
        const std::uint64_t len = get_varint(is);
        std::string label(len, '\0');
        is.read(label.data(), static_cast<std::streamsize>(len));
        if (!is) {
          throw std::runtime_error("lts_stream: truncated label");
        }
        labels.push_back(std::move(label));
        break;
      }
      case kTransition: {
        Pending p{};
        p.src = get_varint(is);
        p.label = get_varint(is);
        p.dst = get_varint(is);
        if (p.label >= labels.size()) {
          throw std::runtime_error("lts_stream: undefined label id");
        }
        transitions.push_back(p);
        break;
      }
      case kInitial:
        if (saw_initial) {
          throw std::runtime_error("lts_stream: duplicate initial record");
        }
        saw_initial = true;
        initial = get_varint(is);
        break;
      case kStateCount:
        if (saw_count) {
          throw std::runtime_error("lts_stream: duplicate state count");
        }
        saw_count = true;
        num_states = get_varint(is);
        break;
      default:
        throw std::runtime_error("lts_stream: unknown record type " +
                                 std::to_string(rec));
    }
  }
  if (!saw_initial || !saw_count) {
    throw std::runtime_error("lts_stream: missing initial or state count");
  }
  for (const Pending& p : transitions) {
    if (p.src >= num_states || p.dst >= num_states) {
      throw std::runtime_error("lts_stream: transition state out of range");
    }
  }
  if (num_states > 0 && initial >= num_states) {
    throw std::runtime_error("lts_stream: initial state out of range");
  }

  lts::Lts out;
  out.add_states(num_states);
  if (num_states > 0) {
    out.set_initial_state(static_cast<lts::StateId>(initial));
  }
  for (const Pending& p : transitions) {
    out.add_transition(static_cast<lts::StateId>(p.src),
                       std::string_view(labels[p.label]),
                       static_cast<lts::StateId>(p.dst));
  }
  return out;
}

void save_lts_stream(const std::string& path, const lts::Lts& l) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("lts_stream: cannot write " + path);
  }
  write_lts_stream(os, l);
}

lts::Lts load_lts_stream(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("lts_stream: cannot open " + path);
  }
  return read_lts_stream(is);
}

}  // namespace multival::explore
