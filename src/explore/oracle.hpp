// Generic on-the-fly state-space exploration: the SuccessorOracle interface
// plays the role of OPEN/CAESAR in CADP — any model that can name its
// initial state and enumerate the transitions of a given state becomes
// explorable without pre-building its LTS.
//
// States are opaque canonical byte strings.  The engine (engine.hpp) never
// interprets them; it only hashes, stores and hands them back to the
// oracle.  Oracles are cloneable: the parallel explorer gives every worker
// thread its own clone, and clones over the same model must produce
// byte-identical encodings (that is the whole contract that makes the
// shared state store work).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "imc/imc.hpp"
#include "lts/lts.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"

namespace multival::explore {

/// One outgoing transition of an oracle state.
struct Step {
  std::string label;  ///< "i", "exit", or "GATE !v1 !v2" (or "rate r")
  std::string dst;    ///< successor state, canonical encoding
};

class SuccessorOracle {
 public:
  virtual ~SuccessorOracle() = default;

  /// Canonical encoding of the initial state.
  [[nodiscard]] virtual std::string initial() = 0;

  /// Appends the transitions of @p state to @p out, in a deterministic
  /// order (the same for every clone).
  virtual void successors(std::string_view state, std::vector<Step>& out) = 0;

  /// Fresh oracle over the same model, producing identical encodings.
  /// Clones may be driven concurrently from different threads.
  [[nodiscard]] virtual std::unique_ptr<SuccessorOracle> clone() const = 0;
};

using OraclePtr = std::unique_ptr<SuccessorOracle>;

/// Replays an already-built LTS (state encoding: 4-byte little-endian id).
/// @p l must outlive the oracle and all its clones.
[[nodiscard]] OraclePtr lts_oracle(const lts::Lts& l);

/// On-the-fly parallel composition `a |[sync_gates]| b` with the LOTOS
/// semantics of lts::parallel: full label equality on gates in the sync
/// set, "exit" always synchronises, "i" never does.
[[nodiscard]] OraclePtr product_oracle(OraclePtr a, OraclePtr b,
                                       std::vector<std::string> sync_gates);

/// Relabels every action whose gate is in @p gates to "i".
[[nodiscard]] OraclePtr hide_oracle(OraclePtr inner,
                                    std::vector<std::string> gates);

/// On-the-fly inert-tau chain contraction (the oracle form of
/// bisim::tau_compress): every successor whose unique outgoing transition
/// is tau is replaced by the endpoint of its tau chain, so inert chains are
/// never stored by the engine at all.  Tau cycles made of such states
/// contract to their lexicographically smallest member, which keeps a tau
/// self-loop — the reduction preserves divergence-preserving branching
/// bisimilarity.  Chain endpoints are memoised per oracle; clones recompute
/// but, like every oracle, produce byte-identical encodings.
[[nodiscard]] OraclePtr tau_compress(OraclePtr inner);

/// Views an IMC as an LTS-level oracle: interactive transitions keep their
/// label, Markovian transitions become "rate r" / "LABEL; rate r" labels
/// (the imc_io convention), so an on-the-fly composition of IMCs can be
/// streamed to disk and re-read as an IMC.  @p m must outlive the oracle.
[[nodiscard]] OraclePtr imc_oracle(const imc::Imc& m);

/// Explores process `entry(args)` of @p program on the fly, one
/// proc::TermExplorer per clone.
[[nodiscard]] OraclePtr proc_oracle(
    std::shared_ptr<const proc::Program> program, std::string_view entry,
    std::vector<proc::Value> args = {},
    const proc::GenerateOptions& options = {});

/// Convenience overload taking the program by value.
[[nodiscard]] OraclePtr proc_oracle(proc::Program program,
                                    std::string_view entry,
                                    std::vector<proc::Value> args = {},
                                    const proc::GenerateOptions& options = {});

/// Explores an anonymous closed behaviour term of @p program.
[[nodiscard]] OraclePtr term_oracle(
    std::shared_ptr<const proc::Program> program, proc::TermPtr root,
    const proc::GenerateOptions& options = {});

}  // namespace multival::explore
