// Compact binary on-disk LTS format (in the spirit of CADP's BCG files),
// designed for streaming emission: the writer is record-oriented, so an
// explorer can append transitions as it discovers them without holding the
// whole LTS in memory, and labels are interned on first use.
//
// Layout (all integers LEB128 varints unless noted):
//
//   magic "MVLS", version byte (1)
//   records:
//     0x01  label definition: <len> <bytes>    (assigns the next label id)
//     0x02  transition:       <src> <label-id> <dst>
//     0x03  initial state:    <state>
//     0x04  state count:      <count>
//     0x00  end of stream
//
// A valid stream contains exactly one 0x03 and one 0x04 record and ends
// with 0x00.  Transitions appear in LTS insertion order, so a
// write -> read round trip reproduces the source LTS exactly (identical
// .aut rendering).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lts/lts.hpp"

namespace multival::explore {

/// Incremental writer.  Call add_transition / set_initial in any order,
/// then finish(num_states) exactly once.
class LtsStreamWriter {
 public:
  explicit LtsStreamWriter(std::ostream& os);

  void add_transition(lts::StateId src, std::string_view label,
                      lts::StateId dst);
  void set_initial(lts::StateId s);
  void finish(std::size_t num_states);

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  std::uint32_t label_id(std::string_view label);

  std::ostream& os_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  bool wrote_initial_ = false;
  bool finished_ = false;
};

/// Writes @p l in one go (transitions in insertion order).
void write_lts_stream(std::ostream& os, const lts::Lts& l);

/// Reads a stream back into an Lts.  Throws std::runtime_error on
/// malformed input; every message names the byte offset at which the
/// stream became invalid.  The end record must be followed by EOF —
/// trailing bytes are rejected.
[[nodiscard]] lts::Lts read_lts_stream(std::istream& is);

/// File convenience wrappers.
void save_lts_stream(const std::string& path, const lts::Lts& l);
[[nodiscard]] lts::Lts load_lts_stream(const std::string& path);

}  // namespace multival::explore
