// Process-calculus adapter: wraps proc::TermExplorer, one per clone.  All
// clones share the same immutable Program object and root term, which is
// what makes their canonical state encodings agree (TermExplorer encodes
// leaf terms by their address in the shared term tree).
#include <stdexcept>
#include <utility>

#include "analyze/analyze.hpp"
#include "explore/oracle.hpp"

namespace multival::explore {

namespace {

class ProcOracle final : public SuccessorOracle {
 public:
  ProcOracle(std::shared_ptr<const proc::Program> program, proc::TermPtr root,
             const proc::GenerateOptions& options)
      : program_(std::move(program)),
        root_(std::move(root)),
        options_(options),
        explorer_(*program_, root_, options_) {}

  std::string initial() override { return explorer_.initial(); }

  void successors(std::string_view state, std::vector<Step>& out) override {
    for (proc::TermExplorer::Move& m : explorer_.successors(state)) {
      out.push_back(Step{std::move(m.label), std::move(m.dst)});
    }
  }

  OraclePtr clone() const override {
    return std::make_unique<ProcOracle>(program_, root_, options_);
  }

 private:
  std::shared_ptr<const proc::Program> program_;
  proc::TermPtr root_;
  proc::GenerateOptions options_;
  proc::TermExplorer explorer_;
};

}  // namespace

OraclePtr term_oracle(std::shared_ptr<const proc::Program> program,
                      proc::TermPtr root,
                      const proc::GenerateOptions& options) {
  if (program == nullptr || root == nullptr) {
    throw std::invalid_argument("term_oracle: null program or root");
  }
  // Pre-flight lint: reject ill-formed models (undefined references, arity
  // mismatches, structural deadlocks, ...) in syntax-polynomial time before
  // committing to a potentially exponential exploration.  Throws
  // analyze::ModelError carrying the structured diagnostics.
  analyze::require_well_formed(*program, root);
  return std::make_unique<ProcOracle>(std::move(program), std::move(root),
                                      options);
}

OraclePtr proc_oracle(std::shared_ptr<const proc::Program> program,
                      std::string_view entry, std::vector<proc::Value> args,
                      const proc::GenerateOptions& options) {
  if (program == nullptr) {
    throw std::invalid_argument("proc_oracle: null program");
  }
  std::vector<proc::ExprPtr> arg_exprs;
  arg_exprs.reserve(args.size());
  for (const proc::Value v : args) {
    arg_exprs.push_back(proc::lit(v));
  }
  proc::TermPtr root = proc::call(entry, std::move(arg_exprs));
  return term_oracle(std::move(program), std::move(root), options);
}

OraclePtr proc_oracle(proc::Program program, std::string_view entry,
                      std::vector<proc::Value> args,
                      const proc::GenerateOptions& options) {
  return proc_oracle(
      std::make_shared<const proc::Program>(std::move(program)), entry,
      std::move(args), options);
}

}  // namespace multival::explore
