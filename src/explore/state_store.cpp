#include "explore/state_store.hpp"

#include <stdexcept>

namespace multival::explore {

namespace {

// FNV-1a with two different offset bases: the primary drives the
// fingerprint, the secondary the collision-check hash.  They must be
// independent functions of the bytes — deriving the check from the primary
// would make collisions of a full-width fingerprint undetectable.
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool is_power_of_two(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

StateStore::StateStore() : StateStore(Options{}) {}

StateStore::StateStore(const Options& options) : options_(options) {
  if (!is_power_of_two(options_.stripes)) {
    throw std::invalid_argument("StateStore: stripes must be a power of two");
  }
  if (options_.fingerprint_bits < 1 || options_.fingerprint_bits > 64) {
    throw std::invalid_argument("StateStore: fingerprint_bits out of range");
  }
  mask_ = options_.fingerprint_bits == 64
              ? ~0ull
              : (1ull << options_.fingerprint_bits) - 1;
  stripes_.reserve(options_.stripes);
  for (unsigned i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

StateStore::Inserted StateStore::insert(std::string_view state) {
  const std::uint64_t primary = fnv1a(state, 14695981039346656037ull);

  if (options_.mode == StoreMode::kExact) {
    Stripe& stripe =
        *stripes_[splitmix64(primary) & (stripes_.size() - 1)];
    core::MutexLock lock(stripe.mu);
    const auto it = stripe.exact.find(std::string(state));
    if (it != stripe.exact.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Inserted{it->second, false};
    }
    const lts::StateId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    stripe.exact.emplace(std::string(state), id);
    return Inserted{id, true};
  }

  const std::uint64_t key = primary & mask_;
  const auto check = static_cast<std::uint32_t>(
      fnv1a(state, 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull) >> 32);
  // Stripe selection must depend on the (masked) key only, so that two
  // states sharing a fingerprint always land in the same shard.
  Stripe& stripe = *stripes_[splitmix64(key) & (stripes_.size() - 1)];
  core::MutexLock lock(stripe.mu);
  const auto it = stripe.compact.find(key);
  if (it != stripe.compact.end()) {
    if (it->second.first != check) {
      collisions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return Inserted{it->second.second, false};
  }
  const lts::StateId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  stripe.compact.emplace(key, std::make_pair(check, id));
  return Inserted{id, true};
}

}  // namespace multival::explore
