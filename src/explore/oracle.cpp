#include "explore/oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lts/product.hpp"

namespace multival::explore {

namespace {

// ---- small codec helpers ----------------------------------------------------

std::string encode_u32(std::uint32_t v) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  return out;
}

std::uint32_t decode_u32(std::string_view bytes, const char* who) {
  if (bytes.size() != 4) {
    throw std::runtime_error(std::string(who) + ": malformed state");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[i]))
         << (8 * i);
  }
  return v;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view bytes, std::size_t& pos,
                         const char* who) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= bytes.size() || shift > 63) {
      throw std::runtime_error(std::string(who) + ": malformed state");
    }
    const auto b = static_cast<std::uint8_t>(bytes[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

// ---- LTS replay -------------------------------------------------------------

class LtsOracle final : public SuccessorOracle {
 public:
  explicit LtsOracle(const lts::Lts& l) : lts_(l) {}

  std::string initial() override { return encode_u32(lts_.initial_state()); }

  void successors(std::string_view state, std::vector<Step>& out) override {
    const lts::StateId s = decode_u32(state, "lts_oracle");
    for (const lts::OutEdge& e : lts_.out(s)) {
      out.push_back(Step{std::string(lts_.actions().name(e.action)),
                         encode_u32(e.dst)});
    }
  }

  OraclePtr clone() const override { return std::make_unique<LtsOracle>(lts_); }

 private:
  const lts::Lts& lts_;
};

// ---- IMC as an LTS-level oracle ---------------------------------------------

class ImcOracle final : public SuccessorOracle {
 public:
  explicit ImcOracle(const imc::Imc& m) : imc_(m) {}

  std::string initial() override { return encode_u32(imc_.initial_state()); }

  void successors(std::string_view state, std::vector<Step>& out) override {
    const imc::StateId s = decode_u32(state, "imc_oracle");
    for (const imc::InterEdge& e : imc_.interactive(s)) {
      out.push_back(Step{std::string(imc_.actions().name(e.action)),
                         encode_u32(e.dst)});
    }
    for (const imc::MarkEdge& e : imc_.markovian(s)) {
      std::ostringstream os;  // matches imc_io's rate_label
      if (!e.label.empty()) {
        os << e.label << "; ";
      }
      os << "rate " << e.rate;
      out.push_back(Step{os.str(), encode_u32(e.dst)});
    }
  }

  OraclePtr clone() const override { return std::make_unique<ImcOracle>(imc_); }

 private:
  const imc::Imc& imc_;
};

// ---- parallel composition ---------------------------------------------------

class ProductOracle final : public SuccessorOracle {
 public:
  ProductOracle(OraclePtr a, OraclePtr b, std::vector<std::string> sync_gates)
      : a_(std::move(a)),
        b_(std::move(b)),
        gates_(std::move(sync_gates)),
        sync_(gates_.begin(), gates_.end()) {}

  std::string initial() override {
    return pack(a_->initial(), b_->initial());
  }

  void successors(std::string_view state, std::vector<Step>& out) override {
    std::size_t pos = 0;
    const std::string_view sa = unpack(state, pos);
    const std::string_view sb = unpack(state, pos);
    if (pos != state.size()) {
      throw std::runtime_error("product_oracle: malformed state");
    }
    moves_a_.clear();
    moves_b_.clear();
    a_->successors(sa, moves_a_);
    b_->successors(sb, moves_b_);

    // Independent moves of a, of b, then synchronised pairs — the same
    // order as lts::parallel, so the two constructions are comparable.
    for (const Step& ma : moves_a_) {
      if (!must_sync(ma.label)) {
        out.push_back(Step{ma.label, pack(ma.dst, sb)});
      }
    }
    for (const Step& mb : moves_b_) {
      if (!must_sync(mb.label)) {
        out.push_back(Step{mb.label, pack(sa, mb.dst)});
      }
    }
    for (const Step& ma : moves_a_) {
      if (!must_sync(ma.label)) {
        continue;
      }
      for (const Step& mb : moves_b_) {
        if (mb.label == ma.label) {
          out.push_back(Step{ma.label, pack(ma.dst, mb.dst)});
        }
      }
    }
  }

  OraclePtr clone() const override {
    return std::make_unique<ProductOracle>(a_->clone(), b_->clone(), gates_);
  }

 private:
  [[nodiscard]] bool must_sync(std::string_view label) const {
    if (label == "i") {
      return false;
    }
    if (label == "exit") {
      return true;
    }
    return sync_.find(std::string(lts::label_gate(label))) != sync_.end();
  }

  static std::string pack(std::string_view sa, std::string_view sb) {
    std::string out;
    out.reserve(sa.size() + sb.size() + 4);
    put_varint(out, sa.size());
    out += sa;
    put_varint(out, sb.size());
    out += sb;
    return out;
  }

  static std::string_view unpack(std::string_view state, std::size_t& pos) {
    const std::uint64_t len = get_varint(state, pos, "product_oracle");
    if (pos + len > state.size()) {
      throw std::runtime_error("product_oracle: malformed state");
    }
    const std::string_view part = state.substr(pos, len);
    pos += len;
    return part;
  }

  OraclePtr a_;
  OraclePtr b_;
  std::vector<std::string> gates_;
  std::unordered_set<std::string> sync_;
  std::vector<Step> moves_a_;  // scratch, reused across calls
  std::vector<Step> moves_b_;
};

// ---- hiding -----------------------------------------------------------------

class HideOracle final : public SuccessorOracle {
 public:
  HideOracle(OraclePtr inner, std::vector<std::string> gates)
      : inner_(std::move(inner)),
        gates_(std::move(gates)),
        hidden_(gates_.begin(), gates_.end()) {}

  std::string initial() override { return inner_->initial(); }

  void successors(std::string_view state, std::vector<Step>& out) override {
    const std::size_t first = out.size();
    inner_->successors(state, out);
    for (std::size_t i = first; i < out.size(); ++i) {
      Step& s = out[i];
      if (s.label != "i" && s.label != "exit" &&
          hidden_.find(std::string(lts::label_gate(s.label))) !=
              hidden_.end()) {
        s.label = "i";
      }
    }
  }

  OraclePtr clone() const override {
    return std::make_unique<HideOracle>(inner_->clone(), gates_);
  }

 private:
  OraclePtr inner_;
  std::vector<std::string> gates_;
  std::unordered_set<std::string> hidden_;
};

class TauCompressOracle final : public SuccessorOracle {
 public:
  explicit TauCompressOracle(OraclePtr inner) : inner_(std::move(inner)) {}

  std::string initial() override { return rep(inner_->initial()); }

  void successors(std::string_view state, std::vector<Step>& out) override {
    // @p state is always a chain endpoint (initial() and every emitted dst
    // are), so its own transitions are forwarded, only dsts are contracted.
    scratch_.clear();
    inner_->successors(state, scratch_);
    const std::size_t first = out.size();
    for (Step& s : scratch_) {
      Step mapped{std::move(s.label), rep(s.dst)};
      // Contraction can alias previously distinct successors; keep the
      // first occurrence (inner order is deterministic, so this is too).
      bool dup = false;
      for (std::size_t i = first; i < out.size() && !dup; ++i) {
        dup = out[i].label == mapped.label && out[i].dst == mapped.dst;
      }
      if (!dup) {
        out.push_back(std::move(mapped));
      }
    }
  }

  OraclePtr clone() const override {
    return std::make_unique<TauCompressOracle>(inner_->clone());
  }

 private:
  /// Endpoint of the inert-tau chain starting at @p start: follows unique
  /// tau steps until a non-inert state, a memoised endpoint, or a cycle
  /// (contracted to its lexicographically smallest member, which then
  /// carries a tau self-loop).  All chain members are memoised.
  std::string rep(const std::string& start) {
    if (const auto it = rep_.find(start); it != rep_.end()) {
      return it->second;
    }
    std::vector<std::string> path;
    std::unordered_set<std::string> on_path;
    std::string cur = start;
    std::string target;
    while (true) {
      if (const auto it = rep_.find(cur); it != rep_.end()) {
        target = it->second;
        break;
      }
      chain_.clear();
      inner_->successors(cur, chain_);
      if (chain_.size() != 1 || chain_[0].label != "i") {
        target = std::move(cur);
        break;
      }
      if (on_path.find(cur) != on_path.end()) {
        const auto pos = std::find(path.begin(), path.end(), cur);
        target = *std::min_element(pos, path.end());
        break;
      }
      on_path.insert(cur);
      path.push_back(cur);
      cur = std::move(chain_[0].dst);
    }
    for (std::string& p : path) {
      rep_.emplace(std::move(p), target);
    }
    rep_.emplace(start, target);
    return target;
  }

  OraclePtr inner_;
  std::unordered_map<std::string, std::string> rep_;
  std::vector<Step> scratch_;
  std::vector<Step> chain_;
};

}  // namespace

OraclePtr lts_oracle(const lts::Lts& l) {
  return std::make_unique<LtsOracle>(l);
}

OraclePtr imc_oracle(const imc::Imc& m) {
  return std::make_unique<ImcOracle>(m);
}

OraclePtr product_oracle(OraclePtr a, OraclePtr b,
                         std::vector<std::string> sync_gates) {
  if (a == nullptr || b == nullptr) {
    throw std::invalid_argument("product_oracle: null operand");
  }
  return std::make_unique<ProductOracle>(std::move(a), std::move(b),
                                         std::move(sync_gates));
}

OraclePtr hide_oracle(OraclePtr inner, std::vector<std::string> gates) {
  if (inner == nullptr) {
    throw std::invalid_argument("hide_oracle: null operand");
  }
  return std::make_unique<HideOracle>(std::move(inner), std::move(gates));
}

OraclePtr tau_compress(OraclePtr inner) {
  if (inner == nullptr) {
    throw std::invalid_argument("tau_compress: null operand");
  }
  return std::make_unique<TauCompressOracle>(std::move(inner));
}

}  // namespace multival::explore
