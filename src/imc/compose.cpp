#include "imc/compose.hpp"

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lts/product.hpp"

namespace multival::imc {

namespace {

using lts::ActionTable;

using PairKey = std::uint64_t;

PairKey pair_key(StateId a, StateId b) {
  return (static_cast<PairKey>(a) << 32) | b;
}

bool gate_in(const std::unordered_set<std::string>& set,
             std::string_view gate) {
  return set.find(std::string(gate)) != set.end();
}

}  // namespace

Imc parallel(const Imc& a, const Imc& b,
             std::span<const std::string> sync_gates) {
  const std::unordered_set<std::string> sync(sync_gates.begin(),
                                             sync_gates.end());
  const auto must_sync = [&](const Imc& side, ActionId act) {
    if (ActionTable::is_tau(act)) {
      return false;
    }
    if (ActionTable::is_exit(act)) {
      return true;
    }
    return gate_in(sync, lts::label_gate(side.actions().name(act)));
  };

  Imc result;
  std::unordered_map<PairKey, StateId> ids;
  std::vector<std::pair<StateId, StateId>> worklist;

  const auto state_of = [&](StateId sa, StateId sb) {
    const PairKey key = pair_key(sa, sb);
    const auto it = ids.find(key);
    if (it != ids.end()) {
      return it->second;
    }
    const StateId ns = result.add_state();
    ids.emplace(key, ns);
    worklist.emplace_back(sa, sb);
    return ns;
  };

  result.set_initial_state(state_of(a.initial_state(), b.initial_state()));

  std::vector<ActionId> map_a(a.actions().size(), lts::kNoState);
  std::vector<ActionId> map_b(b.actions().size(), lts::kNoState);
  const auto xlat = [&](const Imc& side, std::vector<ActionId>& cache,
                        ActionId act) {
    if (cache[act] == lts::kNoState) {
      cache[act] = result.actions().intern(side.actions().name(act));
    }
    return cache[act];
  };

  while (!worklist.empty()) {
    const auto [sa, sb] = worklist.back();
    worklist.pop_back();
    const StateId src = ids.at(pair_key(sa, sb));

    // Markovian transitions interleave unconditionally (memorylessness).
    for (const MarkEdge& e : a.markovian(sa)) {
      result.add_markovian(src, e.rate, state_of(e.dst, sb), e.label);
    }
    for (const MarkEdge& e : b.markovian(sb)) {
      result.add_markovian(src, e.rate, state_of(sa, e.dst), e.label);
    }
    // Independent interactive moves.
    for (const InterEdge& ea : a.interactive(sa)) {
      if (!must_sync(a, ea.action)) {
        result.add_interactive(src, xlat(a, map_a, ea.action),
                               state_of(ea.dst, sb));
      }
    }
    for (const InterEdge& eb : b.interactive(sb)) {
      if (!must_sync(b, eb.action)) {
        result.add_interactive(src, xlat(b, map_b, eb.action),
                               state_of(sa, eb.dst));
      }
    }
    // Synchronised interactive moves (full-label value matching).
    for (const InterEdge& ea : a.interactive(sa)) {
      if (!must_sync(a, ea.action)) {
        continue;
      }
      const std::string_view label = a.actions().name(ea.action);
      for (const InterEdge& eb : b.interactive(sb)) {
        if (!must_sync(b, eb.action) ||
            b.actions().name(eb.action) != label) {
          continue;
        }
        result.add_interactive(src, xlat(a, map_a, ea.action),
                               state_of(ea.dst, eb.dst));
      }
    }
  }
  return result;
}

namespace {

std::unordered_set<std::string> interactive_gates_of(const Imc& m) {
  std::unordered_set<std::string> gates;
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (const InterEdge& e : m.interactive(s)) {
      gates.emplace(lts::label_gate(m.actions().name(e.action)));
    }
  }
  return gates;
}

}  // namespace

Imc parallel_all(std::span<const Imc> components,
                 std::span<const std::string> sync_gates) {
  if (components.empty()) {
    throw std::invalid_argument("imc::parallel_all: no components");
  }
  Imc acc = components[0];
  auto acc_gates = interactive_gates_of(acc);
  for (std::size_t i = 1; i < components.size(); ++i) {
    const auto next_gates = interactive_gates_of(components[i]);
    std::vector<std::string> join;
    for (const std::string& g : sync_gates) {
      if (acc_gates.count(g) > 0 && next_gates.count(g) > 0) {
        join.push_back(g);
      }
    }
    acc = parallel(acc, components[i], join);
    acc_gates.insert(next_gates.begin(), next_gates.end());
  }
  return acc;
}

namespace {

Imc relabel_interactive(
    const Imc& m, const std::function<std::string(std::string_view)>& f) {
  Imc out;
  out.add_states(m.num_states());
  if (m.num_states() > 0) {
    out.set_initial_state(m.initial_state());
  }
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (const InterEdge& e : m.interactive(s)) {
      out.add_interactive(s, f(m.actions().name(e.action)), e.dst);
    }
    for (const MarkEdge& e : m.markovian(s)) {
      out.add_markovian(s, e.rate, e.dst, e.label);
    }
  }
  return out;
}

}  // namespace

Imc hide(const Imc& m, std::span<const std::string> gates) {
  const std::unordered_set<std::string> set(gates.begin(), gates.end());
  return relabel_interactive(m, [&](std::string_view label) -> std::string {
    if (label == "i" || label == "exit") {
      return std::string(label);
    }
    return gate_in(set, lts::label_gate(label)) ? "i" : std::string(label);
  });
}

Imc hide_all(const Imc& m) {
  return relabel_interactive(m, [](std::string_view label) -> std::string {
    if (label == "exit") {
      return std::string(label);
    }
    return "i";
  });
}

Imc maximal_progress(const Imc& m) {
  Imc out;
  out.add_states(m.num_states());
  if (m.num_states() > 0) {
    out.set_initial_state(m.initial_state());
  }
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (const InterEdge& e : m.interactive(s)) {
      out.add_interactive(s, m.actions().name(e.action), e.dst);
    }
    if (m.is_stable(s)) {
      for (const MarkEdge& e : m.markovian(s)) {
        out.add_markovian(s, e.rate, e.dst, e.label);
      }
    }
  }
  return out;
}

Imc trim(const Imc& m) {
  const std::size_t n = m.num_states();
  std::vector<bool> seen(n, false);
  std::vector<StateId> stack;
  if (n > 0) {
    seen[m.initial_state()] = true;
    stack.push_back(m.initial_state());
  }
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const InterEdge& e : m.interactive(s)) {
      if (!seen[e.dst]) {
        seen[e.dst] = true;
        stack.push_back(e.dst);
      }
    }
    for (const MarkEdge& e : m.markovian(s)) {
      if (!seen[e.dst]) {
        seen[e.dst] = true;
        stack.push_back(e.dst);
      }
    }
  }
  Imc out;
  std::vector<StateId> map(n, lts::kNoState);
  for (StateId s = 0; s < n; ++s) {
    if (seen[s]) {
      map[s] = out.add_state();
    }
  }
  for (StateId s = 0; s < n; ++s) {
    if (!seen[s]) {
      continue;
    }
    for (const InterEdge& e : m.interactive(s)) {
      out.add_interactive(map[s], m.actions().name(e.action), map[e.dst]);
    }
    for (const MarkEdge& e : m.markovian(s)) {
      out.add_markovian(map[s], e.rate, map[e.dst], e.label);
    }
  }
  if (n > 0) {
    out.set_initial_state(map[m.initial_state()]);
  }
  return out;
}

// ------------------------------------------------------------ CTMC extraction --

namespace {

/// Distribution over markovian-only ("tangible") states reached instantly
/// from a state by following interactive transitions.
class VanishingResolver {
 public:
  VanishingResolver(const Imc& m, NondetPolicy policy)
      : m_(m), policy_(policy), memo_(m.num_states()) {}

  /// Sparse distribution: pairs (tangible imc state, probability).
  const std::vector<std::pair<StateId, double>>& resolve(StateId s) {
    if (memo_[s].done) {
      return memo_[s].dist;
    }
    if (memo_[s].visiting) {
      throw TimelockError(
          "to_ctmc: cycle of interactive transitions (zero-time divergence) "
          "through state " +
          std::to_string(s));
    }
    memo_[s].visiting = true;
    std::vector<std::pair<StateId, double>> dist;
    const auto edges = m_.interactive(s);
    if (edges.empty()) {
      dist.emplace_back(s, 1.0);
    } else {
      if (edges.size() > 1 && policy_ == NondetPolicy::kReject) {
        throw NondeterminismError(
            "to_ctmc: interactive nondeterminism at state " +
            std::to_string(s) +
            " (" + std::to_string(edges.size()) +
            " outgoing interactive transitions); use NondetPolicy::kUniform "
            "or resolve by lumping first");
      }
      const double w = 1.0 / static_cast<double>(edges.size());
      std::unordered_map<StateId, double> acc;
      for (const InterEdge& e : edges) {
        for (const auto& [t, p] : resolve(e.dst)) {
          acc[t] += w * p;
        }
      }
      dist.assign(acc.begin(), acc.end());
    }
    memo_[s].visiting = false;
    memo_[s].done = true;
    memo_[s].dist = std::move(dist);
    return memo_[s].dist;
  }

 private:
  struct Memo {
    bool visiting = false;
    bool done = false;
    std::vector<std::pair<StateId, double>> dist;
  };
  const Imc& m_;
  NondetPolicy policy_;
  std::vector<Memo> memo_;
};

}  // namespace

CtmcExtraction to_ctmc(const Imc& m, NondetPolicy policy) {
  CtmcExtraction out;
  if (m.num_states() == 0) {
    return out;
  }
  VanishingResolver resolver(m, policy);

  // Tangible states become CTMC states.
  std::vector<markov::MState> ctmc_of(m.num_states(),
                                      static_cast<markov::MState>(-1));
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (m.is_markovian_only(s)) {
      ctmc_of[s] = out.ctmc.add_state();
      out.imc_state_of.push_back(s);
    }
  }
  if (out.imc_state_of.empty()) {
    throw TimelockError("to_ctmc: no tangible (markovian-only) state");
  }

  for (StateId s = 0; s < m.num_states(); ++s) {
    if (!m.is_markovian_only(s)) {
      continue;
    }
    for (const MarkEdge& e : m.markovian(s)) {
      for (const auto& [t, p] : resolver.resolve(e.dst)) {
        out.ctmc.add_transition(ctmc_of[s], ctmc_of[t], e.rate * p, e.label);
      }
    }
  }

  // Initial distribution: resolve the IMC initial state.
  std::vector<double> pi0(out.ctmc.num_states(), 0.0);
  for (const auto& [t, p] : resolver.resolve(m.initial_state())) {
    pi0[ctmc_of[t]] += p;
  }
  out.ctmc.set_initial_distribution(std::move(pi0));
  return out;
}

}  // namespace multival::imc
