// Stochastic bisimulation minimisation (lumping) of IMCs — the role played
// by BCG_MIN's stochastic modes in CADP.
//
// Strong lumping: two states are equivalent iff they have the same
// interactive signature {(a, block)} AND the same aggregate Markovian rate
// into every block.
//
// Branching lumping (apply maximal_progress first): tau transitions inside
// a block are inert, and a state with an inert tau inherits its successor's
// behaviour — this is what collapses instantaneous internal steps between
// delays and turns closed IMCs into CTMCs.
//
// Rewards: pass an initial partition grouping states by reward value to
// guarantee that lumping never merges states with different rewards.
#pragma once

#include "bisim/partition.hpp"
#include "imc/imc.hpp"

namespace multival::imc {

using bisim::Partition;

/// Coarsest strong-lumping partition refining @p initial.
[[nodiscard]] Partition lump_strong(const Imc& m, const Partition& initial);
[[nodiscard]] Partition lump_strong(const Imc& m);

/// Coarsest branching-lumping partition refining @p initial.  The input
/// should already satisfy maximal progress (unstable states rate-free).
[[nodiscard]] Partition lump_branching(const Imc& m, const Partition& initial);
[[nodiscard]] Partition lump_branching(const Imc& m);

/// Quotient IMC under @p p.  Interactive edges are deduplicated (inert tau
/// dropped when @p branching); Markovian rates are aggregated per target
/// block from a stable representative of each block.
[[nodiscard]] Imc quotient_imc(const Imc& m, const Partition& p,
                               bool branching);

struct LumpResult {
  Imc quotient;
  Partition partition;
};

/// maximal_progress + branching lumping + quotient, the standard reduction
/// step of the performance flow.
[[nodiscard]] LumpResult minimize_imc(const Imc& m);

}  // namespace multival::imc
