#include "imc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/report.hpp"

namespace multival::imc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

bool is_decision(const Imc& m, StateId s) {
  return !m.interactive(s).empty();
}

/// Successors under maximal progress: interactive edges win, Markovian
/// edges only count at states without interactive transitions.
template <typename F>
void for_each_successor(const Imc& m, StateId s, F&& f) {
  const auto inter = m.interactive(s);
  if (!inter.empty()) {
    for (const InterEdge& e : inter) {
      f(e.dst);
    }
    return;
  }
  for (const MarkEdge& e : m.markovian(s)) {
    f(e.dst);
  }
}

/// Backward closure of @p seed over the maximal-progress edge relation.
/// When @p cut_sources is given, edges leaving states in that set are
/// ignored (used to forbid paths that pass through the target).
std::vector<bool> backward_closure(const Imc& m, std::vector<bool> seed,
                                   const std::vector<bool>* cut_sources) {
  const std::size_t n = m.num_states();
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (StateId s = 0; s < n; ++s) {
    if (cut_sources != nullptr && (*cut_sources)[s]) {
      continue;
    }
    for_each_successor(m, s, [&](StateId d) { pred[d].push_back(s); });
  }
  std::vector<std::uint32_t> stack;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (seed[s]) {
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (const std::uint32_t p : pred[s]) {
      if (!seed[p]) {
        seed[p] = true;
        stack.push_back(p);
      }
    }
  }
  return seed;
}

/// Prob1E: states where SOME scheduler reaches @p target almost surely
/// (the standard nu X. mu Y double fixpoint; each interactive edge is a
/// separate choice, a Markovian state has its one race distribution).
std::vector<bool> prob1_exists(const Imc& m, const std::vector<bool>& target) {
  const std::size_t n = m.num_states();
  std::vector<bool> x(n, true);
  for (;;) {
    std::vector<bool> y = target;
    bool grew = true;
    while (grew) {
      grew = false;
      for (StateId s = 0; s < n; ++s) {
        if (y[s]) {
          continue;
        }
        bool add = false;
        const auto inter = m.interactive(s);
        if (!inter.empty()) {
          for (const InterEdge& e : inter) {
            if (y[e.dst]) {  // Y subset of X: the X-constraint is implied
              add = true;
              break;
            }
          }
        } else {
          const auto mark = m.markovian(s);
          if (!mark.empty()) {
            bool all_x = true;
            bool some_y = false;
            for (const MarkEdge& e : mark) {
              all_x = all_x && x[e.dst];
              some_y = some_y || y[e.dst];
            }
            add = all_x && some_y;
          }
        }
        if (add) {
          y[s] = true;
          grew = true;
        }
      }
    }
    if (y == x) {
      return x;
    }
    x = std::move(y);
  }
}

/// Least fixpoint F = {s : EVERY scheduler reaches @p target with positive
/// probability}; its complement is Prob0A (min-reach = 0).  Dead states
/// (no transitions at all) behave like self-loop absorbing states: they
/// are in F only if they are targets themselves.
std::vector<bool> positive_min_reach(const Imc& m,
                                     const std::vector<bool>& target) {
  const std::size_t n = m.num_states();
  std::vector<bool> f = target;
  bool grew = true;
  while (grew) {
    grew = false;
    for (StateId s = 0; s < n; ++s) {
      if (f[s]) {
        continue;
      }
      bool add = false;
      const auto inter = m.interactive(s);
      if (!inter.empty()) {
        add = true;  // every choice must hit F
        for (const InterEdge& e : inter) {
          add = add && f[e.dst];
        }
      } else {
        for (const MarkEdge& e : m.markovian(s)) {
          if (f[e.dst]) {  // the single race hits F with positive prob
            add = true;
            break;
          }
        }
      }
      if (add) {
        f[s] = true;
        grew = true;
      }
    }
  }
  return f;
}

/// Iterative Tarjan over an adjacency list (states with empty adjacency
/// become singleton components).
std::pair<std::vector<std::uint32_t>, std::size_t> tarjan(
    const std::vector<std::vector<std::uint32_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<std::uint32_t> comp(n, kNone);
  std::vector<std::uint32_t> index(n, kNone);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };
  std::vector<Frame> call;
  std::uint32_t next_index = 0;
  std::size_t ncomp = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kNone) {
      continue;
    }
    call.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      const std::uint32_t v = fr.v;
      bool descended = false;
      while (fr.edge < adj[v].size()) {
        const std::uint32_t w = adj[v][fr.edge++];
        if (index[w] == kNone) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::uint32_t w = kNone;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = static_cast<std::uint32_t>(ncomp);
        } while (w != v);
        ++ncomp;
      }
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }
  return {std::move(comp), ncomp};
}

/// A maximal end component of the sub-MDP restricted to @p region, plus
/// the destinations of the interactive edges that leave it (the only way
/// out: a Markovian state whose race leaves the component cannot be a
/// member at all).
struct Mec {
  std::vector<std::uint32_t> members;
  std::vector<StateId> exits;
};

std::vector<Mec> max_end_components(const Imc& m,
                                    const std::vector<bool>& region) {
  const std::size_t n = m.num_states();
  std::vector<bool> alive = region;
  std::vector<std::uint32_t> comp(n, kNone);
  for (;;) {
    bool changed = false;
    // A Markovian state's single action must stay inside entirely; a dead
    // state has no action; a decision state needs at least one edge in.
    for (StateId s = 0; s < n; ++s) {
      if (!alive[s]) {
        continue;
      }
      bool keep;
      const auto inter = m.interactive(s);
      if (!inter.empty()) {
        keep = false;
        for (const InterEdge& e : inter) {
          keep = keep || alive[e.dst];
        }
      } else {
        const auto mark = m.markovian(s);
        keep = !mark.empty();
        for (const MarkEdge& e : mark) {
          keep = keep && alive[e.dst];
        }
      }
      if (!keep) {
        alive[s] = false;
        changed = true;
      }
    }
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (StateId s = 0; s < n; ++s) {
      if (!alive[s]) {
        continue;
      }
      for_each_successor(m, s, [&](StateId d) {
        if (alive[d]) {
          adj[s].push_back(d);
        }
      });
    }
    comp = tarjan(adj).first;
    // Refine: every kept action must stay within its own component.
    for (StateId s = 0; s < n; ++s) {
      if (!alive[s]) {
        continue;
      }
      bool keep;
      const auto inter = m.interactive(s);
      if (!inter.empty()) {
        keep = false;
        for (const InterEdge& e : inter) {
          keep = keep || (alive[e.dst] && comp[e.dst] == comp[s]);
        }
      } else {
        keep = true;
        for (const MarkEdge& e : m.markovian(s)) {
          keep = keep && alive[e.dst] && comp[e.dst] == comp[s];
        }
      }
      if (!keep) {
        alive[s] = false;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  std::vector<std::uint32_t> mec_of(n, kNone);
  std::vector<Mec> mecs;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!alive[s]) {
      continue;
    }
    std::uint32_t id = kNone;
    for (std::uint32_t t = 0; t < mecs.size(); ++t) {
      if (comp[mecs[t].members.front()] == comp[s]) {
        id = t;
        break;
      }
    }
    if (id == kNone) {
      id = static_cast<std::uint32_t>(mecs.size());
      mecs.push_back(Mec{});
    }
    mecs[id].members.push_back(s);
    mec_of[s] = id;
  }
  for (Mec& mec : mecs) {
    for (const std::uint32_t s : mec.members) {
      for (const InterEdge& e : m.interactive(s)) {
        if (mec_of[e.dst] != mec_of[s]) {
          mec.exits.push_back(e.dst);
        }
      }
    }
  }
  return mecs;
}

void record(const char* solver, std::size_t states, std::size_t iterations,
            double width,
            const std::chrono::steady_clock::time_point& t0) {
  core::record_solve(core::SolveStat{
      solver, {}, states, iterations, width,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count()});
}

/// Sound min/max reachability values via interval (two-sided) value
/// iteration: exact graph precomputation fixes the qualitative states, the
/// lower vector rises from 0, the upper falls from 1, and (for max) the
/// upper is deflated on every maximal end component so it cannot stall
/// above the least fixpoint.  Terminates only when sup |upper - lower| is
/// below the tolerance, so the returned midpoints are certified to
/// tolerance/2 -- unlike the previous delta-based stop.
std::vector<double> solve_reach_interval(const Imc& m,
                                         const std::vector<bool>& target,
                                         bool maximise,
                                         const SchedulerBoundsOptions& opts) {
  const std::size_t n = m.num_states();
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<bool> zero(n, false);
  std::vector<bool> one(n, false);
  if (maximise) {
    const std::vector<bool> can = backward_closure(m, target, nullptr);
    for (StateId s = 0; s < n; ++s) {
      zero[s] = !can[s];
    }
    one = prob1_exists(m, target);
  } else {
    const std::vector<bool> f = positive_min_reach(m, target);
    for (StateId s = 0; s < n; ++s) {
      zero[s] = !f[s];  // Prob0A: some scheduler avoids the target forever
    }
    // Prob1A: no target-free path into Prob0A exists.
    const std::vector<bool> not_one = backward_closure(m, zero, &target);
    for (StateId s = 0; s < n; ++s) {
      one[s] = !not_one[s];
    }
  }

  std::vector<std::uint32_t> active;
  std::vector<bool> region(n, false);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!zero[s] && !one[s]) {
      active.push_back(s);
      region[s] = true;
    }
  }
  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    lower[s] = one[s] ? 1.0 : 0.0;
    upper[s] = zero[s] ? 0.0 : 1.0;
  }

  const std::vector<Mec> mecs =
      maximise ? max_end_components(m, region) : std::vector<Mec>{};

  const auto sweep = [&](std::vector<double>& x) {
    for (const std::uint32_t s : active) {
      const auto inter = m.interactive(s);
      double next;
      if (!inter.empty()) {
        next = maximise ? 0.0 : 1.0;
        for (const InterEdge& e : inter) {
          next = maximise ? std::max(next, x[e.dst])
                          : std::min(next, x[e.dst]);
        }
      } else {
        double exit = 0.0;
        double self = 0.0;
        double acc = 0.0;
        for (const MarkEdge& e : m.markovian(s)) {
          exit += e.rate;
          if (e.dst == s) {
            self += e.rate;
          } else {
            acc += e.rate * x[e.dst];
          }
        }
        const double denom = exit - self;
        if (denom <= 0.0) {
          throw std::runtime_error(
              "reachability_bounds: self-loop-only state escaped "
              "precomputation");
        }
        next = acc / denom;
      }
      x[s] = next;
    }
  };

  std::size_t iterations = 0;
  double width = 0.0;
  if (!active.empty()) {
    for (;; ++iterations) {
      width = 0.0;
      for (const std::uint32_t s : active) {
        width = std::max(width, upper[s] - lower[s]);
      }
      if (width < opts.tolerance) {
        break;
      }
      if (iterations >= opts.max_iterations) {
        throw std::runtime_error(
            "reachability_bounds: interval iteration did not converge");
      }
      sweep(lower);
      sweep(upper);
      for (const Mec& mec : mecs) {
        double exit_val = 0.0;
        for (const StateId d : mec.exits) {
          exit_val = std::max(exit_val, upper[d]);
        }
        for (const std::uint32_t s : mec.members) {
          upper[s] = std::min(upper[s], exit_val);
        }
      }
    }
  }
  std::vector<double> mid(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    mid[s] = 0.5 * (lower[s] + upper[s]);
  }
  record(maximise ? "imc_reach[max]" : "imc_reach[min]", n, iterations, width,
         t0);
  return mid;
}

/// Sound min/max expected time to absorption.  The feasible set is exact:
/// min time is finite iff SOME scheduler absorbs almost surely (Prob1E of
/// the absorbing states), max time is finite iff EVERY scheduler does
/// (Prob1A).  Infeasible states get +infinity.  For min, interactive
/// strongly connected components are collapsed into single units (their
/// zero-delay cycles would otherwise trap value iteration below the true
/// value); the upper bound starts from an optimistically inflated lower
/// vector verified as a pre-fixpoint, and both bounds contract until the
/// interval is below the tolerance (relative to the largest value, since
/// expected times are unbounded).
std::vector<double> solve_time_interval(const Imc& m, bool maximise,
                                        const SchedulerBoundsOptions& opts) {
  const std::size_t n = m.num_states();
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<bool> absorbing(n, false);
  for (StateId s = 0; s < n; ++s) {
    absorbing[s] = m.interactive(s).empty() && m.markovian(s).empty();
  }
  std::vector<bool> feasible;
  if (maximise) {
    const std::vector<bool> f = positive_min_reach(m, absorbing);
    std::vector<bool> avoidable(n, false);
    for (StateId s = 0; s < n; ++s) {
      avoidable[s] = !f[s];
    }
    const std::vector<bool> not_sure = backward_closure(m, avoidable, nullptr);
    feasible.assign(n, false);
    for (StateId s = 0; s < n; ++s) {
      feasible[s] = !not_sure[s];
    }
  } else {
    feasible = prob1_exists(m, absorbing);
  }

  // Units of the Gauss-Seidel sweep: every active Markovian state is its
  // own unit; for min, feasible decision states are grouped by the SCCs of
  // the interactive edges among them and updated as one block.
  struct Unit {
    std::vector<std::uint32_t> states;
  };
  std::vector<std::uint32_t> unit_of(n, kNone);  // decision-group id
  std::vector<Unit> units;
  std::vector<bool> active(n, false);
  for (StateId s = 0; s < n; ++s) {
    active[s] = feasible[s] && !absorbing[s];
  }
  if (maximise) {
    for (std::uint32_t s = 0; s < n; ++s) {
      if (active[s]) {
        units.push_back(Unit{{s}});
      }
    }
  } else {
    std::vector<std::vector<std::uint32_t>> tau(n);
    for (StateId s = 0; s < n; ++s) {
      if (!active[s] || !is_decision(m, s)) {
        continue;
      }
      for (const InterEdge& e : m.interactive(s)) {
        if (e.dst < n && active[e.dst] && is_decision(m, e.dst)) {
          tau[s].push_back(e.dst);
        }
      }
    }
    const auto [comp, ncomp] = tarjan(tau);
    std::vector<std::vector<std::uint32_t>> members(ncomp);
    for (std::uint32_t s = 0; s < n; ++s) {
      if (active[s] && is_decision(m, s)) {
        members[comp[s]].push_back(s);
      }
    }
    std::vector<bool> emitted(ncomp, false);
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!active[s]) {
        continue;
      }
      if (!is_decision(m, s)) {
        units.push_back(Unit{{s}});
      } else if (!emitted[comp[s]]) {
        emitted[comp[s]] = true;
        const std::uint32_t id = static_cast<std::uint32_t>(units.size());
        units.push_back(Unit{members[comp[s]]});
        for (const std::uint32_t t : members[comp[s]]) {
          unit_of[t] = id;
        }
      }
    }
  }

  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n, 0.0);

  const auto backup = [&](const std::vector<double>& x, const Unit& u) {
    const std::uint32_t s0 = u.states[0];
    if (is_decision(m, s0)) {
      double v = maximise ? 0.0 : kInf;
      for (const std::uint32_t s : u.states) {
        for (const InterEdge& e : m.interactive(s)) {
          if (!maximise && unit_of[e.dst] != kNone &&
              unit_of[e.dst] == unit_of[s]) {
            continue;  // zero-delay edge within the collapsed component
          }
          const double xv = feasible[e.dst] ? x[e.dst] : kInf;
          v = maximise ? std::max(v, xv) : std::min(v, xv);
        }
      }
      if (v == kInf) {
        throw std::runtime_error(
            "absorption_time_bounds: interactive component without a "
            "finite exit escaped precomputation");
      }
      return v;
    }
    double exit = 0.0;
    double self = 0.0;
    double acc = 1.0;
    for (const MarkEdge& e : m.markovian(s0)) {
      exit += e.rate;
      if (e.dst == s0) {
        self += e.rate;
      } else {
        acc += e.rate * x[e.dst];
      }
    }
    const double denom = exit - self;
    if (denom <= 0.0) {
      throw std::runtime_error(
          "absorption_time_bounds: self-loop-only state escaped "
          "precomputation");
    }
    return acc / denom;
  };
  // Expected times are unbounded, so stopping tests are relative: they
  // scale by max(1, ||x||_inf).  An absolute test would drop below the
  // floating-point resolution of large iterates and never trigger.
  double scale = 1.0;
  const auto sweep = [&](std::vector<double>& x) {
    double delta = 0.0;
    for (const Unit& u : units) {
      const double next = backup(x, u);
      delta = std::max(delta, std::abs(next - x[u.states[0]]));
      for (const std::uint32_t s : u.states) {
        x[s] = next;
      }
      scale = std::max(scale, next);
    }
    return delta;
  };

  std::size_t iterations = 0;
  double width = 0.0;
  if (!units.empty()) {
    // Phase 1: raise the lower bound to near-convergence.
    for (;; ++iterations) {
      if (iterations >= opts.max_iterations) {
        throw std::runtime_error(
            "absorption_time_bounds: value iteration did not converge");
      }
      if (sweep(lower) < opts.tolerance * scale) {
        break;
      }
    }
    // Phase 2: optimistic upper start, verified as a pre-fixpoint
    // (Phi(U) <= U implies U bounds the least fixpoint from above).
    double inflation = std::max(opts.tolerance, 1e-12);
    bool verified = false;
    while (!verified) {
      for (const Unit& u : units) {
        for (const std::uint32_t s : u.states) {
          upper[s] = lower[s] + inflation * (1.0 + lower[s]);
        }
      }
      verified = true;
      for (const Unit& u : units) {
        if (backup(upper, u) > upper[u.states[0]]) {
          verified = false;
          break;
        }
      }
      if (!verified) {
        inflation *= 8.0;
        for (int extra = 0; extra < 16; ++extra, ++iterations) {
          (void)sweep(lower);
        }
        if (iterations >= opts.max_iterations) {
          throw std::runtime_error(
              "absorption_time_bounds: no verified upper bound");
        }
      }
    }
    // Phase 3: contract both bounds until the interval is certified.
    for (;; ++iterations) {
      width = 0.0;
      for (const Unit& u : units) {
        width = std::max(width, upper[u.states[0]] - lower[u.states[0]]);
      }
      if (width < opts.tolerance * scale) {
        break;
      }
      if (iterations >= opts.max_iterations) {
        throw std::runtime_error(
            "absorption_time_bounds: interval iteration did not converge");
      }
      (void)sweep(lower);
      (void)sweep(upper);
    }
  }

  std::vector<double> value(n, kInf);
  for (StateId s = 0; s < n; ++s) {
    if (!feasible[s]) {
      continue;
    }
    value[s] = absorbing[s] ? 0.0 : 0.5 * (lower[s] + upper[s]);
  }
  record(maximise ? "imc_time[max]" : "imc_time[min]", n, iterations, width,
         t0);
  return value;
}

}  // namespace

Bounds reachability_bounds(const Imc& m, const std::vector<bool>& target,
                           const SchedulerBoundsOptions& opts) {
  if (target.size() != m.num_states()) {
    throw std::invalid_argument("reachability_bounds: size mismatch");
  }
  if (m.num_states() == 0) {
    return Bounds{0.0, 0.0};
  }
  Bounds b;
  b.min = solve_reach_interval(m, target, /*maximise=*/false,
                               opts)[m.initial_state()];
  b.max = solve_reach_interval(m, target, /*maximise=*/true,
                               opts)[m.initial_state()];
  return b;
}

Scheduler extract_time_scheduler(const Imc& m, bool maximise,
                                 const SchedulerBoundsOptions& opts) {
  Scheduler sched(m.num_states(), 0);
  if (m.num_states() == 0) {
    return sched;
  }
  const std::vector<double> t = solve_time_interval(m, maximise, opts);
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    if (inter.empty()) {
      continue;
    }
    std::size_t best = 0;
    for (std::size_t k = 1; k < inter.size(); ++k) {
      const bool better = maximise ? t[inter[k].dst] > t[inter[best].dst]
                                   : t[inter[k].dst] < t[inter[best].dst];
      if (better) {
        best = k;
      }
    }
    sched[s] = best;
  }
  return sched;
}

Imc apply_scheduler(const Imc& m, const Scheduler& sched) {
  if (sched.size() != m.num_states()) {
    throw std::invalid_argument("apply_scheduler: size mismatch");
  }
  Imc out;
  out.add_states(m.num_states());
  if (m.num_states() > 0) {
    out.set_initial_state(m.initial_state());
  }
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    if (!inter.empty()) {
      if (sched[s] >= inter.size()) {
        throw std::invalid_argument(
            "apply_scheduler: choice index out of range at state " +
            std::to_string(s));
      }
      const InterEdge& e = inter[sched[s]];
      out.add_interactive(s, m.actions().name(e.action), e.dst);
    }
    for (const MarkEdge& e : m.markovian(s)) {
      out.add_markovian(s, e.rate, e.dst, e.label);
    }
  }
  return out;
}

Bounds absorption_time_bounds(const Imc& m,
                              const SchedulerBoundsOptions& opts) {
  if (m.num_states() == 0) {
    return Bounds{0.0, 0.0};
  }
  // Divergence is decided exactly on the graph (inside the solves): min
  // time is finite iff some scheduler absorbs almost surely, max time iff
  // every scheduler does.  No numeric probability threshold is involved
  // (the previous `reach < 1 - 1e-9` test misclassified whenever the
  // requested tolerance was coarser than 1e-9).
  const StateId init = m.initial_state();
  Bounds b;
  b.min = solve_time_interval(m, /*maximise=*/false, opts)[init];
  if (std::isinf(b.min)) {
    b.max = kInf;
    return b;
  }
  b.max = solve_time_interval(m, /*maximise=*/true, opts)[init];
  return b;
}

}  // namespace multival::imc
