#include "imc/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace multival::imc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One value-iteration sweep for reachability probability.
/// @p maximise selects the optimisation sense at decision states.
double sweep_reach(const Imc& m, const std::vector<bool>& target,
                   std::vector<double>& x, bool maximise) {
  double delta = 0.0;
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (target[s]) {
      continue;  // fixed at 1
    }
    double next = 0.0;
    const auto inter = m.interactive(s);
    if (!inter.empty()) {
      next = maximise ? 0.0 : 1.0;
      for (const InterEdge& e : inter) {
        next = maximise ? std::max(next, x[e.dst]) : std::min(next, x[e.dst]);
      }
    } else {
      const auto mark = m.markovian(s);
      if (mark.empty()) {
        next = 0.0;  // dead non-target state
      } else {
        double exit = 0.0;
        double acc = 0.0;
        for (const MarkEdge& e : mark) {
          exit += e.rate;
          acc += e.rate * x[e.dst];
        }
        next = acc / exit;
      }
    }
    delta = std::max(delta, std::abs(next - x[s]));
    x[s] = next;
  }
  return delta;
}

std::vector<double> solve_reach(const Imc& m, const std::vector<bool>& target,
                                bool maximise,
                                const SchedulerBoundsOptions& opts) {
  std::vector<double> x(m.num_states(), 0.0);
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (target[s]) {
      x[s] = 1.0;
    }
  }
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    if (sweep_reach(m, target, x, maximise) < opts.tolerance) {
      return x;
    }
  }
  throw std::runtime_error("reachability_bounds: value iteration stalled");
}

double sweep_time(const Imc& m, std::vector<double>& t, bool maximise) {
  double delta = 0.0;
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    const auto mark = m.markovian(s);
    if (inter.empty() && mark.empty()) {
      continue;  // absorbing: fixed at 0
    }
    double next = 0.0;
    if (!inter.empty()) {
      next = maximise ? 0.0 : kInf;
      for (const InterEdge& e : inter) {
        next = maximise ? std::max(next, t[e.dst]) : std::min(next, t[e.dst]);
      }
    } else {
      double exit = 0.0;
      double acc = 0.0;
      for (const MarkEdge& e : mark) {
        exit += e.rate;
        acc += e.rate * t[e.dst];
      }
      next = (1.0 + acc) / exit;
    }
    delta = std::max(delta, std::abs(next - t[s]));
    t[s] = next;
  }
  return delta;
}

double solve_time(const Imc& m, bool maximise,
                  const SchedulerBoundsOptions& opts) {
  std::vector<double> t(m.num_states(), 0.0);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    if (sweep_time(m, t, maximise) < opts.tolerance) {
      return t[m.initial_state()];
    }
  }
  throw std::runtime_error("absorption_time_bounds: value iteration stalled");
}

}  // namespace

Bounds reachability_bounds(const Imc& m, const std::vector<bool>& target,
                           const SchedulerBoundsOptions& opts) {
  if (target.size() != m.num_states()) {
    throw std::invalid_argument("reachability_bounds: size mismatch");
  }
  if (m.num_states() == 0) {
    return Bounds{0.0, 0.0};
  }
  Bounds b;
  b.min = solve_reach(m, target, /*maximise=*/false, opts)[m.initial_state()];
  b.max = solve_reach(m, target, /*maximise=*/true, opts)[m.initial_state()];
  return b;
}

Scheduler extract_time_scheduler(const Imc& m, bool maximise,
                                 const SchedulerBoundsOptions& opts) {
  Scheduler sched(m.num_states(), 0);
  if (m.num_states() == 0) {
    return sched;
  }
  // Re-run value iteration to a fixpoint, then take the arg-optimum.
  std::vector<double> t(m.num_states(), 0.0);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    if (sweep_time(m, t, maximise) < opts.tolerance) {
      break;
    }
    if (iter + 1 == opts.max_iterations) {
      throw std::runtime_error("extract_time_scheduler: stalled");
    }
  }
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    if (inter.empty()) {
      continue;
    }
    std::size_t best = 0;
    for (std::size_t k = 1; k < inter.size(); ++k) {
      const bool better = maximise ? t[inter[k].dst] > t[inter[best].dst]
                                   : t[inter[k].dst] < t[inter[best].dst];
      if (better) {
        best = k;
      }
    }
    sched[s] = best;
  }
  return sched;
}

Imc apply_scheduler(const Imc& m, const Scheduler& sched) {
  if (sched.size() != m.num_states()) {
    throw std::invalid_argument("apply_scheduler: size mismatch");
  }
  Imc out;
  out.add_states(m.num_states());
  if (m.num_states() > 0) {
    out.set_initial_state(m.initial_state());
  }
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    if (!inter.empty()) {
      if (sched[s] >= inter.size()) {
        throw std::invalid_argument(
            "apply_scheduler: choice index out of range at state " +
            std::to_string(s));
      }
      const InterEdge& e = inter[sched[s]];
      out.add_interactive(s, m.actions().name(e.action), e.dst);
    }
    for (const MarkEdge& e : m.markovian(s)) {
      out.add_markovian(s, e.rate, e.dst, e.label);
    }
  }
  return out;
}

Bounds absorption_time_bounds(const Imc& m,
                              const SchedulerBoundsOptions& opts) {
  if (m.num_states() == 0) {
    return Bounds{0.0, 0.0};
  }
  std::vector<bool> absorbing(m.num_states(), false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    absorbing[s] = m.interactive(s).empty() && m.markovian(s).empty();
  }
  const Bounds reach = reachability_bounds(m, absorbing, opts);
  Bounds b;
  if (reach.max < 1.0 - 1e-9) {
    // Even the best scheduler may never absorb: both bounds diverge.
    b.min = b.max = kInf;
    return b;
  }
  b.min = solve_time(m, /*maximise=*/false, opts);
  if (reach.min < 1.0 - 1e-9) {
    // Some scheduler avoids absorption with positive probability.
    b.max = kInf;
  } else {
    b.max = solve_time(m, /*maximise=*/true, opts);
  }
  return b;
}

}  // namespace multival::imc
