// Textual I/O for IMCs, as an extension of the Aldebaran format (the same
// convention CADP uses in BCG files): a Markovian transition is written as
//
//   (src, "rate 1.5", dst)            unlabelled
//   (src, "LABEL; rate 1.5", dst)     labelled (throughput probe)
//
// and interactive transitions as ordinary labels.
#pragma once

#include <iosfwd>
#include <string>

#include "imc/imc.hpp"

namespace multival::imc {

void write_aut(std::ostream& os, const Imc& m);
[[nodiscard]] std::string to_aut(const Imc& m);

/// Parses the extended format; ordinary .aut files load as purely
/// interactive IMCs.
[[nodiscard]] Imc read_aut(std::istream& is);
[[nodiscard]] Imc from_aut(const std::string& text);

}  // namespace multival::imc
