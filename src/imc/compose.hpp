// IMC composition and closure operators: parallel composition (interactive
// CSP-style synchronisation; Markovian transitions interleave), hiding,
// maximal progress, and CTMC extraction by elimination of vanishing states.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "imc/imc.hpp"
#include "markov/ctmc.hpp"

namespace multival::imc {

/// Parallel composition synchronising interactive transitions on the gates
/// in @p sync_gates (plus "exit"); Markovian transitions interleave.
/// Only the reachable part is built.
[[nodiscard]] Imc parallel(const Imc& a, const Imc& b,
                           std::span<const std::string> sync_gates);

/// N-ary composition: folds `parallel` left to right, synchronising each
/// join only on the requested gates both sides actually use (mirrors
/// lts::parallel_all).
[[nodiscard]] Imc parallel_all(std::span<const Imc> components,
                               std::span<const std::string> sync_gates);

/// Renames interactive labels whose gate is in @p gates to tau.
[[nodiscard]] Imc hide(const Imc& m, std::span<const std::string> gates);

/// Hides every visible interactive label.
[[nodiscard]] Imc hide_all(const Imc& m);

/// Maximal progress: removes Markovian transitions from unstable states
/// (states with an outgoing tau), reflecting that internal moves take no
/// time and therefore win every race against an exponential delay.
[[nodiscard]] Imc maximal_progress(const Imc& m);

/// How to treat residual interactive nondeterminism during CTMC extraction.
enum class NondetPolicy {
  kReject,   ///< throw NondeterminismError (the CADP situation the paper
             ///< mentions: "nondeterminism currently not accepted")
  kUniform,  ///< resolve uniformly at random (a memoryless scheduler)
};

struct NondeterminismError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when interactive transitions form a cycle (zero-time divergence).
struct TimelockError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The extracted CTMC plus the mapping back to IMC states.
struct CtmcExtraction {
  markov::Ctmc ctmc;
  /// ctmc state -> originating IMC state (markovian-only states survive).
  std::vector<StateId> imc_state_of;
};

/// Flattens a closed IMC (apply hide_all + maximal_progress first) into a
/// CTMC by eliminating vanishing states: a state with interactive
/// transitions resolves instantaneously to the distribution of
/// markovian-only states it reaches.  Markovian labels are preserved for
/// throughput queries.
[[nodiscard]] CtmcExtraction to_ctmc(const Imc& m,
                                     NondetPolicy policy = NondetPolicy::kReject);

/// Restriction of an IMC to its reachable part.
[[nodiscard]] Imc trim(const Imc& m);

}  // namespace multival::imc
