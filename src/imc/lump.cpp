#include "imc/lump.hpp"

#include "imc/compose.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace multival::imc {

namespace {

using bisim::BlockId;
using lts::ActionTable;

/// Quantises a rate for signature comparison: ~1e-12 relative resolution,
/// robust against summation-order noise.
std::uint64_t quantize_rate(double r) {
  int exp = 0;
  const double m = std::frexp(r, &exp);  // m in [0.5, 1)
  const auto mant = static_cast<std::uint64_t>(
      std::llround(m * static_cast<double>(1ull << 40)));
  return (mant << 12) ^ static_cast<std::uint64_t>(exp + 2048);
}

// Signature element: (key, aux).  Interactive: key = tag|action|block,
// aux = 0.  Markovian: key = tag|block, aux = quantised aggregate rate.
// The current block id is prepended separately.
using SigElem = std::pair<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kInterTag = 1ull << 62;
constexpr std::uint64_t kMarkTag = 1ull << 63;

struct SigHash {
  std::size_t operator()(const std::vector<SigElem>& v) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [a, b] : v) {
      h ^= a;
      h *= 1099511628211ull;
      h ^= b;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// A Markovian edge of the refinement graph: target node, rate, and the
/// interned measurement label (labels take part in lumping so that
/// throughput probes survive minimisation, as in BCG_MIN).
struct MarkRef {
  StateId dst = 0;
  double rate = 0.0;
  std::uint32_t label = 0;
};

/// The (possibly contracted) graph the refinement runs on.
struct Graph {
  std::vector<StateId> node_of;  // original state -> node
  std::size_t num_nodes = 0;
  std::vector<std::vector<InterEdge>> inter;  // node-level, no intra-node tau
  std::vector<std::vector<MarkRef>> mark;
};

/// Interns Markovian labels of @p m into dense ids (0 = unlabelled).
std::unordered_map<std::string, std::uint32_t> label_ids(const Imc& m) {
  std::unordered_map<std::string, std::uint32_t> ids;
  ids.emplace("", 0);
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (const MarkEdge& e : m.markovian(s)) {
      ids.emplace(e.label, static_cast<std::uint32_t>(ids.size()));
    }
  }
  return ids;
}

/// Identity graph (strong lumping): every state is its own node.
Graph identity_graph(const Imc& m) {
  Graph g;
  const auto labels = label_ids(m);
  const std::size_t n = m.num_states();
  g.num_nodes = n;
  g.node_of.resize(n);
  g.inter.resize(n);
  g.mark.resize(n);
  for (StateId s = 0; s < n; ++s) {
    g.node_of[s] = s;
    for (const InterEdge& e : m.interactive(s)) {
      g.inter[s].push_back(e);
    }
    for (const MarkEdge& e : m.markovian(s)) {
      g.mark[s].push_back(MarkRef{e.dst, e.rate, labels.at(e.label)});
    }
  }
  return g;
}

/// Contracts tau-SCCs lying within one block of @p initial (branching).
Graph contracted_graph(const Imc& m, const Partition& initial) {
  const auto labels = label_ids(m);
  const std::size_t n = m.num_states();
  // Tarjan over tau edges within the same initial block.
  constexpr StateId kUnvisited = lts::kNoState;
  std::vector<StateId> comp(n, kUnvisited);
  std::vector<StateId> index(n, kUnvisited);
  std::vector<StateId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> scc_stack;
  struct Frame {
    StateId v;
    std::size_t edge;
  };
  std::vector<Frame> call;
  StateId next_index = 0;
  std::size_t ncomp = 0;

  const auto inert_candidate = [&](StateId src, const InterEdge& e) {
    return ActionTable::is_tau(e.action) &&
           initial.block_of(src) == initial.block_of(e.dst);
  };

  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      const StateId v = fr.v;
      const auto edges = m.interactive(v);
      bool descended = false;
      while (fr.edge < edges.size()) {
        const InterEdge& e = edges[fr.edge++];
        if (!inert_candidate(v, e)) {
          continue;
        }
        const StateId w = e.dst;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        StateId w = kUnvisited;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = static_cast<StateId>(ncomp);
        } while (w != v);
        ++ncomp;
      }
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }

  Graph g;
  g.node_of = std::move(comp);
  g.num_nodes = ncomp;
  g.inter.resize(ncomp);
  g.mark.resize(ncomp);
  for (StateId s = 0; s < n; ++s) {
    const StateId cs = g.node_of[s];
    for (const InterEdge& e : m.interactive(s)) {
      const StateId ct = g.node_of[e.dst];
      if (ActionTable::is_tau(e.action) && cs == ct) {
        continue;  // collapsed
      }
      g.inter[cs].push_back(InterEdge{e.action, ct});
    }
    for (const MarkEdge& e : m.markovian(s)) {
      g.mark[cs].push_back(
          MarkRef{g.node_of[e.dst], e.rate, labels.at(e.label)});
    }
  }
  return g;
}

Partition refine(const Imc& m, const Graph& g, const Partition& initial,
                 bool closure) {
  const std::size_t n = m.num_states();
  const std::size_t nn = g.num_nodes;

  // Seed node blocks from the initial state partition.
  std::vector<BlockId> node_block(nn, 0);
  {
    std::unordered_map<BlockId, BlockId> seed;
    for (StateId s = 0; s < n; ++s) {
      const auto [it, inserted] = seed.emplace(
          initial.block_of(s), static_cast<BlockId>(seed.size()));
      node_block[g.node_of[s]] = it->second;
    }
  }
  std::size_t nblocks = 0;
  for (const BlockId b : node_block) {
    nblocks = std::max<std::size_t>(nblocks, b + 1);
  }

  std::vector<std::vector<SigElem>> sigs(nn);

  while (true) {
    for (auto& s : sigs) {
      s.clear();
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (StateId node = 0; node < nn; ++node) {
        std::vector<SigElem> sig;
        sig.emplace_back(node_block[node], 0);  // monotone refinement
        // Aggregate own Markovian rates per (target block, label).
        {
          std::vector<std::pair<std::uint64_t, double>> per_key;
          for (const MarkRef& e : g.mark[node]) {
            per_key.emplace_back(
                (static_cast<std::uint64_t>(e.label) << 32) |
                    node_block[e.dst],
                e.rate);
          }
          std::sort(per_key.begin(), per_key.end());
          for (std::size_t i = 0; i < per_key.size();) {
            double total = 0.0;
            std::size_t j = i;
            while (j < per_key.size() &&
                   per_key[j].first == per_key[i].first) {
              total += per_key[j].second;
              ++j;
            }
            sig.emplace_back(kMarkTag | per_key[i].first,
                             quantize_rate(total));
            i = j;
          }
        }
        for (const InterEdge& e : g.inter[node]) {
          const bool inert = closure && ActionTable::is_tau(e.action) &&
                             node_block[e.dst] == node_block[node];
          if (inert) {
            for (const SigElem& x : sigs[e.dst]) {
              if (x.first & (kInterTag | kMarkTag)) {
                sig.push_back(x);
              }
            }
          } else {
            sig.emplace_back(
                kInterTag | (static_cast<std::uint64_t>(e.action) << 32) |
                    node_block[e.dst],
                0);
          }
        }
        std::sort(sig.begin(), sig.end());
        sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
        if (sig != sigs[node]) {
          sigs[node] = std::move(sig);
          changed = true;
        }
      }
      if (!closure) {
        break;  // no propagation needed: one pass computes exact signatures
      }
    }

    std::unordered_map<std::vector<SigElem>, BlockId, SigHash> table;
    std::vector<BlockId> next(nn, 0);
    for (StateId node = 0; node < nn; ++node) {
      const auto [it, inserted] =
          table.emplace(sigs[node], static_cast<BlockId>(table.size()));
      next[node] = it->second;
    }
    const bool stable = table.size() == nblocks;
    nblocks = table.size();
    node_block = std::move(next);
    if (stable) {
      break;
    }
  }

  std::vector<BlockId> block_of(n, 0);
  for (StateId s = 0; s < n; ++s) {
    block_of[s] = node_block[g.node_of[s]];
  }
  return Partition(std::move(block_of), nblocks == 0 ? 0 : nblocks);
}

}  // namespace

Partition lump_strong(const Imc& m, const Partition& initial) {
  if (initial.num_states() != m.num_states()) {
    throw std::invalid_argument("lump_strong: partition size mismatch");
  }
  if (m.num_states() == 0) {
    return Partition(0);
  }
  return refine(m, identity_graph(m), initial, /*closure=*/false);
}

Partition lump_strong(const Imc& m) {
  return lump_strong(m, Partition(m.num_states()));
}

Partition lump_branching(const Imc& m, const Partition& initial) {
  if (initial.num_states() != m.num_states()) {
    throw std::invalid_argument("lump_branching: partition size mismatch");
  }
  if (m.num_states() == 0) {
    return Partition(0);
  }
  return refine(m, contracted_graph(m, initial), initial, /*closure=*/true);
}

Partition lump_branching(const Imc& m) {
  return lump_branching(m, Partition(m.num_states()));
}

Imc quotient_imc(const Imc& m, const Partition& p, bool branching) {
  Imc q;
  q.add_states(p.num_blocks());
  if (m.num_states() > 0) {
    q.set_initial_state(p.block_of(m.initial_state()));
  }

  // Pick one representative per block: a state with no inert tau, so its
  // own transitions describe the whole block's observable behaviour.
  const std::size_t nb = p.num_blocks();
  std::vector<StateId> rep(nb, lts::kNoState);
  for (StateId s = 0; s < m.num_states(); ++s) {
    const BlockId b = p.block_of(s);
    if (rep[b] != lts::kNoState) {
      continue;
    }
    bool has_inert_tau = false;
    for (const InterEdge& e : m.interactive(s)) {
      if (ActionTable::is_tau(e.action) && p.block_of(e.dst) == b) {
        has_inert_tau = true;
        break;
      }
    }
    if (!branching || !has_inert_tau) {
      rep[b] = s;
    }
  }
  // Fallback (can only happen for partitions not produced by lumping):
  // any member.
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (rep[p.block_of(s)] == lts::kNoState) {
      rep[p.block_of(s)] = s;
    }
  }

  for (BlockId b = 0; b < nb; ++b) {
    const StateId s = rep[b];
    // Interactive edges (dedup; skip inert tau when branching).
    std::vector<std::pair<ActionId, BlockId>> iedges;
    for (const InterEdge& e : m.interactive(s)) {
      const BlockId bt = p.block_of(e.dst);
      if (branching && ActionTable::is_tau(e.action) && bt == b) {
        continue;
      }
      iedges.emplace_back(e.action, bt);
    }
    std::sort(iedges.begin(), iedges.end());
    iedges.erase(std::unique(iedges.begin(), iedges.end()), iedges.end());
    for (const auto& [a, bt] : iedges) {
      q.add_interactive(b, m.actions().name(a), bt);
    }
    // Markovian edges: aggregate per (target block, label).
    std::map<std::pair<BlockId, std::string>, double> rates;
    for (const MarkEdge& e : m.markovian(s)) {
      rates[{p.block_of(e.dst), e.label}] += e.rate;
    }
    for (const auto& [key, rate] : rates) {
      q.add_markovian(b, rate, key.first, key.second);
    }
  }
  return q;
}

LumpResult minimize_imc(const Imc& m) {
  const Imc mp = maximal_progress(m);
  Partition p = lump_branching(mp);
  Imc q = quotient_imc(mp, p, /*branching=*/true);
  return LumpResult{std::move(q), std::move(p)};
}

}  // namespace multival::imc
