#include "imc/imc_io.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "lts/lts.hpp"
#include "lts/lts_io.hpp"

namespace multival::imc {

namespace {

std::string rate_label(const MarkEdge& e) {
  std::ostringstream os;
  if (!e.label.empty()) {
    os << e.label << "; ";
  }
  os << "rate " << e.rate;
  return os.str();
}

/// If @p label encodes a Markovian transition, extracts (rate, probe
/// label) and returns true.
bool parse_rate_label(std::string_view label, double& rate,
                      std::string& probe) {
  std::string_view rest = label;
  probe.clear();
  const std::size_t semi = rest.find(';');
  if (semi != std::string_view::npos) {
    probe = std::string(rest.substr(0, semi));
    // Trim trailing spaces of the probe.
    while (!probe.empty() && probe.back() == ' ') {
      probe.pop_back();
    }
    rest = rest.substr(semi + 1);
    while (!rest.empty() && rest.front() == ' ') {
      rest.remove_prefix(1);
    }
  }
  if (!rest.starts_with("rate ")) {
    return false;
  }
  rest.remove_prefix(5);
  while (!rest.empty() && rest.front() == ' ') {
    rest.remove_prefix(1);
  }
  try {
    std::size_t consumed = 0;
    rate = std::stod(std::string(rest), &consumed);
    if (consumed != rest.size() || !(rate > 0.0) || !std::isfinite(rate)) {
      throw std::runtime_error("imc read_aut: bad rate in \"" +
                               std::string(label) + '"');
    }
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("imc read_aut: bad rate in \"" +
                             std::string(label) + '"');
  }
  return true;
}

}  // namespace

void write_aut(std::ostream& os, const Imc& m) {
  os << "des (" << m.initial_state() << ", "
     << m.num_interactive() + m.num_markovian() << ", " << m.num_states()
     << ")\n";
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (const InterEdge& e : m.interactive(s)) {
      const std::string_view label = m.actions().name(e.action);
      if (label == "i") {
        os << '(' << s << ", i, " << e.dst << ")\n";
      } else {
        os << '(' << s << ", \"" << label << "\", " << e.dst << ")\n";
      }
    }
    for (const MarkEdge& e : m.markovian(s)) {
      os << '(' << s << ", \"" << rate_label(e) << "\", " << e.dst << ")\n";
    }
  }
}

std::string to_aut(const Imc& m) {
  std::ostringstream os;
  write_aut(os, m);
  return os.str();
}

Imc read_aut(std::istream& is) {
  // Reuse the LTS reader, then reinterpret "rate" labels.
  const lts::Lts l = lts::read_aut(is);
  Imc m;
  m.add_states(l.num_states());
  if (l.num_states() > 0) {
    m.set_initial_state(l.initial_state());
  }
  for (lts::StateId s = 0; s < l.num_states(); ++s) {
    for (const lts::OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      double rate = 0.0;
      std::string probe;
      if (!lts::ActionTable::is_tau(e.action) &&
          parse_rate_label(label, rate, probe)) {
        m.add_markovian(s, rate, e.dst, probe);
      } else {
        m.add_interactive(s, label, e.dst);
      }
    }
  }
  return m;
}

Imc from_aut(const std::string& text) {
  std::istringstream is(text);
  return read_aut(is);
}

}  // namespace multival::imc
