#include "imc/imc.hpp"

#include <cmath>
#include <stdexcept>

namespace multival::imc {

StateId Imc::add_state() {
  inter_.emplace_back();
  mark_.emplace_back();
  return static_cast<StateId>(inter_.size() - 1);
}

StateId Imc::add_states(std::size_t n) {
  const auto first = static_cast<StateId>(inter_.size());
  inter_.resize(inter_.size() + n);
  mark_.resize(mark_.size() + n);
  return first;
}

void Imc::check_state(StateId s, const char* what) const {
  if (s >= inter_.size()) {
    throw std::out_of_range(std::string("Imc: unknown state in ") + what);
  }
}

void Imc::add_interactive(StateId src, ActionId a, StateId dst) {
  check_state(src, "add_interactive(src)");
  check_state(dst, "add_interactive(dst)");
  if (a >= actions_.size()) {
    throw std::out_of_range("Imc::add_interactive: unknown action id");
  }
  inter_[src].push_back(InterEdge{a, dst});
  ++n_inter_;
}

void Imc::add_interactive(StateId src, std::string_view label, StateId dst) {
  add_interactive(src, actions_.intern(label), dst);
}

void Imc::add_markovian(StateId src, double rate, StateId dst,
                        std::string_view label) {
  check_state(src, "add_markovian(src)");
  check_state(dst, "add_markovian(dst)");
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Imc::add_markovian: rate must be > 0");
  }
  mark_[src].push_back(MarkEdge{rate, dst, std::string(label)});
  ++n_mark_;
}

void Imc::set_initial_state(StateId s) {
  check_state(s, "set_initial_state");
  initial_ = s;
}

std::span<const InterEdge> Imc::interactive(StateId s) const {
  check_state(s, "interactive");
  return inter_[s];
}

std::span<const MarkEdge> Imc::markovian(StateId s) const {
  check_state(s, "markovian");
  return mark_[s];
}

bool Imc::is_stable(StateId s) const {
  for (const InterEdge& e : interactive(s)) {
    if (lts::ActionTable::is_tau(e.action)) {
      return false;
    }
  }
  return true;
}

bool Imc::is_markovian_only(StateId s) const {
  return interactive(s).empty();
}

Imc Imc::from_lts(const lts::Lts& l) {
  Imc m;
  m.add_states(l.num_states());
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const lts::OutEdge& e : l.out(s)) {
      m.add_interactive(s, l.actions().name(e.action), e.dst);
    }
  }
  if (l.num_states() > 0) {
    m.set_initial_state(l.initial_state());
  }
  return m;
}

lts::Lts Imc::interactive_lts() const {
  lts::Lts l;
  l.add_states(num_states());
  for (StateId s = 0; s < num_states(); ++s) {
    for (const InterEdge& e : inter_[s]) {
      l.add_transition(s, actions_.name(e.action), e.dst);
    }
  }
  if (num_states() > 0) {
    l.set_initial_state(initial_);
  }
  return l;
}

}  // namespace multival::imc
