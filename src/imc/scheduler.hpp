// Scheduler bounds for nondeterministic IMCs.
//
// The paper's conclusion names "new algorithms to handle nondeterminism
// (currently not accepted by the Markov solvers of CADP)" as an open work
// item.  This module implements the natural baseline: interpret a closed
// IMC with residual interactive nondeterminism as a continuous-time Markov
// decision process (vanishing states are decision states) and compute, over
// all memoryless schedulers,
//   - min / max probability of eventually reaching a target set, and
//   - min / max expected time to absorption,
// by interval (two-sided) value iteration: qualitative states are fixed by
// exact graph precomputations (Prob0/Prob1 in both senses), a lower bound
// rises from 0 while an upper bound falls towards the fixpoint (deflated
// over maximal end components for max-reachability; obtained by verified
// optimistic inflation for expected time), and iteration stops only when
// the two are within the tolerance.  The returned values are midpoints of
// certified intervals of width < tolerance.  A uniformly-randomising
// scheduler (the kUniform policy of to_ctmc) always lies between the two
// bounds.
#pragma once

#include <vector>

#include "imc/imc.hpp"

namespace multival::imc {

struct SchedulerBoundsOptions {
  /// Certified interval width at which iteration stops: absolute for
  /// reachability probabilities, relative to max(1, largest value) for
  /// expected times.
  double tolerance = 1e-10;
  std::size_t max_iterations = 200000;
};

struct Bounds {
  double min = 0.0;
  double max = 0.0;
};

/// Min/max probability, over memoryless schedulers, of eventually reaching
/// a state in @p target (indexed by IMC state id) from the initial state.
[[nodiscard]] Bounds reachability_bounds(
    const Imc& m, const std::vector<bool>& target,
    const SchedulerBoundsOptions& opts = {});

/// Min/max expected time to reach a state with no outgoing transition at
/// all (absorbing).  Divergence is decided exactly on the graph: the min
/// bound is finite iff some scheduler absorbs almost surely, the max bound
/// iff every scheduler does; infinite cases return +infinity.
[[nodiscard]] Bounds absorption_time_bounds(
    const Imc& m, const SchedulerBoundsOptions& opts = {});

/// A memoryless scheduler: for every state with interactive transitions,
/// the index of the chosen transition (0 for other states).
using Scheduler = std::vector<std::size_t>;

/// Extracts the optimal memoryless scheduler for expected absorption time
/// (@p maximise false = time-optimal, true = worst case).  Meaningful only
/// when the corresponding bound is finite.
[[nodiscard]] Scheduler extract_time_scheduler(
    const Imc& m, bool maximise, const SchedulerBoundsOptions& opts = {});

/// Resolves every interactive choice according to @p sched, yielding a
/// deterministic IMC (at most one interactive transition per state).
[[nodiscard]] Imc apply_scheduler(const Imc& m, const Scheduler& sched);

}  // namespace multival::imc
