// Interactive Markov Chains (Hermanns, LNCS 2428): states with both
// interactive (labelled, instantaneous) and Markovian (exponential-rate)
// transitions.  This is the pivot formalism of the Multival performance
// flow: functional LTSs are lifted to IMCs, composed with phase-type delay
// processes, closed by hiding + maximal progress, lumped, and finally
// flattened into a CTMC.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lts/action_table.hpp"
#include "lts/lts.hpp"

namespace multival::imc {

using StateId = lts::StateId;
using ActionId = lts::ActionId;

/// An interactive transition (same shape as an LTS edge).
using InterEdge = lts::OutEdge;

/// A Markovian transition: exponential rate, optional label used for
/// throughput measurement after CTMC extraction.
struct MarkEdge {
  double rate = 0.0;
  StateId dst = 0;
  std::string label;  // empty = unlabelled
};

class Imc {
 public:
  Imc() = default;

  StateId add_state();
  StateId add_states(std::size_t n);

  void add_interactive(StateId src, ActionId a, StateId dst);
  void add_interactive(StateId src, std::string_view label, StateId dst);
  void add_markovian(StateId src, double rate, StateId dst,
                     std::string_view label = {});

  void set_initial_state(StateId s);
  [[nodiscard]] StateId initial_state() const { return initial_; }

  [[nodiscard]] std::size_t num_states() const { return inter_.size(); }
  [[nodiscard]] std::size_t num_interactive() const { return n_inter_; }
  [[nodiscard]] std::size_t num_markovian() const { return n_mark_; }

  [[nodiscard]] std::span<const InterEdge> interactive(StateId s) const;
  [[nodiscard]] std::span<const MarkEdge> markovian(StateId s) const;

  [[nodiscard]] lts::ActionTable& actions() { return actions_; }
  [[nodiscard]] const lts::ActionTable& actions() const { return actions_; }

  /// True if @p s has no outgoing tau transition (Markovian delays at
  /// unstable states are cut by maximal progress).
  [[nodiscard]] bool is_stable(StateId s) const;

  /// True if @p s has no outgoing interactive transition at all.
  [[nodiscard]] bool is_markovian_only(StateId s) const;

  /// Lifts an LTS to an IMC (all transitions interactive).
  [[nodiscard]] static Imc from_lts(const lts::Lts& l);

  /// Projects the interactive part onto an LTS (Markovian transitions are
  /// dropped); used to reuse LTS analyses.
  [[nodiscard]] lts::Lts interactive_lts() const;

 private:
  void check_state(StateId s, const char* what) const;

  lts::ActionTable actions_;
  std::vector<std::vector<InterEdge>> inter_;
  std::vector<std::vector<MarkEdge>> mark_;
  StateId initial_ = 0;
  std::size_t n_inter_ = 0;
  std::size_t n_mark_ = 0;
};

}  // namespace multival::imc
