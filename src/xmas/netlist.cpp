#include "xmas/netlist.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace multival::xmas {

const char* to_string(PrimitiveKind k) {
  switch (k) {
    case PrimitiveKind::kQueue:
      return "queue";
    case PrimitiveKind::kFunction:
      return "function";
    case PrimitiveKind::kFork:
      return "fork";
    case PrimitiveKind::kJoin:
      return "join";
    case PrimitiveKind::kSwitch:
      return "switch";
    case PrimitiveKind::kMerge:
      return "merge";
    case PrimitiveKind::kSource:
      return "source";
    case PrimitiveKind::kSink:
      return "sink";
  }
  return "?";
}

std::optional<PrimitiveKind> parse_primitive_kind(std::string_view word) {
  static const std::map<std::string_view, PrimitiveKind> kKinds = {
      {"queue", PrimitiveKind::kQueue},   {"function", PrimitiveKind::kFunction},
      {"fork", PrimitiveKind::kFork},     {"join", PrimitiveKind::kJoin},
      {"switch", PrimitiveKind::kSwitch}, {"merge", PrimitiveKind::kMerge},
      {"source", PrimitiveKind::kSource}, {"sink", PrimitiveKind::kSink}};
  const auto it = kKinds.find(word);
  if (it == kKinds.end()) {
    return std::nullopt;
  }
  return it->second;
}

const char* to_string(Predicate p) {
  switch (p) {
    case Predicate::kAny:
      return "any";
    case Predicate::kFirst:
      return "first";
    case Predicate::kSecond:
      return "second";
  }
  return "?";
}

std::size_t Element::num_inputs() const {
  switch (kind) {
    case PrimitiveKind::kSource:
      return 0;
    case PrimitiveKind::kJoin:
    case PrimitiveKind::kMerge:
      return 2;
    default:
      return 1;
  }
}

std::size_t Element::num_outputs() const {
  switch (kind) {
    case PrimitiveKind::kSink:
      return 0;
    case PrimitiveKind::kFork:
    case PrimitiveKind::kSwitch:
      return 2;
    default:
      return 1;
  }
}

std::string Element::input_port(std::size_t i) const {
  return num_inputs() == 1 ? "in" : "in" + std::to_string(i);
}

std::string Element::output_port(std::size_t i) const {
  return num_outputs() == 1 ? "out" : "out" + std::to_string(i);
}

const Element* Netlist::find(std::string_view element_name) const {
  for (const Element& e : elements_) {
    if (e.name == element_name) {
      return &e;
    }
  }
  return nullptr;
}

namespace {

/// Port index of @p port on the given side of @p e, or npos.
std::size_t port_index(const Element& e, const std::string& port, bool input) {
  const std::size_t n = input ? e.num_inputs() : e.num_outputs();
  for (std::size_t i = 0; i < n; ++i) {
    if ((input ? e.input_port(i) : e.output_port(i)) == port) {
      return i;
    }
  }
  return Netlist::npos;
}

core::Diagnostic structural(std::string message, std::string path,
                            std::size_t line, std::string hint = {}) {
  return core::Diagnostic{"MV030",    core::Severity::kError,
                          std::move(message), std::move(path),
                          line,       0,
                          std::move(hint)};
}

}  // namespace

std::size_t Netlist::input_channel(const Element& e, std::size_t i) const {
  const std::string port = e.input_port(i);
  std::size_t found = npos;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c].target.element == e.name &&
        channels_[c].target.port == port) {
      if (found != npos) {
        return npos;  // doubly driven; check() reports it
      }
      found = c;
    }
  }
  return found;
}

std::size_t Netlist::output_channel(const Element& e, std::size_t i) const {
  const std::string port = e.output_port(i);
  std::size_t found = npos;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c].initiator.element == e.name &&
        channels_[c].initiator.port == port) {
      if (found != npos) {
        return npos;
      }
      found = c;
    }
  }
  return found;
}

std::vector<core::Diagnostic> Netlist::check() const {
  std::vector<core::Diagnostic> diags;

  std::set<std::string> element_names;
  for (const Element& e : elements_) {
    const std::string path = name + "/" + e.name;
    if (!element_names.insert(e.name).second) {
      diags.push_back(structural(
          "duplicate element name '" + e.name + "'", path, 0,
          "rename one of the elements; channel endpoints resolve by name"));
    }
    if (e.name.empty()) {
      diags.push_back(structural("element with an empty name", path, 0, ""));
    }
    if (e.kind == PrimitiveKind::kQueue) {
      if (e.capacity < 1 || e.capacity > 8) {
        diags.push_back(structural(
            "queue capacity " + std::to_string(e.capacity) +
                " outside 1..8 (state-space bound)",
            path, 0, ""));
      } else if (e.init < 0 || e.init > e.capacity) {
        diags.push_back(structural(
            "queue init " + std::to_string(e.init) + " outside 0..capacity (" +
                std::to_string(e.capacity) + ")",
            path, 0, ""));
      }
    }
    if ((e.kind == PrimitiveKind::kSource || e.kind == PrimitiveKind::kSink) &&
        !(e.rate > 0.0)) {
      diags.push_back(
          structural("rate of " + std::string(to_string(e.kind)) +
                         " must be > 0",
                     path, 0, ""));
    }
  }

  // Channel endpoints: real elements, ports of the right direction, unique
  // channel names.
  std::set<std::string> channel_names;
  // (element, port) -> wired count, separately per direction.
  std::map<std::pair<std::string, std::string>, int> driven;
  std::map<std::pair<std::string, std::string>, int> driving;
  for (const Channel& c : channels_) {
    const std::string path = name + "/" + c.name;
    if (c.name.empty()) {
      diags.push_back(structural("channel with an empty name",
                                 name + "/" + c.initiator.to_string(), c.line,
                                 ""));
    } else if (!channel_names.insert(c.name).second) {
      diags.push_back(
          structural("duplicate channel name '" + c.name + "'", path, c.line,
                     ""));
    }
    const Element* from = find(c.initiator.element);
    const Element* to = find(c.target.element);
    if (from == nullptr) {
      diags.push_back(structural("channel initiator names unknown element '" +
                                     c.initiator.element + "'",
                                 path, c.line, ""));
    } else if (port_index(*from, c.initiator.port, /*input=*/false) == npos) {
      diags.push_back(structural(
          "'" + c.initiator.to_string() + "' is not an output port of " +
              to_string(from->kind) + " '" + from->name + "'",
          path, c.line, "outputs: out / out0, out1"));
    } else {
      ++driving[{c.initiator.element, c.initiator.port}];
    }
    if (to == nullptr) {
      diags.push_back(structural(
          "channel target names unknown element '" + c.target.element + "'",
          path, c.line, ""));
    } else if (port_index(*to, c.target.port, /*input=*/true) == npos) {
      diags.push_back(structural(
          "'" + c.target.to_string() + "' is not an input port of " +
              to_string(to->kind) + " '" + to->name + "'",
          path, c.line, "inputs: in / in0, in1"));
    } else {
      ++driven[{c.target.element, c.target.port}];
    }
  }

  // Every port wired exactly once: a dangling port leaves the fabric unable
  // to ever transfer through it; a doubly-driven port has no xMAS meaning.
  for (const Element& e : elements_) {
    for (std::size_t i = 0; i < e.num_outputs(); ++i) {
      const int n = driving[{e.name, e.output_port(i)}];
      if (n == 0) {
        diags.push_back(structural(
            "dangling output port '" + e.name + "." + e.output_port(i) + "'",
            name + "/" + e.name, 0,
            "every output must initiate exactly one channel"));
      } else if (n > 1) {
        diags.push_back(structural(
            "output port '" + e.name + "." + e.output_port(i) +
                "' initiates " + std::to_string(n) + " channels",
            name + "/" + e.name, 0, "fan-out needs an explicit fork"));
      }
    }
    for (std::size_t i = 0; i < e.num_inputs(); ++i) {
      const int n = driven[{e.name, e.input_port(i)}];
      if (n == 0) {
        diags.push_back(structural(
            "dangling input port '" + e.name + "." + e.input_port(i) + "'",
            name + "/" + e.name, 0,
            "every input must terminate exactly one channel"));
      } else if (n > 1) {
        diags.push_back(structural(
            "input port '" + e.name + "." + e.input_port(i) + "' is driven by " +
                std::to_string(n) + " channels",
            name + "/" + e.name, 0, "fan-in needs an explicit merge"));
      }
    }
  }
  return diags;
}

std::vector<bool> carriable_channels(const Netlist& n, std::size_t* passes) {
  const auto& channels = n.channels();
  std::vector<bool> carry(channels.size(), false);
  auto chan_in = [&](const Element& e, std::size_t i) {
    return n.input_channel(e, i);
  };
  auto chan_out = [&](const Element& e, std::size_t i) {
    return n.output_channel(e, i);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    if (passes != nullptr) ++*passes;
    for (const Element& e : n.elements()) {
      auto set = [&](std::size_t chan, bool value) {
        if (value && !carry[chan]) {
          carry[chan] = true;
          changed = true;
        }
      };
      switch (e.kind) {
        case PrimitiveKind::kSource:
          set(chan_out(e, 0), true);
          break;
        case PrimitiveKind::kQueue:
          set(chan_out(e, 0), e.init > 0 || carry[chan_in(e, 0)]);
          break;
        case PrimitiveKind::kFunction:
          set(chan_out(e, 0), carry[chan_in(e, 0)]);
          break;
        case PrimitiveKind::kFork:
          set(chan_out(e, 0), carry[chan_in(e, 0)]);
          set(chan_out(e, 1), carry[chan_in(e, 0)]);
          break;
        case PrimitiveKind::kJoin:
          set(chan_out(e, 0), carry[chan_in(e, 0)] && carry[chan_in(e, 1)]);
          break;
        case PrimitiveKind::kMerge:
          set(chan_out(e, 0), carry[chan_in(e, 0)] || carry[chan_in(e, 1)]);
          break;
        case PrimitiveKind::kSwitch:
          if (e.pred != Predicate::kSecond) {
            set(chan_out(e, 0), carry[chan_in(e, 0)]);
          }
          if (e.pred != Predicate::kFirst) {
            set(chan_out(e, 1), carry[chan_in(e, 0)]);
          }
          break;
        case PrimitiveKind::kSink:
          break;
      }
    }
  }
  return carry;
}

// ---- builtin fabrics --------------------------------------------------------

namespace {

Element queue(std::string name, int capacity, int init = 0) {
  Element e;
  e.kind = PrimitiveKind::kQueue;
  e.name = std::move(name);
  e.capacity = capacity;
  e.init = init;
  return e;
}

Element simple(PrimitiveKind kind, std::string name) {
  Element e;
  e.kind = kind;
  e.name = std::move(name);
  return e;
}

Element switch_(std::string name, Predicate pred) {
  Element e;
  e.kind = PrimitiveKind::kSwitch;
  e.name = std::move(name);
  e.pred = pred;
  return e;
}

Channel chan(std::string name, std::string from_elem, std::string from_port,
             std::string to_elem, std::string to_port) {
  return Channel{std::move(name),
                 PortRef{std::move(from_elem), std::move(from_port)},
                 PortRef{std::move(to_elem), std::move(to_port)},
                 0};
}

/// The xSTream credit-protocol loop; @p credits = 0 seeds the MV031
/// structural deadlock (the credit cycle starts token-free).
Netlist credit_loop(int capacity, int credits) {
  Netlist n;
  n.name = credits > 0 ? "credit-loop" : "credit-loop-deadlock";
  n.add(simple(PrimitiveKind::kSource, "src"));
  n.add(queue("stage", 1));
  n.add(simple(PrimitiveKind::kJoin, "grant"));
  n.add(queue("data", capacity));
  n.add(simple(PrimitiveKind::kFork, "deliver"));
  n.add(queue("credit", capacity, credits));
  n.add(simple(PrimitiveKind::kSink, "snk"));
  n.connect(chan("push", "src", "out", "stage", "in"));
  n.connect(chan("tx", "stage", "out", "grant", "in0"));
  n.connect(chan("crd", "credit", "out", "grant", "in1"));
  n.connect(chan("net", "grant", "out", "data", "in"));
  n.connect(chan("rdy", "data", "out", "deliver", "in"));
  n.connect(chan("pop", "deliver", "out0", "snk", "in"));
  n.connect(chan("ret", "deliver", "out1", "credit", "in"));
  return n;
}

/// Two virtual channels sharing one physical link: private 1-place stages,
/// a merge onto the shared link queue, and a (data-abstract, hence
/// nondeterministic) switch back out to two sinks.
Netlist vc_pair(int capacity) {
  Netlist n;
  n.name = "vc-pair";
  n.add(simple(PrimitiveKind::kSource, "src0"));
  n.add(simple(PrimitiveKind::kSource, "src1"));
  n.add(queue("stage0", 1));
  n.add(queue("stage1", 1));
  n.add(simple(PrimitiveKind::kMerge, "arb"));
  n.add(queue("link", capacity));
  n.add(switch_("route", Predicate::kAny));
  n.add(simple(PrimitiveKind::kSink, "snk0"));
  n.add(simple(PrimitiveKind::kSink, "snk1"));
  n.connect(chan("push0", "src0", "out", "stage0", "in"));
  n.connect(chan("push1", "src1", "out", "stage1", "in"));
  n.connect(chan("req0", "stage0", "out", "arb", "in0"));
  n.connect(chan("req1", "stage1", "out", "arb", "in1"));
  n.connect(chan("flit", "arb", "out", "link", "in"));
  n.connect(chan("head", "link", "out", "route", "in"));
  n.connect(chan("pop0", "route", "out0", "snk0", "in"));
  n.connect(chan("pop1", "route", "out1", "snk1", "in"));
  return n;
}

/// A 2-router mesh fragment with *constant* switch predicates: router 0
/// forwards all traffic to router 1 (pred=second), router 1 delivers all
/// traffic locally (pred=first).  The return ring channel into router 0's
/// merge therefore never carries a token — the MV033 starvation advisory —
/// but the fabric stays live and deadlock-free (the effective flow is
/// acyclic).
Netlist mesh2(int capacity) {
  Netlist n;
  n.name = "mesh2";
  for (int r = 0; r < 2; ++r) {
    const std::string i = std::to_string(r);
    n.add(simple(PrimitiveKind::kSource, "src" + i));
    n.add(simple(PrimitiveKind::kMerge, "in" + i));
    n.add(queue("buf" + i, capacity));
    n.add(switch_("out" + i, r == 0 ? Predicate::kSecond : Predicate::kFirst));
    n.add(simple(PrimitiveKind::kSink, "snk" + i));
    n.connect(chan("inject" + i, "src" + i, "out", "in" + i, "in0"));
    n.connect(chan("enq" + i, "in" + i, "out", "buf" + i, "in"));
    n.connect(chan("head" + i, "buf" + i, "out", "out" + i, "in"));
    n.connect(chan("eject" + i, "out" + i, "out0", "snk" + i, "in"));
  }
  // Ring links: router r's remote output feeds the other router's merge.
  n.connect(chan("ring0", "out0", "out1", "in1", "in1"));
  n.connect(chan("ring1", "out1", "out1", "in0", "in1"));
  return n;
}

}  // namespace

const std::vector<std::string>& builtin_fabric_names() {
  static const std::vector<std::string> names = {
      "credit-loop", "credit-loop-deadlock", "vc-pair", "mesh2"};
  return names;
}

Netlist builtin_fabric(const std::string& name, int capacity) {
  if (capacity < 1 || capacity > 8) {
    throw std::invalid_argument(
        "builtin_fabric: capacity must be in 1..8 (state-space bound)");
  }
  if (name == "credit-loop") {
    return credit_loop(capacity, capacity);
  }
  if (name == "credit-loop-deadlock") {
    return credit_loop(capacity, 0);
  }
  if (name == "vc-pair") {
    return vc_pair(capacity);
  }
  if (name == "mesh2") {
    return mesh2(capacity);
  }
  std::string known;
  for (const std::string& k : builtin_fabric_names()) {
    known += (known.empty() ? "" : ", ") + k;
  }
  throw std::invalid_argument("builtin_fabric: unknown fabric '" + name +
                              "' (known: " + known + ")");
}

}  // namespace multival::xmas
