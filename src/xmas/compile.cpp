#include "xmas/compile.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/diag.hpp"

namespace multival::xmas {
namespace {

using proc::call;
using proc::choice;
using proc::evar;
using proc::guard;
using proc::lit;
using proc::par;
using proc::prefix;
using proc::TermPtr;

/// "crd-ret" -> "CRD_RET": gates are uppercase so they read like the rest
/// of the model zoo (PUSH, POP, SEND...).
std::string gate_name(std::string_view channel) {
  std::string out;
  out.reserve(channel.size());
  for (char c : channel) {
    out.push_back(c == '-' ? '_'
                           : static_cast<char>(std::toupper(
                                 static_cast<unsigned char>(c))));
  }
  return out;
}

std::string process_name(const Element& e) {
  std::string stem;
  switch (e.kind) {
    case PrimitiveKind::kQueue:
      stem = "Queue_";
      break;
    case PrimitiveKind::kSource:
      stem = "Source_";
      break;
    case PrimitiveKind::kSink:
      stem = "Sink_";
      break;
    case PrimitiveKind::kSwitch:
      stem = "Switch_";
      break;
    case PrimitiveKind::kMerge:
      stem = "Merge_";
      break;
    default:
      stem = "El_";
      break;
  }
  for (char c : e.name) stem.push_back(c == '-' ? '_' : c);
  return stem;
}

bool is_combinational(PrimitiveKind k) {
  return k == PrimitiveKind::kFunction || k == PrimitiveKind::kFork ||
         k == PrimitiveKind::kJoin;
}

struct UnionFind {
  std::vector<std::size_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

Compiled compile(const Netlist& n, const CompileOptions& options) {
  auto diags = n.check();
  for (const core::Diagnostic& d : diags) {
    if (d.severity == core::Severity::kError) {
      throw std::invalid_argument("cannot compile fabric '" + n.name +
                                  "': " + d.to_text());
    }
  }

  const auto& channels = n.channels();
  const auto& elements = n.elements();

  // Combinational elements fuse their adjacent channels into one gate.
  UnionFind uf(channels.size());
  for (const Element& e : elements) {
    if (!is_combinational(e.kind)) continue;
    std::vector<std::size_t> adjacent;
    for (std::size_t i = 0; i < e.num_inputs(); ++i) {
      adjacent.push_back(n.input_channel(e, i));
    }
    for (std::size_t i = 0; i < e.num_outputs(); ++i) {
      adjacent.push_back(n.output_channel(e, i));
    }
    for (std::size_t i = 1; i < adjacent.size(); ++i) {
      uf.unite(adjacent[0], adjacent[i]);
    }
  }

  // Group representative = lexicographically smallest member channel name.
  std::vector<std::string> rep_of(channels.size());
  {
    std::map<std::size_t, std::string> best;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      std::size_t r = uf.find(i);
      auto it = best.find(r);
      if (it == best.end() || channels[i].name < it->second) {
        best[r] = channels[i].name;
      }
    }
    for (std::size_t i = 0; i < channels.size(); ++i) {
      rep_of[i] = best[uf.find(i)];
    }
  }

  Compiled out;
  out.program = std::make_shared<proc::Program>();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    std::string g = gate_name(rep_of[i]);
    auto [it, fresh] = out.gate_of_channel.emplace(channels[i].name, g);
    (void)it;
    (void)fresh;
    out.gate_groups[g].push_back(channels[i].name);
  }
  for (auto& [g, members] : out.gate_groups) {
    (void)g;
    std::sort(members.begin(), members.end());
  }
  // Distinct groups must not alias after case folding ("a-b" vs "a_b").
  {
    std::set<std::string> reps;
    for (std::size_t i = 0; i < channels.size(); ++i) reps.insert(rep_of[i]);
    if (out.gate_groups.size() != reps.size()) {
      throw std::invalid_argument(
          "cannot compile fabric '" + n.name +
          "': two channel groups collapse onto one gate name after case "
          "folding; rename the channels");
    }
  }

  auto in_gate = [&](const Element& e, std::size_t i) {
    return gate_name(rep_of[n.input_channel(e, i)]);
  };
  auto out_gate = [&](const Element& e, std::size_t i) {
    return gate_name(rep_of[n.output_channel(e, i)]);
  };

  // Carriability: a dead channel's gate can never fire, so everything
  // behind it is pruned — except a starved *join*, which is the MV031
  // structural deadlock and gets refused like an MV030 error.
  const std::vector<bool> carry = carriable_channels(n);
  for (const Element& e : elements) {
    if (e.kind != PrimitiveKind::kJoin) continue;
    for (std::size_t i = 0; i < 2; ++i) {
      if (!carry[n.input_channel(e, i)]) {
        throw std::invalid_argument(
            "cannot compile fabric '" + n.name + "': join input '" + e.name +
            "." + e.input_port(i) +
            "' can never carry a token — the fabric is structurally "
            "deadlocked (MV031; lint for the full diagnostics)");
      }
    }
  }
  std::set<std::string> dead_gates;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (!carry[i]) dead_gates.insert(gate_name(rep_of[i]));
  }
  auto dead = [&](const std::string& g) { return dead_gates.count(g) > 0; };

  // One process per stateful element, folded left-to-right with the exact
  // shared alphabet as each node's sync set (multi-way synchronisation on
  // unified gates falls out of the nesting).
  TermPtr acc;
  std::set<std::string> acc_alpha;
  auto fold = [&](TermPtr t, const std::set<std::string>& alpha) {
    if (!acc) {
      acc = std::move(t);
      acc_alpha = alpha;
      return;
    }
    std::vector<std::string> sync;
    std::set_intersection(acc_alpha.begin(), acc_alpha.end(), alpha.begin(),
                          alpha.end(), std::back_inserter(sync));
    acc = par(std::move(acc), std::move(sync), std::move(t));
    acc_alpha.insert(alpha.begin(), alpha.end());
  };

  for (const Element& e : elements) {
    if (is_combinational(e.kind)) continue;
    const std::string pname = process_name(e);
    switch (e.kind) {
      case PrimitiveKind::kQueue: {
        std::string gin = in_gate(e, 0);
        std::string gout = out_gate(e, 0);
        if (dead(gin) && dead(gout)) break;  // never fed, never seeded
        if (gin == gout) {
          throw std::invalid_argument(
              "cannot compile fabric '" + n.name +
              "': combinational cycle through queue '" + e.name +
              "' (its input and output collapse onto gate " + gin + ")");
        }
        if (dead(gin)) {
          // Unreachable input, init > 0: the queue only drains its seed.
          out.program->define(
              pname, {"n"},
              guard(evar("n") > lit(0),
                    prefix(gout, call(pname, {evar("n") - lit(1)}))));
          fold(call(pname, {lit(e.init)}), {gout});
          break;
        }
        // Q(n) := [n<C] IN;Q(n+1) [] [n>0] OUT;Q(n-1)
        out.program->define(
            pname, {"n"},
            choice({guard(evar("n") < lit(e.capacity),
                          prefix(gin, call(pname, {evar("n") + lit(1)}))),
                    guard(evar("n") > lit(0),
                          prefix(gout, call(pname, {evar("n") - lit(1)})))}));
        fold(call(pname, {lit(e.init)}), {gin, gout});
        break;
      }
      case PrimitiveKind::kSource: {
        std::string g = out_gate(e, 0);
        if (options.burst > 0) {
          // S(k) := [k>0] OUT;S(k-1)  — emits the burst, then stops.
          out.program->define(
              pname, {"k"},
              guard(evar("k") > lit(0),
                    prefix(g, call(pname, {evar("k") - lit(1)}))));
          fold(call(pname, {lit(options.burst)}), {g});
        } else {
          out.program->define(pname, {}, prefix(g, call(pname)));
          fold(call(pname), {g});
        }
        break;
      }
      case PrimitiveKind::kSink: {
        std::string g = in_gate(e, 0);
        if (dead(g)) break;  // nothing ever arrives
        out.program->define(pname, {}, prefix(g, call(pname)));
        fold(call(pname), {g});
        break;
      }
      case PrimitiveKind::kSwitch: {
        std::string gin = in_gate(e, 0);
        std::string g0 = out_gate(e, 0);
        std::string g1 = out_gate(e, 1);
        // A constant predicate or a starved input prunes routes: only the
        // branches that can actually carry tokens are emitted.
        bool live0 = e.pred != Predicate::kSecond && !dead(g0);
        bool live1 = e.pred != Predicate::kFirst && !dead(g1);
        if (dead(gin) || (!live0 && !live1)) break;
        if ((live0 && gin == g0) || (live1 && gin == g1)) {
          throw std::invalid_argument(
              "cannot compile fabric '" + n.name +
              "': combinational cycle through switch '" + e.name + "'");
        }
        TermPtr body;
        std::set<std::string> alpha{gin};
        if (live0 && live1) {
          body = prefix(gin, choice({prefix(g0, call(pname)),
                                     prefix(g1, call(pname))}));
          alpha.insert(g0);
          alpha.insert(g1);
        } else {
          const std::string& gout = live0 ? g0 : g1;
          body = prefix(gin, prefix(gout, call(pname)));
          alpha.insert(gout);
        }
        out.program->define(pname, {}, std::move(body));
        fold(call(pname), alpha);
        break;
      }
      case PrimitiveKind::kMerge: {
        std::string g0 = in_gate(e, 0);
        std::string g1 = in_gate(e, 1);
        std::string gout = out_gate(e, 0);
        bool live0 = !dead(g0);
        bool live1 = !dead(g1);
        if (!live0 && !live1) break;  // both feeds starved, output dead too
        if ((live0 && gout == g0) || (live1 && gout == g1)) {
          throw std::invalid_argument(
              "cannot compile fabric '" + n.name +
              "': combinational cycle through merge '" + e.name + "'");
        }
        TermPtr body;
        std::set<std::string> alpha{gout};
        if (live0 && live1) {
          body = choice({prefix(g0, prefix(gout, call(pname))),
                         prefix(g1, prefix(gout, call(pname)))});
          alpha.insert(g0);
          alpha.insert(g1);
        } else {
          // One feed starved (MV033 territory): the arbiter is a wire.
          const std::string& gin = live0 ? g0 : g1;
          body = prefix(gin, prefix(gout, call(pname)));
          alpha.insert(gin);
        }
        out.program->define(pname, {}, std::move(body));
        fold(call(pname), alpha);
        break;
      }
      default:
        break;
    }
  }
  if (!acc) {
    throw std::invalid_argument("cannot compile fabric '" + n.name +
                                "': no stateful elements (nothing to run)");
  }
  out.program->define(out.entry, {}, acc);

  // Classify gates and collect declared rates (source beats sink beats
  // internal when unification overlaps them; smallest declared rate wins).
  std::map<std::string, double> src_rate;
  std::map<std::string, double> snk_rate;
  for (const Element& e : elements) {
    if (e.kind == PrimitiveKind::kSource) {
      std::string g = out_gate(e, 0);
      auto [it, fresh] = src_rate.emplace(g, e.rate);
      if (!fresh) it->second = std::min(it->second, e.rate);
    } else if (e.kind == PrimitiveKind::kSink) {
      std::string g = in_gate(e, 0);
      auto [it, fresh] = snk_rate.emplace(g, e.rate);
      if (!fresh) it->second = std::min(it->second, e.rate);
    }
  }
  for (const auto& [g, members] : out.gate_groups) {
    (void)members;
    if (acc_alpha.count(g) == 0) continue;  // pruned dead gate
    if (auto it = src_rate.find(g); it != src_rate.end()) {
      out.source_gates.push_back(g);
      out.declared_rates[g] = it->second;
    } else if (auto it2 = snk_rate.find(g); it2 != snk_rate.end()) {
      out.sink_gates.push_back(g);
      out.declared_rates[g] = it2->second;
    } else {
      out.internal_gates.push_back(g);
    }
  }
  return out;
}

std::map<std::string, double> rate_table(const Compiled& c, double inject,
                                         double service, double transfer) {
  if (transfer <= 0) {
    throw std::invalid_argument("rate_table: transfer rate must be > 0");
  }
  std::map<std::string, double> rates;
  for (const std::string& g : c.source_gates) {
    rates[g] = inject > 0 ? inject : c.declared_rates.at(g);
  }
  for (const std::string& g : c.sink_gates) {
    rates[g] = service > 0 ? service : c.declared_rates.at(g);
  }
  for (const std::string& g : c.internal_gates) rates[g] = transfer;
  return rates;
}

lts::Lts compiled_lts(const Compiled& c, compose::Strategy strategy,
                      const compose::PlanOptions& opts,
                      compose::MinimizeCache* cache) {
  return compose::pipeline_lts(c.program, c.entry, strategy, opts, cache);
}

}  // namespace multival::xmas
