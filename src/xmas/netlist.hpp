// xMAS communication fabrics: typed micro-architectural primitives wired
// into a checked netlist ("A formalisation of XMAS", van Gastel & Schmaltz).
//
// The eight canonical primitives and their ports:
//
//   queue    cap C, init I     in        -> out     (the only stateful one)
//   function                   in        -> out     (combinational transform)
//   fork                       in        -> out0, out1
//   join                       in0, in1  -> out
//   switch   pred p            in        -> out0, out1
//   merge                      in0, in1  -> out
//   source   rate λ                      -> out     (token injection)
//   sink     rate μ            in        ->         (token consumption)
//
// Channels are point-to-point: each connects exactly one initiator port
// (an element output) to exactly one target port (an element input).  A
// netlist is *checked* — check() proves every port is wired exactly once
// and every channel endpoint names a real element/port; violations are
// core::Diagnostic errors (MV030) carrying the element path, never
// exceptions, so the CLI and the analyze lint report them uniformly.
//
// Data is abstracted to tokens (the quantitative flow only depends on
// occupancy), so a switch routes nondeterministically unless its predicate
// is constant (Predicate::kFirst / kSecond) — the deterministic case the
// MV033 merge-starvation lint reasons about.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/diag.hpp"

namespace multival::xmas {

enum class PrimitiveKind {
  kQueue,
  kFunction,
  kFork,
  kJoin,
  kSwitch,
  kMerge,
  kSource,
  kSink,
};

[[nodiscard]] const char* to_string(PrimitiveKind k);
/// "queue" -> kQueue ...; nullopt on an unknown word.
[[nodiscard]] std::optional<PrimitiveKind> parse_primitive_kind(
    std::string_view word);

/// Routing predicate of a switch.  Data is abstract, so kAny explores both
/// outputs nondeterministically; kFirst/kSecond model a predicate that is
/// constant over the traffic actually offered (the MV033 idiom).
enum class Predicate { kAny, kFirst, kSecond };

[[nodiscard]] const char* to_string(Predicate p);

struct Element {
  PrimitiveKind kind = PrimitiveKind::kQueue;
  std::string name;
  int capacity = 1;   ///< kQueue: places (1..8)
  int init = 0;       ///< kQueue: tokens initially present (0..capacity)
  double rate = 1.0;  ///< kSource injection / kSink service rate (> 0)
  Predicate pred = Predicate::kAny;  ///< kSwitch only

  [[nodiscard]] std::size_t num_inputs() const;
  [[nodiscard]] std::size_t num_outputs() const;
  /// Port names in index order: "in"/"out" for 1-ary sides, "in0","in1" /
  /// "out0","out1" for 2-ary ones.
  [[nodiscard]] std::string input_port(std::size_t i) const;
  [[nodiscard]] std::string output_port(std::size_t i) const;
};

/// One endpoint of a channel: an element name plus a port name.
struct PortRef {
  std::string element;
  std::string port;

  [[nodiscard]] std::string to_string() const { return element + "." + port; }
};

struct Channel {
  std::string name;   ///< unique; doubles as the compiled gate name stem
  PortRef initiator;  ///< an element *output* port
  PortRef target;     ///< an element *input* port
  std::size_t line = 0;  ///< 1-based source line when parsed from .xmas
};

/// A fabric: elements plus the channels wiring their ports.
class Netlist {
 public:
  std::string name = "fabric";

  /// Adds an element; duplicate names are reported by check(), not thrown.
  void add(Element e) { elements_.push_back(std::move(e)); }
  void connect(Channel c) { channels_.push_back(std::move(c)); }

  [[nodiscard]] const std::vector<Element>& elements() const {
    return elements_;
  }
  [[nodiscard]] const std::vector<Channel>& channels() const {
    return channels_;
  }

  [[nodiscard]] const Element* find(std::string_view element_name) const;

  /// Channel driving input port @p i of @p e (index into channels()), or
  /// npos when unwired/ambiguous.  Only meaningful on a checked netlist.
  [[nodiscard]] std::size_t input_channel(const Element& e,
                                          std::size_t i) const;
  [[nodiscard]] std::size_t output_channel(const Element& e,
                                           std::size_t i) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Structural well-formedness (MV030, all errors): unique element and
  /// channel names, attribute ranges (queue capacity/init, source/sink
  /// rates), channel endpoints naming real elements and ports of the right
  /// direction, and every port wired exactly once (dangling and
  /// doubly-driven ports both carry the offending element path).
  [[nodiscard]] std::vector<core::Diagnostic> check() const;

 private:
  std::vector<Element> elements_;
  std::vector<Channel> channels_;
};

/// The token-carriability least fixed point over a *checked* netlist:
/// out[i] is true iff channel i can ever carry a token (sources always
/// carry; queues carry iff seeded or fed; a join output needs both inputs;
/// a constant switch predicate kills the other side — see the transfer
/// functions in the implementation).  This is the shared engine of the
/// MV031/MV033 lints (analyze::lint_netlist) and of the compiler's
/// dead-structure pruning; @p passes, when non-null, receives the number of
/// Kleene iterations.
[[nodiscard]] std::vector<bool> carriable_channels(const Netlist& n,
                                                   std::size_t* passes =
                                                       nullptr);

// ---- builtin fabrics --------------------------------------------------------

/// Names of the shipped fabrics, the xmas counterpart of the case-study
/// generator registry: "credit-loop", "credit-loop-deadlock" (the seeded
/// MV031 structural deadlock), "vc-pair" and "mesh2".
[[nodiscard]] const std::vector<std::string>& builtin_fabric_names();

/// Builds a shipped fabric.  @p capacity sizes every payload queue (1..8).
/// Throws std::invalid_argument on an unknown name or capacity range.
///
///   credit-loop           the xSTream virtual queue as a fabric: source ->
///                         1-place tx stage -> join(credits) -> payload
///                         queue -> fork -> {sink, credit queue (init =
///                         capacity) -> join}.  Lint-clean.
///   credit-loop-deadlock  same loop with the credit queue starting empty:
///                         the join's credit input lies on a token-free
///                         cycle (MV031 structural deadlock).
///   vc-pair               two sources with private 1-place stages merged
///                         onto one shared link queue, then a
///                         nondeterministic switch to two sinks.
///   mesh2                 a 2-router mesh fragment with constant switch
///                         predicates: router 0 forwards everything to
///                         router 1, whose return channel into router 0's
///                         merge therefore starves (MV033 advisory).
[[nodiscard]] Netlist builtin_fabric(const std::string& name,
                                     int capacity = 2);

}  // namespace multival::xmas
