// Textual front end for xMAS netlists, so fabrics can live in `.xmas`
// files the way process models live in `.proc` files.
//
// One directive per line; '#' starts a comment:
//
//   fabric <name>                         optional title
//   queue  <name> [capacity=C] [init=I]   element declarations
//   source <name> [rate=R]
//   sink   <name> [rate=R]
//   switch <name> [pred=any|first|second]
//   function | fork | join | merge  <name>
//   channel <name> <elem>.<port> -> <elem>.<port>
//
// Ports are "in"/"out" for 1-ary sides and "in0","in1"/"out0","out1" for
// 2-ary ones.  Malformed text raises ParseError carrying an MV010
// core::Diagnostic with the 1-based line/column of the offending token —
// the same error path the .proc parser uses, so `multival_cli xmas --lint`
// reports syntax and structure identically.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "core/diag.hpp"
#include "xmas/netlist.hpp"

namespace multival::xmas {

/// Parse failure with a structured MV010 diagnostic (line/column).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(core::Diagnostic d)
      : std::runtime_error("parse error at line " + std::to_string(d.line) +
                           ", column " + std::to_string(d.column) + ": " +
                           d.message),
        diagnostic_(std::move(d)) {}

  [[nodiscard]] const core::Diagnostic& diagnostic() const {
    return diagnostic_;
  }

 private:
  core::Diagnostic diagnostic_;
};

/// Parses a whole `.xmas` netlist.  Syntax errors throw ParseError;
/// structural problems (dangling ports...) are left to Netlist::check().
[[nodiscard]] Netlist parse_netlist(std::string_view text);

/// Renders @p n back into parseable `.xmas` text (element declarations in
/// insertion order, then channels).
[[nodiscard]] std::string to_text(const Netlist& n);

}  // namespace multival::xmas
