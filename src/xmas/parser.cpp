#include "xmas/parser.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <string>
#include <vector>

namespace multival::xmas {
namespace {

[[noreturn]] void fail(std::size_t line, std::size_t column, std::string msg,
                       std::string hint = {}) {
  core::Diagnostic d;
  d.code = "MV010";
  d.severity = core::Severity::kError;
  d.message = std::move(msg);
  d.line = line;
  d.column = column;
  d.hint = std::move(hint);
  throw ParseError(std::move(d));
}

/// One whitespace-delimited token plus the 1-based column it starts at.
struct Token {
  std::string text;
  std::size_t column = 0;
};

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0 &&
           line[i] != '#') {
      ++i;
    }
    out.push_back({std::string(line.substr(start, i - start)), start + 1});
  }
  return out;
}

bool valid_identifier(std::string_view word) {
  if (word.empty()) return false;
  for (char c : word) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(word.front())) == 0;
}

int parse_int_attr(const Token& tok, std::string_view value, std::size_t line,
                   std::string_view attr) {
  int v = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    fail(line, tok.column,
         "attribute '" + std::string(attr) + "' needs an integer, got '" +
             std::string(value) + "'");
  }
  return v;
}

double parse_rate_attr(const Token& tok, std::string_view value,
                       std::size_t line) {
  try {
    std::size_t used = 0;
    double v = std::stod(std::string(value), &used);
    if (used == value.size()) return v;
  } catch (const std::exception&) {
  }
  fail(line, tok.column,
       "attribute 'rate' needs a number, got '" + std::string(value) + "'");
}

/// Splits "elem.port" at the last dot; complains otherwise.
PortRef parse_port_ref(const Token& tok, std::size_t line) {
  auto dot = tok.text.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == tok.text.size()) {
    fail(line, tok.column,
         "expected <element>.<port>, got '" + tok.text + "'",
         "ports are in/out, or in0/in1/out0/out1 on two-ary sides");
  }
  return {tok.text.substr(0, dot), tok.text.substr(dot + 1)};
}

void parse_element(const std::vector<Token>& toks, PrimitiveKind kind,
                   std::size_t line, Netlist& out) {
  if (toks.size() < 2) {
    fail(line, toks[0].column,
         std::string(to_string(kind)) + " declaration needs a name",
         std::string(to_string(kind)) + " <name> [attr=value ...]");
  }
  if (!valid_identifier(toks[1].text)) {
    fail(line, toks[1].column,
         "'" + toks[1].text + "' is not a valid element name",
         "names are letters, digits, '_' or '-', not starting with a digit");
  }
  Element e;
  e.kind = kind;
  e.name = toks[1].text;
  if (kind == PrimitiveKind::kQueue) e.capacity = 1;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    auto eq = tok.text.find('=');
    if (eq == std::string::npos) {
      fail(line, tok.column, "expected attr=value, got '" + tok.text + "'");
    }
    std::string attr = tok.text.substr(0, eq);
    std::string value = tok.text.substr(eq + 1);
    if (attr == "capacity" && kind == PrimitiveKind::kQueue) {
      e.capacity = parse_int_attr(tok, value, line, attr);
    } else if (attr == "init" && kind == PrimitiveKind::kQueue) {
      e.init = parse_int_attr(tok, value, line, attr);
    } else if (attr == "rate" && (kind == PrimitiveKind::kSource ||
                                  kind == PrimitiveKind::kSink)) {
      e.rate = parse_rate_attr(tok, value, line);
    } else if (attr == "pred" && kind == PrimitiveKind::kSwitch) {
      if (value == "any") {
        e.pred = Predicate::kAny;
      } else if (value == "first") {
        e.pred = Predicate::kFirst;
      } else if (value == "second") {
        e.pred = Predicate::kSecond;
      } else {
        fail(line, tok.column,
             "switch predicate must be any, first or second, got '" + value +
                 "'");
      }
    } else {
      fail(line, tok.column,
           "attribute '" + attr + "' does not apply to a " +
               std::string(to_string(kind)),
           "capacity/init fit queues, rate fits sources and sinks, pred fits "
           "switches");
    }
  }
  out.add(std::move(e));
}

void parse_channel(const std::vector<Token>& toks, std::size_t line,
                   Netlist& out) {
  // channel <name> <elem>.<port> -> <elem>.<port>
  if (toks.size() != 5 || toks[3].text != "->") {
    std::size_t col = toks.size() > 1 ? toks[1].column : toks[0].column;
    fail(line, col, "malformed channel declaration",
         "channel <name> <element>.<out-port> -> <element>.<in-port>");
  }
  if (!valid_identifier(toks[1].text)) {
    fail(line, toks[1].column,
         "'" + toks[1].text + "' is not a valid channel name");
  }
  Channel c;
  c.name = toks[1].text;
  c.initiator = parse_port_ref(toks[2], line);
  c.target = parse_port_ref(toks[4], line);
  c.line = line;
  out.connect(std::move(c));
}

}  // namespace

Netlist parse_netlist(std::string_view text) {
  Netlist out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_fabric = false;
  while (pos <= text.size()) {
    auto nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0].text;
    if (head == "fabric") {
      if (toks.size() != 2) {
        fail(line_no, toks[0].column, "fabric directive needs exactly a name",
             "fabric <name>");
      }
      if (saw_fabric) {
        fail(line_no, toks[0].column,
             "duplicate fabric directive; one netlist per file");
      }
      saw_fabric = true;
      out.name = toks[1].text;
    } else if (head == "channel") {
      parse_channel(toks, line_no, out);
    } else if (auto kind = parse_primitive_kind(head)) {
      parse_element(toks, *kind, line_no, out);
    } else {
      fail(line_no, toks[0].column, "unknown directive '" + head + "'",
           "expected fabric, channel, or a primitive kind (queue, function, "
           "fork, join, switch, merge, source, sink)");
    }
  }
  return out;
}

std::string to_text(const Netlist& n) {
  std::ostringstream os;
  os << "fabric " << n.name << "\n";
  for (const Element& e : n.elements()) {
    os << to_string(e.kind) << " " << e.name;
    switch (e.kind) {
      case PrimitiveKind::kQueue:
        os << " capacity=" << e.capacity;
        if (e.init != 0) os << " init=" << e.init;
        break;
      case PrimitiveKind::kSource:
      case PrimitiveKind::kSink:
        os << " rate=" << e.rate;
        break;
      case PrimitiveKind::kSwitch:
        if (e.pred != Predicate::kAny) os << " pred=" << to_string(e.pred);
        break;
      default:
        break;
    }
    os << "\n";
  }
  for (const Channel& c : n.channels()) {
    os << "channel " << c.name << " " << c.initiator.to_string() << " -> "
       << c.target.to_string() << "\n";
  }
  return os.str();
}

}  // namespace multival::xmas
