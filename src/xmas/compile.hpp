// Lowering xMAS netlists into the proc calculus, so fabrics flow through
// the exact pipeline every other model does: plan -> generate -> minimise
// -> decorate with rates -> close -> solve.
//
// The encoding keeps the combinational heart of xMAS exact.  Every channel
// is a gate, and each *combinational* element (function, fork, join)
// unifies its adjacent channels into ONE gate: a fork firing is a single
// multi-way synchronisation between the upstream producer and both
// downstream consumers, a join fires only when both inputs and the output
// are simultaneously ready — precisely the xMAS transfer semantics, with
// data abstracted to tokens.  Unified gates are named after the
// lexicographically smallest member channel, so compilation is
// deterministic.
//
// The stateful elements become processes:
//
//   queue C/I    Q(n) := [n<C] IN;Q(n+1) [] [n>0] OUT;Q(n-1)   entered at I
//   source       S := OUT;S            (or S(k) := [k>0] OUT;S(k-1) bursts)
//   sink         K := IN;K
//   switch       W := IN;(OUT0;W [] OUT1;W)   constant predicates keep one
//   merge        M := IN0;OUT;M [] IN1;OUT;M
//
// switch and merge are one-place latches, not combinational: routing choice
// is inexpressible by pure synchronisation, so they honestly add one stage
// of buffering each (documented wherever capacities are compared).
//
// Dead structure is pruned.  Channels outside the carriability fixed point
// (carriable_channels) can never fire their gate, so keeping them would
// leave provably stuck components in the composition (MV003 noise at
// best, free-firing gates at worst once their last participant is
// dropped).  The compiler therefore emits only the live sub-fabric: dead
// choice branches vanish, elements whose every adjacent gate is dead are
// omitted, and dead gates never reach the gate lists or sync sets.  A
// *join* with a dead input is different — that is the MV031 structural
// deadlock, and compile() refuses it outright rather than silently
// shipping a model missing the deadlocked subgraph.
//
// The entry process is the parallel composition of the element processes
// where every parallel node synchronises on the exact shared alphabet of
// its operands — the safely-reassociable shape compose::plan_term wants, so
// the planned strategy applies to fabrics with no further work.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compose/plan.hpp"
#include "lts/lts.hpp"
#include "proc/process.hpp"
#include "xmas/netlist.hpp"

namespace multival::xmas {

struct CompileOptions {
  /// 0 = free-running sources (steady-state models); > 0 = every source
  /// emits this many tokens and stops (burst models for latency probes).
  int burst = 0;
};

/// A compiled fabric: the program plus the gate bookkeeping consumers need
/// to decorate, hide and probe it.
struct Compiled {
  std::shared_ptr<proc::Program> program;
  std::string entry = "Fabric";

  /// channel name -> compiled gate (several channels map to one gate when a
  /// combinational element unified them).
  std::map<std::string, std::string> gate_of_channel;
  /// gate -> member channel names, sorted (singleton for un-unified ones).
  std::map<std::string, std::vector<std::string>> gate_groups;

  /// Disjoint, each sorted: gates adjacent to a source / to a sink / all
  /// remaining fabric-internal gates.  A gate that touches both a source
  /// and a sink is listed as a source gate.
  std::vector<std::string> source_gates;
  std::vector<std::string> sink_gates;
  std::vector<std::string> internal_gates;

  /// Declared element rates per source/sink gate (smallest wins when
  /// unification put several sources or sinks on one gate).
  std::map<std::string, double> declared_rates;
};

/// Compiles a structurally valid netlist.  Runs Netlist::check() first and
/// throws std::invalid_argument on any MV030 error (lint for the full
/// diagnostics); also throws on an MV031 structural deadlock (a join input
/// outside the carriability fixed point) and on combinational cycles that
/// collapse a stateful element's ports onto one gate.  Dead channels —
/// carriable_channels() == false — are pruned (see the header comment), so
/// the gate lists below cover exactly the gates of the emitted program.
[[nodiscard]] Compiled compile(const Netlist& n, const CompileOptions& = {});

/// Markovian decoration table for core::decorate_with_rates: source gates
/// get @p inject, sink gates @p service, internal gates @p transfer.
/// Passing inject or service <= 0 keeps the per-element declared rates.
[[nodiscard]] std::map<std::string, double> rate_table(const Compiled& c,
                                                       double inject = 0.0,
                                                       double service = 0.0,
                                                       double transfer = 1.0);

/// The fabric's LTS through the standard pipeline: planned (minimal,
/// canonical) or flat per @p strategy — byte-identical results either way.
[[nodiscard]] lts::Lts compiled_lts(const Compiled& c,
                                    compose::Strategy strategy,
                                    const compose::PlanOptions& opts = {},
                                    compose::MinimizeCache* cache = nullptr);

}  // namespace multival::xmas
