// Performance models of the xSTream virtual queues: the paper's claim is
// that the IMC flow predicts "latency, throughputs in the communication
// architecture, and occupancy within xSTream queues".
#pragma once

#include <vector>

#include "lts/lts.hpp"
#include "xstream/queue_model.hpp"

namespace multival::xstream {

/// Occupancy (items currently inside the queue) of every LTS state,
/// computed as the PUSH-minus-POP balance along paths from the initial
/// state.  Throws std::runtime_error if two paths disagree (i.e. the LTS is
/// not a queue w.r.t. the given gates).
[[nodiscard]] std::vector<int> occupancy_of_states(const lts::Lts& l,
                                                   const std::string& push_gate,
                                                   const std::string& pop_gate);

struct QueuePerfParams {
  QueueConfig queue;    ///< functional configuration (values irrelevant: use 0)
  double push_rate = 1.0;    ///< producer inter-arrival rate (lambda)
  double net_rate = 10.0;    ///< NoC transfer rate
  double credit_rate = 10.0; ///< credit-return rate
  double pop_rate = 2.0;     ///< consumer service rate (mu)
};

struct QueuePerfResult {
  /// P[occupancy = k] for k = 0 .. capacity+1 (pop FIFO plus push stage).
  std::vector<double> occupancy_distribution;
  double mean_occupancy = 0.0;
  double throughput = 0.0;    ///< long-run POP rate
  double mean_latency = 0.0;  ///< Little's law: mean occupancy / throughput
  double utilisation = 0.0;   ///< P[occupancy > 0]
  std::size_t ctmc_states = 0;
};

/// Full performance analysis of one virtual queue through the IMC flow:
/// generate the open LTS, decorate all four gates with rates, close, solve.
[[nodiscard]] QueuePerfResult analyze_virtual_queue(
    const QueuePerfParams& params);

/// Two virtual queues in series (the "communication architecture" shape of
/// an xSTream stream: producer -> queue -> relay -> queue -> consumer).
struct PipelinePerfParams {
  QueueConfig queue;          ///< configuration of both stages
  double push_rate = 1.0;     ///< producer rate into stage 1
  double handoff_rate = 8.0;  ///< relay between the stages (MID)
  double net_rate = 10.0;     ///< NoC rate inside each stage
  double credit_rate = 10.0;
  double pop_rate = 2.0;      ///< consumer rate out of stage 2
};

struct PipelinePerfResult {
  double throughput = 0.0;       ///< long-run consumer rate
  double mean_latency = 0.0;     ///< end-to-end (Little on total occupancy)
  double mean_occ_stage1 = 0.0;
  double mean_occ_stage2 = 0.0;
  std::size_t ctmc_states = 0;
};

[[nodiscard]] PipelinePerfResult analyze_pipeline(
    const PipelinePerfParams& params);

/// N virtual queues in series (stream of depth @p stages, 2..4).
struct PipelineNPerfResult {
  double throughput = 0.0;
  double mean_latency = 0.0;
  std::vector<double> stage_occupancy;  ///< one entry per stage
  std::size_t ctmc_states = 0;
};

[[nodiscard]] PipelineNPerfResult analyze_pipeline_n(
    const PipelinePerfParams& params, int stages);

}  // namespace multival::xstream
