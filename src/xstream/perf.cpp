#include "xstream/perf.hpp"

#include <deque>
#include <map>
#include <stdexcept>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "lts/product.hpp"
#include "markov/steady.hpp"

namespace multival::xstream {

std::vector<int> occupancy_of_states(const lts::Lts& l,
                                     const std::string& push_gate,
                                     const std::string& pop_gate) {
  constexpr int kUnset = INT_MIN;
  std::vector<int> occ(l.num_states(), kUnset);
  if (l.num_states() == 0) {
    return occ;
  }
  std::deque<lts::StateId> queue{l.initial_state()};
  occ[l.initial_state()] = 0;
  while (!queue.empty()) {
    const lts::StateId s = queue.front();
    queue.pop_front();
    for (const lts::OutEdge& e : l.out(s)) {
      const std::string_view gate =
          lts::label_gate(l.actions().name(e.action));
      int delta = 0;
      if (gate == push_gate) {
        delta = 1;
      } else if (gate == pop_gate) {
        delta = -1;
      }
      const int next = occ[s] + delta;
      if (occ[e.dst] == kUnset) {
        occ[e.dst] = next;
        queue.push_back(e.dst);
      } else if (occ[e.dst] != next) {
        throw std::runtime_error(
            "occupancy_of_states: inconsistent PUSH/POP balance at state " +
            std::to_string(e.dst));
      }
    }
  }
  for (int& o : occ) {
    if (o == kUnset) {
      o = 0;  // unreachable state
    }
  }
  return occ;
}

QueuePerfResult analyze_virtual_queue(const QueuePerfParams& params) {
  const core::SolveContext solve_ctx("xstream/virtual-queue");
  QueueConfig cfg = params.queue;
  cfg.max_value = 0;  // payload values do not influence timing
  const lts::Lts open = virtual_queue_lts_open(cfg);
  const std::vector<int> occ = occupancy_of_states(open, "PUSH", "POP");

  const imc::Imc m = core::decorate_with_rates(
      open, {{"PUSH", params.push_rate},
             {"NET", params.net_rate},
             {"CREDIT", params.credit_rate},
             {"POP", params.pop_rate}});
  // All transitions became Markovian, so extraction is the identity on
  // states; skip lumping to keep the occupancy reward well-defined.
  const core::ClosedModel closed =
      core::close_model(m, imc::NondetPolicy::kReject, /*lump=*/false);

  const std::vector<double> pi = markov::steady_state(closed.ctmc);

  QueuePerfResult r;
  r.ctmc_states = closed.ctmc.num_states();
  const int max_occ = cfg.capacity + 1;
  r.occupancy_distribution.assign(static_cast<std::size_t>(max_occ) + 1, 0.0);
  for (std::size_t cs = 0; cs < pi.size(); ++cs) {
    const lts::StateId original = closed.imc_state_of[cs];
    const int k = occ[original];
    if (k < 0 || k > max_occ) {
      throw std::logic_error("analyze_virtual_queue: occupancy out of range");
    }
    r.occupancy_distribution[static_cast<std::size_t>(k)] += pi[cs];
    r.mean_occupancy += pi[cs] * k;
    if (k > 0) {
      r.utilisation += pi[cs];
    }
  }
  r.throughput = markov::throughput(closed.ctmc, pi, "POP*");
  r.mean_latency = r.throughput > 0.0 ? r.mean_occupancy / r.throughput : 0.0;
  return r;
}

PipelinePerfResult analyze_pipeline(const PipelinePerfParams& params) {
  const core::SolveContext solve_ctx("xstream/pipeline");
  QueueConfig cfg = params.queue;
  cfg.max_value = 0;
  const lts::Lts stage = virtual_queue_lts_open(cfg);

  // Instantiate two stages with disjoint internal gates, joined on MID.
  const lts::Lts q1 = lts::rename(
      stage, {{"POP", "MID"}, {"NET", "NET1"}, {"CREDIT", "CR1"}});
  const lts::Lts q2 = lts::rename(
      stage, {{"PUSH", "MID"}, {"NET", "NET2"}, {"CREDIT", "CR2"}});
  const std::vector<std::string> join{"MID"};
  const lts::Lts pipe = lts::parallel(q1, q2, join);

  const std::vector<int> occ1 = occupancy_of_states(pipe, "PUSH", "MID");
  const std::vector<int> occ2 = occupancy_of_states(pipe, "MID", "POP");

  const imc::Imc m = core::decorate_with_rates(
      pipe, {{"PUSH", params.push_rate},
             {"MID", params.handoff_rate},
             {"NET1", params.net_rate},
             {"NET2", params.net_rate},
             {"CR1", params.credit_rate},
             {"CR2", params.credit_rate},
             {"POP", params.pop_rate}});
  const core::ClosedModel closed =
      core::close_model(m, imc::NondetPolicy::kReject, /*lump=*/false);
  const std::vector<double> pi = markov::steady_state(closed.ctmc);

  PipelinePerfResult r;
  r.ctmc_states = closed.ctmc.num_states();
  for (std::size_t cs = 0; cs < pi.size(); ++cs) {
    const lts::StateId original = closed.imc_state_of[cs];
    r.mean_occ_stage1 += pi[cs] * occ1[original];
    r.mean_occ_stage2 += pi[cs] * occ2[original];
  }
  r.throughput = markov::throughput(closed.ctmc, pi, "POP*");
  const double total = r.mean_occ_stage1 + r.mean_occ_stage2;
  r.mean_latency = r.throughput > 0.0 ? total / r.throughput : 0.0;
  return r;
}

PipelineNPerfResult analyze_pipeline_n(const PipelinePerfParams& params,
                                       int stages) {
  const core::SolveContext solve_ctx("xstream/pipeline-n");
  if (stages < 2 || stages > 4) {
    throw std::invalid_argument("analyze_pipeline_n: stages must be in 2..4");
  }
  QueueConfig cfg = params.queue;
  cfg.max_value = 0;
  const lts::Lts stage = virtual_queue_lts_open(cfg);

  const auto boundary = [&](int i) {
    // Gate between stage i-1 and stage i.
    if (i == 0) {
      return std::string("PUSH");
    }
    if (i == stages) {
      return std::string("POP");
    }
    return "MID" + std::to_string(i);
  };

  std::map<std::string, double> rates{{"PUSH", params.push_rate},
                                      {"POP", params.pop_rate}};
  lts::Lts pipe;
  for (int i = 0; i < stages; ++i) {
    const std::string tag = std::to_string(i);
    lts::Lts q = lts::rename(stage, {{"PUSH", boundary(i)},
                                     {"POP", boundary(i + 1)},
                                     {"NET", "NET" + tag},
                                     {"CREDIT", "CR" + tag}});
    rates["NET" + tag] = params.net_rate;
    rates["CR" + tag] = params.credit_rate;
    if (i > 0) {
      rates[boundary(i)] = params.handoff_rate;
      const std::vector<std::string> join{boundary(i)};
      pipe = lts::parallel(pipe, q, join);
    } else {
      pipe = std::move(q);
    }
  }

  std::vector<std::vector<int>> occ;
  for (int i = 0; i < stages; ++i) {
    occ.push_back(occupancy_of_states(pipe, boundary(i), boundary(i + 1)));
  }

  const imc::Imc m = core::decorate_with_rates(pipe, rates);
  const core::ClosedModel closed =
      core::close_model(m, imc::NondetPolicy::kReject, /*lump=*/false);
  const std::vector<double> pi = markov::steady_state(closed.ctmc);

  PipelineNPerfResult r;
  r.ctmc_states = closed.ctmc.num_states();
  r.stage_occupancy.assign(static_cast<std::size_t>(stages), 0.0);
  double total = 0.0;
  for (std::size_t cs = 0; cs < pi.size(); ++cs) {
    const lts::StateId original = closed.imc_state_of[cs];
    for (int i = 0; i < stages; ++i) {
      const double add = pi[cs] * occ[static_cast<std::size_t>(i)][original];
      r.stage_occupancy[static_cast<std::size_t>(i)] += add;
      total += add;
    }
  }
  r.throughput = markov::throughput(closed.ctmc, pi, "POP*");
  r.mean_latency = r.throughput > 0.0 ? total / r.throughput : 0.0;
  return r;
}

}  // namespace multival::xstream
