#include "xstream/queue_model.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "lts/product.hpp"
#include "proc/generator.hpp"

namespace multival::xstream {

using namespace multival::proc;

const char* to_string(QueueVariant v) {
  switch (v) {
    case QueueVariant::kCorrect:
      return "correct";
    case QueueVariant::kLostCredit:
      return "lost-credit";
    case QueueVariant::kEagerCredit:
      return "eager-credit";
  }
  return "?";
}

namespace {

void check_config(const QueueConfig& cfg) {
  if (cfg.capacity < 1 || cfg.capacity > 4) {
    throw std::invalid_argument(
        "virtual_queue: capacity must be in 1..4 (state-space bound)");
  }
  if (cfg.max_value < 0 || cfg.max_value > 3) {
    throw std::invalid_argument("virtual_queue: max_value must be in 0..3");
  }
}

/// The producer-side stage: one packet buffer plus the credit counter.
///   PushSide(cr, have, item)
void define_push_side(Program& p, const QueueConfig& cfg) {
  const Value c = cfg.capacity;
  const Value v = cfg.max_value;
  std::vector<TermPtr> branches;
  // Accept a new packet when the stage is empty.
  branches.push_back(
      guard(evar("have") == lit(0),
            prefix("PUSH", {accept("x", 0, v)},
                   call("PushSide", {evar("cr"), lit(1), evar("x")}))));
  // Forward it over the NoC when a credit is available.
  branches.push_back(
      guard(evar("have") == lit(1) && evar("cr") > lit(0),
            prefix("NET", {emit(evar("item"))},
                   call("PushSide", {evar("cr") - lit(1), lit(0), lit(0)}))));
  // Accept a returned credit (bounded by the FIFO capacity).
  branches.push_back(
      guard(evar("cr") < lit(c),
            prefix("CREDIT",
                   call("PushSide", {evar("cr") + lit(1), evar("have"),
                                     evar("item")}))));
  p.define("PushSide", {"cr", "have", "item"}, choice(std::move(branches)));
}

/// The consumer-side FIFO of capacity C with the credit-return logic.
///   PopSide(len, owe, q0 .. q{C-1})
void define_pop_side(Program& p, const QueueConfig& cfg) {
  const Value c = cfg.capacity;
  const Value v = cfg.max_value;

  std::vector<std::string> params{"len", "owe"};
  for (Value i = 0; i < c; ++i) {
    params.push_back("q" + std::to_string(i));
  }
  const auto slot = [](Value i) { return evar("q" + std::to_string(i)); };

  // Helper: argument list with substitutions.
  const auto args_with = [&](ExprPtr len, ExprPtr owe,
                             std::vector<ExprPtr> slots) {
    std::vector<ExprPtr> args{std::move(len), std::move(owe)};
    for (auto& s : slots) {
      args.push_back(std::move(s));
    }
    return args;
  };
  const auto current_slots = [&]() {
    std::vector<ExprPtr> s;
    for (Value i = 0; i < c; ++i) {
      s.push_back(slot(i));
    }
    return s;
  };

  std::vector<TermPtr> branches;

  // NET reception: enqueue at position len (one branch per concrete len).
  for (Value fill = 0; fill < c; ++fill) {
    auto slots = current_slots();
    slots[static_cast<std::size_t>(fill)] = evar("x");
    const ExprPtr owe =
        cfg.variant == QueueVariant::kEagerCredit
            ? evar("owe") + lit(1)  // BUG: credit granted on reception
            : evar("owe");
    branches.push_back(guard(
        evar("len") == lit(fill),
        prefix("NET", {accept("x", 0, v)},
               call("PopSide",
                    args_with(evar("len") + lit(1), owe, std::move(slots))))));
  }
  if (cfg.variant == QueueVariant::kEagerCredit) {
    // BUG consequence: with eagerly-granted credits the producer can send
    // into a full FIFO; the packet is dropped.
    branches.push_back(guard(
        evar("len") == lit(c),
        prefix("NET", {accept("x", 0, v)},
               prefix("LOSE", {emit(evar("x"))},
                      call("PopSide", args_with(evar("len"),
                                                evar("owe") + lit(1),
                                                current_slots()))))));
  }

  // POP: deliver the head, shift, and owe a credit back.
  {
    auto slots = current_slots();
    for (Value i = 0; i + 1 < c; ++i) {
      slots[static_cast<std::size_t>(i)] = slot(i + 1);
    }
    slots[static_cast<std::size_t>(c - 1)] = lit(0);
    if (cfg.variant == QueueVariant::kLostCredit) {
      // BUG: the credit is forgotten whenever the pop drains the FIFO
      // (the "queue empty" code path skips the credit return).  One credit
      // leaks per drain until the queue wedges completely.
      auto slots_drain = slots;
      branches.push_back(guard(
          evar("len") > lit(1),
          prefix("POP", {emit(slot(0))},
                 call("PopSide", args_with(evar("len") - lit(1),
                                           evar("owe") + lit(1), slots)))));
      branches.push_back(guard(
          evar("len") == lit(1),
          prefix("POP", {emit(slot(0))},
                 call("PopSide", args_with(evar("len") - lit(1), evar("owe"),
                                           slots_drain)))));
    } else {
      const ExprPtr owe_final = cfg.variant == QueueVariant::kCorrect
                                    ? evar("owe") + lit(1)
                                    : evar("owe");
      branches.push_back(guard(
          evar("len") > lit(0),
          prefix("POP", {emit(slot(0))},
                 call("PopSide", args_with(evar("len") - lit(1), owe_final,
                                           slots)))));
    }
  }

  // Return owed credits to the producer side.
  branches.push_back(
      guard(evar("owe") > lit(0),
            prefix("CREDIT", call("PopSide",
                                  args_with(evar("len"), evar("owe") - lit(1),
                                            current_slots())))));

  p.define("PopSide", std::move(params), choice(std::move(branches)));
}

}  // namespace

Program virtual_queue_program(const QueueConfig& cfg) {
  check_config(cfg);
  Program p;
  define_push_side(p, cfg);
  define_pop_side(p, cfg);

  std::vector<ExprPtr> pop_args{lit(0), lit(0)};
  for (Value i = 0; i < cfg.capacity; ++i) {
    pop_args.push_back(lit(0));
  }
  p.define("VirtualQueue", {},
           par(call("PushSide", {lit(cfg.capacity), lit(0), lit(0)}),
               {"NET", "CREDIT"}, call("PopSide", std::move(pop_args))));
  return p;
}

Program drain_scenario_program(const QueueConfig& cfg, int items) {
  check_config(cfg);
  if (items < 1 || items > 8) {
    throw std::invalid_argument(
        "drain_scenario: items must be in 1..8 (state-space bound)");
  }
  Program p = virtual_queue_program(cfg);
  const Value v = cfg.max_value;
  p.define("Source", {"n"},
           choice({guard(evar("n") > lit(0),
                         prefix("PUSH", {emit(lit(0))},
                                call("Source", {evar("n") - lit(1)}))),
                   guard(evar("n") == lit(0), stop())}));
  p.define("Sink", {"n"},
           choice({guard(evar("n") > lit(0),
                         prefix("POP", {accept("x", 0, v)},
                                call("Sink", {evar("n") - lit(1)}))),
                   guard(evar("n") == lit(0), stop())}));
  p.define("DrainScenario", {},
           par(call("Source", {lit(items)}), {"PUSH"},
               par(call("VirtualQueue"), {"POP"}, call("Sink", {lit(items)}))));
  return p;
}

lts::Lts drain_scenario_lts(const QueueConfig& cfg, int items,
                            compose::Strategy strategy,
                            compose::MinimizeCache* cache) {
  auto p = std::make_shared<const Program>(drain_scenario_program(cfg, items));
  return core::timed_generation(
      "xstream: drain scenario (cap " + std::to_string(cfg.capacity) +
          ", items " + std::to_string(items) + ")",
      [&] {
        if (strategy == compose::Strategy::kFlat) {
          return lts::trim(generate(*p, "DrainScenario")).lts;
        }
        return compose::pipeline_lts(p, "DrainScenario", strategy, {}, cache);
      });
}

lts::Lts virtual_queue_lts_open(const QueueConfig& cfg) {
  const Program p = virtual_queue_program(cfg);
  return core::timed_generation(
      std::string("xstream: virtual queue (") + to_string(cfg.variant) +
          ", cap " + std::to_string(cfg.capacity) + ")",
      [&] { return lts::trim(generate(p, "VirtualQueue")).lts; });
}

lts::Lts virtual_queue_lts(const QueueConfig& cfg) {
  const std::vector<std::string> internal{"NET", "CREDIT"};
  return lts::hide(virtual_queue_lts_open(cfg), internal);
}

lts::Lts reference_fifo_lts(const QueueConfig& cfg) {
  check_config(cfg);
  Program p;
  const Value cap = cfg.capacity + 1;  // pop FIFO + the push stage
  const Value v = cfg.max_value;
  std::vector<std::string> params{"len"};
  for (Value i = 0; i < cap; ++i) {
    params.push_back("q" + std::to_string(i));
  }
  const auto slot = [](Value i) { return evar("q" + std::to_string(i)); };

  std::vector<TermPtr> branches;
  for (Value fill = 0; fill < cap; ++fill) {
    std::vector<ExprPtr> args{evar("len") + lit(1)};
    for (Value i = 0; i < cap; ++i) {
      args.push_back(i == fill ? evar("x") : slot(i));
    }
    branches.push_back(guard(evar("len") == lit(fill),
                             prefix("PUSH", {accept("x", 0, v)},
                                    call("Fifo", std::move(args)))));
  }
  {
    std::vector<ExprPtr> args{evar("len") - lit(1)};
    for (Value i = 0; i + 1 < cap; ++i) {
      args.push_back(slot(i + 1));
    }
    args.push_back(lit(0));
    branches.push_back(guard(evar("len") > lit(0),
                             prefix("POP", {emit(slot(0))},
                                    call("Fifo", std::move(args)))));
  }
  p.define("Fifo", std::move(params), choice(std::move(branches)));

  std::vector<proc::Value> init(static_cast<std::size_t>(cap) + 1, 0);
  return core::timed_generation(
      "xstream: reference fifo (cap " + std::to_string(cap) + ")",
      [&] { return generate(p, "Fifo", init); });
}

}  // namespace multival::xstream
