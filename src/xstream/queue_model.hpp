// xSTream case study (STMicroelectronics): credit-based flow-controlled
// "virtual queues" of the xSTream dataflow fabric.
//
// A virtual queue couples a producer-side stage and a consumer-side FIFO
// across the NoC with credit-based flow control:
//
//   PUSH -> [push stage] --NET--> [pop FIFO cap C] -> POP
//                 ^------------CREDIT-------------------'
//
// The push stage may only send on NET when it holds a credit; the pop side
// returns one CREDIT per POP.  The paper reports that model checking these
// queues "highlighted two functional issues"; we reproduce two classic
// credit-protocol defects as model variants:
//   kLostCredit      — the consumer forgets to return a credit whenever a
//                      pop drains the FIFO; one credit leaks per drain until
//                      the queue wedges (deadlock).
//   kEagerCredit     — the consumer grants the credit on NET reception
//                      instead of on POP; the producer can overrun a full
//                      FIFO and a packet is dropped (visible LOSE action).
#pragma once

#include <string>

#include "compose/plan.hpp"
#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::xstream {

enum class QueueVariant {
  kCorrect,
  kLostCredit,
  kEagerCredit,
};

[[nodiscard]] const char* to_string(QueueVariant v);

struct QueueConfig {
  /// Pop-side FIFO capacity (= initial number of credits).
  int capacity = 2;
  /// Payload values range over 0..max_value (>=1 exercises FIFO order).
  int max_value = 1;
  QueueVariant variant = QueueVariant::kCorrect;
};

/// Builds the process program of one virtual queue.  The entry point is
/// "VirtualQueue"; external gates are PUSH (?v), POP (!v) and, for the
/// kEagerCredit variant, LOSE (!v); NET and CREDIT are internal (hidden).
[[nodiscard]] proc::Program virtual_queue_program(const QueueConfig& cfg);

/// Generates the queue LTS (internal gates hidden).
[[nodiscard]] lts::Lts virtual_queue_lts(const QueueConfig& cfg);

/// Generates the queue LTS keeping NET and CREDIT visible (used by the
/// performance decoration, which attaches rates to them).
[[nodiscard]] lts::Lts virtual_queue_lts_open(const QueueConfig& cfg);

/// Finite drain scenario (entry "DrainScenario"): a source pushes @p items
/// packets through the virtual queue to a sink that pops them all, then the
/// system stops.  Absorption time of the decorated IMC is the end-to-end
/// transfer time of an @p items-packet burst.  All gates stay visible.
[[nodiscard]] proc::Program drain_scenario_program(const QueueConfig& cfg,
                                                   int items);
[[nodiscard]] lts::Lts drain_scenario_lts(
    const QueueConfig& cfg, int items,
    compose::Strategy strategy = compose::Strategy::kPlanned,
    compose::MinimizeCache* cache = nullptr);

/// Reference service specification: a plain FIFO of capacity
/// cfg.capacity + 1 (pop FIFO plus the one-packet push stage) over the same
/// value range.  The correct virtual queue must be branching-equivalent to
/// it after hiding the protocol internals.
[[nodiscard]] lts::Lts reference_fifo_lts(const QueueConfig& cfg);

}  // namespace multival::xstream
