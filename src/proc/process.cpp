#include "proc/process.hpp"

#include <algorithm>
#include <stdexcept>

namespace multival::proc {

Offer emit(ExprPtr e) {
  Offer o;
  o.kind = Offer::Kind::kEmit;
  o.expr = std::move(e);
  return o;
}

Offer accept(std::string_view var, Value lo, Value hi) {
  if (lo > hi) {
    throw std::invalid_argument("accept: empty range for " + std::string(var));
  }
  Offer o;
  o.kind = Offer::Kind::kAccept;
  o.var = std::string(var);
  o.lo = lo;
  o.hi = hi;
  return o;
}

namespace {

void merge_into(std::vector<std::string>& acc,
                const std::vector<std::string>& more) {
  for (const std::string& v : more) {
    acc.push_back(v);
  }
}

void remove_var(std::vector<std::string>& acc, const std::string& var) {
  acc.erase(std::remove(acc.begin(), acc.end(), var), acc.end());
}

std::vector<std::string> compute_free_vars(
    Term::Kind kind, const std::vector<Offer>& offers, const ExprPtr& cond,
    const std::vector<TermPtr>& children, const std::vector<ExprPtr>& args) {
  std::vector<std::string> fv;
  switch (kind) {
    case Term::Kind::kStop:
    case Term::Kind::kExit:
      break;
    case Term::Kind::kPrefix: {
      // Offers bind left to right; the continuation (children[0]) sees all
      // accept variables.
      std::vector<std::string> cont_fv = children[0]->free_vars();
      std::vector<std::string> bound;
      // Forward pass collecting emit variables not yet bound.
      for (const Offer& o : offers) {
        if (o.kind == Offer::Kind::kEmit) {
          for (const std::string& v : o.expr->free_vars()) {
            if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
              fv.push_back(v);
            }
          }
        } else {
          bound.push_back(o.var);
        }
      }
      for (const std::string& b : bound) {
        remove_var(cont_fv, b);
      }
      merge_into(fv, cont_fv);
      break;
    }
    case Term::Kind::kGuard:
      merge_into(fv, cond->free_vars());
      merge_into(fv, children[0]->free_vars());
      break;
    case Term::Kind::kChoice:
    case Term::Kind::kPar:
    case Term::Kind::kHide:
    case Term::Kind::kRename:
    case Term::Kind::kSeq:
      for (const TermPtr& c : children) {
        merge_into(fv, c->free_vars());
      }
      break;
    case Term::Kind::kCall:
      for (const ExprPtr& a : args) {
        merge_into(fv, a->free_vars());
      }
      break;
  }
  std::sort(fv.begin(), fv.end());
  fv.erase(std::unique(fv.begin(), fv.end()), fv.end());
  return fv;
}

}  // namespace

TermPtr Term::make(Kind k, std::string gate, std::vector<Offer> offers,
                   ExprPtr cond, std::vector<TermPtr> children,
                   std::vector<std::string> gates,
                   std::map<std::string, std::string> gate_map,
                   std::vector<ExprPtr> args) {
  for (const TermPtr& c : children) {
    if (c == nullptr) {
      throw std::invalid_argument("Term::make: null child");
    }
  }
  auto t = std::make_shared<Term>();
  t->kind_ = k;
  t->gate_ = std::move(gate);
  t->offers_ = std::move(offers);
  t->cond_ = std::move(cond);
  t->children_ = std::move(children);
  t->gates_ = std::move(gates);
  t->gate_map_ = std::move(gate_map);
  t->args_ = std::move(args);
  t->free_vars_ =
      compute_free_vars(k, t->offers_, t->cond_, t->children_, t->args_);
  return t;
}

TermPtr stop() {
  static const TermPtr kStopTerm =
      Term::make(Term::Kind::kStop, {}, {}, nullptr, {}, {}, {}, {});
  return kStopTerm;
}

TermPtr exit_() {
  static const TermPtr kExitTerm =
      Term::make(Term::Kind::kExit, {}, {}, nullptr, {}, {}, {}, {});
  return kExitTerm;
}

TermPtr prefix(std::string_view gate, std::vector<Offer> offers,
               TermPtr cont) {
  if (gate.empty() || gate == "i" || gate == "exit") {
    throw std::invalid_argument("prefix: reserved or empty gate name \"" +
                                std::string(gate) + '"');
  }
  return Term::make(Term::Kind::kPrefix, std::string(gate), std::move(offers),
                    nullptr, {std::move(cont)}, {}, {}, {});
}

TermPtr prefix(std::string_view gate, TermPtr cont) {
  return prefix(gate, std::vector<Offer>{}, std::move(cont));
}

TermPtr guard(ExprPtr cond, TermPtr body) {
  return Term::make(Term::Kind::kGuard, {}, {}, std::move(cond),
                    {std::move(body)}, {}, {}, {});
}

TermPtr choice(std::vector<TermPtr> branches) {
  if (branches.empty()) {
    return stop();
  }
  if (branches.size() == 1) {
    return branches[0];
  }
  return Term::make(Term::Kind::kChoice, {}, {}, nullptr, std::move(branches),
                    {}, {}, {});
}

TermPtr par(TermPtr l, std::vector<std::string> sync_gates, TermPtr r) {
  return Term::make(Term::Kind::kPar, {}, {}, nullptr,
                    {std::move(l), std::move(r)}, std::move(sync_gates), {},
                    {});
}

TermPtr interleaving(TermPtr l, TermPtr r) {
  return par(std::move(l), {}, std::move(r));
}

TermPtr hide(std::vector<std::string> gates, TermPtr body) {
  return Term::make(Term::Kind::kHide, {}, {}, nullptr, {std::move(body)},
                    std::move(gates), {}, {});
}

TermPtr rename(std::map<std::string, std::string> gate_map, TermPtr body) {
  return Term::make(Term::Kind::kRename, {}, {}, nullptr, {std::move(body)},
                    {}, std::move(gate_map), {});
}

TermPtr seq(TermPtr first, TermPtr then) {
  return Term::make(Term::Kind::kSeq, {}, {}, nullptr,
                    {std::move(first), std::move(then)}, {}, {}, {});
}

TermPtr call(std::string_view name, std::vector<ExprPtr> args) {
  if (name.empty()) {
    throw std::invalid_argument("call: empty process name");
  }
  return Term::make(Term::Kind::kCall, std::string(name), {}, nullptr, {}, {},
                    {}, std::move(args));
}

// ------------------------------------------------------------- pretty-print --

std::string Term::to_string() const {
  switch (kind_) {
    case Kind::kStop:
      return "stop";
    case Kind::kExit:
      return "exit";
    case Kind::kPrefix: {
      std::string s = gate_;
      for (const Offer& o : offers_) {
        if (o.kind == Offer::Kind::kEmit) {
          s += " !(" + o.expr->to_string() + ")";
        } else {
          s += " ?" + o.var + ":" + std::to_string(o.lo) + ".." +
               std::to_string(o.hi);
        }
      }
      return s + "; " + children_[0]->to_string();
    }
    case Kind::kGuard:
      return "[" + cond_->to_string() + "] -> " + children_[0]->to_string();
    case Kind::kChoice: {
      std::string s = "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) {
          s += " [] ";
        }
        s += children_[i]->to_string();
      }
      return s + ")";
    }
    case Kind::kPar: {
      std::string s =
          "(" + children_[0]->to_string() + (gates_.empty() ? " |||" : " |[");
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        s += (i > 0 ? ", " : "") + gates_[i];
      }
      s += gates_.empty() ? " " : "]| ";
      return s + children_[1]->to_string() + ")";
    }
    case Kind::kHide: {
      std::string s = "hide ";
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        s += (i > 0 ? ", " : "") + gates_[i];
      }
      return s + " in (" + children_[0]->to_string() + ")";
    }
    case Kind::kRename: {
      std::string s = "rename ";
      bool first = true;
      for (const auto& [from, to] : gate_map_) {
        if (!first) {
          s += ", ";
        }
        first = false;
        s += from + " -> " + to;
      }
      return s + " in (" + children_[0]->to_string() + ")";
    }
    case Kind::kSeq:
      return "(" + children_[0]->to_string() + " >> " +
             children_[1]->to_string() + ")";
    case Kind::kCall: {
      if (args_.empty()) {
        return gate_;
      }
      std::string s = gate_ + " (";
      for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += args_[i]->to_string();
      }
      return s + ")";
    }
  }
  return "?";
}

std::string Program::to_string() const {
  std::string s;
  for (const auto& [name, def] : defs_) {
    s += "process " + name;
    if (!def.params.empty()) {
      s += " (";
      for (std::size_t i = 0; i < def.params.size(); ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += def.params[i];
      }
      s += ")";
    }
    s += " :=\n  " + def.body->to_string() + "\nendproc\n\n";
  }
  return s;
}

// ------------------------------------------------------------------ Program --

void Program::define(std::string_view name, std::vector<std::string> params,
                     TermPtr body) {
  if (body == nullptr) {
    throw std::invalid_argument("Program::define: null body");
  }
  const auto [it, inserted] = defs_.emplace(
      std::string(name), Definition{std::move(params), std::move(body)});
  if (!inserted) {
    throw std::invalid_argument("Program::define: redefinition of " +
                                std::string(name));
  }
}

const Program::Definition& Program::definition(std::string_view name) const {
  const auto it = defs_.find(name);
  if (it == defs_.end()) {
    throw std::out_of_range("Program: undefined process " + std::string(name));
  }
  return it->second;
}

bool Program::has_definition(std::string_view name) const {
  return defs_.find(name) != defs_.end();
}

}  // namespace multival::proc
