// Integer expressions and environments for the LOTOS-like process calculus.
//
// The value domain is int32_t ("LOTOS with naturals/booleans folded into
// ints"): booleans are 0/1, division by zero throws.  Expressions are
// immutable shared trees with cached free-variable sets; environments are
// canonical sorted (name, value) vectors so that process configurations can
// be hashed structurally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace multival::proc {

using Value = std::int32_t;

class Env;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class UnaryOp { kNeg, kNot };
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kMin,
  kMax,
};

class Expr {
 public:
  enum class Kind { kConst, kVar, kUnary, kBinary };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Value constant() const { return value_; }
  [[nodiscard]] const std::string& var_name() const { return name_; }
  [[nodiscard]] UnaryOp unary_op() const { return uop_; }
  [[nodiscard]] BinaryOp binary_op() const { return bop_; }
  /// Operand(s): lhs() is set for kUnary and kBinary, rhs() for kBinary.
  [[nodiscard]] const ExprPtr& lhs() const { return lhs_; }
  [[nodiscard]] const ExprPtr& rhs() const { return rhs_; }

  /// Evaluates under @p env; throws std::out_of_range on unbound variables
  /// and std::domain_error on division/modulo by zero.
  [[nodiscard]] Value eval(const Env& env) const;

  /// Sorted, deduplicated free variables (cached).
  [[nodiscard]] const std::vector<std::string>& free_vars() const {
    return free_vars_;
  }

  [[nodiscard]] std::string to_string() const;

  static ExprPtr make_const(Value v);
  static ExprPtr make_var(std::string name);
  static ExprPtr make_unary(UnaryOp op, ExprPtr a);
  static ExprPtr make_binary(BinaryOp op, ExprPtr a, ExprPtr b);

 private:
  Kind kind_ = Kind::kConst;
  Value value_ = 0;
  std::string name_;
  UnaryOp uop_ = UnaryOp::kNeg;
  BinaryOp bop_ = BinaryOp::kAdd;
  ExprPtr lhs_;
  ExprPtr rhs_;
  std::vector<std::string> free_vars_;
};

/// Canonical variable environment: sorted by name, no duplicates.
class Env {
 public:
  Env() = default;

  /// Binds (or rebinds) @p name.
  void bind(std::string_view name, Value v);

  [[nodiscard]] std::optional<Value> lookup(std::string_view name) const;

  /// Environment restricted to @p vars (which must be sorted is NOT
  /// required; missing vars are simply absent).
  [[nodiscard]] Env restricted_to(std::span<const std::string> vars) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const {
    return entries_;
  }

  friend bool operator==(const Env&, const Env&) = default;

  [[nodiscard]] std::size_t hash() const;

 private:
  std::vector<std::pair<std::string, Value>> entries_;  // sorted by name
};

// ---- builders ---------------------------------------------------------------

[[nodiscard]] ExprPtr lit(Value v);
[[nodiscard]] ExprPtr evar(std::string_view name);

[[nodiscard]] ExprPtr operator+(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator-(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator*(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator/(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator%(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator==(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator!=(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator<(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator<=(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator>(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator>=(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator&&(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator||(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr operator!(ExprPtr a);
[[nodiscard]] ExprPtr operator-(ExprPtr a);
[[nodiscard]] ExprPtr emin(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr emax(ExprPtr a, ExprPtr b);

}  // namespace multival::proc
