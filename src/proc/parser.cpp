#include "proc/parser.hpp"

#include <cctype>
#include <string>
#include <vector>

namespace multival::proc {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      // Comments: "--" or "//" to end of line.
      if (pos_ + 1 < text_.size() &&
          ((c == '-' && text_[pos_ + 1] == '-') ||
           (c == '/' && text_[pos_ + 1] == '/'))) {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      break;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] bool peek_symbol(std::string_view sym) {
    skip_ws();
    return text_.substr(pos_).starts_with(sym);
  }

  bool eat_symbol(std::string_view sym) {
    if (peek_symbol(sym)) {
      pos_ += sym.size();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek_keyword(std::string_view kw) {
    skip_ws();
    if (!text_.substr(pos_).starts_with(kw)) {
      return false;
    }
    const std::size_t end = pos_ + kw.size();
    return end >= text_.size() || !is_ident_char(text_[end]);
  }

  bool eat_keyword(std::string_view kw) {
    if (peek_keyword(kw)) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek_ident() {
    skip_ws();
    return pos_ < text_.size() && is_ident_start(text_[pos_]);
  }

  std::string ident() {
    skip_ws();
    if (!peek_ident()) {
      fail("expected an identifier");
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  [[nodiscard]] bool peek_number() {
    skip_ws();
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  Value number() {
    skip_ws();
    if (!peek_number()) {
      fail("expected a number");
    }
    long long v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      if (v > 0x7fffffff) {
        fail("integer literal too large");
      }
      ++pos_;
    }
    return static_cast<Value>(v);
  }

  void expect_symbol(std::string_view sym) {
    if (!eat_symbol(sym)) {
      fail(std::string("expected '") + std::string(sym) + "'");
    }
  }

  void expect_keyword(std::string_view kw) {
    if (!eat_keyword(kw)) {
      fail(std::string("expected keyword '") + std::string(kw) + "'");
    }
  }

  /// The token starting at the current position, for "near '...'" context:
  /// an identifier/number, a run of punctuation, or end of input.
  [[nodiscard]] std::string offending_token(std::size_t from) const {
    std::size_t p = from;
    while (p < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[p]))) {
      ++p;
    }
    if (p >= text_.size()) {
      return "end of input";
    }
    std::size_t end = p;
    if (is_ident_start(text_[end]) ||
        std::isdigit(static_cast<unsigned char>(text_[end]))) {
      while (end < text_.size() && is_ident_char(text_[end])) {
        ++end;
      }
    } else {
      while (end < text_.size() && end - p < 3 &&
             !std::isspace(static_cast<unsigned char>(text_[end])) &&
             !is_ident_char(text_[end])) {
        ++end;
      }
    }
    return "'" + std::string(text_.substr(p, end - p)) + "'";
  }

  /// Position of the next token; pair with fail_at() to anchor an error to
  /// a construct's start rather than wherever parsing stopped.
  [[nodiscard]] std::size_t mark() {
    skip_ws();
    return pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    fail_at(pos_, what);
  }

  [[noreturn]] void fail_at(std::size_t pos, const std::string& what) const {
    // Compute line/column for a readable, clickable position.
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ProcParseError(core::Diagnostic{
        "MV010", core::Severity::kError,
        what + " near " + offending_token(pos), {}, line, col, {}});
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Recursive-descent parser producing Term / Expr trees.
class ProcParser {
 public:
  explicit ProcParser(std::string_view text) : lex_(text) {}

  Program program() {
    Program p;
    while (!lex_.at_end()) {
      lex_.expect_keyword("process");
      const std::size_t at = lex_.mark();
      const std::string name = lex_.ident();
      std::vector<std::string> params;
      if (lex_.eat_symbol("(")) {
        if (!lex_.eat_symbol(")")) {
          params.push_back(lex_.ident());
          while (lex_.eat_symbol(",")) {
            params.push_back(lex_.ident());
          }
          lex_.expect_symbol(")");
        }
      }
      lex_.expect_symbol(":=");
      TermPtr body = behaviour();
      lex_.expect_keyword("endproc");
      try {
        p.define(name, std::move(params), std::move(body));
      } catch (const std::invalid_argument& e) {
        lex_.fail_at(at, e.what());
      }
    }
    return p;
  }

  TermPtr whole_behaviour() {
    TermPtr t = behaviour();
    if (!lex_.at_end()) {
      lex_.fail("trailing input after behaviour");
    }
    return t;
  }

  ExprPtr whole_expr() {
    ExprPtr e = expr();
    if (!lex_.at_end()) {
      lex_.fail("trailing input after expression");
    }
    return e;
  }

 private:
  // behaviour := par ('[]' par)*
  TermPtr behaviour() {
    std::vector<TermPtr> branches{par_expr()};
    while (lex_.eat_symbol("[]")) {
      branches.push_back(par_expr());
    }
    return branches.size() == 1 ? branches[0] : choice(std::move(branches));
  }

  // par := seq (('|[' gates ']|' | '|||') seq)*
  TermPtr par_expr() {
    TermPtr t = seq_expr();
    while (true) {
      if (lex_.peek_symbol("|[")) {
        lex_.expect_symbol("|[");
        std::vector<std::string> gates;
        if (!lex_.peek_symbol("]|")) {
          gates.push_back(lex_.ident());
          while (lex_.eat_symbol(",")) {
            gates.push_back(lex_.ident());
          }
        }
        lex_.expect_symbol("]|");
        t = par(std::move(t), std::move(gates), seq_expr());
      } else if (lex_.peek_symbol("|||")) {
        lex_.expect_symbol("|||");
        t = interleaving(std::move(t), seq_expr());
      } else {
        return t;
      }
    }
  }

  // seq := prefix ('>>' prefix)*
  TermPtr seq_expr() {
    TermPtr t = prefix_expr();
    while (lex_.eat_symbol(">>")) {
      t = seq(std::move(t), prefix_expr());
    }
    return t;
  }

  TermPtr prefix_expr() {
    if (lex_.eat_keyword("stop")) {
      return stop();
    }
    if (lex_.eat_keyword("exit")) {
      return exit_();
    }
    if (lex_.eat_keyword("hide")) {
      std::vector<std::string> gates{lex_.ident()};
      while (lex_.eat_symbol(",")) {
        gates.push_back(lex_.ident());
      }
      lex_.expect_keyword("in");
      return hide(std::move(gates), prefix_expr());
    }
    if (lex_.eat_keyword("rename")) {
      std::map<std::string, std::string> mapping;
      do {
        const std::string from = lex_.ident();
        lex_.expect_symbol("->");
        mapping[from] = lex_.ident();
      } while (lex_.eat_symbol(","));
      lex_.expect_keyword("in");
      return rename(std::move(mapping), prefix_expr());
    }
    if (lex_.eat_symbol("(")) {
      TermPtr t = behaviour();
      lex_.expect_symbol(")");
      return t;
    }
    if (lex_.peek_symbol("[")) {
      // Guard: [ expr ] -> B
      lex_.expect_symbol("[");
      ExprPtr cond = expr();
      lex_.expect_symbol("]");
      lex_.expect_symbol("->");
      return guard(std::move(cond), prefix_expr());
    }
    if (lex_.peek_ident()) {
      const std::size_t at = lex_.mark();
      const std::string name = lex_.ident();
      // Gate prefix: offers then ';'.  Call: optional '(' args ')'.
      if (lex_.peek_symbol("!") || lex_.peek_symbol("?") ||
          lex_.peek_symbol(";")) {
        std::vector<Offer> offers;
        while (true) {
          if (lex_.eat_symbol("!")) {
            offers.push_back(emit(atom_expr_for_offer()));
          } else if (lex_.eat_symbol("?")) {
            const std::size_t var_at = lex_.mark();
            const std::string var = lex_.ident();
            lex_.expect_symbol(":");
            const Value lo = signed_number();
            lex_.expect_symbol("..");
            const Value hi = signed_number();
            try {
              offers.push_back(accept(var, lo, hi));
            } catch (const std::invalid_argument& e) {
              lex_.fail_at(var_at, e.what());
            }
          } else {
            break;
          }
        }
        lex_.expect_symbol(";");
        try {
          return prefix(name, std::move(offers), prefix_expr());
        } catch (const std::invalid_argument& e) {
          lex_.fail_at(at, e.what());
        }
      }
      std::vector<ExprPtr> args;
      if (lex_.eat_symbol("(")) {
        if (!lex_.eat_symbol(")")) {
          args.push_back(expr());
          while (lex_.eat_symbol(",")) {
            args.push_back(expr());
          }
          lex_.expect_symbol(")");
        }
      }
      return call(name, std::move(args));
    }
    lex_.fail("expected a behaviour");
  }

  Value signed_number() {
    if (lex_.eat_symbol("-")) {
      return static_cast<Value>(-lex_.number());
    }
    return lex_.number();
  }

  /// Offers use tight expressions: a single atom, or a parenthesised
  /// expression ("G !x" or "G !(x + 1)"), so "G !x ; P" lexes cleanly.
  ExprPtr atom_expr_for_offer() { return unary_expr(); }

  // ---- value expressions (precedence climbing) -------------------------

  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (true) {
      // '||' but not '|||' / '|[':
      if (lex_.peek_symbol("|||") || lex_.peek_symbol("|[")) {
        return e;
      }
      if (!lex_.eat_symbol("||")) {
        return e;
      }
      e = std::move(e) || and_expr();
    }
  }

  ExprPtr and_expr() {
    ExprPtr e = cmp_expr();
    while (lex_.eat_symbol("&&")) {
      e = std::move(e) && cmp_expr();
    }
    return e;
  }

  ExprPtr cmp_expr() {
    ExprPtr e = add_expr();
    while (true) {
      if (lex_.eat_symbol("==")) {
        e = std::move(e) == add_expr();
      } else if (lex_.eat_symbol("!=")) {
        e = std::move(e) != add_expr();
      } else if (lex_.eat_symbol("<=")) {
        e = std::move(e) <= add_expr();
      } else if (lex_.eat_symbol(">=")) {
        e = std::move(e) >= add_expr();
      } else if (!lex_.peek_symbol("<<") && lex_.peek_symbol("<")) {
        lex_.expect_symbol("<");
        e = std::move(e) < add_expr();
      } else if (!lex_.peek_symbol(">>") && lex_.peek_symbol(">")) {
        lex_.expect_symbol(">");
        e = std::move(e) > add_expr();
      } else {
        return e;
      }
    }
  }

  ExprPtr add_expr() {
    ExprPtr e = mul_expr();
    while (true) {
      if (lex_.eat_symbol("+")) {
        e = std::move(e) + mul_expr();
      } else if (!lex_.peek_symbol("->") && lex_.peek_symbol("-")) {
        lex_.expect_symbol("-");
        e = std::move(e) - mul_expr();
      } else {
        return e;
      }
    }
  }

  ExprPtr mul_expr() {
    ExprPtr e = unary_expr();
    while (true) {
      if (lex_.eat_symbol("*")) {
        e = std::move(e) * unary_expr();
      } else if (lex_.eat_symbol("/")) {
        e = std::move(e) / unary_expr();
      } else if (lex_.eat_symbol("%")) {
        e = std::move(e) % unary_expr();
      } else {
        return e;
      }
    }
  }

  ExprPtr unary_expr() {
    if (lex_.eat_symbol("!")) {
      return !unary_expr();
    }
    if (!lex_.peek_symbol("->") && lex_.eat_symbol("-")) {
      return -unary_expr();
    }
    if (lex_.eat_symbol("(")) {
      ExprPtr e = expr();
      lex_.expect_symbol(")");
      return e;
    }
    if (lex_.peek_number()) {
      return lit(lex_.number());
    }
    if (lex_.peek_ident()) {
      const std::string name = lex_.ident();
      if (name == "min" || name == "max") {
        lex_.expect_symbol("(");
        ExprPtr a = expr();
        lex_.expect_symbol(",");
        ExprPtr b = expr();
        lex_.expect_symbol(")");
        return name == "min" ? emin(std::move(a), std::move(b))
                             : emax(std::move(a), std::move(b));
      }
      return evar(name);
    }
    lex_.fail("expected a value expression");
  }

  Lexer lex_;
};

}  // namespace

Program parse_program(std::string_view text) {
  return ProcParser(text).program();
}

TermPtr parse_behaviour(std::string_view text) {
  return ProcParser(text).whole_behaviour();
}

ExprPtr parse_value_expr(std::string_view text) {
  return ProcParser(text).whole_expr();
}

}  // namespace multival::proc
