// Textual front end for the process calculus: a LOTOS-flavoured concrete
// syntax so models can live in files (the paper's models are LOTOS source).
//
// Program syntax:
//
//   process Name (p1, p2) :=  behaviour  endproc
//   process Name :=  behaviour  endproc
//
// Behaviour syntax (precedence from loosest to tightest; parenthesise when
// mixing parallel operators):
//
//   B ::= B1 [] B2                      choice
//       | B1 |[ G1, G2 ]| B2            parallel with synchronisation
//       | B1 ||| B2                     interleaving
//       | B1 >> B2                      sequential composition (enable)
//       | GATE offers ; B               action prefix
//       | [ expr ] -> B                 guard
//       | hide G1, G2 in B              hiding
//       | rename G1 -> H1, G2 -> H2 in B
//       | Name | Name (e1, e2)          process instantiation
//       | stop | exit | ( B )
//
//   offers ::= ( '!' expr | '?' var ':' int '..' int )*
//
// Value expressions: integers, parameters, + - * / %, comparisons,
// && || !, unary minus, parentheses.
//
// Line comments start with "--" (LOTOS style) or "//".
#pragma once

#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/diag.hpp"
#include "proc/process.hpp"

namespace multival::proc {

/// Parse failure carrying a structured diagnostic (code MV010) with the
/// 1-based line/column and the offending token, shared with the static
/// analyzer's reporting (src/analyze).  what() keeps the classic
/// "parse error at line L, column C: ..." rendering.
class ProcParseError : public std::runtime_error {
 public:
  explicit ProcParseError(core::Diagnostic d)
      : std::runtime_error("parse error at line " + std::to_string(d.line) +
                           ", column " + std::to_string(d.column) + ": " +
                           d.message),
        diagnostic_(std::move(d)) {}

  /// Back-compat: a bare message becomes a position-less MV010.
  explicit ProcParseError(const std::string& message)
      : std::runtime_error("parse error: " + message),
        diagnostic_{"MV010", core::Severity::kError, message, {}, 0, 0, {}} {}

  [[nodiscard]] const core::Diagnostic& diagnostic() const {
    return diagnostic_;
  }

 private:
  core::Diagnostic diagnostic_;
};

/// Parses a whole program (a sequence of process definitions).
[[nodiscard]] Program parse_program(std::string_view text);

/// Parses a single behaviour expression (no definitions).
[[nodiscard]] TermPtr parse_behaviour(std::string_view text);

/// Parses a value expression.
[[nodiscard]] ExprPtr parse_value_expr(std::string_view text);

}  // namespace multival::proc
