// Behaviour terms of the LOTOS-like process calculus and the Program
// container holding named, parameterised process definitions.
//
// Supported operators (LOTOS syntax in comments):
//
//   stop                                  stop
//   exit                                  exit
//   prefix(G, {offers}, P)                G !e ?x:lo..hi ; P
//   guard(c, P)                           [c] -> P
//   choice({P1, P2, ...})                 P1 [] P2 [] ...
//   par(P, {G...}, Q)                     P |[G...]| Q
//   interleaving(P, Q)                    P ||| Q
//   hide({G...}, P)                       hide G... in P
//   rename({{G,H}}, P)                    P [H/G]
//   seq(P, Q)                             P >> Q
//   call("Name", {args})                  Name [gates are global] (args)
//
// Value offers: emit(e) produces "!v"; accept("x", lo, hi) enumerates the
// range and binds x (visible in later offers of the same action and in the
// continuation).  Synchronisation matches full labels, which implements
// LOTOS value negotiation (!v against ?x binds x:=v; ?x against ?y explores
// the intersection of the ranges).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "proc/expr.hpp"

namespace multival::proc {

class Term;
using TermPtr = std::shared_ptr<const Term>;

/// A value offer of an action prefix.
struct Offer {
  enum class Kind { kEmit, kAccept };
  Kind kind = Kind::kEmit;
  ExprPtr expr;      // kEmit
  std::string var;   // kAccept
  Value lo = 0;      // kAccept range (inclusive)
  Value hi = 0;
};

[[nodiscard]] Offer emit(ExprPtr e);
[[nodiscard]] Offer accept(std::string_view var, Value lo, Value hi);

class Term {
 public:
  enum class Kind {
    kStop,
    kExit,
    kPrefix,
    kGuard,
    kChoice,
    kPar,
    kHide,
    kRename,
    kSeq,
    kCall,
  };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& gate() const { return gate_; }
  [[nodiscard]] const std::vector<Offer>& offers() const { return offers_; }
  [[nodiscard]] const ExprPtr& condition() const { return cond_; }
  [[nodiscard]] const std::vector<TermPtr>& children() const {
    return children_;
  }
  [[nodiscard]] const std::vector<std::string>& gates() const {
    return gates_;
  }
  [[nodiscard]] const std::map<std::string, std::string>& gate_map() const {
    return gate_map_;
  }
  [[nodiscard]] const std::string& callee() const { return gate_; }
  [[nodiscard]] const std::vector<ExprPtr>& args() const { return args_; }

  /// Sorted free value variables (cached at construction).
  [[nodiscard]] const std::vector<std::string>& free_vars() const {
    return free_vars_;
  }

  /// Renders the term in the concrete syntax accepted by proc/parser.hpp
  /// (fully parenthesised).
  [[nodiscard]] std::string to_string() const;

  static TermPtr make(Kind k, std::string gate, std::vector<Offer> offers,
                      ExprPtr cond, std::vector<TermPtr> children,
                      std::vector<std::string> gates,
                      std::map<std::string, std::string> gate_map,
                      std::vector<ExprPtr> args);

 private:
  Kind kind_ = Kind::kStop;
  std::string gate_;                           // kPrefix gate / kCall callee
  std::vector<Offer> offers_;                  // kPrefix
  ExprPtr cond_;                               // kGuard
  std::vector<TermPtr> children_;              // operands
  std::vector<std::string> gates_;             // kPar sync set / kHide set
  std::map<std::string, std::string> gate_map_;  // kRename old -> new
  std::vector<ExprPtr> args_;                  // kCall
  std::vector<std::string> free_vars_;
};

// ---- term builders -----------------------------------------------------------

[[nodiscard]] TermPtr stop();
[[nodiscard]] TermPtr exit_();
[[nodiscard]] TermPtr prefix(std::string_view gate, std::vector<Offer> offers,
                             TermPtr cont);
[[nodiscard]] TermPtr prefix(std::string_view gate, TermPtr cont);
[[nodiscard]] TermPtr guard(ExprPtr cond, TermPtr body);
[[nodiscard]] TermPtr choice(std::vector<TermPtr> branches);
[[nodiscard]] TermPtr par(TermPtr l, std::vector<std::string> sync_gates,
                          TermPtr r);
[[nodiscard]] TermPtr interleaving(TermPtr l, TermPtr r);
[[nodiscard]] TermPtr hide(std::vector<std::string> gates, TermPtr body);
[[nodiscard]] TermPtr rename(std::map<std::string, std::string> gate_map,
                             TermPtr body);
[[nodiscard]] TermPtr seq(TermPtr first, TermPtr then);
[[nodiscard]] TermPtr call(std::string_view name,
                           std::vector<ExprPtr> args = {});

// ---- program -------------------------------------------------------------------

/// A set of named, parameterised process definitions (mutually recursive).
class Program {
 public:
  /// Renders the whole program in parseable concrete syntax.
  [[nodiscard]] std::string to_string() const;

  /// Defines process @p name with value parameters @p params.  Redefinition
  /// throws.
  void define(std::string_view name, std::vector<std::string> params,
              TermPtr body);

  struct Definition {
    std::vector<std::string> params;
    TermPtr body;
  };

  [[nodiscard]] const Definition& definition(std::string_view name) const;
  [[nodiscard]] bool has_definition(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return defs_.size(); }

  /// All definitions in name order.
  [[nodiscard]] const std::map<std::string, Definition, std::less<>>&
  definitions() const {
    return defs_;
  }

 private:
  std::map<std::string, Definition, std::less<>> defs_;
};

}  // namespace multival::proc
