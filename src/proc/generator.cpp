#include "proc/generator.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

namespace multival::proc {

namespace {

using lts::Lts;
using lts::StateId;

using CfgId = std::uint32_t;
constexpr CfgId kNoCfg = static_cast<CfgId>(-1);

/// A runtime configuration node.  Hash-consed: structurally equal
/// configurations share one id, which makes state identification O(1).
struct Config {
  enum class Kind { kLeaf, kPar, kSeq, kHide, kRename };

  Kind kind = Kind::kLeaf;
  const Term* term = nullptr;  // leaf term, or the par/seq/hide/rename node
  CfgId left = kNoCfg;         // par left / seq current / hide-rename inner
  CfgId right = kNoCfg;        // par right
  Env env;                     // leaf environment / seq continuation env

  friend bool operator==(const Config&, const Config&) = default;
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(c.kind) * 0x9e3779b97f4a7c15ull;
    h ^= reinterpret_cast<std::uintptr_t>(c.term);
    h *= 1099511628211ull;
    h ^= c.left;
    h *= 1099511628211ull;
    h ^= c.right;
    h *= 1099511628211ull;
    h ^= c.env.hash();
    return static_cast<std::size_t>(h);
  }
};

/// A concrete action produced by the SOS rules.
struct GAction {
  enum class Type { kVisible, kTau, kExit };
  Type type = Type::kTau;
  std::string gate;            // kVisible only
  std::vector<Value> values;   // kVisible only

  [[nodiscard]] bool can_sync_on(const std::vector<std::string>& gates) const {
    if (type == Type::kExit) {
      return true;
    }
    if (type != Type::kVisible) {
      return false;
    }
    for (const std::string& g : gates) {
      if (g == gate) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool same_label(const GAction& o) const {
    return type == o.type && gate == o.gate && values == o.values;
  }

  [[nodiscard]] std::string label() const {
    switch (type) {
      case Type::kTau:
        return "i";
      case Type::kExit:
        return "exit";
      case Type::kVisible: {
        std::string s = gate;
        for (const Value v : values) {
          s += " !";
          s += std::to_string(v);
        }
        return s;
      }
    }
    return "?";
  }
};

using Successor = std::pair<GAction, CfgId>;

// ---- canonical state encoding helpers ---------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view bytes, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= bytes.size() || shift > 63) {
      throw std::runtime_error("TermExplorer: malformed state (varint)");
    }
    const auto b = static_cast<std::uint8_t>(bytes[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64(std::string_view bytes, std::size_t& pos) {
  if (pos + 8 > bytes.size()) {
    throw std::runtime_error("TermExplorer: malformed state (pointer)");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos++]))
         << (8 * i);
  }
  return v;
}

class Generator {
 public:
  Generator(const Program& program, const GenerateOptions& options)
      : program_(program), options_(options), stop_term_(stop()) {}

  Lts run(const TermPtr& root) {
    root_keepalive_ = root;
    Lts out;
    const CfgId init = lift(root.get(), Env{}, 0);
    const StateId s0 = state_of(init, out);
    out.set_initial_state(s0);
    while (!worklist_.empty()) {
      const CfgId cfg = worklist_.front();
      worklist_.pop_front();
      const StateId src = cfg_to_state_.at(cfg);
      for (const Successor& suc : transitions(cfg, 0)) {
        const StateId dst = state_of(suc.second, out);
        out.add_transition(src, std::string_view(suc.first.label()), dst);
      }
    }
    return out;
  }

  /// Breadth-first search that stops at the first deadlocked state.
  DeadlockSearchResult run_find_deadlock(const TermPtr& root) {
    root_keepalive_ = root;
    Lts out;  // states only; transitions are not materialised
    DeadlockSearchResult result;
    struct Parent {
      StateId state = lts::kNoState;
      std::string label;
    };
    std::vector<Parent> parents;

    const CfgId init = lift(root.get(), Env{}, 0);
    (void)state_of(init, out);
    out.set_initial_state(0);
    parents.emplace_back();

    while (!worklist_.empty()) {
      const CfgId cfg = worklist_.front();
      worklist_.pop_front();
      const StateId src = cfg_to_state_.at(cfg);
      const auto succ = transitions(cfg, 0);
      ++result.states_explored;
      if (succ.empty()) {
        result.found = true;
        // Unwind the parent chain.
        for (StateId s = src; parents[s].state != lts::kNoState;
             s = parents[s].state) {
          result.trace.push_back(parents[s].label);
        }
        std::reverse(result.trace.begin(), result.trace.end());
        return result;
      }
      for (const Successor& suc : succ) {
        const std::size_t before = cfg_to_state_.size();
        const StateId dst = state_of(suc.second, out);
        if (cfg_to_state_.size() > before) {
          parents.push_back(Parent{src, suc.first.label()});
          (void)dst;
        }
      }
    }
    return result;
  }

  // ---- TermExplorer support ----------------------------------------------

  CfgId lift_root(const TermPtr& root) {
    root_keepalive_ = root;
    return lift(root.get(), Env{}, 0);
  }

  std::vector<Successor> successors_of(CfgId id) { return transitions(id, 0); }

  /// Canonical byte encoding of a configuration.  Leaf/operator terms are
  /// identified by their address in the shared term tree (stable across
  /// Generators over the same Program/root); the ubiquitous "stop" leaf is
  /// encoded structurally so that every Generator's private stop term
  /// canonicalises to the same bytes.
  std::string encode(CfgId id) const {
    std::string out;
    encode_cfg(id, out);
    return out;
  }

  CfgId decode(std::string_view bytes) {
    std::size_t pos = 0;
    const CfgId id = decode_cfg(bytes, pos);
    if (pos != bytes.size()) {
      throw std::runtime_error("TermExplorer: malformed state (trailing)");
    }
    return id;
  }

 private:
  enum : char {
    kTagLeaf = 0,
    kTagPar = 1,
    kTagSeq = 2,
    kTagHide = 3,
    kTagRename = 4,
    kTagStop = 5,
  };

  void encode_env(const Env& env, std::string& out) const {
    put_varint(out, env.size());
    for (const auto& [name, value] : env.entries()) {
      put_varint(out, name.size());
      out += name;
      put_varint(out, static_cast<std::uint32_t>(value));
    }
  }

  Env decode_env(std::string_view bytes, std::size_t& pos) const {
    Env env;
    const std::uint64_t n = get_varint(bytes, pos);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t len = get_varint(bytes, pos);
      if (pos + len > bytes.size()) {
        throw std::runtime_error("TermExplorer: malformed state (env)");
      }
      const std::string name(bytes.substr(pos, len));
      pos += len;
      env.bind(name, static_cast<Value>(
                         static_cast<std::uint32_t>(get_varint(bytes, pos))));
    }
    return env;
  }

  void encode_cfg(CfgId id, std::string& out) const {
    const Config& c = arena_[id];
    switch (c.kind) {
      case Config::Kind::kLeaf:
        if (c.term->kind() == Term::Kind::kStop) {
          out.push_back(kTagStop);
          return;
        }
        out.push_back(kTagLeaf);
        put_u64(out, reinterpret_cast<std::uintptr_t>(c.term));
        encode_env(c.env, out);
        return;
      case Config::Kind::kPar:
        out.push_back(kTagPar);
        put_u64(out, reinterpret_cast<std::uintptr_t>(c.term));
        encode_cfg(c.left, out);
        encode_cfg(c.right, out);
        return;
      case Config::Kind::kSeq:
        out.push_back(kTagSeq);
        put_u64(out, reinterpret_cast<std::uintptr_t>(c.term));
        encode_cfg(c.left, out);
        encode_env(c.env, out);
        return;
      case Config::Kind::kHide:
      case Config::Kind::kRename:
        out.push_back(c.kind == Config::Kind::kHide ? kTagHide : kTagRename);
        put_u64(out, reinterpret_cast<std::uintptr_t>(c.term));
        encode_cfg(c.left, out);
        return;
    }
    throw std::logic_error("encode_cfg: bad config kind");
  }

  CfgId decode_cfg(std::string_view bytes, std::size_t& pos) {
    if (pos >= bytes.size()) {
      throw std::runtime_error("TermExplorer: malformed state (empty)");
    }
    const char tag = bytes[pos++];
    Config c;
    switch (tag) {
      case kTagStop:
        return stopped();
      case kTagLeaf:
        c.kind = Config::Kind::kLeaf;
        c.term = reinterpret_cast<const Term*>(get_u64(bytes, pos));
        c.env = decode_env(bytes, pos);
        break;
      case kTagPar:
        c.kind = Config::Kind::kPar;
        c.term = reinterpret_cast<const Term*>(get_u64(bytes, pos));
        c.left = decode_cfg(bytes, pos);
        c.right = decode_cfg(bytes, pos);
        break;
      case kTagSeq:
        c.kind = Config::Kind::kSeq;
        c.term = reinterpret_cast<const Term*>(get_u64(bytes, pos));
        c.left = decode_cfg(bytes, pos);
        c.env = decode_env(bytes, pos);
        break;
      case kTagHide:
      case kTagRename:
        c.kind = tag == kTagHide ? Config::Kind::kHide : Config::Kind::kRename;
        c.term = reinterpret_cast<const Term*>(get_u64(bytes, pos));
        c.left = decode_cfg(bytes, pos);
        break;
      default:
        throw std::runtime_error("TermExplorer: malformed state (tag)");
    }
    return intern(std::move(c));
  }

  // ---- configuration interning -------------------------------------------

  CfgId intern(Config c) {
    const auto it = ids_.find(c);
    if (it != ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<CfgId>(arena_.size());
    arena_.push_back(c);
    ids_.emplace(std::move(c), id);
    return id;
  }

  const Config& cfg(CfgId id) const { return arena_[id]; }

  CfgId stopped() {
    Config c;
    c.kind = Config::Kind::kLeaf;
    c.term = stop_term_.get();
    return intern(std::move(c));
  }

  // ---- lifting: term + env -> configuration --------------------------------

  /// Normalises structural operators into configuration nodes, resolves
  /// guards, and unfolds process calls.  @p depth guards against unguarded
  /// recursion.
  CfgId lift(const Term* t, const Env& env, std::size_t depth) {
    bump(depth);
    switch (t->kind()) {
      case Term::Kind::kPar: {
        Config c;
        c.kind = Config::Kind::kPar;
        c.term = t;
        c.left = lift(t->children()[0].get(), env, depth + 1);
        c.right = lift(t->children()[1].get(), env, depth + 1);
        return intern(std::move(c));
      }
      case Term::Kind::kHide:
      case Term::Kind::kRename: {
        Config c;
        c.kind = t->kind() == Term::Kind::kHide ? Config::Kind::kHide
                                                : Config::Kind::kRename;
        c.term = t;
        c.left = lift(t->children()[0].get(), env, depth + 1);
        return intern(std::move(c));
      }
      case Term::Kind::kSeq: {
        Config c;
        c.kind = Config::Kind::kSeq;
        c.term = t;
        c.left = lift(t->children()[0].get(), env, depth + 1);
        c.env = env.restricted_to(t->children()[1]->free_vars());
        return intern(std::move(c));
      }
      case Term::Kind::kGuard: {
        if (t->condition()->eval(env) != 0) {
          return lift(t->children()[0].get(), env, depth + 1);
        }
        return stopped();
      }
      case Term::Kind::kCall: {
        const Program::Definition& def = program_.definition(t->callee());
        if (def.params.size() != t->args().size()) {
          throw std::invalid_argument(
              "call of " + t->callee() + ": expected " +
              std::to_string(def.params.size()) + " argument(s), got " +
              std::to_string(t->args().size()));
        }
        Env inner;
        for (std::size_t i = 0; i < def.params.size(); ++i) {
          inner.bind(def.params[i], t->args()[i]->eval(env));
        }
        return lift(def.body.get(), inner, depth + 1);
      }
      case Term::Kind::kStop:
      case Term::Kind::kExit:
      case Term::Kind::kPrefix:
      case Term::Kind::kChoice: {
        Config c;
        c.kind = Config::Kind::kLeaf;
        c.term = t;
        c.env = env.restricted_to(t->free_vars());
        return intern(std::move(c));
      }
    }
    throw std::logic_error("lift: bad term kind");
  }

  // ---- SOS transition rules -------------------------------------------------

  std::vector<Successor> transitions(CfgId id, std::size_t depth) {
    bump(depth);
    const Config c = cfg(id);  // copy: arena_ may grow during recursion
    switch (c.kind) {
      case Config::Kind::kLeaf:
        return leaf_transitions(c, depth);
      case Config::Kind::kPar:
        return par_transitions(c, depth);
      case Config::Kind::kSeq:
        return seq_transitions(c, depth);
      case Config::Kind::kHide:
        return hide_transitions(c, depth);
      case Config::Kind::kRename:
        return rename_transitions(c, depth);
    }
    throw std::logic_error("transitions: bad config kind");
  }

  std::vector<Successor> leaf_transitions(const Config& c, std::size_t depth) {
    const Term& t = *c.term;
    switch (t.kind()) {
      case Term::Kind::kStop:
        return {};
      case Term::Kind::kExit: {
        GAction a;
        a.type = GAction::Type::kExit;
        return {{std::move(a), stopped()}};
      }
      case Term::Kind::kPrefix: {
        std::vector<Successor> out;
        std::vector<Value> values;
        enumerate_offers(t, 0, c.env, values, out, depth);
        return out;
      }
      case Term::Kind::kChoice: {
        std::vector<Successor> out;
        for (const TermPtr& branch : t.children()) {
          const CfgId b = lift(branch.get(), c.env, depth + 1);
          auto moves = transitions(b, depth + 1);
          out.insert(out.end(), std::make_move_iterator(moves.begin()),
                     std::make_move_iterator(moves.end()));
        }
        return out;
      }
      default:
        throw std::logic_error("leaf_transitions: non-leaf term");
    }
  }

  /// Left-to-right enumeration of value offers: emits evaluate under the
  /// environment extended by earlier accepts; accepts enumerate their range.
  void enumerate_offers(const Term& t, std::size_t index, const Env& env,
                        std::vector<Value>& values,
                        std::vector<Successor>& out, std::size_t depth) {
    if (index == t.offers().size()) {
      GAction a;
      a.type = GAction::Type::kVisible;
      a.gate = t.gate();
      a.values = values;
      out.emplace_back(std::move(a),
                       lift(t.children()[0].get(), env, depth + 1));
      return;
    }
    const Offer& o = t.offers()[index];
    if (o.kind == Offer::Kind::kEmit) {
      values.push_back(o.expr->eval(env));
      enumerate_offers(t, index + 1, env, values, out, depth);
      values.pop_back();
    } else {
      for (Value v = o.lo; v <= o.hi; ++v) {
        Env extended = env;
        extended.bind(o.var, v);
        values.push_back(v);
        enumerate_offers(t, index + 1, extended, values, out, depth);
        values.pop_back();
      }
    }
  }

  std::vector<Successor> par_transitions(const Config& c, std::size_t depth) {
    const std::vector<std::string>& sync = c.term->gates();
    const auto left_moves = transitions(c.left, depth + 1);
    const auto right_moves = transitions(c.right, depth + 1);
    std::vector<Successor> out;

    const auto make_par = [&](CfgId l, CfgId r) {
      Config p;
      p.kind = Config::Kind::kPar;
      p.term = c.term;
      p.left = l;
      p.right = r;
      return intern(std::move(p));
    };

    for (const Successor& lm : left_moves) {
      if (!lm.first.can_sync_on(sync)) {
        out.emplace_back(lm.first, make_par(lm.second, c.right));
      }
    }
    for (const Successor& rm : right_moves) {
      if (!rm.first.can_sync_on(sync)) {
        out.emplace_back(rm.first, make_par(c.left, rm.second));
      }
    }
    for (const Successor& lm : left_moves) {
      if (!lm.first.can_sync_on(sync)) {
        continue;
      }
      for (const Successor& rm : right_moves) {
        if (!rm.first.can_sync_on(sync) || !lm.first.same_label(rm.first)) {
          continue;
        }
        out.emplace_back(lm.first, make_par(lm.second, rm.second));
      }
    }
    return out;
  }

  std::vector<Successor> seq_transitions(const Config& c, std::size_t depth) {
    std::vector<Successor> out;
    for (const Successor& m : transitions(c.left, depth + 1)) {
      if (m.first.type == GAction::Type::kExit) {
        GAction tau;
        tau.type = GAction::Type::kTau;
        out.emplace_back(std::move(tau),
                         lift(c.term->children()[1].get(), c.env, depth + 1));
      } else {
        Config s;
        s.kind = Config::Kind::kSeq;
        s.term = c.term;
        s.left = m.second;
        s.env = c.env;
        out.emplace_back(m.first, intern(std::move(s)));
      }
    }
    return out;
  }

  std::vector<Successor> hide_transitions(const Config& c, std::size_t depth) {
    std::vector<Successor> out;
    for (Successor m : transitions(c.left, depth + 1)) {
      if (m.first.type == GAction::Type::kVisible &&
          m.first.can_sync_on(c.term->gates())) {
        m.first = GAction{};  // tau
      }
      Config h;
      h.kind = Config::Kind::kHide;
      h.term = c.term;
      h.left = m.second;
      out.emplace_back(std::move(m.first), intern(std::move(h)));
    }
    return out;
  }

  std::vector<Successor> rename_transitions(const Config& c,
                                            std::size_t depth) {
    std::vector<Successor> out;
    for (Successor m : transitions(c.left, depth + 1)) {
      if (m.first.type == GAction::Type::kVisible) {
        const auto it = c.term->gate_map().find(m.first.gate);
        if (it != c.term->gate_map().end()) {
          m.first.gate = it->second;
        }
      }
      Config r;
      r.kind = Config::Kind::kRename;
      r.term = c.term;
      r.left = m.second;
      out.emplace_back(std::move(m.first), intern(std::move(r)));
    }
    return out;
  }

  // ---- state management --------------------------------------------------

  StateId state_of(CfgId cfg, Lts& out) {
    const auto it = cfg_to_state_.find(cfg);
    if (it != cfg_to_state_.end()) {
      return it->second;
    }
    if (out.num_states() >= options_.max_states) {
      throw StateSpaceLimit("generate: state space exceeds " +
                            std::to_string(options_.max_states) + " states");
    }
    const StateId s = out.add_state();
    cfg_to_state_.emplace(cfg, s);
    worklist_.push_back(cfg);
    return s;
  }

  void bump(std::size_t depth) const {
    if (depth > options_.max_unfold_depth) {
      throw UnguardedRecursion(
          "generate: unfolding depth exceeded (unguarded recursion?)");
    }
  }

  const Program& program_;
  GenerateOptions options_;
  TermPtr root_keepalive_;
  TermPtr stop_term_;  // keeps the private stop leaf alive for interning
  std::deque<Config> arena_;
  std::unordered_map<Config, CfgId, ConfigHash> ids_;
  std::unordered_map<CfgId, StateId> cfg_to_state_;
  std::deque<CfgId> worklist_;
};

}  // namespace

Lts generate(const Program& program, std::string_view entry,
             std::vector<Value> args, const GenerateOptions& options) {
  std::vector<ExprPtr> arg_exprs;
  arg_exprs.reserve(args.size());
  for (const Value v : args) {
    arg_exprs.push_back(lit(v));
  }
  return generate_term(program, call(entry, std::move(arg_exprs)), options);
}

Lts generate_term(const Program& program, const TermPtr& t,
                  const GenerateOptions& options) {
  if (t == nullptr) {
    throw std::invalid_argument("generate_term: null term");
  }
  Generator gen(program, options);
  return gen.run(t);
}

DeadlockSearchResult find_deadlock(const Program& program,
                                   std::string_view entry,
                                   std::vector<Value> args,
                                   const GenerateOptions& options) {
  std::vector<ExprPtr> arg_exprs;
  arg_exprs.reserve(args.size());
  for (const Value v : args) {
    arg_exprs.push_back(lit(v));
  }
  Generator gen(program, options);
  return gen.run_find_deadlock(call(entry, std::move(arg_exprs)));
}

// ---- TermExplorer -----------------------------------------------------------

struct TermExplorer::Impl {
  Impl(const Program& program, TermPtr root, const GenerateOptions& options)
      : gen(program, options), root(std::move(root)) {}

  Generator gen;
  TermPtr root;
};

TermExplorer::TermExplorer(const Program& program, TermPtr root,
                           const GenerateOptions& options) {
  if (root == nullptr) {
    throw std::invalid_argument("TermExplorer: null root");
  }
  impl_ = std::make_unique<Impl>(program, std::move(root), options);
}

TermExplorer::TermExplorer(TermExplorer&&) noexcept = default;
TermExplorer& TermExplorer::operator=(TermExplorer&&) noexcept = default;
TermExplorer::~TermExplorer() = default;

std::string TermExplorer::initial() {
  return impl_->gen.encode(impl_->gen.lift_root(impl_->root));
}

std::vector<TermExplorer::Move> TermExplorer::successors(
    std::string_view state) {
  const CfgId id = impl_->gen.decode(state);
  std::vector<Move> out;
  for (const Successor& suc : impl_->gen.successors_of(id)) {
    out.push_back(Move{suc.first.label(), impl_->gen.encode(suc.second)});
  }
  return out;
}

}  // namespace multival::proc
