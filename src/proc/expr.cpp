#include "proc/expr.hpp"

#include <algorithm>
#include <stdexcept>

namespace multival::proc {

namespace {

std::vector<std::string> merge_vars(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
    case BinaryOp::kMin:
      return "min";
    case BinaryOp::kMax:
      return "max";
  }
  return "?";
}

}  // namespace

ExprPtr Expr::make_const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kConst;
  e->value_ = v;
  return e;
}

ExprPtr Expr::make_var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kVar;
  e->name_ = std::move(name);
  e->free_vars_ = {e->name_};
  return e;
}

ExprPtr Expr::make_unary(UnaryOp op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kUnary;
  e->uop_ = op;
  e->free_vars_ = a->free_vars();
  e->lhs_ = std::move(a);
  return e;
}

ExprPtr Expr::make_binary(BinaryOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kBinary;
  e->bop_ = op;
  e->free_vars_ = merge_vars(a->free_vars(), b->free_vars());
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

Value Expr::eval(const Env& env) const {
  switch (kind_) {
    case Kind::kConst:
      return value_;
    case Kind::kVar: {
      const auto v = env.lookup(name_);
      if (!v) {
        throw std::out_of_range("Expr::eval: unbound variable " + name_);
      }
      return *v;
    }
    case Kind::kUnary: {
      const Value a = lhs_->eval(env);
      switch (uop_) {
        case UnaryOp::kNeg:
          return -a;
        case UnaryOp::kNot:
          return a == 0 ? 1 : 0;
      }
      break;
    }
    case Kind::kBinary: {
      const Value a = lhs_->eval(env);
      // Short-circuit for the boolean connectives.
      if (bop_ == BinaryOp::kAnd) {
        return (a != 0 && rhs_->eval(env) != 0) ? 1 : 0;
      }
      if (bop_ == BinaryOp::kOr) {
        return (a != 0 || rhs_->eval(env) != 0) ? 1 : 0;
      }
      const Value b = rhs_->eval(env);
      switch (bop_) {
        case BinaryOp::kAdd:
          return a + b;
        case BinaryOp::kSub:
          return a - b;
        case BinaryOp::kMul:
          return a * b;
        case BinaryOp::kDiv:
          if (b == 0) {
            throw std::domain_error("Expr::eval: division by zero");
          }
          return a / b;
        case BinaryOp::kMod:
          if (b == 0) {
            throw std::domain_error("Expr::eval: modulo by zero");
          }
          return a % b;
        case BinaryOp::kEq:
          return a == b ? 1 : 0;
        case BinaryOp::kNe:
          return a != b ? 1 : 0;
        case BinaryOp::kLt:
          return a < b ? 1 : 0;
        case BinaryOp::kLe:
          return a <= b ? 1 : 0;
        case BinaryOp::kGt:
          return a > b ? 1 : 0;
        case BinaryOp::kGe:
          return a >= b ? 1 : 0;
        case BinaryOp::kMin:
          return std::min(a, b);
        case BinaryOp::kMax:
          return std::max(a, b);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          break;  // handled above
      }
      break;
    }
  }
  throw std::logic_error("Expr::eval: bad expression");
}

std::string Expr::to_string() const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(value_);
    case Kind::kVar:
      return name_;
    case Kind::kUnary:
      return (uop_ == UnaryOp::kNeg ? "-" : "!") + lhs_->to_string();
    case Kind::kBinary:
      if (bop_ == BinaryOp::kMin || bop_ == BinaryOp::kMax) {
        return std::string(op_name(bop_)) + "(" + lhs_->to_string() + ", " +
               rhs_->to_string() + ")";
      }
      return "(" + lhs_->to_string() + " " + op_name(bop_) + " " +
             rhs_->to_string() + ")";
  }
  return "?";
}

// ------------------------------------------------------------------- Env --

void Env::bind(std::string_view name, Value v) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    it->second = v;
  } else {
    entries_.emplace(it, std::string(name), v);
  }
}

std::optional<Value> Env::lookup(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    return it->second;
  }
  return std::nullopt;
}

Env Env::restricted_to(std::span<const std::string> vars) const {
  Env out;
  for (const std::string& v : vars) {
    const auto val = lookup(v);
    if (val) {
      out.bind(v, *val);
    }
  }
  return out;
}

std::size_t Env::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [name, value] : entries_) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(value)) + 1;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

// --------------------------------------------------------------- builders --

ExprPtr lit(Value v) { return Expr::make_const(v); }
ExprPtr evar(std::string_view name) {
  return Expr::make_var(std::string(name));
}

#define MULTIVAL_BINOP(sym, op)                             \
  ExprPtr operator sym(ExprPtr a, ExprPtr b) {              \
    return Expr::make_binary(op, std::move(a), std::move(b)); \
  }
MULTIVAL_BINOP(+, BinaryOp::kAdd)
MULTIVAL_BINOP(-, BinaryOp::kSub)
MULTIVAL_BINOP(*, BinaryOp::kMul)
MULTIVAL_BINOP(/, BinaryOp::kDiv)
MULTIVAL_BINOP(%, BinaryOp::kMod)
MULTIVAL_BINOP(==, BinaryOp::kEq)
MULTIVAL_BINOP(!=, BinaryOp::kNe)
MULTIVAL_BINOP(<, BinaryOp::kLt)
MULTIVAL_BINOP(<=, BinaryOp::kLe)
MULTIVAL_BINOP(>, BinaryOp::kGt)
MULTIVAL_BINOP(>=, BinaryOp::kGe)
MULTIVAL_BINOP(&&, BinaryOp::kAnd)
MULTIVAL_BINOP(||, BinaryOp::kOr)
#undef MULTIVAL_BINOP

ExprPtr operator!(ExprPtr a) {
  return Expr::make_unary(UnaryOp::kNot, std::move(a));
}
ExprPtr operator-(ExprPtr a) {
  return Expr::make_unary(UnaryOp::kNeg, std::move(a));
}
ExprPtr emin(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinaryOp::kMin, std::move(a), std::move(b));
}
ExprPtr emax(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinaryOp::kMax, std::move(a), std::move(b));
}

}  // namespace multival::proc
