// Explicit-state LTS generation from a process Program (the role played by
// CAESAR in CADP).
//
// Runtime configurations are hash-consed immutable trees mirroring the
// static structure of the term (parallel / hiding / renaming / sequential
// contexts) with sequential leaves (term, environment).  The generator
// explores the configuration graph breadth-first and emits an Lts whose
// labels are "GATE !v1 !v2", "i" for internal actions, and "exit" for
// successful termination.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::proc {

struct GenerateOptions {
  /// Hard cap on the number of distinct states; exceeded -> throws
  /// StateSpaceLimit.
  std::size_t max_states = 1u << 22;
  /// Bound on sequential unfolding (guards/choices/calls) when computing the
  /// transitions of a single state; exceeded -> throws UnguardedRecursion.
  std::size_t max_unfold_depth = 2048;
};

/// Thrown when the state space exceeds GenerateOptions::max_states.
struct StateSpaceLimit : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown on (probable) unguarded recursion, e.g. P := P [] a;Q.
struct UnguardedRecursion : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Generates the LTS of process @p entry called with @p args.
[[nodiscard]] lts::Lts generate(const Program& program,
                                std::string_view entry,
                                std::vector<Value> args = {},
                                const GenerateOptions& options = {});

/// Generates the LTS of an anonymous behaviour term (closed).
[[nodiscard]] lts::Lts generate_term(const Program& program, const TermPtr& t,
                                     const GenerateOptions& options = {});

/// On-the-fly deadlock search: explores breadth-first and stops at the
/// first deadlocked state, without completing the state space.  The trace
/// is shortest (by transition count).
struct DeadlockSearchResult {
  bool found = false;
  std::vector<std::string> trace;  ///< labels from the initial state
  std::size_t states_explored = 0;
};

[[nodiscard]] DeadlockSearchResult find_deadlock(
    const Program& program, std::string_view entry,
    std::vector<Value> args = {}, const GenerateOptions& options = {});

/// On-the-fly successor enumeration over hash-consed runtime configurations
/// — the role OPEN/CAESAR plays for CADP.  States are canonical byte
/// strings; two TermExplorer instances sharing the *same* Program object
/// and root term produce identical encodings, which is what lets the
/// parallel exploration engine (src/explore) hand each worker thread its
/// own TermExplorer while all workers agree on state identity.
///
/// Encodings embed interior pointers into the shared term tree: they are
/// process-local tokens, not a wire format.  `successors` only accepts
/// strings previously produced by `initial`/`successors` of an explorer
/// over the same program and root.
class TermExplorer {
 public:
  struct Move {
    std::string label;  ///< "i", "exit", or "GATE !v1 !v2"
    std::string dst;    ///< canonical encoding of the successor state
  };

  /// @p program and @p root must outlive the explorer.
  TermExplorer(const Program& program, TermPtr root,
               const GenerateOptions& options = {});
  TermExplorer(TermExplorer&&) noexcept;
  TermExplorer& operator=(TermExplorer&&) noexcept;
  ~TermExplorer();

  /// Canonical encoding of the initial configuration.
  [[nodiscard]] std::string initial();

  /// Transitions of the configuration encoded by @p state, in the
  /// deterministic order of the SOS rules.
  [[nodiscard]] std::vector<Move> successors(std::string_view state);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace multival::proc
