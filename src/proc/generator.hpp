// Explicit-state LTS generation from a process Program (the role played by
// CAESAR in CADP).
//
// Runtime configurations are hash-consed immutable trees mirroring the
// static structure of the term (parallel / hiding / renaming / sequential
// contexts) with sequential leaves (term, environment).  The generator
// explores the configuration graph breadth-first and emits an Lts whose
// labels are "GATE !v1 !v2", "i" for internal actions, and "exit" for
// successful termination.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::proc {

struct GenerateOptions {
  /// Hard cap on the number of distinct states; exceeded -> throws
  /// StateSpaceLimit.
  std::size_t max_states = 1u << 22;
  /// Bound on sequential unfolding (guards/choices/calls) when computing the
  /// transitions of a single state; exceeded -> throws UnguardedRecursion.
  std::size_t max_unfold_depth = 2048;
};

/// Thrown when the state space exceeds GenerateOptions::max_states.
struct StateSpaceLimit : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown on (probable) unguarded recursion, e.g. P := P [] a;Q.
struct UnguardedRecursion : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Generates the LTS of process @p entry called with @p args.
[[nodiscard]] lts::Lts generate(const Program& program,
                                std::string_view entry,
                                std::vector<Value> args = {},
                                const GenerateOptions& options = {});

/// Generates the LTS of an anonymous behaviour term (closed).
[[nodiscard]] lts::Lts generate_term(const Program& program, const TermPtr& t,
                                     const GenerateOptions& options = {});

/// On-the-fly deadlock search: explores breadth-first and stops at the
/// first deadlocked state, without completing the state space.  The trace
/// is shortest (by transition count).
struct DeadlockSearchResult {
  bool found = false;
  std::vector<std::string> trace;  ///< labels from the initial state
  std::size_t states_explored = 0;
};

[[nodiscard]] DeadlockSearchResult find_deadlock(
    const Program& program, std::string_view entry,
    std::vector<Value> args = {}, const GenerateOptions& options = {});

}  // namespace multival::proc
