// Discrete-event Monte-Carlo simulation of CTMCs, used to cross-validate
// the numerical solvers (bench exp_t9).  Deterministically seeded.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "markov/ctmc.hpp"

namespace multival::sim {

/// A point estimate with a symmetric 95% confidence half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% CI is mean +/- half_width
  std::size_t samples = 0;

  [[nodiscard]] bool contains(double value) const {
    return value >= mean - half_width && value <= mean + half_width;
  }
};

struct SimOptions {
  std::uint64_t seed = 20080310;  ///< DATE'08 ;-)
  /// Batch-means parameters for steady-state estimation.
  double horizon = 5000.0;
  std::size_t batches = 20;
  double warmup_fraction = 0.1;
  /// Replications for transient / absorption estimation.
  std::size_t replications = 2000;
  /// Safety bound on simulated jumps per trajectory.
  std::size_t max_jumps = 50'000'000;
};

/// Long-run time-average of @p reward (batch means).
[[nodiscard]] Estimate simulate_steady_reward(const markov::Ctmc& c,
                                              std::span<const double> reward,
                                              const SimOptions& opts = {});

/// Long-run rate of transitions whose label matches @p label_glob.
[[nodiscard]] Estimate simulate_throughput(const markov::Ctmc& c,
                                           std::string_view label_glob,
                                           const SimOptions& opts = {});

/// Mean time to absorption from the initial distribution (replications).
[[nodiscard]] Estimate simulate_absorption_time(const markov::Ctmc& c,
                                                const SimOptions& opts = {});

/// P[state in @p set at time @p t] (replications).
[[nodiscard]] Estimate simulate_transient_probability(
    const markov::Ctmc& c, const std::vector<bool>& set, double t,
    const SimOptions& opts = {});

}  // namespace multival::sim
