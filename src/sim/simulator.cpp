#include "sim/simulator.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "mc/formula.hpp"

namespace multival::sim {

namespace {

using markov::Ctmc;
using markov::MState;
using markov::RateTransition;

/// Per-state outgoing transitions, pre-indexed for sampling.
struct Walker {
  explicit Walker(const Ctmc& c) : out(c.num_states()) {
    for (std::size_t i = 0; i < c.transitions().size(); ++i) {
      out[c.transitions()[i].src].push_back(i);
    }
    for (MState s = 0; s < c.num_states(); ++s) {
      double e = 0.0;
      for (const std::size_t i : out[s]) {
        e += c.transitions()[i].rate;
      }
      exit.push_back(e);
    }
  }

  std::vector<std::vector<std::size_t>> out;
  std::vector<double> exit;
};

MState sample_initial(const Ctmc& c, std::mt19937_64& rng) {
  const std::vector<double> pi0 = c.initial_distribution();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double x = u(rng);
  for (MState s = 0; s < pi0.size(); ++s) {
    x -= pi0[s];
    if (x <= 0.0) {
      return s;
    }
  }
  return static_cast<MState>(pi0.size() - 1);
}

/// Picks the next transition index from @p s, or -1 if absorbing.
std::ptrdiff_t sample_jump(const Ctmc& c, const Walker& w, MState s,
                           std::mt19937_64& rng) {
  if (w.out[s].empty()) {
    return -1;
  }
  std::uniform_real_distribution<double> u(0.0, w.exit[s]);
  double x = u(rng);
  for (const std::size_t i : w.out[s]) {
    x -= c.transitions()[i].rate;
    if (x <= 0.0) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return static_cast<std::ptrdiff_t>(w.out[s].back());
}

double sample_sojourn(double exit_rate, std::mt19937_64& rng) {
  std::exponential_distribution<double> d(exit_rate);
  return d(rng);
}

Estimate from_batch_means(const std::vector<double>& batch) {
  const std::size_t b = batch.size();
  double mean = 0.0;
  for (const double x : batch) {
    mean += x;
  }
  mean /= static_cast<double>(b);
  double var = 0.0;
  for (const double x : batch) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(b - 1);
  Estimate e;
  e.mean = mean;
  e.half_width = 1.96 * std::sqrt(var / static_cast<double>(b));
  e.samples = b;
  return e;
}

/// Generic batch-means long-run estimator: @p contribution adds a batch's
/// accumulated quantity given (transition index or -1 for sojourn-only,
/// sojourn time, state).
template <typename SojournFn, typename JumpFn>
Estimate batch_means_run(const Ctmc& c, const SimOptions& opts,
                         SojournFn&& on_sojourn, JumpFn&& on_jump) {
  if (opts.batches < 2) {
    throw std::invalid_argument("simulate: need at least 2 batches");
  }
  const Walker w(c);
  std::mt19937_64 rng(opts.seed);
  MState s = sample_initial(c, rng);

  const double warmup = opts.horizon * opts.warmup_fraction;
  const double batch_len = (opts.horizon - warmup) /
                           static_cast<double>(opts.batches);
  // Warm-up.
  double t = 0.0;
  std::size_t jumps = 0;
  while (t < warmup && !w.out[s].empty()) {
    if (++jumps > opts.max_jumps) {
      throw std::runtime_error("simulate: jump budget exhausted in warmup");
    }
    t += sample_sojourn(w.exit[s], rng);
    const auto j = sample_jump(c, w, s, rng);
    if (j < 0) {
      break;
    }
    s = c.transitions()[static_cast<std::size_t>(j)].dst;
  }

  std::vector<double> batch(opts.batches, 0.0);
  for (std::size_t b = 0; b < opts.batches; ++b) {
    double bt = 0.0;
    while (bt < batch_len) {
      if (w.out[s].empty()) {
        // Absorbing: remaining time contributes sojourn in s.
        on_sojourn(batch[b], s, batch_len - bt);
        bt = batch_len;
        break;
      }
      if (++jumps > opts.max_jumps) {
        throw std::runtime_error("simulate: jump budget exhausted");
      }
      const double dt = sample_sojourn(w.exit[s], rng);
      const double credited = std::min(dt, batch_len - bt);
      on_sojourn(batch[b], s, credited);
      bt += dt;
      if (bt > batch_len) {
        // The jump happens in the next batch's time; approximate by
        // carrying the state over (standard batch-means practice).
      }
      const auto j = sample_jump(c, w, s, rng);
      if (j < 0) {
        break;
      }
      if (bt <= batch_len) {
        on_jump(batch[b], static_cast<std::size_t>(j));
      }
      s = c.transitions()[static_cast<std::size_t>(j)].dst;
    }
    batch[b] /= batch_len;
  }
  return from_batch_means(batch);
}

}  // namespace

Estimate simulate_steady_reward(const Ctmc& c, std::span<const double> reward,
                                const SimOptions& opts) {
  if (reward.size() != c.num_states()) {
    throw std::invalid_argument("simulate_steady_reward: size mismatch");
  }
  return batch_means_run(
      c, opts,
      [&](double& acc, MState s, double dt) { acc += reward[s] * dt; },
      [](double&, std::size_t) {});
}

Estimate simulate_throughput(const Ctmc& c, std::string_view label_glob,
                             const SimOptions& opts) {
  // Precompute which transitions match.
  std::vector<bool> match(c.transitions().size(), false);
  for (std::size_t i = 0; i < c.transitions().size(); ++i) {
    match[i] = mc::glob_match(label_glob, c.transitions()[i].label);
  }
  return batch_means_run(
      c, opts, [](double&, MState, double) {},
      [&](double& acc, std::size_t i) {
        if (match[i]) {
          acc += 1.0;
        }
      });
}

Estimate simulate_absorption_time(const Ctmc& c, const SimOptions& opts) {
  const Walker w(c);
  std::mt19937_64 rng(opts.seed);
  std::vector<double> samples;
  samples.reserve(opts.replications);
  for (std::size_t r = 0; r < opts.replications; ++r) {
    MState s = sample_initial(c, rng);
    double t = 0.0;
    std::size_t jumps = 0;
    while (!w.out[s].empty()) {
      if (++jumps > opts.max_jumps) {
        throw std::runtime_error(
            "simulate_absorption_time: trajectory did not absorb");
      }
      t += sample_sojourn(w.exit[s], rng);
      const auto j = sample_jump(c, w, s, rng);
      s = c.transitions()[static_cast<std::size_t>(j)].dst;
    }
    samples.push_back(t);
  }
  return from_batch_means(samples);
}

Estimate simulate_transient_probability(const Ctmc& c,
                                        const std::vector<bool>& set,
                                        double t, const SimOptions& opts) {
  if (set.size() != c.num_states()) {
    throw std::invalid_argument("simulate_transient_probability: size");
  }
  const Walker w(c);
  std::mt19937_64 rng(opts.seed);
  std::size_t hits = 0;
  for (std::size_t r = 0; r < opts.replications; ++r) {
    MState s = sample_initial(c, rng);
    double now = 0.0;
    std::size_t jumps = 0;
    while (!w.out[s].empty()) {
      if (++jumps > opts.max_jumps) {
        throw std::runtime_error("simulate_transient_probability: budget");
      }
      const double dt = sample_sojourn(w.exit[s], rng);
      if (now + dt > t) {
        break;
      }
      now += dt;
      const auto j = sample_jump(c, w, s, rng);
      s = c.transitions()[static_cast<std::size_t>(j)].dst;
    }
    if (set[s]) {
      ++hits;
    }
  }
  Estimate e;
  const double n = static_cast<double>(opts.replications);
  e.mean = static_cast<double>(hits) / n;
  e.half_width = 1.96 * std::sqrt(e.mean * (1.0 - e.mean) / n);
  e.samples = opts.replications;
  return e;
}

}  // namespace multival::sim
