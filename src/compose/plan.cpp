#include "compose/plan.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "analyze/analyze.hpp"
#include "analyze/bounds.hpp"
#include "bisim/reduction.hpp"
#include "explore/engine.hpp"
#include "proc/generator.hpp"

namespace multival::compose {

namespace {

using analyze::GateSet;
using proc::Term;
using proc::TermPtr;

// ---- structural plan keys ---------------------------------------------------

/// 128-bit FNV-1a over a string, rendered as 32 hex chars.  Plan keys are
/// derived from *source syntax* (term renderings + reachable definitions),
/// never from generated LTSs, so they are stable across re-planning.
std::string fnv128_hex(const std::string& s) {
  std::uint64_t h1 = 1469598103934665603ull;
  std::uint64_t h2 = 14695981039346656037ull;
  for (const char c : s) {
    h1 = (h1 ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    h2 = (h2 ^ (static_cast<unsigned char>(c) + 0x9e)) * 1099511628211ull;
  }
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

/// Names of definitions transitively reachable from @p t.
void reachable_defs(const proc::Program& program, const Term* t,
                    std::set<std::string>& out) {
  if (t->kind() == Term::Kind::kCall &&
      program.has_definition(t->callee()) &&
      out.insert(t->callee()).second) {
    reachable_defs(program, program.definition(t->callee()).body.get(), out);
  }
  for (const TermPtr& c : t->children()) {
    reachable_defs(program, c.get(), out);
  }
}

/// Leaf key: term rendering plus the renderings of every definition it can
/// reach (a change in any of them changes the generated LTS).
std::string leaf_key(const proc::Program& program, const TermPtr& t) {
  std::set<std::string> defs;
  reachable_defs(program, t.get(), defs);
  std::string blob = t->to_string();
  for (const std::string& name : defs) {
    const auto& def = program.definition(name);
    blob += "\n" + name + "(";
    for (const std::string& p : def.params) {
      blob += p + ",";
    }
    blob += ") := " + def.body->to_string();
  }
  return fnv128_hex(blob);
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i > 0 ? " " : "") + v[i];
  }
  return out;
}

// ---- flattening -------------------------------------------------------------

struct Component {
  TermPtr term;
  std::string name;
  GateSet alpha;       ///< effective alphabet (blocked sync gates included)
  std::string key;     ///< structural leaf key
};

/// Thrown internally when the structure is not safely reassociable; turned
/// into a single-leaf fallback plan by plan_term.
struct NotPlannable {
  std::string reason;
};

class Flattener {
 public:
  Flattener(const proc::Program& program,
            const std::map<std::string, GateSet>& defs)
      : program_(program), defs_(defs) {}

  /// Collected components, in left-to-right term order.
  std::vector<Component> components;
  /// gate -> indices of the components a hide instance covers.  Populated
  /// only after a successful walk; one instance per gate name (nested or
  /// repeated same-name hides are rejected as not plannable).
  std::map<std::string, std::set<std::size_t>> hide_scopes;

  void walk(const TermPtr& t) {
    switch (t->kind()) {
      case Term::Kind::kPar: {
        const GateSet la = alpha_of(t->children()[0]);
        const GateSet ra = alpha_of(t->children()[1]);
        // Reassociation is sound only if every gate both sides can perform
        // is synchronised here (free interleaving of a shared name cannot
        // be expressed with alphabetised sync sets).
        const GateSet sync(t->gates().begin(), t->gates().end());
        for (const std::string& g : la) {
          if (ra.count(g) != 0 && sync.count(g) == 0) {
            throw NotPlannable{"gate " + g +
                               " interleaves freely between operands that "
                               "both perform it"};
          }
        }
        const std::size_t left_begin = components.size();
        walk(t->children()[0]);
        const std::size_t right_begin = components.size();
        walk(t->children()[1]);
        // A sync gate only one side performs blocks that side's occurrences
        // (LOTOS restriction idiom).  Preserve the blocking under any
        // association order by adding the gate to the alphabet of one
        // component on the silent side: it then always requires that
        // component's participation, which never comes.
        for (const std::string& g : t->gates()) {
          const bool in_l = la.count(g) != 0;
          const bool in_r = ra.count(g) != 0;
          if (in_l == in_r) {
            continue;  // fires (both) or is vacuous (neither)
          }
          components[in_l ? right_begin : left_begin].alpha.insert(g);
        }
        return;
      }
      case Term::Kind::kHide: {
        const std::size_t begin = components.size();
        walk(t->children()[0]);
        for (const std::string& g : t->gates()) {
          if (!hides_seen_.insert(g).second) {
            throw NotPlannable{"gate " + g + " is hidden more than once"};
          }
          std::set<std::size_t>& scope = hide_raw_scopes_[g];
          for (std::size_t i = begin; i < components.size(); ++i) {
            scope.insert(i);
          }
        }
        return;
      }
      case Term::Kind::kCall: {
        // Inline parallel structure behind zero-argument calls (e.g. the
        // "Mesh" entry of the noc scenarios); recursion stops inlining.
        if (t->args().empty() && program_.has_definition(t->callee()) &&
            program_.definition(t->callee()).params.empty() &&
            inlining_.insert(t->callee()).second) {
          walk(program_.definition(t->callee()).body);
          inlining_.erase(t->callee());
          return;
        }
        add_leaf(t, t->callee());
        return;
      }
      default:
        add_leaf(t, sketch(t));
        return;
    }
  }

  /// Validates hidden-gate scoping after the walk: a hidden gate's users
  /// must all lie inside its hide's subtree, otherwise an equally named
  /// visible gate elsewhere would be captured by reassociation.
  void resolve_hides() {
    for (auto& [gate, scope] : hide_raw_scopes_) {
      std::set<std::size_t> users;
      for (std::size_t i = 0; i < components.size(); ++i) {
        if (components[i].alpha.count(gate) != 0) {
          users.insert(i);
        }
      }
      for (const std::size_t u : users) {
        if (scope.count(u) == 0) {
          throw NotPlannable{"hidden gate " + gate +
                             " is also performed outside its hide scope"};
        }
      }
      hide_scopes.emplace(gate, std::move(users));
    }
  }

 private:
  GateSet alpha_of(const TermPtr& t) const {
    return analyze::term_alphabet(t, defs_);
  }

  void add_leaf(const TermPtr& t, std::string name) {
    Component c;
    c.term = t;
    c.name = std::move(name);
    c.alpha = alpha_of(t);
    c.key = leaf_key(program_, t);
    components.push_back(std::move(c));
  }

  static std::string sketch(const TermPtr& t) {
    switch (t->kind()) {
      case Term::Kind::kPrefix:
        return t->gate() + "...";
      case Term::Kind::kRename:
        return "rename";
      case Term::Kind::kChoice:
        return "choice";
      case Term::Kind::kGuard:
        return "guard";
      case Term::Kind::kSeq:
        return "seq";
      case Term::Kind::kStop:
        return "stop";
      case Term::Kind::kExit:
        return "exit";
      default:
        return "leaf";
    }
  }

  const proc::Program& program_;
  const std::map<std::string, GateSet>& defs_;
  std::set<std::string> inlining_;
  std::set<std::string> hides_seen_;
  std::map<std::string, std::set<std::size_t>> hide_raw_scopes_;
};

// ---- greedy order search ----------------------------------------------------

struct Group {
  std::set<std::size_t> members;
  GateSet alpha;        ///< union of member alphabets minus hidden gates
  NodePtr node;
  std::string key;      ///< structural key of the subtree
  std::size_t min_index = 0;
  /// Product of the members' predicted standalone bounds — an
  /// over-approximation of this group's product before minimisation, used
  /// only to break merge-score ties towards smaller intermediates.
  std::uint64_t pred = 1;
};

std::vector<std::string> sorted_vec(const GateSet& s) {
  return {s.begin(), s.end()};
}

/// Gates from @p hides (not yet hidden) whose users all lie in @p members.
std::vector<std::string> newly_hideable(
    const std::map<std::string, std::set<std::size_t>>& hides,
    const std::set<std::string>& already_hidden,
    const std::set<std::size_t>& members) {
  std::vector<std::string> out;
  for (const auto& [gate, users] : hides) {
    if (already_hidden.count(gate) != 0 || users.empty()) {
      continue;
    }
    const bool inside = std::all_of(
        users.begin(), users.end(),
        [&](std::size_t u) { return members.count(u) != 0; });
    if (inside) {
      out.push_back(gate);
    }
  }
  return out;
}

NodePtr leaf_of(std::shared_ptr<const proc::Program> program,
                const Component& c, std::size_t max_states) {
  const TermPtr term = c.term;
  proc::GenerateOptions go;
  go.max_states = max_states;
  return leaf(
      [program, term, go]() {
        return proc::generate_term(*program, term, go);
      },
      c.name);
}

std::string render_node(const Node& n) {
  switch (n.kind) {
    case Node::Kind::kLeaf:
      return n.name;
    case Node::Kind::kPar:
      return "(" + render_node(*n.children[0]) + " |[" + join(n.gates) +
             "]| " + render_node(*n.children[1]) + ")";
    case Node::Kind::kHide:
      return "hide " + join(n.gates) + " in " + render_node(*n.children[0]);
    case Node::Kind::kMinimize:
      return "min(" + render_node(*n.children[0]) + ")";
  }
  return "?";
}

/// Thrown when the static bound analysis proves a component cannot be
/// generated standalone within the cap; plan_term turns it into a
/// monolithic fallback that never starts the doomed generation.
struct StaticSkip {
  std::string reason;
  std::vector<std::string> skips;
  std::vector<std::uint64_t> component_bounds;
};

Plan build_plan(std::shared_ptr<const proc::Program> program, TermPtr root,
                const PlanOptions& opts) {
  const std::map<std::string, GateSet> defs = analyze::alphabets(*program);
  Flattener flat(*program, defs);
  flat.walk(root);
  flat.resolve_hides();

  Plan plan;
  plan.planned = true;
  for (const Component& c : flat.components) {
    plan.components.push_back(c.name);
  }

  // Pre-flight: predict each component's *standalone* bound (the leaf is
  // generated without its peers, exactly like leaf_of below will).  A
  // component whose predicted bound already exceeds the standalone cap is
  // doomed — typically a counter whose ceiling lives in a synchronising
  // peer, like the xstream credit loop — so route to monolithic now
  // instead of paying the capped generation before the runtime fallback.
  const std::size_t cap = std::min(opts.max_states, opts.max_component_states);
  std::vector<std::string> skips;
  for (std::size_t i = 0; i < flat.components.size(); ++i) {
    const Component& c = flat.components[i];
    plan.component_bounds.push_back(
        analyze::predicted_states(*program, c.term));
    const std::uint64_t pred = plan.component_bounds.back();
    if (flat.components.size() > 1 && pred > cap) {
      skips.push_back("static skip (MV042): component '" + c.name +
                      "' predicted " + analyze::format_states(pred) +
                      " states standalone (cap " + std::to_string(cap) + ")");
    }
  }
  if (!skips.empty()) {
    throw StaticSkip{skips.front(), std::move(skips),
                     std::move(plan.component_bounds)};
  }

  // One group per component; greedy pair merging.
  std::vector<Group> groups;
  for (std::size_t i = 0; i < flat.components.size(); ++i) {
    const Component& c = flat.components[i];
    Group g;
    g.members = {i};
    g.alpha = c.alpha;
    g.node = leaf_of(program, c,
                     std::min(opts.max_states, opts.max_component_states));
    g.key = c.key;
    g.min_index = i;
    g.pred = plan.component_bounds[i];
    groups.push_back(std::move(g));
  }
  std::set<std::string> hidden;

  const auto wrap = [&](Group& g, const std::vector<std::string>& to_hide) {
    if (!to_hide.empty()) {
      g.node = hide_gates(to_hide, std::move(g.node));
      g.key = fnv128_hex("hide(" + join(to_hide) + "," + g.key + ")");
      for (const std::string& h : to_hide) {
        hidden.insert(h);
        g.alpha.erase(h);
      }
    }
    g.node = minimize_here(std::move(g.node), opts.equivalence);
    g.key = fnv128_hex("min(" + std::string(bisim::to_string(opts.equivalence)) +
                       "," + g.key + ")");
    const_cast<Node&>(*g.node).plan_key = g.key;
  };

  while (groups.size() > 1) {
    double best = -1.0;
    std::uint64_t best_pred = analyze::kUnboundedStates;
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        GateSet inter;
        std::set_intersection(
            groups[i].alpha.begin(), groups[i].alpha.end(),
            groups[j].alpha.begin(), groups[j].alpha.end(),
            std::inserter(inter, inter.end()));
        GateSet uni = groups[i].alpha;
        uni.insert(groups[j].alpha.begin(), groups[j].alpha.end());
        std::set<std::size_t> members = groups[i].members;
        members.insert(groups[j].members.begin(), groups[j].members.end());
        const std::size_t hideable =
            newly_hideable(flat.hide_scopes, hidden, members).size();
        const double denom = uni.empty() ? 1.0 : double(uni.size());
        const double score =
            (opts.sync_weight * double(inter.size()) +
             opts.hide_weight * double(hideable)) /
            denom;
        // Equal scores are common (symmetric components): break the tie
        // towards the pair with the smaller predicted product, so the
        // cheapest intermediate is built first.
        const std::uint64_t pred =
            analyze::saturating_mul(groups[i].pred, groups[j].pred);
        if (score > best + 1e-12 ||
            (score > best - 1e-12 && pred < best_pred)) {
          best = score > best ? score : best;
          best_pred = pred;
          bi = i;
          bj = j;
        }
      }
    }
    Group merged;
    merged.members = groups[bi].members;
    merged.members.insert(groups[bj].members.begin(),
                          groups[bj].members.end());
    GateSet inter;
    std::set_intersection(groups[bi].alpha.begin(), groups[bi].alpha.end(),
                          groups[bj].alpha.begin(), groups[bj].alpha.end(),
                          std::inserter(inter, inter.end()));
    merged.alpha = groups[bi].alpha;
    merged.alpha.insert(groups[bj].alpha.begin(), groups[bj].alpha.end());
    merged.min_index = std::min(groups[bi].min_index, groups[bj].min_index);
    merged.pred = analyze::saturating_mul(groups[bi].pred, groups[bj].pred);
    merged.node = compose2(std::move(groups[bi].node), sorted_vec(inter),
                           std::move(groups[bj].node));
    merged.key = fnv128_hex("par(" + groups[bi].key + ",[" +
                            join(sorted_vec(inter)) + "]," + groups[bj].key +
                            ")");
    wrap(merged, newly_hideable(flat.hide_scopes, hidden, merged.members));
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(bj));
    groups[bi] = std::move(merged);
  }

  // Single-component terms (or after all merges): ensure the final node is
  // a minimisation point and that zero-user hides did not slip through
  // (hiding a gate nobody performs is a no-op, so dropping them is sound).
  Group& top = groups.front();
  if (top.node->kind != Node::Kind::kMinimize) {
    wrap(top, newly_hideable(flat.hide_scopes, hidden, top.members));
  }
  plan.root = top.node;
  plan.grammar = render_node(*plan.root);
  return plan;
}

Plan fallback_plan(std::shared_ptr<const proc::Program> program, TermPtr root,
                   const PlanOptions& opts, std::string reason) {
  Plan plan;
  plan.planned = false;
  plan.fallback_reason = std::move(reason);
  plan.components = {"flat"};
  plan.program = program;
  plan.term = root;
  proc::GenerateOptions go;
  go.max_states = opts.max_states;
  NodePtr l = leaf(
      [program, root, go]() {
        return proc::generate_term(*program, root, go);
      },
      "flat");
  NodePtr m = minimize_here(std::move(l), opts.equivalence);
  const_cast<Node&>(*m).plan_key =
      fnv128_hex("min(" + std::string(bisim::to_string(opts.equivalence)) +
                 ",flat," + leaf_key(*program, root) + ")");
  plan.root = m;
  plan.grammar = render_node(*plan.root);
  return plan;
}

}  // namespace

const char* to_string(Strategy s) {
  return s == Strategy::kPlanned ? "planned" : "flat";
}

Plan plan_term(std::shared_ptr<const proc::Program> program, TermPtr root,
               const PlanOptions& opts) {
  if (program == nullptr || root == nullptr) {
    throw std::invalid_argument("compose::plan_term: null program or term");
  }
  try {
    Plan plan = build_plan(program, root, opts);
    if (plan.components.size() < 2) {
      return fallback_plan(program, root, opts,
                           "no parallel structure to reassociate");
    }
    plan.program = program;
    plan.term = root;
    return plan;
  } catch (const NotPlannable& np) {
    return fallback_plan(program, root, opts, np.reason);
  } catch (const StaticSkip& skip) {
    Plan plan = fallback_plan(program, root, opts, skip.reason);
    plan.static_skips = skip.skips;
    plan.component_bounds = skip.component_bounds;
    return plan;
  }
}

Plan plan_program(std::shared_ptr<const proc::Program> program,
                  std::string_view entry, const PlanOptions& opts) {
  return plan_term(program, proc::call(entry), opts);
}

std::string render_plan(const Plan& plan) {
  return plan.root == nullptr ? std::string() : render_node(*plan.root);
}

PlanResult evaluate_plan(const Plan& plan, const PlanOptions& opts,
                         MinimizeCache* cache) {
  if (plan.root == nullptr) {
    throw std::invalid_argument("compose::evaluate_plan: empty plan");
  }
  PlanResult result;
  // Components the planner routed around statically never start
  // generating; surface the skips in the step log where the runtime
  // fallback would otherwise have appeared.
  for (const std::string& skip : plan.static_skips) {
    result.stats.steps.push_back({skip, 0, 0, 0.0});
  }
  EvalOptions eo;
  eo.with_minimization = true;
  eo.on_the_fly = opts.reduce_on_the_fly;
  eo.workers = opts.workers;
  eo.max_states = opts.max_states;
  eo.stats = &result.stats;
  eo.cache = cache;
  // A component can blow past the cap *standalone* when its bound lives in
  // a peer (e.g. a credit counter whose ceiling is the other operand).  The
  // composed system may still be small: retry monolithically, where the
  // constraint applies during generation.
  const auto monolithic_retry = [&](const char* what) {
    if (!plan.planned || plan.program == nullptr || plan.term == nullptr) {
      throw;  // NOLINT: rethrows the active exception
    }
    result.stats.steps.push_back(
        {std::string("monolithic fallback (") + what + ")", 0, 0, 0.0});
    const Plan retry =
        fallback_plan(plan.program, plan.term, opts,
                      std::string("component exceeded the state cap: ") +
                          what);
    return evaluate(retry.root, eo);
  };
  lts::Lts minimal;
  try {
    minimal = evaluate(plan.root, eo);
  } catch (const proc::StateSpaceLimit& e) {
    minimal = monolithic_retry(e.what());
  } catch (const explore::LimitExceeded& e) {
    minimal = monolithic_retry(e.what());
  }
  // The root is a minimisation point, so `minimal` is minimal modulo
  // opts.equivalence; the canonical form is therefore isomorphism-invariant
  // and byte-identical across planned / flat / re-planned evaluations.
  result.lts = bisim::canonical_form(minimal);
  return result;
}

PlanResult flat_reference(std::shared_ptr<const proc::Program> program,
                          TermPtr root, const PlanOptions& opts,
                          MinimizeCache* cache) {
  if (program == nullptr || root == nullptr) {
    throw std::invalid_argument(
        "compose::flat_reference: null program or term");
  }
  PlanOptions flat_opts = opts;
  flat_opts.reduce_on_the_fly = false;
  return evaluate_plan(
      fallback_plan(program, root, flat_opts, "flat reference"), flat_opts,
      cache);
}

lts::Lts pipeline_lts(std::shared_ptr<const proc::Program> program,
                      std::string_view entry, Strategy strategy,
                      const PlanOptions& opts, MinimizeCache* cache) {
  if (program == nullptr) {
    throw std::invalid_argument("compose::pipeline_lts: null program");
  }
  if (strategy == Strategy::kFlat) {
    proc::GenerateOptions go;
    go.max_states = opts.max_states;
    return proc::generate(*program, entry, {}, go);
  }
  return evaluate_plan(plan_program(program, entry, opts), opts, cache).lts;
}

}  // namespace multival::compose
