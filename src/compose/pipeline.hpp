// Compositional verification pipeline (the paper's "refined approaches
// based on compositional verification": alternate state-space generation
// and minimisation).
//
// A composition expression is a tree of leaves (component LTSs or lazy
// generators), parallel compositions, hidings and minimisation points.
// Evaluating it with minimisation enabled implements the compositional
// strategy; evaluating with minimisation disabled measures the monolithic
// baseline.  Peak intermediate sizes are recorded so bench exp_f8 can show
// how the compositional strategy controls state-space explosion.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "lts/lts.hpp"

namespace multival::compose {

class Node;
using NodePtr = std::shared_ptr<const Node>;

class Node {
 public:
  enum class Kind { kLeaf, kPar, kHide, kMinimize };

  Kind kind = Kind::kLeaf;
  std::string name;                                // diagnostic label
  std::function<lts::Lts()> generator;             // kLeaf
  std::vector<NodePtr> children;                   // operands
  std::vector<std::string> gates;                  // kPar sync / kHide set
  bisim::Equivalence equivalence = bisim::Equivalence::kBranching;  // kMinimize
};

/// Leaf holding an already-built LTS.
[[nodiscard]] NodePtr leaf(lts::Lts l, std::string name = "leaf");
/// Leaf generating its LTS on demand.
[[nodiscard]] NodePtr leaf(std::function<lts::Lts()> gen,
                           std::string name = "leaf");
/// Parallel composition of two subtrees synchronising on @p sync_gates.
[[nodiscard]] NodePtr compose2(NodePtr a, std::vector<std::string> sync_gates,
                               NodePtr b);
/// Hide the gates in @p gates.
[[nodiscard]] NodePtr hide_gates(std::vector<std::string> gates, NodePtr p);
/// Minimisation point (a no-op when evaluating monolithically).
[[nodiscard]] NodePtr minimize_here(
    NodePtr p, bisim::Equivalence e = bisim::Equivalence::kBranching);

/// One evaluation step's size and wall-time record.
struct StepStat {
  std::string description;
  std::size_t states_before = 0;
  std::size_t states_after = 0;  // == before except at minimisation points
  double seconds = 0.0;          // wall time of this step alone
};

struct EvalStats {
  std::size_t peak_states = 0;
  std::size_t peak_transitions = 0;
  std::vector<StepStat> steps;

  /// Total wall time across all steps.
  [[nodiscard]] double total_seconds() const;

  /// step | states before -> after | time (ms) table for core::report-style
  /// printing (every step is also pushed to core::record_generation).
  [[nodiscard]] core::Table to_table(const std::string& title) const;
};

/// Cache consulted at minimisation points, keyed by the *content* of the
/// pre-minimisation LTS and the equivalence.  Re-evaluating a pipeline in
/// which one leaf changed then only re-minimises the subtrees whose inputs
/// actually differ — every untouched subtree produces a bitwise-identical
/// intermediate LTS and hits.  serve::PipelineCache is the standard
/// implementation (LRU + optional disk tier).
class MinimizeCache {
 public:
  virtual ~MinimizeCache() = default;
  /// The cached quotient of @p input under @p e, if present.
  [[nodiscard]] virtual std::optional<lts::Lts> lookup(
      const lts::Lts& input, bisim::Equivalence e) = 0;
  /// Records that minimising @p input under @p e yields @p reduced.
  virtual void store(const lts::Lts& input, bisim::Equivalence e,
                     const lts::Lts& reduced) = 0;
};

/// Evaluates the expression.  @p with_minimization toggles the minimisation
/// points; @p stats (optional) receives size records; @p min_cache
/// (optional) short-circuits minimisation points whose input was already
/// minimised (cached steps are recorded with a "(cached)" suffix).
[[nodiscard]] lts::Lts evaluate(const NodePtr& root, bool with_minimization,
                                EvalStats* stats = nullptr,
                                MinimizeCache* min_cache = nullptr);

/// Convenience: compositional vs monolithic comparison.
struct Comparison {
  EvalStats compositional;
  EvalStats monolithic;
  bool equivalent = false;  ///< results branching-bisimilar (sanity check)
};
[[nodiscard]] Comparison compare_strategies(const NodePtr& root);

}  // namespace multival::compose
