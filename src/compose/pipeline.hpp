// Compositional verification pipeline (the paper's "refined approaches
// based on compositional verification": alternate state-space generation
// and minimisation).
//
// A composition expression is a tree of leaves (component LTSs or lazy
// generators), parallel compositions, hidings and minimisation points.
// Evaluating it with minimisation enabled implements the compositional
// strategy; evaluating with minimisation disabled measures the monolithic
// baseline.  Peak intermediate sizes are recorded so bench exp_f8 can show
// how the compositional strategy controls state-space explosion.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "lts/lts.hpp"

namespace multival::compose {

class Node;
using NodePtr = std::shared_ptr<const Node>;

class Node {
 public:
  enum class Kind { kLeaf, kPar, kHide, kMinimize };

  Kind kind = Kind::kLeaf;
  std::string name;                                // diagnostic label
  std::function<lts::Lts()> generator;             // kLeaf
  std::vector<NodePtr> children;                   // operands
  std::vector<std::string> gates;                  // kPar sync / kHide set
  bisim::Equivalence equivalence = bisim::Equivalence::kBranching;  // kMinimize
  /// Structural identity of the subtree below this node (set by the
  /// planner on minimisation points): a stable key derived from the source
  /// terms, NOT from any generated LTS.  Lets a MinimizeCache skip the
  /// entire subtree — generation included — when a re-plan reuses it.
  std::string plan_key;
};

/// Leaf holding an already-built LTS.
[[nodiscard]] NodePtr leaf(lts::Lts l, std::string name = "leaf");
/// Leaf generating its LTS on demand.
[[nodiscard]] NodePtr leaf(std::function<lts::Lts()> gen,
                           std::string name = "leaf");
/// Parallel composition of two subtrees synchronising on @p sync_gates.
[[nodiscard]] NodePtr compose2(NodePtr a, std::vector<std::string> sync_gates,
                               NodePtr b);
/// Hide the gates in @p gates.
[[nodiscard]] NodePtr hide_gates(std::vector<std::string> gates, NodePtr p);
/// Minimisation point (a no-op when evaluating monolithically).
[[nodiscard]] NodePtr minimize_here(
    NodePtr p, bisim::Equivalence e = bisim::Equivalence::kBranching);

/// One evaluation step's size and wall-time record.
struct StepStat {
  std::string description;
  std::size_t states_before = 0;
  std::size_t states_after = 0;  // == before except at minimisation points
  double seconds = 0.0;          // wall time of this step alone
};

struct EvalStats {
  std::size_t peak_states = 0;
  std::size_t peak_transitions = 0;
  std::vector<StepStat> steps;

  /// Total wall time across all steps.
  [[nodiscard]] double total_seconds() const;

  /// step | states before -> after | time (ms) table for core::report-style
  /// printing (every step is also pushed to core::record_generation).
  [[nodiscard]] core::Table to_table(const std::string& title) const;
};

/// Cache consulted at minimisation points, keyed by the *content* of the
/// pre-minimisation LTS and the equivalence.  Re-evaluating a pipeline in
/// which one leaf changed then only re-minimises the subtrees whose inputs
/// actually differ — every untouched subtree produces a bitwise-identical
/// intermediate LTS and hits.  serve::PipelineCache is the standard
/// implementation (LRU + optional disk tier).
class MinimizeCache {
 public:
  virtual ~MinimizeCache() = default;
  /// The cached quotient of @p input under @p e, if present.
  [[nodiscard]] virtual std::optional<lts::Lts> lookup(
      const lts::Lts& input, bisim::Equivalence e) = 0;
  /// Records that minimising @p input under @p e yields @p reduced.
  virtual void store(const lts::Lts& input, bisim::Equivalence e,
                     const lts::Lts& reduced) = 0;

  /// Plan-keyed tier: the minimised LTS of a whole plan subtree, addressed
  /// by the planner's structural key (Node::plan_key).  A hit skips the
  /// subtree's generation entirely, so subtree reuse survives re-planning.
  /// Default: absent / dropped (content keying above still works).
  [[nodiscard]] virtual std::optional<lts::Lts> lookup_subtree(
      const std::string& plan_key);
  virtual void store_subtree(const std::string& plan_key,
                             const lts::Lts& reduced);
};

/// Byte-budgeted in-memory MinimizeCache: LRU over both keying tiers
/// (content hash of the pre-minimisation LTS, and plan subtree keys), like
/// serve::ResultCache but without the disk tier or the serve dependency —
/// the default cache a dse sweep or a plan evaluation holds in process, so
/// repeated minimisations stay bounded instead of growing with the sweep.
class LruMinimizeCache final : public MinimizeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// @p capacity_bytes bounds the estimated resident bytes of cached LTSs.
  explicit LruMinimizeCache(std::size_t capacity_bytes = 32u << 20);
  ~LruMinimizeCache() override;

  [[nodiscard]] std::optional<lts::Lts> lookup(const lts::Lts& input,
                                               bisim::Equivalence e) override;
  void store(const lts::Lts& input, bisim::Equivalence e,
             const lts::Lts& reduced) override;
  [[nodiscard]] std::optional<lts::Lts> lookup_subtree(
      const std::string& plan_key) override;
  void store_subtree(const std::string& plan_key,
                     const lts::Lts& reduced) override;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Evaluates the expression.  @p with_minimization toggles the minimisation
/// points; @p stats (optional) receives size records; @p min_cache
/// (optional) short-circuits minimisation points whose input was already
/// minimised (cached steps are recorded with a "(cached)" suffix).
[[nodiscard]] lts::Lts evaluate(const NodePtr& root, bool with_minimization,
                                EvalStats* stats = nullptr,
                                MinimizeCache* min_cache = nullptr);

/// Full-control evaluation options (the planned pipeline's entry point).
struct EvalOptions {
  bool with_minimization = true;
  /// Build kPar / kHide(kPar) intermediates through the explore engine with
  /// explore::tau_compress wrapped around the product, so inert tau chains
  /// are contracted *while the product is generated* and never stored.
  bool on_the_fly = false;
  /// Worker threads for on-the-fly product exploration.
  unsigned workers = 1;
  /// State cap per intermediate (explore::LimitExceeded beyond it).
  std::size_t max_states = 1u << 22;
  EvalStats* stats = nullptr;
  MinimizeCache* cache = nullptr;
};

[[nodiscard]] lts::Lts evaluate(const NodePtr& root, const EvalOptions& opts);

/// Convenience: compositional vs monolithic comparison.
struct Comparison {
  EvalStats compositional;
  EvalStats monolithic;
  bool equivalent = false;  ///< results branching-bisimilar (sanity check)
};
[[nodiscard]] Comparison compare_strategies(const NodePtr& root);

}  // namespace multival::compose
