#include "compose/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "lts/product.hpp"

namespace multival::compose {

NodePtr leaf(lts::Lts l, std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  auto holder = std::make_shared<lts::Lts>(std::move(l));
  node->generator = [holder]() { return *holder; };
  return node;
}

NodePtr leaf(std::function<lts::Lts()> gen, std::string name) {
  if (!gen) {
    throw std::invalid_argument("compose::leaf: null generator");
  }
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  node->generator = std::move(gen);
  return node;
}

NodePtr compose2(NodePtr a, std::vector<std::string> sync_gates, NodePtr b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPar;
  node->name = "par";
  node->children = {std::move(a), std::move(b)};
  node->gates = std::move(sync_gates);
  return node;
}

NodePtr hide_gates(std::vector<std::string> gates, NodePtr p) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kHide;
  node->name = "hide";
  node->children = {std::move(p)};
  node->gates = std::move(gates);
  return node;
}

NodePtr minimize_here(NodePtr p, bisim::Equivalence e) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kMinimize;
  node->name = std::string("min:") + bisim::to_string(e);
  node->children = {std::move(p)};
  node->equivalence = e;
  return node;
}

namespace {

/// Wall-clock timer for one pipeline step.
class StepTimer {
 public:
  StepTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

void record(EvalStats* stats, const std::string& what, const lts::Lts& l,
            std::size_t states_before, double seconds) {
  core::record_generation(core::GenerationStat{
      "pipeline: " + what, l.num_states(), l.num_transitions(), seconds});
  if (stats == nullptr) {
    return;
  }
  stats->peak_states = std::max(stats->peak_states, l.num_states());
  stats->peak_states = std::max(stats->peak_states, states_before);
  stats->peak_transitions =
      std::max(stats->peak_transitions, l.num_transitions());
  stats->steps.push_back(StepStat{what, states_before, l.num_states(), seconds});
}

lts::Lts eval_node(const Node& n, bool with_min, EvalStats* stats,
                   MinimizeCache* cache) {
  switch (n.kind) {
    case Node::Kind::kLeaf: {
      const StepTimer timer;
      lts::Lts l = n.generator();
      record(stats, "generate " + n.name, l, l.num_states(), timer.seconds());
      return l;
    }
    case Node::Kind::kPar: {
      const lts::Lts a = eval_node(*n.children[0], with_min, stats, cache);
      const lts::Lts b = eval_node(*n.children[1], with_min, stats, cache);
      const StepTimer timer;
      lts::Lts p = lts::parallel(a, b, n.gates);
      record(stats, "compose", p, p.num_states(), timer.seconds());
      return p;
    }
    case Node::Kind::kHide: {
      lts::Lts inner = eval_node(*n.children[0], with_min, stats, cache);
      const StepTimer timer;
      lts::Lts h = lts::hide(inner, n.gates);
      record(stats, "hide", h, h.num_states(), timer.seconds());
      return h;
    }
    case Node::Kind::kMinimize: {
      lts::Lts inner = eval_node(*n.children[0], with_min, stats, cache);
      if (!with_min) {
        return inner;
      }
      const std::size_t before = inner.num_states();
      const StepTimer timer;
      if (cache != nullptr) {
        if (std::optional<lts::Lts> cached =
                cache->lookup(inner, n.equivalence)) {
          record(stats, n.name + " (cached)", *cached, before,
                 timer.seconds());
          return *std::move(cached);
        }
      }
      lts::Lts reduced =
          bisim::minimize(inner, n.equivalence).quotient;
      if (cache != nullptr) {
        cache->store(inner, n.equivalence, reduced);
      }
      record(stats, n.name, reduced, before, timer.seconds());
      return reduced;
    }
  }
  throw std::logic_error("compose::evaluate: bad node kind");
}

}  // namespace

double EvalStats::total_seconds() const {
  double total = 0.0;
  for (const StepStat& s : steps) {
    total += s.seconds;
  }
  return total;
}

core::Table EvalStats::to_table(const std::string& title) const {
  core::Table t(title, {"step", "states", "time (ms)"});
  for (const StepStat& s : steps) {
    const std::string size =
        s.states_before == s.states_after
            ? std::to_string(s.states_after)
            : std::to_string(s.states_before) + " -> " +
                  std::to_string(s.states_after);
    t.add_row({s.description, size, core::fmt(s.seconds * 1e3, 2)});
  }
  t.add_row({"total (peak " + std::to_string(peak_states) + " states)", "",
             core::fmt(total_seconds() * 1e3, 2)});
  return t;
}

lts::Lts evaluate(const NodePtr& root, bool with_minimization,
                  EvalStats* stats, MinimizeCache* min_cache) {
  if (root == nullptr) {
    throw std::invalid_argument("compose::evaluate: null root");
  }
  return eval_node(*root, with_minimization, stats, min_cache);
}

Comparison compare_strategies(const NodePtr& root) {
  Comparison cmp;
  const lts::Lts with = evaluate(root, true, &cmp.compositional);
  const lts::Lts without = evaluate(root, false, &cmp.monolithic);
  cmp.equivalent =
      bisim::equivalent(with, without, bisim::Equivalence::kBranching);
  return cmp;
}

}  // namespace multival::compose
