#include "compose/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <list>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "bisim/reduction.hpp"
#include "core/sync.hpp"
#include "explore/engine.hpp"
#include "explore/oracle.hpp"
#include "lts/product.hpp"

namespace multival::compose {

NodePtr leaf(lts::Lts l, std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  auto holder = std::make_shared<lts::Lts>(std::move(l));
  node->generator = [holder]() { return *holder; };
  return node;
}

NodePtr leaf(std::function<lts::Lts()> gen, std::string name) {
  if (!gen) {
    throw std::invalid_argument("compose::leaf: null generator");
  }
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  node->generator = std::move(gen);
  return node;
}

NodePtr compose2(NodePtr a, std::vector<std::string> sync_gates, NodePtr b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPar;
  node->name = "par";
  node->children = {std::move(a), std::move(b)};
  node->gates = std::move(sync_gates);
  return node;
}

NodePtr hide_gates(std::vector<std::string> gates, NodePtr p) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kHide;
  node->name = "hide";
  node->children = {std::move(p)};
  node->gates = std::move(gates);
  return node;
}

NodePtr minimize_here(NodePtr p, bisim::Equivalence e) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kMinimize;
  node->name = std::string("min:") + bisim::to_string(e);
  node->children = {std::move(p)};
  node->equivalence = e;
  return node;
}

namespace {

/// Wall-clock timer for one pipeline step.
class StepTimer {
 public:
  StepTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

void record(EvalStats* stats, const std::string& what, const lts::Lts& l,
            std::size_t states_before, double seconds) {
  core::record_generation(core::GenerationStat{
      "pipeline: " + what, l.num_states(), l.num_transitions(), seconds});
  if (stats == nullptr) {
    return;
  }
  stats->peak_states = std::max(stats->peak_states, l.num_states());
  stats->peak_states = std::max(stats->peak_states, states_before);
  stats->peak_transitions =
      std::max(stats->peak_transitions, l.num_transitions());
  stats->steps.push_back(StepStat{what, states_before, l.num_states(), seconds});
}

class Evaluator {
 public:
  explicit Evaluator(const EvalOptions& opts) : opts_(opts) {}

  lts::Lts eval(const Node& n) {
    switch (n.kind) {
      case Node::Kind::kLeaf: {
        const StepTimer timer;
        lts::Lts l = n.generator();
        record(opts_.stats, "generate " + n.name, l, l.num_states(),
               timer.seconds());
        return l;
      }
      case Node::Kind::kPar: {
        const lts::Lts a = eval(*n.children[0]);
        const lts::Lts b = eval(*n.children[1]);
        if (opts_.on_the_fly) {
          return fly(a, b, n.gates, {});
        }
        const StepTimer timer;
        lts::Lts p = lts::parallel(a, b, n.gates);
        record(opts_.stats, "compose", p, p.num_states(), timer.seconds());
        return p;
      }
      case Node::Kind::kHide: {
        // The planner's signature shape is hide-over-par: fuse it into one
        // on-the-fly exploration so gates hidden at this level become tau
        // *during* product generation and their chains are never stored.
        if (opts_.on_the_fly && n.children[0]->kind == Node::Kind::kPar) {
          const Node& par = *n.children[0];
          const lts::Lts a = eval(*par.children[0]);
          const lts::Lts b = eval(*par.children[1]);
          return fly(a, b, par.gates, n.gates);
        }
        lts::Lts inner = eval(*n.children[0]);
        const StepTimer timer;
        lts::Lts h = lts::hide(inner, n.gates);
        if (opts_.on_the_fly) {
          h = bisim::tau_compress(h);
        }
        record(opts_.stats, "hide", h, h.num_states(), timer.seconds());
        return h;
      }
      case Node::Kind::kMinimize: {
        if (opts_.with_minimization && opts_.cache != nullptr &&
            !n.plan_key.empty()) {
          const StepTimer timer;
          if (std::optional<lts::Lts> cached =
                  opts_.cache->lookup_subtree(n.plan_key)) {
            record(opts_.stats, n.name + " (subtree cached)", *cached,
                   cached->num_states(), timer.seconds());
            return *std::move(cached);
          }
        }
        lts::Lts inner = eval(*n.children[0]);
        if (!opts_.with_minimization) {
          return inner;
        }
        const std::size_t before = inner.num_states();
        const StepTimer timer;
        lts::Lts reduced;
        bool from_cache = false;
        if (opts_.cache != nullptr) {
          if (std::optional<lts::Lts> cached =
                  opts_.cache->lookup(inner, n.equivalence)) {
            reduced = *std::move(cached);
            from_cache = true;
          }
        }
        if (!from_cache) {
          reduced = bisim::minimize(inner, n.equivalence).quotient;
          if (opts_.cache != nullptr) {
            opts_.cache->store(inner, n.equivalence, reduced);
          }
        }
        if (opts_.cache != nullptr && !n.plan_key.empty()) {
          opts_.cache->store_subtree(n.plan_key, reduced);
        }
        record(opts_.stats, from_cache ? n.name + " (cached)" : n.name,
               reduced, before, timer.seconds());
        return reduced;
      }
    }
    throw std::logic_error("compose::evaluate: bad node kind");
  }

 private:
  /// On-the-fly `hide hidden in (a |[sync]| b)` with inert-tau contraction:
  /// only the compressed product is ever stored by the engine.
  lts::Lts fly(const lts::Lts& a, const lts::Lts& b,
               const std::vector<std::string>& sync,
               const std::vector<std::string>& hidden) {
    const StepTimer timer;
    explore::OraclePtr oracle =
        explore::product_oracle(explore::lts_oracle(a), explore::lts_oracle(b),
                                sync);
    if (!hidden.empty()) {
      oracle = explore::hide_oracle(std::move(oracle), hidden);
    }
    oracle = explore::tau_compress(std::move(oracle));
    explore::ExploreOptions eo;
    eo.workers = opts_.workers == 0 ? 1 : opts_.workers;
    eo.max_states = opts_.max_states;
    explore::ExploreResult r = explore::explore(*oracle, eo);
    record(opts_.stats,
           hidden.empty() ? "compose (on the fly)"
                          : "compose+hide (on the fly)",
           r.lts, r.lts.num_states(), timer.seconds());
    return std::move(r.lts);
  }

  const EvalOptions& opts_;
};

/// Estimated resident bytes of a cached LTS (budgeting, not accounting).
std::size_t approx_bytes(const lts::Lts& l) {
  std::size_t bytes = 16 * l.num_states() + 12 * l.num_transitions();
  for (lts::ActionId a = 0; a < l.actions().size(); ++a) {
    bytes += 32 + l.actions().name(a).size();
  }
  return bytes;
}

/// Content key of a minimisation-cache entry: a 128-bit FNV-1a over the
/// semantic content (initial state, transitions with label *text*), split
/// into two independent lanes like serve::Hasher but without the serve
/// dependency.
std::string content_key(const lts::Lts& l, bisim::Equivalence e) {
  std::uint64_t h1 = 1469598103934665603ull;
  std::uint64_t h2 = 14695981039346656037ull;
  const auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      const auto byte = static_cast<std::uint64_t>((v >> (8 * i)) & 0xff);
      h1 = (h1 ^ byte) * 1099511628211ull;
      h2 = (h2 ^ (byte + 0x9e)) * 1099511628211ull;
    }
  };
  const auto mix_str = [&](std::string_view s) {
    mix(s.size());
    for (const char c : s) {
      h1 = (h1 ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      h2 = (h2 ^ (static_cast<unsigned char>(c) + 0x9e)) * 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(e));
  mix(l.num_states());
  mix(l.initial_state());
  for (lts::StateId s = 0; s < l.num_states(); ++s) {
    for (const auto& t : l.out(s)) {
      mix(s);
      mix_str(l.actions().name(t.action));
      mix(t.dst);
    }
  }
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return std::string("c:") + buf;
}

}  // namespace

double EvalStats::total_seconds() const {
  double total = 0.0;
  for (const StepStat& s : steps) {
    total += s.seconds;
  }
  return total;
}

core::Table EvalStats::to_table(const std::string& title) const {
  core::Table t(title, {"step", "states", "time (ms)"});
  for (const StepStat& s : steps) {
    const std::string size =
        s.states_before == s.states_after
            ? std::to_string(s.states_after)
            : std::to_string(s.states_before) + " -> " +
                  std::to_string(s.states_after);
    t.add_row({s.description, size, core::fmt(s.seconds * 1e3, 2)});
  }
  t.add_row({"total (peak " + std::to_string(peak_states) + " states)", "",
             core::fmt(total_seconds() * 1e3, 2)});
  return t;
}

std::optional<lts::Lts> MinimizeCache::lookup_subtree(
    const std::string& /*plan_key*/) {
  return std::nullopt;
}

void MinimizeCache::store_subtree(const std::string& /*plan_key*/,
                                  const lts::Lts& /*reduced*/) {}

// ---- LruMinimizeCache -------------------------------------------------------

struct LruMinimizeCache::Impl {
  struct Entry {
    std::string key;
    lts::Lts value;
    std::size_t bytes = 0;
  };

  explicit Impl(std::size_t cap) : capacity(cap) {}

  std::optional<lts::Lts> get(const std::string& key) {
    const core::MutexLock lock(mu);
    const auto it = map.find(key);
    if (it == map.end()) {
      ++stats.misses;
      return std::nullopt;
    }
    lru.splice(lru.begin(), lru, it->second);
    ++stats.hits;
    return it->second->value;
  }

  void put(const std::string& key, const lts::Lts& value) {
    const core::MutexLock lock(mu);
    const std::size_t entry_bytes = approx_bytes(value);
    if (const auto it = map.find(key); it != map.end()) {
      bytes -= it->second->bytes;
      lru.erase(it->second);
      map.erase(it);
    }
    lru.push_front(Entry{key, value, entry_bytes});
    map[key] = lru.begin();
    bytes += entry_bytes;
    ++stats.insertions;
    while (bytes > capacity && lru.size() > 1) {
      const Entry& victim = lru.back();
      bytes -= victim.bytes;
      map.erase(victim.key);
      lru.pop_back();
      ++stats.evictions;
    }
  }

  std::size_t capacity;
  mutable core::Mutex mu;
  std::list<Entry> lru MV_GUARDED_BY(mu);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> map
      MV_GUARDED_BY(mu);
  std::size_t bytes MV_GUARDED_BY(mu) = 0;
  Stats stats MV_GUARDED_BY(mu);
};

LruMinimizeCache::LruMinimizeCache(std::size_t capacity_bytes)
    : impl_(std::make_unique<Impl>(capacity_bytes)) {}

LruMinimizeCache::~LruMinimizeCache() = default;

std::optional<lts::Lts> LruMinimizeCache::lookup(const lts::Lts& input,
                                                 bisim::Equivalence e) {
  return impl_->get(content_key(input, e));
}

void LruMinimizeCache::store(const lts::Lts& input, bisim::Equivalence e,
                             const lts::Lts& reduced) {
  impl_->put(content_key(input, e), reduced);
}

std::optional<lts::Lts> LruMinimizeCache::lookup_subtree(
    const std::string& plan_key) {
  return impl_->get("p:" + plan_key);
}

void LruMinimizeCache::store_subtree(const std::string& plan_key,
                                     const lts::Lts& reduced) {
  impl_->put("p:" + plan_key, reduced);
}

LruMinimizeCache::Stats LruMinimizeCache::stats() const {
  const core::MutexLock lock(impl_->mu);
  return impl_->stats;
}

std::size_t LruMinimizeCache::entries() const {
  const core::MutexLock lock(impl_->mu);
  return impl_->lru.size();
}

std::size_t LruMinimizeCache::bytes() const {
  const core::MutexLock lock(impl_->mu);
  return impl_->bytes;
}

// ---- evaluation entry points ------------------------------------------------

lts::Lts evaluate(const NodePtr& root, bool with_minimization,
                  EvalStats* stats, MinimizeCache* min_cache) {
  EvalOptions opts;
  opts.with_minimization = with_minimization;
  opts.stats = stats;
  opts.cache = min_cache;
  return evaluate(root, opts);
}

lts::Lts evaluate(const NodePtr& root, const EvalOptions& opts) {
  if (root == nullptr) {
    throw std::invalid_argument("compose::evaluate: null root");
  }
  return Evaluator(opts).eval(*root);
}

Comparison compare_strategies(const NodePtr& root) {
  Comparison cmp;
  const lts::Lts with = evaluate(root, true, &cmp.compositional);
  const lts::Lts without = evaluate(root, false, &cmp.monolithic);
  cmp.equivalent =
      bisim::equivalent(with, without, bisim::Equivalence::kBranching);
  return cmp;
}

}  // namespace multival::compose
