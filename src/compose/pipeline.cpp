#include "compose/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "lts/product.hpp"

namespace multival::compose {

NodePtr leaf(lts::Lts l, std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  auto holder = std::make_shared<lts::Lts>(std::move(l));
  node->generator = [holder]() { return *holder; };
  return node;
}

NodePtr leaf(std::function<lts::Lts()> gen, std::string name) {
  if (!gen) {
    throw std::invalid_argument("compose::leaf: null generator");
  }
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->name = std::move(name);
  node->generator = std::move(gen);
  return node;
}

NodePtr compose2(NodePtr a, std::vector<std::string> sync_gates, NodePtr b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPar;
  node->name = "par";
  node->children = {std::move(a), std::move(b)};
  node->gates = std::move(sync_gates);
  return node;
}

NodePtr hide_gates(std::vector<std::string> gates, NodePtr p) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kHide;
  node->name = "hide";
  node->children = {std::move(p)};
  node->gates = std::move(gates);
  return node;
}

NodePtr minimize_here(NodePtr p, bisim::Equivalence e) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kMinimize;
  node->name = std::string("min:") + bisim::to_string(e);
  node->children = {std::move(p)};
  node->equivalence = e;
  return node;
}

namespace {

void record(EvalStats* stats, const std::string& what, const lts::Lts& l,
            std::size_t states_before) {
  if (stats == nullptr) {
    return;
  }
  stats->peak_states = std::max(stats->peak_states, l.num_states());
  stats->peak_states = std::max(stats->peak_states, states_before);
  stats->peak_transitions =
      std::max(stats->peak_transitions, l.num_transitions());
  stats->steps.push_back(StepStat{what, states_before, l.num_states()});
}

lts::Lts eval_node(const Node& n, bool with_min, EvalStats* stats) {
  switch (n.kind) {
    case Node::Kind::kLeaf: {
      lts::Lts l = n.generator();
      record(stats, "generate " + n.name, l, l.num_states());
      return l;
    }
    case Node::Kind::kPar: {
      const lts::Lts a = eval_node(*n.children[0], with_min, stats);
      const lts::Lts b = eval_node(*n.children[1], with_min, stats);
      lts::Lts p = lts::parallel(a, b, n.gates);
      record(stats, "compose", p, p.num_states());
      return p;
    }
    case Node::Kind::kHide: {
      lts::Lts h =
          lts::hide(eval_node(*n.children[0], with_min, stats), n.gates);
      record(stats, "hide", h, h.num_states());
      return h;
    }
    case Node::Kind::kMinimize: {
      lts::Lts inner = eval_node(*n.children[0], with_min, stats);
      if (!with_min) {
        return inner;
      }
      const std::size_t before = inner.num_states();
      lts::Lts reduced =
          bisim::minimize(inner, n.equivalence).quotient;
      record(stats, n.name, reduced, before);
      return reduced;
    }
  }
  throw std::logic_error("compose::evaluate: bad node kind");
}

}  // namespace

lts::Lts evaluate(const NodePtr& root, bool with_minimization,
                  EvalStats* stats) {
  if (root == nullptr) {
    throw std::invalid_argument("compose::evaluate: null root");
  }
  return eval_node(*root, with_minimization, stats);
}

Comparison compare_strategies(const NodePtr& root) {
  Comparison cmp;
  const lts::Lts with = evaluate(root, true, &cmp.compositional);
  const lts::Lts without = evaluate(root, false, &cmp.monolithic);
  cmp.equivalent =
      bisim::equivalent(with, without, bisim::Equivalence::kBranching);
  return cmp;
}

}  // namespace multival::compose
