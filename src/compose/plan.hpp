// Composition-order planning: the front half of the generate–minimise–
// compose pipeline (the paper's compositional strategy, with CADP-style
// "smart reduction" order heuristics).
//
// plan_term flattens the parallel structure of a closed behaviour term into
// components (descending through |[G]|, |||, hide and zero-argument calls),
// verifies that the structure is *safely reassociable* — at every parallel
// node the sync set covers the operands' shared alphabet, and hidden-gate
// scopes do not leak — and then greedily builds a compose::Node tree by
// repeatedly merging the pair of component groups with the best predicted
// reduction:
//
//     score(X, Y) = (w_sync * |A_X ∩ A_Y| + w_hide * |newly hideable|)
//                   / |A_X ∪ A_Y|
//
// where alphabets come from the analyze fixed point (analyze::term_alphabet
// — syntax only, no state space).  Shared gates constrain the product
// (smaller intermediates); gates whose every user has been merged can be
// hidden immediately, turning them into tau for the on-the-fly reduction
// (explore::tau_compress) and the per-join minimisation to erase.  Every
// join is wrapped in hide (when gates become local) and a minimisation
// point, so intermediates stay within a small multiple of the final LTS.
//
// A term whose structure is not safely reassociable (or has no parallel
// structure at all) falls back to a single-leaf plan — monolithic
// generation followed by the same final minimisation, with the reason
// recorded — so every caller can route through plans unconditionally.
//
// Both strategies end at bisim::canonical_form(minimal LTS), so the planned
// and the flat pipeline return *byte-identical* results (asserted in
// tests/plan_test.cpp); only the peak intermediate sizes differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bisim/equivalence.hpp"
#include "compose/pipeline.hpp"
#include "lts/lts.hpp"
#include "proc/process.hpp"

namespace multival::compose {

/// Pipeline strategy of the case-study generators: planned compositional
/// (the default) or monolithic flat generation (the opt-out baseline).
enum class Strategy {
  kPlanned,
  kFlat,
};

[[nodiscard]] const char* to_string(Strategy s);

struct PlanOptions {
  /// Equivalence of the per-join and final minimisation points.
  bisim::Equivalence equivalence = bisim::Equivalence::kDivergenceBranching;
  /// Contract inert tau chains while each product is generated.
  bool reduce_on_the_fly = true;
  /// Heuristic weights (see file header).
  double sync_weight = 1.0;
  double hide_weight = 0.5;
  /// State cap per intermediate product.
  std::size_t max_states = 1u << 22;
  /// Tighter cap on *standalone component* generation.  A component whose
  /// bound lives in a peer (a credit counter, a sequencer) is infinite on
  /// its own; hitting this cap makes evaluate_plan retry monolithically
  /// (where the peer constrains it) after a short detour instead of
  /// grinding to the full max_states first.
  std::size_t max_component_states = 1u << 17;
  /// Worker threads for on-the-fly product exploration.
  unsigned workers = 1;
};

/// A composition plan: the compose::Node tree plus its provenance.
struct Plan {
  NodePtr root;  ///< never null; evaluate with compose::evaluate
  /// True if the parallel structure was reassociated by the planner; false
  /// for the single-leaf (monolithic) fallback.
  bool planned = false;
  std::string fallback_reason;           ///< set when !planned
  std::vector<std::string> components;   ///< leaf names, plan order
  /// Predicted standalone state bound per component (analyze::
  /// predicted_states; kUnboundedStates when a counter widens), aligned
  /// with components.  The planner uses these to break merge-order score
  /// ties towards smaller intermediate products and to route around
  /// doomed components *statically*: a component predicted to exceed the
  /// standalone cap never starts generating — the plan falls back to
  /// monolithic up front, recording a "static skip (MV042)" step, instead
  /// of grinding to max_component_states first (the runtime overflow
  /// fallback in evaluate_plan remains as the backstop).
  std::vector<std::uint64_t> component_bounds;
  /// "static skip (MV042): ..." provenance lines; evaluate_plan replays
  /// them into EvalStats::steps so the skip is visible in reports.
  std::vector<std::string> static_skips;
  std::string grammar;                   ///< rendered plan expression
  /// Provenance: the term this plan evaluates, in its program.  Lets
  /// evaluate_plan retry monolithically when a *component* overflows the
  /// state cap standalone (a leaf only bounded by its peers — e.g. a
  /// credit counter whose bound lives in the other operand).
  std::shared_ptr<const proc::Program> program;
  proc::TermPtr term;
};

/// Plans the composition of closed behaviour term @p root of @p program.
[[nodiscard]] Plan plan_term(std::shared_ptr<const proc::Program> program,
                             proc::TermPtr root, const PlanOptions& opts = {});

/// Plans `entry` (a zero-argument process) of @p program.
[[nodiscard]] Plan plan_program(std::shared_ptr<const proc::Program> program,
                                std::string_view entry,
                                const PlanOptions& opts = {});

/// Renders @p plan's tree as a grammar string, e.g.
/// "min(hide M1 in (Cell0 |[..]| Cell1))" (also stored in Plan::grammar).
[[nodiscard]] std::string render_plan(const Plan& plan);

struct PlanResult {
  lts::Lts lts;  ///< minimal modulo PlanOptions::equivalence, canonical form
  EvalStats stats;
};

/// Evaluates @p plan (on-the-fly reduction per @p opts, minimisation
/// results cached in @p cache when non-null, subtree reuse via plan keys)
/// and returns the canonical minimal LTS.
[[nodiscard]] PlanResult evaluate_plan(const Plan& plan,
                                       const PlanOptions& opts = {},
                                       MinimizeCache* cache = nullptr);

/// The monolithic reference path in the same normal form: generate @p root
/// flat, minimise once, canonicalise.  Byte-identical to the planned result
/// of the same term.
[[nodiscard]] PlanResult flat_reference(
    std::shared_ptr<const proc::Program> program, proc::TermPtr root,
    const PlanOptions& opts = {}, MinimizeCache* cache = nullptr);

/// Strategy dispatcher used by the fame/noc/xstream generators:
///   kPlanned -> evaluate_plan(plan_program(...)).lts  (minimal, canonical)
///   kFlat    -> plain monolithic proc::generate (the legacy raw LTS)
[[nodiscard]] lts::Lts pipeline_lts(
    std::shared_ptr<const proc::Program> program, std::string_view entry,
    Strategy strategy, const PlanOptions& opts = {},
    MinimizeCache* cache = nullptr);

}  // namespace multival::compose
