// Basic graph analyses over LTSs: reachability trimming, deadlock and
// livelock (tau-cycle) detection, strongly connected components.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "lts/lts.hpp"

namespace multival::lts {

/// Result of restricting an LTS to its reachable part.
struct TrimResult {
  Lts lts;
  /// old state id -> new state id, or kNoState if unreachable.
  std::vector<StateId> old_to_new;
  std::size_t removed_states = 0;
};

/// Returns the sub-LTS reachable from the initial state.
[[nodiscard]] TrimResult trim(const Lts& l);

/// States reachable from the initial state (bitmap indexed by state id).
[[nodiscard]] std::vector<bool> reachable_states(const Lts& l);

/// All deadlock states (no outgoing transition) reachable from the initial
/// state.
[[nodiscard]] std::vector<StateId> deadlock_states(const Lts& l);

/// Strongly connected components of the subgraph whose edges satisfy
/// @p edge_filter.  Returns the component id of each state; component ids are
/// in reverse topological order (a component only reaches components with
/// smaller or equal... strictly: Tarjan assigns ids such that every edge goes
/// from a higher id to a lower-or-equal id).
struct SccResult {
  std::vector<StateId> component_of;  // state -> component id
  std::size_t num_components = 0;
};

[[nodiscard]] SccResult strongly_connected_components(
    const Lts& l, const std::function<bool(const OutEdge&)>& edge_filter);

/// SCCs over all transitions.
[[nodiscard]] SccResult strongly_connected_components(const Lts& l);

/// True if some reachable state lies on a cycle of invisible ("i")
/// transitions — a potential livelock / divergence.
[[nodiscard]] bool has_tau_cycle(const Lts& l);

/// All reachable states lying on a tau cycle.
[[nodiscard]] std::vector<StateId> divergent_states(const Lts& l);

/// Sorted, deduplicated list of action ids actually used by transitions.
[[nodiscard]] std::vector<ActionId> used_actions(const Lts& l);

}  // namespace multival::lts
