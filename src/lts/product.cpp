#include "lts/product.hpp"

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace multival::lts {

std::string_view label_gate(std::string_view label) {
  const auto pos = label.find(' ');
  return pos == std::string_view::npos ? label : label.substr(0, pos);
}

namespace {

using PairKey = std::uint64_t;

PairKey pair_key(StateId a, StateId b) {
  return (static_cast<PairKey>(a) << 32) | b;
}

std::unordered_set<std::string> to_set(std::span<const std::string> gates) {
  return {gates.begin(), gates.end()};
}

bool gate_in(const std::unordered_set<std::string>& set,
             std::string_view gate) {
  return set.find(std::string(gate)) != set.end();
}

}  // namespace

Lts parallel(const Lts& a, const Lts& b,
             std::span<const std::string> sync_gates) {
  const auto sync = to_set(sync_gates);
  const auto must_sync = [&](const Lts& side, ActionId act) {
    if (ActionTable::is_tau(act)) {
      return false;
    }
    if (ActionTable::is_exit(act)) {
      return true;
    }
    return gate_in(sync, label_gate(side.actions().name(act)));
  };

  Lts result;
  std::unordered_map<PairKey, StateId> ids;
  std::vector<std::pair<StateId, StateId>> worklist;

  const auto state_of = [&](StateId sa, StateId sb) {
    const PairKey key = pair_key(sa, sb);
    const auto it = ids.find(key);
    if (it != ids.end()) {
      return it->second;
    }
    const StateId ns = result.add_state();
    ids.emplace(key, ns);
    worklist.emplace_back(sa, sb);
    return ns;
  };

  const StateId init = state_of(a.initial_state(), b.initial_state());
  result.set_initial_state(init);

  // Cache label translation a/b action id -> result action id.
  std::vector<ActionId> map_a(a.actions().size(), kNoState);
  std::vector<ActionId> map_b(b.actions().size(), kNoState);
  const auto xlat = [&](const Lts& side, std::vector<ActionId>& cache,
                        ActionId act) {
    if (cache[act] == kNoState) {
      cache[act] = result.actions().intern(side.actions().name(act));
    }
    return cache[act];
  };

  while (!worklist.empty()) {
    const auto [sa, sb] = worklist.back();
    worklist.pop_back();
    const StateId src = ids.at(pair_key(sa, sb));

    // Independent moves of a.
    for (const OutEdge& ea : a.out(sa)) {
      if (must_sync(a, ea.action)) {
        continue;
      }
      result.add_transition(src, xlat(a, map_a, ea.action),
                            state_of(ea.dst, sb));
    }
    // Independent moves of b.
    for (const OutEdge& eb : b.out(sb)) {
      if (must_sync(b, eb.action)) {
        continue;
      }
      result.add_transition(src, xlat(b, map_b, eb.action),
                            state_of(sa, eb.dst));
    }
    // Synchronised moves: full label equality (value matching).
    for (const OutEdge& ea : a.out(sa)) {
      if (!must_sync(a, ea.action)) {
        continue;
      }
      const std::string_view label = a.actions().name(ea.action);
      for (const OutEdge& eb : b.out(sb)) {
        if (!must_sync(b, eb.action)) {
          continue;
        }
        if (b.actions().name(eb.action) != label) {
          continue;
        }
        result.add_transition(src, xlat(a, map_a, ea.action),
                              state_of(ea.dst, eb.dst));
      }
    }
  }
  return result;
}

namespace {

std::unordered_set<std::string> gates_of(const Lts& l) {
  std::unordered_set<std::string> gates;
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const OutEdge& e : l.out(s)) {
      gates.emplace(label_gate(l.actions().name(e.action)));
    }
  }
  return gates;
}

}  // namespace

Lts parallel_all(std::span<const Lts> components,
                 std::span<const std::string> sync_gates) {
  if (components.empty()) {
    throw std::invalid_argument("parallel_all: no components");
  }
  Lts acc = components[0];
  auto acc_gates = gates_of(acc);
  for (std::size_t i = 1; i < components.size(); ++i) {
    // Synchronise this join only on the requested gates that both sides
    // actually use; a gate used by a single side interleaves freely instead
    // of blocking (the usual pitfall of folding a global sync set).
    const auto next_gates = gates_of(components[i]);
    std::vector<std::string> join;
    for (const std::string& g : sync_gates) {
      if (acc_gates.count(g) > 0 && next_gates.count(g) > 0) {
        join.push_back(g);
      }
    }
    acc = parallel(acc, components[i], join);
    acc_gates.insert(next_gates.begin(), next_gates.end());
  }
  return acc;
}

Lts interleave(const Lts& a, const Lts& b) {
  return parallel(a, b, {});
}

namespace {

Lts relabel(const Lts& l,
            const std::function<std::string(std::string_view)>& f) {
  Lts out;
  out.add_states(l.num_states());
  out.set_initial_state(l.initial_state());
  std::vector<ActionId> cache(l.actions().size(), kNoState);
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const OutEdge& e : l.out(s)) {
      if (cache[e.action] == kNoState) {
        cache[e.action] = out.actions().intern(f(l.actions().name(e.action)));
      }
      out.add_transition(s, cache[e.action], e.dst);
    }
  }
  return out;
}

}  // namespace

Lts hide(const Lts& l, std::span<const std::string> gates) {
  const auto set = to_set(gates);
  return relabel(l, [&](std::string_view label) -> std::string {
    if (label == "i" || label == "exit") {
      return std::string(label);
    }
    return gate_in(set, label_gate(label)) ? "i" : std::string(label);
  });
}

Lts hide_all_but(const Lts& l, std::span<const std::string> gates) {
  const auto keep = to_set(gates);
  return relabel(l, [&](std::string_view label) -> std::string {
    if (label == "i" || label == "exit") {
      return std::string(label);
    }
    return gate_in(keep, label_gate(label)) ? std::string(label) : "i";
  });
}

Lts rename(const Lts& l,
           const std::unordered_map<std::string, std::string>& gate_map) {
  return relabel(l, [&](std::string_view label) -> std::string {
    if (label == "i" || label == "exit") {
      return std::string(label);
    }
    const std::string_view gate = label_gate(label);
    const auto it = gate_map.find(std::string(gate));
    if (it == gate_map.end()) {
      return std::string(label);
    }
    return it->second + std::string(label.substr(gate.size()));
  });
}

}  // namespace multival::lts
