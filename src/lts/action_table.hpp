// Interned table of action labels shared by the states of one LTS.
//
// Labels follow the CADP/Aldebaran conventions used throughout the Multival
// flow: the internal (invisible) action is spelled "i" and always has id 0;
// the successful-termination action (LOTOS "delta") is spelled "exit" and
// always has id 1.  Visible labels are arbitrary non-empty strings, typically
// of the form "GATE !v1 !v2" for value-passing gates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace multival::lts {

using ActionId = std::uint32_t;

class ActionTable {
 public:
  /// Id of the invisible action "i" (LOTOS tau).
  static constexpr ActionId kTau = 0;
  /// Id of the successful-termination action "exit" (LOTOS delta).
  static constexpr ActionId kExit = 1;

  /// A fresh table always contains "i" and "exit".
  ActionTable();

  /// Returns the id of @p name, interning it if not yet present.
  ActionId intern(std::string_view name);

  /// Returns the id of @p name if already interned.
  [[nodiscard]] std::optional<ActionId> find(std::string_view name) const;

  /// Returns the label text of @p id. Precondition: id < size().
  [[nodiscard]] std::string_view name(ActionId id) const;

  /// Number of distinct labels (including "i" and "exit").
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  [[nodiscard]] static bool is_tau(ActionId id) { return id == kTau; }
  [[nodiscard]] static bool is_exit(ActionId id) { return id == kExit; }

  /// All visible labels (everything but "i"), in id order.
  [[nodiscard]] std::vector<std::string> visible_labels() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ActionId> ids_;
};

}  // namespace multival::lts
