#include "lts/action_table.hpp"

#include <stdexcept>

namespace multival::lts {

ActionTable::ActionTable() {
  [[maybe_unused]] const ActionId tau = intern("i");
  [[maybe_unused]] const ActionId exit = intern("exit");
}

ActionId ActionTable::intern(std::string_view name) {
  if (name.empty()) {
    throw std::invalid_argument("ActionTable::intern: empty label");
  }
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<ActionId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<ActionId> ActionTable::find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string_view ActionTable::name(ActionId id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("ActionTable::name: unknown action id");
  }
  return names_[id];
}

std::vector<std::string> ActionTable::visible_labels() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (ActionId id = 0; id < names_.size(); ++id) {
    if (!is_tau(id)) {
      out.push_back(names_[id]);
    }
  }
  return out;
}

}  // namespace multival::lts
