// Labelled Transition System: the central semantic object of the Multival
// flow.  LOTOS-like process models are compiled into LTSs (proc/generator),
// which are then minimised (bisim/), model-checked (mc/), composed (compose/)
// or decorated with stochastic timing (imc/, core/flow).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "lts/action_table.hpp"

namespace multival::lts {

using StateId = std::uint32_t;

/// Sentinel for "no state".
inline constexpr StateId kNoState = static_cast<StateId>(-1);

/// One outgoing transition: an action label and a destination state.
struct OutEdge {
  ActionId action = 0;
  StateId dst = 0;

  friend bool operator==(const OutEdge&, const OutEdge&) = default;
};

/// One fully-qualified transition (source included).
struct Transition {
  StateId src = 0;
  ActionId action = 0;
  StateId dst = 0;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// An explicit-state LTS with interned action labels.
///
/// States are dense ids `0..num_states()-1`; transitions are stored per
/// source state.  The structure is mutable (states and transitions can be
/// added at any time) which the generators rely on; analyses treat it as
/// immutable.
class Lts {
 public:
  Lts() = default;

  /// Adds a fresh state and returns its id.
  StateId add_state();

  /// Adds @p n fresh states, returning the id of the first.
  StateId add_states(std::size_t n);

  /// Adds a transition; both states must already exist.
  void add_transition(StateId src, ActionId action, StateId dst);

  /// Convenience overload interning @p label.
  void add_transition(StateId src, std::string_view label, StateId dst);

  void set_initial_state(StateId s);
  [[nodiscard]] StateId initial_state() const { return initial_; }

  [[nodiscard]] std::size_t num_states() const { return out_.size(); }
  [[nodiscard]] std::size_t num_transitions() const { return num_transitions_; }

  /// Outgoing transitions of @p s, in insertion order.
  [[nodiscard]] std::span<const OutEdge> out(StateId s) const;

  [[nodiscard]] ActionTable& actions() { return actions_; }
  [[nodiscard]] const ActionTable& actions() const { return actions_; }

  /// True if @p s has no outgoing transition.
  [[nodiscard]] bool is_deadlock(StateId s) const { return out(s).empty(); }

  /// All transitions, flattened (src-major, insertion order).
  [[nodiscard]] std::vector<Transition> all_transitions() const;

  /// Per-state incoming transition lists (src stored in OutEdge::dst slot).
  /// Entry [s] holds pairs (action, predecessor).
  [[nodiscard]] std::vector<std::vector<OutEdge>> predecessors() const;

 private:
  void check_state(StateId s, const char* what) const;

  ActionTable actions_;
  std::vector<std::vector<OutEdge>> out_;
  StateId initial_ = 0;
  std::size_t num_transitions_ = 0;
};

}  // namespace multival::lts
