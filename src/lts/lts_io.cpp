#include "lts/lts_io.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace multival::lts {

void write_aut(std::ostream& os, const Lts& l) {
  os << "des (" << l.initial_state() << ", " << l.num_transitions() << ", "
     << l.num_states() << ")\n";
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      if (label == "i") {
        os << '(' << s << ", i, " << e.dst << ")\n";
      } else {
        os << '(' << s << ", \"" << label << "\", " << e.dst << ")\n";
      }
    }
  }
}

std::string to_aut(const Lts& l) {
  std::ostringstream os;
  write_aut(os, l);
  return os.str();
}

namespace {

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("read_aut: malformed line: " + line);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
}

std::uint64_t parse_number(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    malformed(s);
  }
  std::uint64_t v = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  return v;
}

void expect(const std::string& s, std::size_t& i, char c) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != c) {
    malformed(s);
  }
  ++i;
}

std::string parse_label(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) {
    malformed(s);
  }
  if (s[i] == '"') {
    ++i;
    std::string label;
    while (i < s.size() && s[i] != '"') {
      label.push_back(s[i]);
      ++i;
    }
    if (i >= s.size()) {
      malformed(s);
    }
    ++i;  // closing quote
    return label;
  }
  std::string label;
  while (i < s.size() && s[i] != ',' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    label.push_back(s[i]);
    ++i;
  }
  if (label.empty()) {
    malformed(s);
  }
  return label;
}

}  // namespace

Lts read_aut(std::istream& is) {
  std::string line;
  // Header.
  do {
    if (!std::getline(is, line)) {
      throw std::runtime_error("read_aut: missing 'des' header");
    }
  } while (line.find_first_not_of(" \t\r\n") == std::string::npos);

  std::size_t i = line.find("des");
  if (i == std::string::npos) {
    throw std::runtime_error("read_aut: missing 'des' header");
  }
  i += 3;
  expect(line, i, '(');
  const std::uint64_t initial = parse_number(line, i);
  expect(line, i, ',');
  const std::uint64_t ntrans = parse_number(line, i);
  expect(line, i, ',');
  const std::uint64_t nstates = parse_number(line, i);
  expect(line, i, ')');

  Lts l;
  l.add_states(nstates);
  if (initial >= nstates) {
    throw std::runtime_error("read_aut: initial state out of range");
  }
  l.set_initial_state(static_cast<StateId>(initial));

  std::uint64_t parsed = 0;
  while (parsed < ntrans) {
    if (!std::getline(is, line)) {
      throw std::runtime_error("read_aut: fewer transitions than declared");
    }
    std::size_t j = 0;
    skip_ws(line, j);
    if (j >= line.size()) {
      continue;  // blank line
    }
    expect(line, j, '(');
    const std::uint64_t src = parse_number(line, j);
    expect(line, j, ',');
    const std::string label = parse_label(line, j);
    expect(line, j, ',');
    const std::uint64_t dst = parse_number(line, j);
    expect(line, j, ')');
    if (src >= nstates || dst >= nstates) {
      throw std::runtime_error("read_aut: state id out of range");
    }
    l.add_transition(static_cast<StateId>(src), std::string_view(label),
                     static_cast<StateId>(dst));
    ++parsed;
  }
  return l;
}

Lts from_aut(const std::string& text) {
  std::istringstream is(text);
  return read_aut(is);
}

void write_dot(std::ostream& os, const Lts& l) {
  os << "digraph lts {\n  rankdir=LR;\n  node [shape=circle];\n";
  if (l.num_states() > 0) {
    os << "  " << l.initial_state() << " [shape=doublecircle];\n";
  }
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const OutEdge& e : l.out(s)) {
      const std::string_view label = l.actions().name(e.action);
      os << "  " << s << " -> " << e.dst << " [label=\"";
      for (const char c : label) {
        if (c == '"' || c == '\\') {
          os << '\\';
        }
        os << c;
      }
      os << '"';
      if (ActionTable::is_tau(e.action)) {
        os << ", style=dashed";
      }
      os << "];\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const Lts& l) {
  std::ostringstream os;
  write_dot(os, l);
  return os.str();
}

}  // namespace multival::lts
