// Textual I/O for LTSs in the Aldebaran (.aut) format used by CADP:
//
//   des (<initial>, <num-transitions>, <num-states>)
//   (<src>, "<label>", <dst>)
//   ...
//
// Labels containing no special characters may be unquoted; we always write
// quoted labels except for "i".
#pragma once

#include <iosfwd>
#include <string>

#include "lts/lts.hpp"

namespace multival::lts {

/// Writes @p l in .aut format.
void write_aut(std::ostream& os, const Lts& l);

/// Renders @p l as a .aut string.
[[nodiscard]] std::string to_aut(const Lts& l);

/// Parses a .aut description.  Throws std::runtime_error on malformed input.
[[nodiscard]] Lts read_aut(std::istream& is);

/// Parses a .aut string.
[[nodiscard]] Lts from_aut(const std::string& text);

/// Writes @p l as a Graphviz digraph (tau edges dashed, initial state
/// double-circled) for visual inspection of small models.
void write_dot(std::ostream& os, const Lts& l);
[[nodiscard]] std::string to_dot(const Lts& l);

}  // namespace multival::lts
