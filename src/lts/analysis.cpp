#include "lts/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace multival::lts {

std::vector<bool> reachable_states(const Lts& l) {
  std::vector<bool> seen(l.num_states(), false);
  if (l.num_states() == 0) {
    return seen;
  }
  std::vector<StateId> stack{l.initial_state()};
  seen[l.initial_state()] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const OutEdge& e : l.out(s)) {
      if (!seen[e.dst]) {
        seen[e.dst] = true;
        stack.push_back(e.dst);
      }
    }
  }
  return seen;
}

TrimResult trim(const Lts& l) {
  const std::vector<bool> seen = reachable_states(l);
  TrimResult r;
  r.old_to_new.assign(l.num_states(), kNoState);
  // Copy the action table wholesale so ids stay valid.
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (seen[s]) {
      r.old_to_new[s] = r.lts.add_state();
    } else {
      ++r.removed_states;
    }
  }
  for (ActionId a = 0; a < l.actions().size(); ++a) {
    r.lts.actions().intern(l.actions().name(a));
  }
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (!seen[s]) {
      continue;
    }
    for (const OutEdge& e : l.out(s)) {
      r.lts.add_transition(r.old_to_new[s], e.action, r.old_to_new[e.dst]);
    }
  }
  if (l.num_states() > 0) {
    r.lts.set_initial_state(r.old_to_new[l.initial_state()]);
  }
  return r;
}

std::vector<StateId> deadlock_states(const Lts& l) {
  const std::vector<bool> seen = reachable_states(l);
  std::vector<StateId> out;
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (seen[s] && l.is_deadlock(s)) {
      out.push_back(s);
    }
  }
  return out;
}

namespace {

// Iterative Tarjan SCC.
struct TarjanFrame {
  StateId state;
  std::size_t edge_index;
};

}  // namespace

SccResult strongly_connected_components(
    const Lts& l, const std::function<bool(const OutEdge&)>& edge_filter) {
  const std::size_t n = l.num_states();
  constexpr StateId kUnvisited = kNoState;
  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<StateId> index(n, kUnvisited);
  std::vector<StateId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> scc_stack;
  std::vector<TarjanFrame> call_stack;
  StateId next_index = 0;

  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call_stack.push_back(TarjanFrame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      TarjanFrame& fr = call_stack.back();
      const StateId v = fr.state;
      const auto edges = l.out(v);
      bool descended = false;
      while (fr.edge_index < edges.size()) {
        const OutEdge& e = edges[fr.edge_index++];
        if (!edge_filter(e)) {
          continue;
        }
        const StateId w = e.dst;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(TarjanFrame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        const auto comp = static_cast<StateId>(result.num_components++);
        StateId w = kNoState;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = comp;
        } while (w != v);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const StateId parent = call_stack.back().state;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

SccResult strongly_connected_components(const Lts& l) {
  return strongly_connected_components(l,
                                       [](const OutEdge&) { return true; });
}

std::vector<StateId> divergent_states(const Lts& l) {
  const auto is_tau_edge = [](const OutEdge& e) {
    return ActionTable::is_tau(e.action);
  };
  const SccResult scc = strongly_connected_components(l, is_tau_edge);
  // A state is on a tau cycle iff its tau-SCC has more than one member, or it
  // has a tau self-loop.
  std::vector<std::size_t> comp_size(scc.num_components, 0);
  for (StateId s = 0; s < l.num_states(); ++s) {
    ++comp_size[scc.component_of[s]];
  }
  const std::vector<bool> seen = reachable_states(l);
  std::vector<StateId> out;
  for (StateId s = 0; s < l.num_states(); ++s) {
    if (!seen[s]) {
      continue;
    }
    bool divergent = comp_size[scc.component_of[s]] > 1;
    if (!divergent) {
      for (const OutEdge& e : l.out(s)) {
        if (is_tau_edge(e) && e.dst == s) {
          divergent = true;
          break;
        }
      }
    }
    if (divergent) {
      out.push_back(s);
    }
  }
  return out;
}

bool has_tau_cycle(const Lts& l) { return !divergent_states(l).empty(); }

std::vector<ActionId> used_actions(const Lts& l) {
  std::vector<bool> used(l.actions().size(), false);
  for (StateId s = 0; s < l.num_states(); ++s) {
    for (const OutEdge& e : l.out(s)) {
      used[e.action] = true;
    }
  }
  std::vector<ActionId> out;
  for (ActionId a = 0; a < used.size(); ++a) {
    if (used[a]) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace multival::lts
