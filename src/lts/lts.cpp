#include "lts/lts.hpp"

#include <stdexcept>
#include <string>

namespace multival::lts {

StateId Lts::add_state() {
  out_.emplace_back();
  return static_cast<StateId>(out_.size() - 1);
}

StateId Lts::add_states(std::size_t n) {
  const auto first = static_cast<StateId>(out_.size());
  out_.resize(out_.size() + n);
  return first;
}

void Lts::check_state(StateId s, const char* what) const {
  if (s >= out_.size()) {
    throw std::out_of_range(std::string("Lts: unknown state in ") + what);
  }
}

void Lts::add_transition(StateId src, ActionId action, StateId dst) {
  check_state(src, "add_transition(src)");
  check_state(dst, "add_transition(dst)");
  if (action >= actions_.size()) {
    throw std::out_of_range("Lts::add_transition: unknown action id");
  }
  out_[src].push_back(OutEdge{action, dst});
  ++num_transitions_;
}

void Lts::add_transition(StateId src, std::string_view label, StateId dst) {
  add_transition(src, actions_.intern(label), dst);
}

void Lts::set_initial_state(StateId s) {
  check_state(s, "set_initial_state");
  initial_ = s;
}

std::span<const OutEdge> Lts::out(StateId s) const {
  check_state(s, "out");
  return out_[s];
}

std::vector<Transition> Lts::all_transitions() const {
  std::vector<Transition> ts;
  ts.reserve(num_transitions_);
  for (StateId s = 0; s < out_.size(); ++s) {
    for (const OutEdge& e : out_[s]) {
      ts.push_back(Transition{s, e.action, e.dst});
    }
  }
  return ts;
}

std::vector<std::vector<OutEdge>> Lts::predecessors() const {
  std::vector<std::vector<OutEdge>> in(out_.size());
  for (StateId s = 0; s < out_.size(); ++s) {
    for (const OutEdge& e : out_[s]) {
      in[e.dst].push_back(OutEdge{e.action, s});
    }
  }
  return in;
}

}  // namespace multival::lts
