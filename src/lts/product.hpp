// LTS-level parallel composition, hiding and renaming.
//
// These mirror the LOTOS operators `|[G]|`, `hide G in P` and renaming, but
// operate on already-generated LTSs — the building blocks of the
// compositional verification flow (generate components, minimise, compose).
//
// Labels carry value offers ("GATE !1 !2"); the *gate* of a label is its
// first whitespace-delimited token.  Synchronisation is requested per gate
// but requires full label equality, which implements LOTOS value matching.
// The "exit" action always synchronises (LOTOS delta); "i" never does.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lts/lts.hpp"

namespace multival::lts {

/// Gate part of a label: the prefix before the first space.
[[nodiscard]] std::string_view label_gate(std::string_view label);

/// Parallel composition of @p a and @p b synchronising on the gates in
/// @p sync_gates (plus "exit").  Only the reachable part is built.
[[nodiscard]] Lts parallel(const Lts& a, const Lts& b,
                           std::span<const std::string> sync_gates);

/// N-ary composition: folds `parallel` left to right with the same gate set.
/// All components synchronise together on every gate in @p sync_gates only if
/// each offers it; for pairwise-distinct channels use distinct gate names.
[[nodiscard]] Lts parallel_all(std::span<const Lts> components,
                               std::span<const std::string> sync_gates);

/// Interleaving (no synchronisation except "exit").
[[nodiscard]] Lts interleave(const Lts& a, const Lts& b);

/// Renames every label whose gate is in @p gates to "i".
[[nodiscard]] Lts hide(const Lts& l, std::span<const std::string> gates);

/// Hides every visible label except those whose gate is in @p gates.
[[nodiscard]] Lts hide_all_but(const Lts& l,
                               std::span<const std::string> gates);

/// Renames gates according to @p gate_map (offers are preserved).
[[nodiscard]] Lts rename(
    const Lts& l, const std::unordered_map<std::string, std::string>& gate_map);

}  // namespace multival::lts
