#include "serve/solvers.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "analyze/analyze.hpp"
#include "core/flow.hpp"
#include "imc/imc_io.hpp"
#include "imc/scheduler.hpp"
#include "lts/lts_io.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "mc/evaluator.hpp"
#include "mc/parser.hpp"

namespace multival::serve {

namespace {

constexpr std::string_view kKeySchema = "serve-v1";

[[noreturn]] void reject(std::string message, std::string hint = {}) {
  throw InvalidRequest({core::Diagnostic{"MV010", core::Severity::kError,
                                         std::move(message), "request", 0, 0,
                                         std::move(hint)}});
}

std::shared_ptr<const imc::Imc> parse_imc_payload(const Request& r) {
  if (r.payload.empty()) {
    reject("empty model payload");
  }
  std::istringstream is(r.payload);
  try {
    return std::make_shared<const imc::Imc>(imc::read_aut(is));
  } catch (const std::exception& e) {
    reject(std::string("malformed .aut model: ") + e.what());
  }
}

/// Pre-flight for the verbs that need a deterministic closed CTMC
/// (reach/throughput): a residually nondeterministic IMC can never be
/// flattened by core::close_model (NondetPolicy::kReject), so reject it now
/// with the lint diagnostics instead of burning a worker on it.
void require_deterministic(const imc::Imc& m, std::string_view verb) {
  analyze::Analysis a = analyze::lint_imc(m);
  std::vector<core::Diagnostic> blocking;
  for (core::Diagnostic& d : a.diagnostics) {
    if (d.code == "MV011" || d.code == "MV013") {
      d.severity = core::Severity::kError;  // fatal for this verb
      d.hint = std::string("'") + std::string(verb) +
               "' needs a deterministic closed chain; solve with scheduler "
               "interval bounds ('bounds'), or resolve the nondeterminism "
               "(lump/minimise first)";
      blocking.push_back(std::move(d));
    }
  }
  if (!blocking.empty()) {
    throw InvalidRequest(std::move(blocking));
  }
}

double parse_time_bound(const std::string& arg) {
  std::size_t used = 0;
  double t = 0.0;
  try {
    t = std::stod(arg, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != arg.size() || !(t > 0.0)) {
    reject("bad time bound '" + arg + "'", "expected a positive number");
  }
  return t;
}

std::vector<bool> absorbing_states(const markov::Ctmc& c) {
  std::vector<bool> target(c.num_states(), false);
  bool any = false;
  for (markov::MState s = 0; s < c.num_states(); ++s) {
    target[s] = c.is_absorbing(s);
    any = any || target[s];
  }
  if (!any) {
    throw std::runtime_error("serve: model has no absorbing state");
  }
  return target;
}

// Shared state of a reach batch: every time bound over one model reuses
// the closed CTMC (whose uniformised DTMC/CSR matrix is cached inside
// markov::Ctmc, so the expensive build happens once per sweep).
struct ReachShared {
  core::ClosedModel closed;
};

Prepared prepare_reach(const Request& r) {
  auto m = parse_imc_payload(r);
  require_deterministic(*m, "reach");
  // Canonicalise the time bound through its parsed value, so "0.50" and
  // "0.5" share one cache entry.
  const bool bounded = !r.arg.empty();
  const double t = bounded ? parse_time_bound(r.arg) : 0.0;
  Hasher h;
  h.str(kKeySchema);
  h.str("reach");
  h.str(bounded ? format_double(t) : "");
  hash_append(h, *m);
  Prepared p;
  p.key = h.key();
  p.model_states = m->num_states();
  Hasher hb;
  hb.str(kKeySchema);
  hb.str("batch-reach");
  hash_append(hb, *m);
  p.batch_key = hb.key();
  p.setup = [m]() -> std::shared_ptr<void> {
    return std::make_shared<ReachShared>(ReachShared{core::close_model(*m)});
  };
  p.run_shared = [bounded, t](void* shared) {
    const auto& closed = static_cast<ReachShared*>(shared)->closed;
    if (bounded) {
      const double p = markov::absorption_probability_by(closed.ctmc, t);
      return "P[absorbed by t=" + format_double(t) +
             "] = " + format_double(p);
    }
    const std::vector<bool> target = absorbing_states(closed.ctmc);
    const std::vector<double> per_state =
        markov::reachability_probability(closed.ctmc, target);
    const std::vector<double> pi0 = closed.ctmc.initial_distribution();
    double prob = 0.0;
    for (std::size_t s = 0; s < per_state.size(); ++s) {
      prob += pi0[s] * per_state[s];
    }
    return "P[reach absorbing] = " + format_double(prob);
  };
  // The solo path runs the exact batch code against a one-flight batch, so
  // batched and unbatched answers are byte-identical by construction.
  p.run = [setup = p.setup, run_shared = p.run_shared]() {
    return run_shared(setup().get());
  };
  return p;
}

Prepared prepare_bounds(const Request& r) {
  auto m = parse_imc_payload(r);
  Hasher h;
  h.str(kKeySchema);
  h.str("bounds");
  hash_append(h, *m);
  Prepared p;
  p.key = h.key();
  p.model_states = m->num_states();
  p.run = [m]() {
    std::vector<bool> absorbing(m->num_states(), false);
    for (imc::StateId s = 0; s < m->num_states(); ++s) {
      absorbing[s] = m->interactive(s).empty() && m->markovian(s).empty();
    }
    const imc::Bounds rb = imc::reachability_bounds(*m, absorbing);
    const imc::Bounds tb = imc::absorption_time_bounds(*m);
    return "reach in [" + format_double(rb.min) + ", " +
           format_double(rb.max) + "]; time in [" + format_double(tb.min) +
           ", " + format_double(tb.max) + "]";
  };
  return p;
}

Prepared prepare_check(const Request& r) {
  if (r.payload.empty()) {
    reject("empty model payload");
  }
  std::shared_ptr<const lts::Lts> l;
  try {
    l = std::make_shared<const lts::Lts>(lts::from_aut(r.payload));
  } catch (const std::exception& e) {
    reject(std::string("malformed .aut model: ") + e.what());
  }
  mc::FormulaPtr f;
  try {
    f = mc::parse_formula(r.arg);
  } catch (const std::exception& e) {
    reject(std::string("malformed formula: ") + e.what());
  }
  Hasher h;
  h.str(kKeySchema);
  h.str("check");
  h.str(f->to_string());  // canonical rendering, not the raw input text
  hash_append(h, *l);
  Prepared p;
  p.key = h.key();
  p.model_states = l->num_states();
  p.run = [l, f]() {
    const mc::StateSet sat = mc::evaluate(*l, f);
    const bool holds = l->num_states() > 0 && sat.contains(l->initial_state());
    return std::string(holds ? "TRUE" : "FALSE") + " sat=" +
           std::to_string(sat.count()) + "/" +
           std::to_string(l->num_states());
  };
  return p;
}

// Shared state of a throughput batch: one closed chain and one steady-state
// solve answer every label glob in the sweep.
struct ThroughputShared {
  core::ClosedModel closed;
  std::vector<double> pi;
  bool have_pi = false;
};

Prepared prepare_throughput(const Request& r) {
  auto m = parse_imc_payload(r);
  // An explicit "uniform:" prefix on the glob opts into resolving residual
  // interactive nondeterminism by a uniform scheduler instead of rejecting
  // the model (the policy the NoC contention models are analysed under).
  // The prefix is part of the hashed arg, so the two policies never share a
  // cache entry.
  constexpr std::string_view kUniform = "uniform:";
  const bool uniform = r.arg.rfind(kUniform, 0) == 0;
  const std::string glob =
      uniform ? r.arg.substr(kUniform.size()) : r.arg;
  if (!uniform) {
    require_deterministic(*m, "throughput");
  }
  if (glob.empty()) {
    reject("throughput needs a label glob", "pass the label pattern as arg");
  }
  Hasher h;
  h.str(kKeySchema);
  h.str("throughput");
  h.str(r.arg);
  hash_append(h, *m);
  const imc::NondetPolicy policy =
      uniform ? imc::NondetPolicy::kUniform : imc::NondetPolicy::kReject;
  Prepared p;
  p.key = h.key();
  p.model_states = m->num_states();
  // The closed chain (and its steady state) depends on the scheduler
  // policy, so batches never mix the two.
  Hasher hb;
  hb.str(kKeySchema);
  hb.str(uniform ? "batch-throughput-uniform" : "batch-throughput");
  hash_append(hb, *m);
  p.batch_key = hb.key();
  p.setup = [m, policy]() -> std::shared_ptr<void> {
    return std::make_shared<ThroughputShared>(
        ThroughputShared{core::close_model(*m, policy), {}, false});
  };
  p.run_shared = [glob](void* shared) {
    auto& sh = *static_cast<ThroughputShared*>(shared);
    // Batches are swept by one worker, so plain lazy init is safe; every
    // glob over the same model reuses one steady-state solve.
    if (!sh.have_pi) {
      sh.pi = markov::steady_state(sh.closed.ctmc);
      sh.have_pi = true;
    }
    const double v = markov::throughput(sh.closed.ctmc, sh.pi, glob);
    return "throughput(" + glob + ") = " + format_double(v);
  };
  p.run = [setup = p.setup, run_shared = p.run_shared]() {
    return run_shared(setup().get());
  };
  return p;
}

}  // namespace

bool is_solve_verb(Verb v) {
  switch (v) {
    case Verb::kReach:
    case Verb::kBounds:
    case Verb::kCheck:
    case Verb::kThroughput:
      return true;
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      return false;
  }
  return false;
}

Prepared prepare_request(const Request& r) {
  switch (r.verb) {
    case Verb::kReach:
      return prepare_reach(r);
    case Verb::kBounds:
      return prepare_bounds(r);
    case Verb::kCheck:
      return prepare_check(r);
    case Verb::kThroughput:
      return prepare_throughput(r);
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  throw std::runtime_error(std::string("serve: '") +
                           std::string(to_string(r.verb)) +
                           "' is not a solve verb");
}

std::string solve_request(const Request& r) {
  return prepare_request(r).run();
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace multival::serve
