#include "serve/solvers.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/flow.hpp"
#include "imc/imc_io.hpp"
#include "imc/scheduler.hpp"
#include "lts/lts_io.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "mc/evaluator.hpp"
#include "mc/parser.hpp"

namespace multival::serve {

namespace {

constexpr std::string_view kKeySchema = "serve-v1";

std::shared_ptr<const imc::Imc> parse_imc_payload(const Request& r) {
  if (r.payload.empty()) {
    throw std::runtime_error("serve: empty model payload");
  }
  std::istringstream is(r.payload);
  return std::make_shared<const imc::Imc>(imc::read_aut(is));
}

double parse_time_bound(const std::string& arg) {
  std::size_t used = 0;
  const double t = std::stod(arg, &used);
  if (used != arg.size() || !(t > 0.0)) {
    throw std::runtime_error("serve: bad time bound '" + arg + "'");
  }
  return t;
}

std::vector<bool> absorbing_states(const markov::Ctmc& c) {
  std::vector<bool> target(c.num_states(), false);
  bool any = false;
  for (markov::MState s = 0; s < c.num_states(); ++s) {
    target[s] = c.is_absorbing(s);
    any = any || target[s];
  }
  if (!any) {
    throw std::runtime_error("serve: model has no absorbing state");
  }
  return target;
}

Prepared prepare_reach(const Request& r) {
  auto m = parse_imc_payload(r);
  // Canonicalise the time bound through its parsed value, so "0.50" and
  // "0.5" share one cache entry.
  const bool bounded = !r.arg.empty();
  const double t = bounded ? parse_time_bound(r.arg) : 0.0;
  Hasher h;
  h.str(kKeySchema);
  h.str("reach");
  h.str(bounded ? format_double(t) : "");
  hash_append(h, *m);
  return Prepared{h.key(), [m, bounded, t]() {
    const core::ClosedModel closed = core::close_model(*m);
    if (bounded) {
      const double p = markov::absorption_probability_by(closed.ctmc, t);
      return "P[absorbed by t=" + format_double(t) +
             "] = " + format_double(p);
    }
    const std::vector<bool> target = absorbing_states(closed.ctmc);
    const std::vector<double> per_state =
        markov::reachability_probability(closed.ctmc, target);
    const std::vector<double> pi0 = closed.ctmc.initial_distribution();
    double p = 0.0;
    for (std::size_t s = 0; s < per_state.size(); ++s) {
      p += pi0[s] * per_state[s];
    }
    return "P[reach absorbing] = " + format_double(p);
  }};
}

Prepared prepare_bounds(const Request& r) {
  auto m = parse_imc_payload(r);
  Hasher h;
  h.str(kKeySchema);
  h.str("bounds");
  hash_append(h, *m);
  return Prepared{h.key(), [m]() {
    std::vector<bool> absorbing(m->num_states(), false);
    for (imc::StateId s = 0; s < m->num_states(); ++s) {
      absorbing[s] = m->interactive(s).empty() && m->markovian(s).empty();
    }
    const imc::Bounds rb = imc::reachability_bounds(*m, absorbing);
    const imc::Bounds tb = imc::absorption_time_bounds(*m);
    return "reach in [" + format_double(rb.min) + ", " +
           format_double(rb.max) + "]; time in [" + format_double(tb.min) +
           ", " + format_double(tb.max) + "]";
  }};
}

Prepared prepare_check(const Request& r) {
  if (r.payload.empty()) {
    throw std::runtime_error("serve: empty model payload");
  }
  auto l = std::make_shared<const lts::Lts>(lts::from_aut(r.payload));
  auto f = mc::parse_formula(r.arg);
  Hasher h;
  h.str(kKeySchema);
  h.str("check");
  h.str(f->to_string());  // canonical rendering, not the raw input text
  hash_append(h, *l);
  return Prepared{h.key(), [l, f]() {
    const mc::StateSet sat = mc::evaluate(*l, f);
    const bool holds = l->num_states() > 0 && sat.contains(l->initial_state());
    return std::string(holds ? "TRUE" : "FALSE") + " sat=" +
           std::to_string(sat.count()) + "/" +
           std::to_string(l->num_states());
  }};
}

Prepared prepare_throughput(const Request& r) {
  auto m = parse_imc_payload(r);
  if (r.arg.empty()) {
    throw std::runtime_error("serve: throughput needs a label glob");
  }
  Hasher h;
  h.str(kKeySchema);
  h.str("throughput");
  h.str(r.arg);
  hash_append(h, *m);
  const std::string glob = r.arg;
  return Prepared{h.key(), [m, glob]() {
    const core::ClosedModel closed = core::close_model(*m);
    const std::vector<double> pi = markov::steady_state(closed.ctmc);
    const double v = markov::throughput(closed.ctmc, pi, glob);
    return "throughput(" + glob + ") = " + format_double(v);
  }};
}

}  // namespace

bool is_solve_verb(Verb v) {
  switch (v) {
    case Verb::kReach:
    case Verb::kBounds:
    case Verb::kCheck:
    case Verb::kThroughput:
      return true;
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      return false;
  }
  return false;
}

Prepared prepare_request(const Request& r) {
  switch (r.verb) {
    case Verb::kReach:
      return prepare_reach(r);
    case Verb::kBounds:
      return prepare_bounds(r);
    case Verb::kCheck:
      return prepare_check(r);
    case Verb::kThroughput:
      return prepare_throughput(r);
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  throw std::runtime_error(std::string("serve: '") +
                           std::string(to_string(r.verb)) +
                           "' is not a solve verb");
}

std::string solve_request(const Request& r) {
  return prepare_request(r).run();
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace multival::serve
