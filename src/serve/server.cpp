#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <system_error>
#include <stdexcept>
#include <thread>

namespace multival::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Receive-deadline defaults (see Client): a request that carries its own
// deadline gets that plus kReceiveGrace of transport/queue slack; one that
// relies on the server default gets kReceiveCeiling.  Either way call()
// can never block forever on a wedged transport.
constexpr std::chrono::milliseconds kReceiveGrace{10000};
constexpr std::chrono::milliseconds kReceiveCeiling{60000};

// sockaddr_un::sun_path is ~108 bytes; a longer path cannot be bound.
sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: bad socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_address(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("serve: bad TCP host '" + ep.host +
                             "' (numeric IPv4 or 'localhost')");
  }
  return addr;
}

void set_nodelay(int fd) {
  // Request/response lines are latency-bound, not bandwidth-bound: never
  // let Nagle hold a framed message back.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " +
                           std::system_category().message(errno));
}

// Full-buffer send; MSG_NOSIGNAL so a vanished peer yields EPIPE, not
// SIGPIPE.  Returns false once the connection is unusable.
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, data, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) {
    return path;
  }
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text) {
  if (text.empty()) {
    throw std::runtime_error("serve: empty endpoint");
  }
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos && colon + 1 < text.size()) {
    const char* first = text.data() + colon + 1;
    const char* last = text.data() + text.size();
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(first, last, port);
    if (ec == std::errc{} && ptr == last) {
      if (port > 65535) {
        throw std::runtime_error("serve: TCP port out of range in '" + text +
                                 "'");
      }
      Endpoint ep;
      ep.kind = Endpoint::Kind::kTcp;
      ep.host = colon == 0 ? "127.0.0.1" : text.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(port);
      return ep;
    }
  }
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = text;
  return ep;
}

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  bound_ = parse_endpoint(opts_.endpoint);
  if (bound_.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_address(bound_.path);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw_errno("socket() failed");
    }
    ::unlink(bound_.path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, opts_.listen_backlog) != 0) {
      const std::string err = std::system_category().message(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("serve: cannot listen on " + bound_.path +
                               ": " + err);
    }
  } else {
    sockaddr_in addr = make_tcp_address(bound_);
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw_errno("socket() failed");
    }
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, opts_.listen_backlog) != 0) {
      const std::string err = std::system_category().message(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("serve: cannot listen on " +
                               bound_.to_string() + ": " + err);
    }
    // Port 0 asked the kernel for an ephemeral port: read back the real one
    // so bound_endpoint() is always connectable.
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual),
                      &len) == 0) {
      bound_.port = ntohs(actual.sin_port);
    }
  }
  service_ = std::make_unique<Service>(opts_.service);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (bound_.kind == Endpoint::Kind::kUnix) {
    ::unlink(bound_.path.c_str());
  }
}

void Server::stop() { stop_requested_.store(true); }

void Server::run() {
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check the stop flag) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    if (bound_.kind == Endpoint::Kind::kTcp) {
      set_nodelay(fd);
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
  // Teardown: unblock every connection reader (each reader closes its own
  // fd on exit), join them, then drain the service so no completion
  // callback can outlive the connections.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const ConnPtr& conn : conns_) {
      std::lock_guard<std::mutex> wlock(conn->write_mu);
      if (conn->open) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : conn_threads_) {
    t.join();
  }
  conn_threads_.clear();
  service_->shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
}

void Server::serve_connection(const ConnPtr& conn) {
  // The buffer survives across recv() calls, so a request split over many
  // segments (down to one byte each) and several requests coalesced into a
  // single segment both frame correctly.
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t k = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k <= 0) {
      break;  // peer closed, error, or teardown shutdown()
    }
    buffer.append(chunk, static_cast<std::size_t>(k));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) {
        handle_line(conn, line);
      }
    }
    buffer.erase(0, start);
  }
  // The reader owns the fd: closing only here (under the write lock) means
  // a completion callback can never write to a recycled descriptor.
  std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open = false;
  ::close(conn->fd);
}

void Server::handle_line(const ConnPtr& conn, const std::string& line) {
  Request request;
  try {
    request = decode_request(line);
  } catch (const std::exception& e) {
    write_response(conn, Response{0, Status::kError, e.what()});
    return;
  }
  if (request.verb == Verb::kShutdown) {
    write_response(conn, Response{request.id, Status::kOk, "bye"});
    stop();
    return;
  }
  service_->submit_async(std::move(request), [conn](Response response) {
    write_response(conn, response);
  });
}

void Server::write_response(const ConnPtr& conn, const Response& r) {
  const std::string line = encode_response(r) + "\n";
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open) {
    return;
  }
  if (!send_all(conn->fd, line.data(), line.size())) {
    // Wake the reader (which owns the close); do not close here.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

Client::Client(const std::string& endpoint,
               std::chrono::milliseconds connect_timeout,
               std::chrono::milliseconds receive_timeout)
    : receive_timeout_(receive_timeout) {
  const Endpoint ep = parse_endpoint(endpoint);
  sockaddr_un unix_addr{};
  sockaddr_in tcp_addr{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  int family = AF_UNIX;
  if (ep.kind == Endpoint::Kind::kUnix) {
    unix_addr = make_unix_address(ep.path);
    addr = reinterpret_cast<const sockaddr*>(&unix_addr);
    addr_len = sizeof unix_addr;
  } else {
    tcp_addr = make_tcp_address(ep);
    addr = reinterpret_cast<const sockaddr*>(&tcp_addr);
    addr_len = sizeof tcp_addr;
    family = AF_INET;
  }
  const auto deadline = Clock::now() + connect_timeout;
  std::chrono::milliseconds backoff{10};
  for (;;) {
    fd_ = ::socket(family, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error("serve client: socket() failed: " +
                               std::system_category().message(errno));
    }
    if (::connect(fd_, addr, addr_len) == 0) {
      if (ep.kind == Endpoint::Kind::kTcp) {
        set_nodelay(fd_);
      }
      return;
    }
    const int saved_errno = errno;
    const std::string err = std::system_category().message(saved_errno);
    ::close(fd_);
    fd_ = -1;
    // Only the "server not up yet" races are worth retrying: the socket
    // file not bound yet, or bound but the backlog not accepting yet.
    const bool transient = saved_errno == ENOENT || saved_errno == ECONNREFUSED;
    if (!transient || Clock::now() + backoff > deadline) {
      throw std::runtime_error("serve client: cannot connect to " +
                               ep.to_string() + ": " + err);
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds{1000});
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Response Client::call(const Request& r) {
  const std::string line = encode_request(r) + "\n";
  if (!send_all(fd_, line.data(), line.size())) {
    throw std::runtime_error("serve client: send failed: " +
                             std::system_category().message(errno));
  }
  // Receive deadline: the server's kTimeout guarantee only covers work it
  // dequeues — a wedged transport or hung server would otherwise block this
  // recv forever.  Derive the bound from the request's own deadline unless
  // the caller pinned one.
  const std::chrono::milliseconds budget =
      receive_timeout_.count() > 0
          ? receive_timeout_
          : (r.deadline.count() > 0 ? r.deadline + kReceiveGrace
                                    : kReceiveCeiling);
  const auto deadline = Clock::now() + budget;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string resp_line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (resp_line.empty()) {
        continue;
      }
      return decode_response(resp_line);
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      throw ClientTimeout("serve client: no response within " +
                          std::to_string(budget.count()) +
                          "ms (hung server or stalled transport)");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready == 0) {
      throw ClientTimeout("serve client: no response within " +
                          std::to_string(budget.count()) +
                          "ms (hung server or stalled transport)");
    }
    const ssize_t k = ::recv(fd_, chunk, sizeof chunk, 0);
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k <= 0) {
      throw std::runtime_error(
          "serve client: connection closed before a response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(k));
  }
}

}  // namespace multival::serve
