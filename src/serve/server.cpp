#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <system_error>
#include <stdexcept>
#include <thread>

namespace multival::serve {

namespace {

// sockaddr_un::sun_path is ~108 bytes; a longer path cannot be bound.
sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: bad socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Full-buffer send; MSG_NOSIGNAL so a vanished peer yields EPIPE, not
// SIGPIPE.  Returns false once the connection is unusable.
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, data, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  const sockaddr_un addr = make_address(opts_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::system_category().message(errno));
  }
  ::unlink(opts_.socket_path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, opts_.listen_backlog) != 0) {
    const std::string err = std::system_category().message(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + opts_.socket_path +
                             ": " + err);
  }
  service_ = std::make_unique<Service>(opts_.service);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
}

void Server::stop() { stop_requested_.store(true); }

void Server::run() {
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check the stop flag) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
  // Teardown: unblock every connection reader (each reader closes its own
  // fd on exit), join them, then drain the service so no completion
  // callback can outlive the connections.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const ConnPtr& conn : conns_) {
      std::lock_guard<std::mutex> wlock(conn->write_mu);
      if (conn->open) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : conn_threads_) {
    t.join();
  }
  conn_threads_.clear();
  service_->shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
}

void Server::serve_connection(const ConnPtr& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t k = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k <= 0) {
      break;  // peer closed, error, or teardown shutdown()
    }
    buffer.append(chunk, static_cast<std::size_t>(k));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) {
        handle_line(conn, line);
      }
    }
    buffer.erase(0, start);
  }
  // The reader owns the fd: closing only here (under the write lock) means
  // a completion callback can never write to a recycled descriptor.
  std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open = false;
  ::close(conn->fd);
}

void Server::handle_line(const ConnPtr& conn, const std::string& line) {
  Request request;
  try {
    request = decode_request(line);
  } catch (const std::exception& e) {
    write_response(conn, Response{0, Status::kError, e.what()});
    return;
  }
  if (request.verb == Verb::kShutdown) {
    write_response(conn, Response{request.id, Status::kOk, "bye"});
    stop();
    return;
  }
  service_->submit_async(std::move(request), [conn](Response response) {
    write_response(conn, response);
  });
}

void Server::write_response(const ConnPtr& conn, const Response& r) {
  const std::string line = encode_response(r) + "\n";
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open) {
    return;
  }
  if (!send_all(conn->fd, line.data(), line.size())) {
    // Wake the reader (which owns the close); do not close here.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

Client::Client(const std::string& socket_path,
               std::chrono::milliseconds connect_timeout) {
  const sockaddr_un addr = make_address(socket_path);
  const auto deadline = std::chrono::steady_clock::now() + connect_timeout;
  std::chrono::milliseconds backoff{10};
  for (;;) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error("serve client: socket() failed: " +
                               std::system_category().message(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return;
    }
    const int saved_errno = errno;
    const std::string err = std::system_category().message(saved_errno);
    ::close(fd_);
    fd_ = -1;
    // Only the two "server not up yet" races are worth retrying: the socket
    // file not bound yet, or bound but the backlog not accepting yet.
    const bool transient = saved_errno == ENOENT || saved_errno == ECONNREFUSED;
    if (!transient || std::chrono::steady_clock::now() + backoff > deadline) {
      throw std::runtime_error("serve client: cannot connect to " +
                               socket_path + ": " + err);
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds{1000});
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Response Client::call(const Request& r) {
  const std::string line = encode_request(r) + "\n";
  if (!send_all(fd_, line.data(), line.size())) {
    throw std::runtime_error("serve client: send failed: " +
                             std::system_category().message(errno));
  }
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string resp_line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (resp_line.empty()) {
        continue;
      }
      return decode_response(resp_line);
    }
    const ssize_t k = ::recv(fd_, chunk, sizeof chunk, 0);
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k <= 0) {
      throw std::runtime_error(
          "serve client: connection closed before a response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(k));
  }
}

}  // namespace multival::serve
