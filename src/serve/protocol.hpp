// Newline-delimited request/response protocol of the evaluation service.
//
// One message per line; fields are separated by a single TAB and escaped so
// that neither TAB nor newline ever appears raw inside a field:
//
//   '\\' -> "\\\\"     '\n' -> "\\n"     '\t' -> "\\t"
//
// Grammar (all fields escaped):
//
//   request  ::= "mv1" TAB id TAB verb TAB deadline-ms TAB arg TAB payload LF
//   response ::= "mv1" TAB id TAB status TAB body LF
//
//   id          decimal uint64, chosen by the client, echoed in responses
//               (responses on one connection may arrive out of order)
//   verb        ping | stats | shutdown | reach | bounds | check | throughput
//   deadline-ms decimal; 0 = server default
//   arg         verb-specific argument (formula for check, label glob for
//               throughput, optional time bound for reach; else empty)
//   payload     model text (.aut / extended-.aut) for the solve verbs
//   status      ok | error | overloaded | timeout | invalid
//
// Statuses:
//   ok          solved; body carries the result
//   error       the solver failed at runtime on a well-formed request
//   overloaded  queue full; resubmit later (no work was done)
//   timeout     the per-request deadline expired before the solve finished
//   invalid     the request is ill-formed (unparseable model, or a model the
//               verb can never solve, e.g. a nondeterministic IMC submitted
//               to reach/throughput); the body carries the structured lint
//               diagnostics (MV0xx codes, see README).  Rejected by a
//               syntax-polynomial pre-flight check before reaching a worker;
//               resubmitting the same payload can never succeed
//
// Solve verbs:
//   reach       payload = IMC; P[eventually absorbed] of the closed CTMC
//               from its initial state (arg = time bound t: P[absorbed<=t])
//   bounds      payload = nondeterministic IMC; certified min/max scheduler
//               bounds on reaching absorption, and on expected time
//   check       payload = LTS, arg = mu-calculus formula; TRUE/FALSE at the
//               initial state plus the satisfying-state count
//   throughput  payload = IMC, arg = label glob; steady-state throughput.
//               A "uniform:" prefix on the glob accepts nondeterministic
//               IMCs and resolves the residual choices with a uniform
//               scheduler instead of rejecting (kInvalid) the model
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace multival::serve {

struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Verb {
  kPing,
  kStats,
  kShutdown,
  kReach,
  kBounds,
  kCheck,
  kThroughput,
};

enum class Status {
  kOk,
  kError,
  kOverloaded,
  kTimeout,
  kInvalid,  ///< ill-formed request, rejected pre-flight with diagnostics
};

struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kPing;
  /// 0 = use the server's default deadline.
  std::chrono::milliseconds deadline{0};
  std::string arg;
  std::string payload;
};

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kError;
  std::string body;
};

[[nodiscard]] std::string_view to_string(Verb v);
[[nodiscard]] std::string_view to_string(Status s);
[[nodiscard]] Verb parse_verb(std::string_view text);    // throws ProtocolError
[[nodiscard]] Status parse_status(std::string_view text);

/// Escapes backslash, newline and TAB; unescape inverts (and rejects stray
/// escapes).
[[nodiscard]] std::string escape_field(std::string_view raw);
[[nodiscard]] std::string unescape_field(std::string_view field);

/// Message <-> line (without the trailing '\n').
[[nodiscard]] std::string encode_request(const Request& r);
[[nodiscard]] Request decode_request(std::string_view line);
[[nodiscard]] std::string encode_response(const Response& r);
[[nodiscard]] Response decode_response(std::string_view line);

}  // namespace multival::serve
