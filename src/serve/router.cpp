#include "serve/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/solvers.hpp"

namespace multival::serve {

Router::Router(std::vector<std::string> endpoints, RouterOptions opts)
    : opts_(opts), endpoints_(std::move(endpoints)) {
  if (endpoints_.empty()) {
    throw std::runtime_error("serve router: no replica endpoints");
  }
  if (opts_.vnodes == 0) {
    throw std::runtime_error("serve router: vnodes must be >= 1");
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    for (std::size_t j = i + 1; j < endpoints_.size(); ++j) {
      if (endpoints_[i] == endpoints_[j]) {
        throw std::runtime_error("serve router: duplicate replica endpoint '" +
                                 endpoints_[i] + "'");
      }
    }
  }
  ring_.reserve(endpoints_.size() * opts_.vnodes);
  for (std::size_t r = 0; r < endpoints_.size(); ++r) {
    for (unsigned v = 0; v < opts_.vnodes; ++v) {
      Hasher h;
      h.str("ring-v1");
      h.str(endpoints_[r]);
      h.u64(v);
      // One 64-bit lane of the canonical 128-bit digest is the ring point.
      ring_.push_back(Node{h.key().hi, r});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Node& a, const Node& b) {
    return a.point != b.point ? a.point < b.point : a.replica < b.replica;
  });
  core::MutexLock lock(mu_);  // satisfies the annotation; ctor is serial
  down_until_.assign(endpoints_.size(), Clock::time_point{});
}

std::uint64_t Router::key_point(const CacheKey& key) {
  // The cache key is already a mixed content digest; fold both lanes so the
  // ring position uses all 128 bits.
  return CacheKeyHash{}(key);
}

std::size_t Router::ring_start(const CacheKey& key) const {
  const std::uint64_t point = key_point(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Node& n, std::uint64_t p) { return n.point < p; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::size_t Router::owner(const CacheKey& key) const {
  return ring_[ring_start(key)].replica;
}

std::vector<std::size_t> Router::preference(const CacheKey& key) const {
  std::vector<std::size_t> order;
  order.reserve(endpoints_.size());
  std::vector<bool> seen(endpoints_.size(), false);
  const std::size_t start = ring_start(key);
  for (std::size_t i = 0; i < ring_.size() && order.size() < endpoints_.size();
       ++i) {
    const std::size_t replica = ring_[(start + i) % ring_.size()].replica;
    if (!seen[replica]) {
      seen[replica] = true;
      order.push_back(replica);
    }
  }
  return order;
}

std::size_t Router::route(const CacheKey& key) const {
  for (const std::size_t replica : preference(key)) {
    if (!is_down(replica)) {
      return replica;
    }
  }
  throw std::runtime_error("serve router: every replica is down");
}

void Router::mark_down(std::size_t replica) {
  core::MutexLock lock(mu_);
  down_until_[replica] = Clock::now() + opts_.down_cooldown;
}

void Router::mark_up(std::size_t replica) {
  core::MutexLock lock(mu_);
  down_until_[replica] = Clock::time_point{};
}

bool Router::is_down(std::size_t replica) const {
  core::MutexLock lock(mu_);
  return Clock::now() < down_until_[replica];
}

RoutedClient::RoutedClient(std::shared_ptr<Router> router,
                           std::chrono::milliseconds connect_timeout,
                           std::chrono::milliseconds receive_timeout)
    : router_(std::move(router)),
      connect_timeout_(connect_timeout),
      receive_timeout_(receive_timeout) {
  clients_.resize(router_->size());
  stats_.per_replica.assign(router_->size(), 0);
}

Response RoutedClient::call(const Request& r) {
  if (is_solve_verb(r.verb)) {
    return call(r, prepare_request(r).key);
  }
  // Control verbs (ping/stats/shutdown) have no content key; spread them by
  // their encoded line so e.g. repeated stats probes cover the fleet.
  Hasher h;
  h.str(encode_request(r));
  return call(r, h.key());
}

Response RoutedClient::call(const Request& r, const CacheKey& key) {
  ++stats_.calls;
  const std::vector<std::size_t> order = router_->preference(key);
  const std::size_t owner = order.front();
  std::string last_error;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t replica = order[rank];
    // A cooled-down replica re-enters the rotation automatically: is_down
    // flips back to false after the cooldown, and the next owning call
    // probes it again.  Non-owners are only skipped while marked down.
    if (router_->is_down(replica) && rank + 1 < order.size()) {
      continue;
    }
    try {
      if (!clients_[replica]) {
        clients_[replica] = std::make_unique<Client>(
            router_->endpoint(replica), connect_timeout_, receive_timeout_);
      }
      const Response response = clients_[replica]->call(r);
      router_->mark_up(replica);
      ++stats_.per_replica[replica];
      if (replica == owner) {
        ++stats_.primary;
      } else {
        ++stats_.failover;
      }
      return response;
    } catch (const std::exception& e) {
      // Transport failure (connect refused, send failed, receive timeout):
      // this connection is unusable — drop it, quarantine the replica and
      // try the next ring node.
      ++stats_.transport_errors;
      clients_[replica].reset();
      router_->mark_down(replica);
      last_error = e.what();
    }
  }
  throw std::runtime_error("serve router: all " +
                           std::to_string(order.size()) +
                           " replicas failed; last: " + last_error);
}

}  // namespace multival::serve
