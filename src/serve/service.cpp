#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "core/diag.hpp"
#include "core/parallel.hpp"

namespace multival::serve {

namespace {

// Latency reservoirs are capped; beyond the cap only the counters advance.
constexpr std::size_t kMaxSamples = 1u << 16;

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size() - 1)));
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace

core::Table ServiceMetrics::to_table() const {
  core::Table t("serve metrics", {"metric", "value"});
  t.add_row({"accepted", std::to_string(accepted)});
  t.add_row({"completed ok", std::to_string(completed_ok)});
  t.add_row({"failed", std::to_string(failed)});
  t.add_row({"invalid (rejected)", std::to_string(invalid)});
  t.add_row({"shed (overloaded)", std::to_string(shed)});
  t.add_row({"timed out", std::to_string(timed_out)});
  t.add_row({"coalesced", std::to_string(coalesced)});
  t.add_row({"cache hits", std::to_string(cache_hits)});
  t.add_row({"solves", std::to_string(solves)});
  t.add_row({"solve errors", std::to_string(solve_errors)});
  t.add_row({"batches / flights batched", std::to_string(batches) + " / " +
                                              std::to_string(batched)});
  t.add_row({"max batch size", std::to_string(max_batch)});
  const std::uint64_t keyed = cache_hits + coalesced + solves;
  t.add_row({"cache hit rate",
             keyed == 0 ? "n/a"
                        : core::fmt(static_cast<double>(cache_hits) /
                                        static_cast<double>(keyed),
                                    4)});
  t.add_row({"queue wait p50/p99 (ms)", core::fmt(queue_wait_p50_ms, 3) +
                                            " / " +
                                            core::fmt(queue_wait_p99_ms, 3)});
  t.add_row({"solve p50/p99 (ms)",
             core::fmt(solve_p50_ms, 3) + " / " + core::fmt(solve_p99_ms, 3)});
  t.add_row({"latency p50/p99 (ms)", core::fmt(latency_p50_ms, 3) + " / " +
                                         core::fmt(latency_p99_ms, 3)});
  t.add_row({"cache insertions/evictions",
             std::to_string(cache.insertions) + " / " +
                 std::to_string(cache.evictions)});
  t.add_row({"cache disk hits/writes/errors",
             std::to_string(cache.disk_hits) + " / " +
                 std::to_string(cache.disk_writes) + " / " +
                 std::to_string(cache.disk_errors)});
  t.add_row({"cache tmp files swept", std::to_string(cache.tmp_swept)});
  t.add_row({"pipeline cache hits/misses", std::to_string(pipeline.hits) +
                                               " / " +
                                               std::to_string(pipeline.misses)});
  t.add_row({"pipeline cache insertions/evictions",
             std::to_string(pipeline.insertions) + " / " +
                 std::to_string(pipeline.evictions)});
  return t;
}

std::string ServiceMetrics::to_json() const {
  std::string s = "{";
  const auto u64 = [&s](const char* k, std::uint64_t v) {
    s += "\"";
    s += k;
    s += "\":";
    s += std::to_string(v);
    s += ",";
  };
  const auto ms = [&s](const char* k, double v) {
    s += "\"";
    s += k;
    s += "\":";
    s += core::fmt(v, 3);
    s += ",";
  };
  u64("accepted", accepted);
  u64("completed_ok", completed_ok);
  u64("failed", failed);
  u64("invalid", invalid);
  u64("shed", shed);
  u64("timed_out", timed_out);
  u64("coalesced", coalesced);
  u64("cache_hits", cache_hits);
  u64("solves", solves);
  u64("solve_errors", solve_errors);
  u64("batches", batches);
  u64("batched", batched);
  u64("max_batch", max_batch);
  ms("queue_wait_p50_ms", queue_wait_p50_ms);
  ms("queue_wait_p99_ms", queue_wait_p99_ms);
  ms("solve_p50_ms", solve_p50_ms);
  ms("solve_p99_ms", solve_p99_ms);
  ms("latency_p50_ms", latency_p50_ms);
  ms("latency_p99_ms", latency_p99_ms);
  const auto tier = [&](const char* name, const ResultCache::Stats& c) {
    s += "\"";
    s += name;
    s += "\":{";
    s += "\"hits\":" + std::to_string(c.hits) + ",";
    s += "\"misses\":" + std::to_string(c.misses) + ",";
    s += "\"insertions\":" + std::to_string(c.insertions) + ",";
    s += "\"evictions\":" + std::to_string(c.evictions) + ",";
    s += "\"disk_hits\":" + std::to_string(c.disk_hits) + ",";
    s += "\"disk_writes\":" + std::to_string(c.disk_writes) + ",";
    s += "\"disk_errors\":" + std::to_string(c.disk_errors) + ",";
    s += "\"tmp_swept\":" + std::to_string(c.tmp_swept) + "}";
  };
  tier("result_cache", cache);
  s += ",";
  tier("pipeline_cache", pipeline);
  s += "}";
  return s;
}

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache),
      pipeline_cache_(opts_.pipeline_cache) {
  const unsigned n =
      opts_.workers == 0 ? core::parallel_threads() : opts_.workers;
  workers_.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  {
    core::MutexLock lock(mu_);
    if (joined_) {
      return;
    }
    stopping_ = true;
    joined_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void Service::record_sample(std::vector<double>& samples, double ms) {
  if (samples.size() < kMaxSamples) {
    samples.push_back(ms < 0.0 ? 0.0 : ms);
  }
}

void Service::submit_async(Request r, std::function<void(Response)> done) {
  const auto now = Clock::now();
  if (r.verb == Verb::kPing) {
    done(Response{r.id, Status::kOk, "pong"});
    return;
  }
  if (r.verb == Verb::kStats) {
    const ServiceMetrics m = metrics();
    done(Response{r.id, Status::kOk,
                  r.arg == "json" ? m.to_json() : m.to_table().to_string()});
    return;
  }
  if (!is_solve_verb(r.verb)) {
    done(Response{r.id, Status::kError,
                  "verb '" + std::string(to_string(r.verb)) +
                      "' is not served by the evaluation service"});
    return;
  }

  Prepared prepared;
  try {
    prepared = prepare_request(r);
  } catch (const InvalidRequest& e) {
    // Ill-formed request: rejected by the pre-flight checks before any
    // worker touches it; the body carries the rendered lint diagnostics.
    {
      core::MutexLock lock(mu_);
      ++accepted_;
      ++invalid_;
    }
    done(Response{r.id, Status::kInvalid, e.what()});
    return;
  } catch (const std::exception& e) {
    {
      core::MutexLock lock(mu_);
      ++accepted_;
      ++failed_;
    }
    done(Response{r.id, Status::kError, e.what()});
    return;
  }

  if (opts_.admission_budget > 0 &&
      prepared.model_states > opts_.admission_budget) {
    // Over-budget model: the size is known exactly before queuing (the
    // payload is an already-generated model), so reject it the same way
    // the static bound analyzer steers the compositional planner (MV042).
    {
      core::MutexLock lock(mu_);
      ++accepted_;
      ++invalid_;
    }
    core::Diagnostic d;
    d.code = "MV042";
    d.severity = core::Severity::kAdvice;
    d.message = "model has " + std::to_string(prepared.model_states) +
                " states, above the admission budget of " +
                std::to_string(opts_.admission_budget);
    d.hint =
        "minimise or decompose the model before submitting, or raise the "
        "service's admission budget";
    const std::vector<core::Diagnostic> diags{d};
    done(Response{r.id, Status::kInvalid, core::render_text(diags)});
    return;
  }

  const auto deadline =
      now + (r.deadline.count() > 0 ? r.deadline : opts_.default_deadline);

  Response immediate;
  bool respond_now = false;
  {
    core::MutexLock lock(mu_);
    ++accepted_;
    if (stopping_) {
      ++failed_;
      immediate = Response{r.id, Status::kError, "service is shutting down"};
      respond_now = true;
    } else if (std::optional<std::string> hit = cache_.lookup(prepared.key)) {
      ++cache_hits_;
      ++completed_ok_;
      record_sample(queue_wait_ms_, 0.0);
      record_sample(latency_ms_, ms_between(now, Clock::now()));
      immediate = Response{r.id, Status::kOk, *std::move(hit)};
      respond_now = true;
    } else if (const auto it = in_flight_.find(prepared.key);
               it != in_flight_.end()) {
      ++coalesced_;
      it->second->waiters.push_back(
          Waiter{r.id, now, deadline, std::move(done)});
      return;
    } else if (queue_.size() >= opts_.queue_capacity) {
      ++shed_;
      immediate =
          Response{r.id, Status::kOverloaded,
                   "queue full (capacity " +
                       std::to_string(opts_.queue_capacity) + ")"};
      respond_now = true;
    } else {
      auto flight = std::make_shared<Flight>();
      flight->key = prepared.key;
      flight->run = std::move(prepared.run);
      flight->batch_key = prepared.batch_key;
      flight->setup = std::move(prepared.setup);
      flight->run_shared = std::move(prepared.run_shared);
      flight->waiters.push_back(Waiter{r.id, now, deadline, std::move(done)});
      in_flight_.emplace(prepared.key, flight);
      queue_.push_back(std::move(flight));
    }
  }
  if (respond_now) {
    done(std::move(immediate));
    return;
  }
  cv_.notify_one();
}

std::shared_future<Response> Service::submit(Request r) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::shared_future<Response> future = promise->get_future().share();
  submit_async(std::move(r), [promise](Response resp) {
    promise->set_value(std::move(resp));
  });
  return future;
}

Response Service::evaluate(const Request& r) {
  return submit(r).get();
}

void Service::worker_loop() {
  for (;;) {
    // Dequeue one flight; if it is batchable, sweep the queue for every
    // other flight of the same batch (same model, same verb family) so the
    // shared per-model state is built once for the whole group.
    std::vector<FlightPtr> group;
    {
      core::MutexLock lock(mu_);
      cv_.wait(mu_, [this]() MV_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      group.push_back(queue_.front());
      queue_.pop_front();
      const CacheKey batch_key = group.front()->batch_key;
      if (batch_key != CacheKey{} && opts_.max_batch > 1) {
        for (auto it = queue_.begin();
             it != queue_.end() && group.size() < opts_.max_batch;) {
          if ((*it)->batch_key == batch_key) {
            group.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (opts_.pre_solve_hook) {
      for (const FlightPtr& flight : group) {
        opts_.pre_solve_hook(flight->key);
      }
    }

    // Deadline check at solve start: expired waiters get kTimeout; a flight
    // with no live waiter left is dropped from the group (shed work, not
    // just shed queueing).
    const auto start = Clock::now();
    std::vector<Waiter> expired;
    std::vector<FlightPtr> live;
    {
      core::MutexLock lock(mu_);
      for (FlightPtr& flight : group) {
        auto& waiters = flight->waiters;
        for (auto it = waiters.begin(); it != waiters.end();) {
          if (it->deadline < start) {
            expired.push_back(std::move(*it));
            it = waiters.erase(it);
          } else {
            ++it;
          }
        }
        if (waiters.empty()) {
          in_flight_.erase(flight->key);
        } else {
          live.push_back(std::move(flight));
        }
      }
      timed_out_ += expired.size();
      for (const Waiter& w : expired) {
        record_sample(queue_wait_ms_, ms_between(w.submitted, start));
        record_sample(latency_ms_, ms_between(w.submitted, start));
      }
      if (live.size() >= 2) {
        ++batches_;
        batched_ += live.size();
      }
      max_batch_ = std::max<std::uint64_t>(max_batch_, live.size());
    }
    for (Waiter& w : expired) {
      w.done(Response{w.id, Status::kTimeout,
                      "deadline expired before the solve started"});
    }
    if (live.empty()) {
      continue;
    }

    // Shared setup runs once per sweep; a setup failure fails every flight
    // of the group with the same error a solo run() would have raised.
    const bool batched_run = static_cast<bool>(live.front()->run_shared);
    std::shared_ptr<void> shared;
    std::string setup_error;
    if (batched_run) {
      try {
        shared = live.front()->setup();
      } catch (const std::exception& e) {
        setup_error = e.what();
      }
    }

    for (FlightPtr& flight : live) {
      const auto t0 = Clock::now();
      std::string body;
      bool ok = true;
      if (!setup_error.empty()) {
        ok = false;
        body = setup_error;
      } else {
        try {
          body = batched_run ? flight->run_shared(shared.get()) : flight->run();
        } catch (const std::exception& e) {
          ok = false;
          body = e.what();
        }
      }
      const auto end = Clock::now();

      std::vector<Waiter> waiters;
      {
        core::MutexLock lock(mu_);
        ++solves_;
        if (ok) {
          cache_.insert(flight->key, body);
        } else {
          ++solve_errors_;
        }
        // Publishing the result and retiring the flight happen atomically
        // with respect to submit_async's cache-or-coalesce check, so a
        // concurrent identical request either joined this flight or will
        // hit the cache — never a second solve.
        in_flight_.erase(flight->key);
        waiters = std::move(flight->waiters);
        record_sample(solve_ms_, ms_between(t0, end));
        for (const Waiter& w : waiters) {
          record_sample(queue_wait_ms_, ms_between(w.submitted, start));
          record_sample(latency_ms_, ms_between(w.submitted, end));
          if (ok) {
            ++completed_ok_;
          } else {
            ++failed_;
          }
        }
      }
      const Status status = ok ? Status::kOk : Status::kError;
      for (Waiter& w : waiters) {
        w.done(Response{w.id, status, body});
      }
    }
  }
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics m;
  std::vector<double> queue_wait;
  std::vector<double> solve;
  std::vector<double> latency;
  {
    core::MutexLock lock(mu_);
    m.accepted = accepted_;
    m.completed_ok = completed_ok_;
    m.failed = failed_;
    m.invalid = invalid_;
    m.shed = shed_;
    m.timed_out = timed_out_;
    m.coalesced = coalesced_;
    m.cache_hits = cache_hits_;
    m.solves = solves_;
    m.solve_errors = solve_errors_;
    m.batches = batches_;
    m.batched = batched_;
    m.max_batch = max_batch_;
    queue_wait = queue_wait_ms_;
    solve = solve_ms_;
    latency = latency_ms_;
  }
  m.cache = cache_.stats();
  m.pipeline = pipeline_cache_.result_cache().stats();
  m.queue_wait_p50_ms = percentile(queue_wait, 0.50);
  m.queue_wait_p99_ms = percentile(std::move(queue_wait), 0.99);
  m.solve_p50_ms = percentile(solve, 0.50);
  m.solve_p99_ms = percentile(std::move(solve), 0.99);
  m.latency_p50_ms = percentile(latency, 0.50);
  m.latency_p99_ms = percentile(std::move(latency), 0.99);
  return m;
}

}  // namespace multival::serve
