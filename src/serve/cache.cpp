#include "serve/cache.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "explore/lts_stream.hpp"

namespace multival::serve {

namespace {

// Amortised cost of the list node, map slot and key bookkeeping per entry,
// so capacity_bytes also bounds caches full of tiny payloads.
constexpr std::size_t kEntryOverhead = 128;

// A temporary younger than this may belong to a live writer (another
// process sharing disk_dir mid-publish); only older orphans are swept.
constexpr std::time_t kTmpSweepAgeSeconds = 60;

constexpr char kMagic[4] = {'M', 'V', 'C', 'R'};
constexpr std::uint8_t kVersion = 1;

enum Record : std::uint8_t {
  kEnd = 0x00,
  kKey = 0x01,
  kPayload = 0x02,
};

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

// Returns false on truncation / overlong input instead of throwing: a
// corrupt cache entry is a miss, not an error.
bool get_varint(std::istream& is, std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof() || shift > 63) {
      return false;
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
}

void put_u64_be(std::ostream& os, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    os.put(static_cast<char>((v >> (i * 8)) & 0xff));
  }
}

bool get_u64_be(std::istream& is, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof()) {
      return false;
    }
    v = (v << 8) | static_cast<std::uint64_t>(c & 0xff);
  }
  out = v;
  return true;
}

}  // namespace

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(Options opts) : opts_(std::move(opts)) {
  core::MutexLock lock(mu_);  // satisfies sweep's REQUIRES; no contention yet
  if (!opts_.disk_dir.empty()) {
    sweep_stale_tmp();
  }
}

// A crash between writing "<key>.mvcr.tmp.<pid>.<seq>" and the rename()
// leaks the temporary forever (nothing ever refers to that name again).
// Opening the cache is the natural point to collect such orphans: any tmp
// file old enough that its writer cannot still be mid-publish is deleted.
void ResultCache::sweep_stale_tmp() {
  DIR* dir = ::opendir(opts_.disk_dir.c_str());
  if (dir == nullptr) {
    return;  // best-effort, like the rest of the disk tier
  }
  const std::time_t now = std::time(nullptr);
  while (const dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.find(".mvcr.tmp.") == std::string::npos) {
      continue;
    }
    const std::string path = opts_.disk_dir + "/" + name;
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0 ||
        now - st.st_mtime < kTmpSweepAgeSeconds) {
      continue;
    }
    if (std::remove(path.c_str()) == 0) {
      ++stats_.tmp_swept;
    }
  }
  ::closedir(dir);
}

std::optional<std::string> ResultCache::lookup(const CacheKey& key) {
  core::MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->payload;
  }
  if (!opts_.disk_dir.empty()) {
    if (std::optional<std::string> payload = disk_load(key)) {
      ++stats_.hits;
      ++stats_.disk_hits;
      // Promote into the memory tier without re-writing the disk entry.
      insert_locked(key, *payload);
      return payload;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key, std::string payload) {
  core::MutexLock lock(mu_);
  if (!opts_.disk_dir.empty()) {
    disk_store(key, payload);
  }
  insert_locked(key, std::move(payload));
}

void ResultCache::insert_locked(const CacheKey& key, std::string payload) {
  ++stats_.insertions;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second->payload.size();
    bytes_ += payload.size();
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(payload)});
    map_[key] = lru_.begin();
    bytes_ += lru_.front().payload.size() + kEntryOverhead;
  }
  evict_locked();
}

void ResultCache::evict_locked() {
  while (bytes_ > opts_.capacity_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload.size() + kEntryOverhead;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  core::MutexLock lock(mu_);
  return stats_;
}

std::size_t ResultCache::entries() const {
  core::MutexLock lock(mu_);
  return lru_.size();
}

std::size_t ResultCache::bytes() const {
  core::MutexLock lock(mu_);
  return bytes_;
}

std::string ResultCache::disk_path(const CacheKey& key) const {
  return opts_.disk_dir + "/" + key.hex() + ".mvcr";
}

std::optional<std::string> ResultCache::disk_load(const CacheKey& key) {
  std::ifstream is(disk_path(key), std::ios::binary);
  if (!is) {
    return std::nullopt;  // plain miss: entry was never written
  }
  char magic[4] = {};
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, 4) != std::string_view(kMagic, 4) ||
      is.get() != kVersion) {
    ++stats_.disk_errors;
    return std::nullopt;
  }
  std::optional<std::string> payload;
  bool saw_key = false;
  while (true) {
    const int rec = is.get();
    if (rec == kEnd) {
      break;
    }
    if (rec == kKey) {
      CacheKey stored;
      if (!get_u64_be(is, stored.hi) || !get_u64_be(is, stored.lo) ||
          stored != key) {
        ++stats_.disk_errors;
        return std::nullopt;
      }
      saw_key = true;
    } else if (rec == kPayload) {
      std::uint64_t len = 0;
      if (!get_varint(is, len)) {
        ++stats_.disk_errors;
        return std::nullopt;
      }
      std::string data(len, '\0');
      is.read(data.data(), static_cast<std::streamsize>(len));
      if (!is) {
        ++stats_.disk_errors;
        return std::nullopt;
      }
      payload = std::move(data);
    } else {
      ++stats_.disk_errors;
      return std::nullopt;
    }
  }
  if (!saw_key || !payload.has_value()) {
    ++stats_.disk_errors;
    return std::nullopt;
  }
  return payload;
}

void ResultCache::disk_store(const CacheKey& key, const std::string& payload) {
  const std::string path = disk_path(key);
  // Unique per process and per call: two caches racing to publish the same
  // key (separate processes sharing disk_dir, or concurrent inserts) each
  // write their own temporary and the rename()s land whole files — readers
  // never observe a half-written entry under the final name.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      ++stats_.disk_errors;
      return;  // disk tier is best-effort; memory tier still serves
    }
    os.write(kMagic, sizeof kMagic);
    os.put(static_cast<char>(kVersion));
    os.put(static_cast<char>(kKey));
    put_u64_be(os, key.hi);
    put_u64_be(os, key.lo);
    os.put(static_cast<char>(kPayload));
    put_varint(os, payload.size());
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.put(static_cast<char>(kEnd));
    os.flush();
    if (!os) {
      ++stats_.disk_errors;
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ++stats_.disk_errors;
    std::remove(tmp.c_str());
    return;
  }
  ++stats_.disk_writes;
}

PipelineCache::PipelineCache(ResultCache::Options opts)
    : cache_(std::move(opts)) {}

CacheKey PipelineCache::key_of(const lts::Lts& input, bisim::Equivalence e) {
  Hasher h;
  h.str("minimize-v1");
  h.str(bisim::to_string(e));
  hash_append(h, input);
  return h.key();
}

std::optional<lts::Lts> PipelineCache::lookup(const lts::Lts& input,
                                              bisim::Equivalence e) {
  std::optional<std::string> payload = cache_.lookup(key_of(input, e));
  if (!payload.has_value()) {
    return std::nullopt;
  }
  std::istringstream is(*payload);
  try {
    return explore::read_lts_stream(is);
  } catch (const std::runtime_error&) {
    return std::nullopt;  // corrupt payload: fall back to re-minimising
  }
}

void PipelineCache::store(const lts::Lts& input, bisim::Equivalence e,
                          const lts::Lts& reduced) {
  std::ostringstream os;
  explore::write_lts_stream(os, reduced);
  cache_.insert(key_of(input, e), std::move(os).str());
}

CacheKey PipelineCache::subtree_key_of(const std::string& plan_key) {
  Hasher h;
  h.str("plan-subtree-v1");
  h.str(plan_key);
  return h.key();
}

std::optional<lts::Lts> PipelineCache::lookup_subtree(
    const std::string& plan_key) {
  std::optional<std::string> payload = cache_.lookup(subtree_key_of(plan_key));
  if (!payload.has_value()) {
    return std::nullopt;
  }
  std::istringstream is(*payload);
  try {
    return explore::read_lts_stream(is);
  } catch (const std::runtime_error&) {
    return std::nullopt;  // corrupt payload: fall back to re-evaluating
  }
}

void PipelineCache::store_subtree(const std::string& plan_key,
                                  const lts::Lts& reduced) {
  std::ostringstream os;
  explore::write_lts_stream(os, reduced);
  cache_.insert(subtree_key_of(plan_key), std::move(os).str());
}

}  // namespace multival::serve
