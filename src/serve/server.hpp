// Unix-domain-socket front end over serve::Service, plus the matching
// synchronous client.
//
// The server accepts stream connections on a filesystem socket; each
// connection carries newline-delimited protocol lines (serve/protocol).
// Requests are submitted to the service and responses are written back on
// whichever thread completes them (a per-connection write lock keeps lines
// intact), so responses to one connection may arrive out of request order —
// clients correlate by id.  A "shutdown" request stops the accept loop
// after acknowledging; run() then drains the service and returns.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace multival::serve {

struct ServerOptions {
  std::string socket_path;  ///< required; unlinked and re-bound on start
  ServiceOptions service;
  int listen_backlog = 64;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on socket failure.
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; returns after stop() (or a client "shutdown" request)
  /// once all connection readers have been joined and the service drained.
  void run();

  /// Requests the accept loop to exit (thread-safe, non-blocking).
  void stop();

  [[nodiscard]] Service& service() { return *service_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    bool open = true;  // guarded by write_mu
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void serve_connection(const ConnPtr& conn);
  void handle_line(const ConnPtr& conn, const std::string& line);
  static void write_response(const ConnPtr& conn, const Response& r);

  ServerOptions opts_;
  std::unique_ptr<Service> service_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::mutex conns_mu_;
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> conn_threads_;
};

/// Blocking client: one outstanding request at a time per Client, so the
/// next response line on the connection is always the answer to call().
class Client {
 public:
  /// Connects; throws std::runtime_error on failure.  A non-zero
  /// @p connect_timeout keeps retrying transient connect() failures
  /// (server still starting: ENOENT / ECONNREFUSED) with exponential
  /// backoff — 10ms doubling up to 1s between attempts — until the timeout
  /// elapses.  Zero means a single attempt.
  explicit Client(const std::string& socket_path,
                  std::chrono::milliseconds connect_timeout =
                      std::chrono::milliseconds{0});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends @p r and waits for the response with the same id.
  [[nodiscard]] Response call(const Request& r);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace multival::serve
