// Socket front end over serve::Service, plus the matching synchronous
// client.  Two transports speak the same newline-framed protocol
// (serve/protocol):
//
//   - Unix domain sockets, addressed by a filesystem path;
//   - TCP, addressed as "host:port" (numeric IPv4 or "localhost"; port 0
//     binds an ephemeral port, reported by Server::bound_endpoint()).
//
// An endpoint string whose last ':'-separated field is a decimal port is
// TCP; anything else is a Unix path (see parse_endpoint).
//
// The server accepts stream connections; each connection carries
// newline-delimited protocol lines.  The reader is robust to arbitrary
// packetisation: requests delivered one byte at a time and several requests
// coalesced into one segment are both reassembled from the same buffer.
// Requests are submitted to the service and responses are written back on
// whichever thread completes them (a per-connection write lock keeps lines
// intact), so responses to one connection may arrive out of request order —
// clients correlate by id.  A "shutdown" request stops the accept loop
// after acknowledging; run() then drains the service and returns.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace multival::serve {

/// A parsed transport address: a Unix socket path or a TCP host:port.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< kUnix: filesystem path
  std::string host;         ///< kTcp: numeric IPv4 or "localhost"
  std::uint16_t port = 0;   ///< kTcp: 0 = bind an ephemeral port

  [[nodiscard]] std::string to_string() const;
};

/// Endpoint grammar: "<host>:<port>" with a decimal port (host may be empty,
/// meaning loopback) is TCP; everything else is a Unix socket path.  Throws
/// std::runtime_error on an empty string or an out-of-range port.
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

struct ServerOptions {
  /// Required: Unix path or "host:port" (see parse_endpoint).  A Unix path
  /// is unlinked and re-bound on start; TCP binds with SO_REUSEADDR.
  std::string endpoint;
  ServiceOptions service;
  int listen_backlog = 64;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on socket failure.
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; returns after stop() (or a client "shutdown" request)
  /// once all connection readers have been joined and the service drained.
  void run();

  /// Requests the accept loop to exit (thread-safe, non-blocking).
  void stop();

  /// The address actually bound — for TCP with port 0 this carries the
  /// kernel-assigned ephemeral port, ready to hand to a Client.
  [[nodiscard]] const Endpoint& bound_endpoint() const { return bound_; }

  [[nodiscard]] Service& service() { return *service_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    bool open = true;  // guarded by write_mu
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void serve_connection(const ConnPtr& conn);
  void handle_line(const ConnPtr& conn, const std::string& line);
  static void write_response(const ConnPtr& conn, const Response& r);

  ServerOptions opts_;
  Endpoint bound_;
  std::unique_ptr<Service> service_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::mutex conns_mu_;
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> conn_threads_;
};

/// The client gave up waiting for a response: the transport (not the
/// service) wedged — a hung server, a stalled network.  Distinct from the
/// server-side Status::kTimeout, which is a well-formed response.
struct ClientTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Blocking client: one outstanding request at a time per Client, so the
/// next response line on the connection is always the answer to call().
class Client {
 public:
  /// Connects to a Unix path or "host:port"; throws std::runtime_error on
  /// failure.  A non-zero @p connect_timeout keeps retrying transient
  /// connect() failures (server still starting: ENOENT / ECONNREFUSED) with
  /// exponential backoff — 10ms doubling up to 1s between attempts — until
  /// the timeout elapses.  Zero means a single attempt.
  ///
  /// @p receive_timeout bounds how long call() waits for a response; zero
  /// derives the bound per call from the request deadline (deadline plus a
  /// 10s grace for transport and queue slack) so a hung server surfaces as
  /// a ClientTimeout instead of blocking forever.  Requests without a
  /// deadline fall back to a 60s ceiling.
  explicit Client(const std::string& endpoint,
                  std::chrono::milliseconds connect_timeout =
                      std::chrono::milliseconds{0},
                  std::chrono::milliseconds receive_timeout =
                      std::chrono::milliseconds{0});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends @p r and waits for the response with the same id.  Throws
  /// ClientTimeout when the receive deadline expires first (the connection
  /// is unusable afterwards: a late response would desynchronise framing).
  [[nodiscard]] Response call(const Request& r);

 private:
  int fd_ = -1;
  std::chrono::milliseconds receive_timeout_{0};
  std::string buffer_;
};

}  // namespace multival::serve
