// Content-addressed result cache for the evaluation service.
//
// Two tiers:
//   - an in-memory LRU tier, bounded in bytes, thread-safe;
//   - an optional on-disk tier (one file per key under Options::disk_dir)
//     using the same record-oriented binary framing as explore/lts_stream:
//
//       magic "MVCR", version byte (1)
//       records (integers LEB128 varints):
//         0x01  key:     16 raw bytes (hi, lo big-endian)
//         0x02  payload: <len> <bytes>
//         0x00  end of file
//
// A disk entry whose framing, key or end record does not validate is
// treated as a miss (and counted in Stats::disk_errors), never as corrupt
// data handed to a caller.  Evicted memory entries stay on disk, so the
// disk tier acts as a second-chance store across process restarts.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "bisim/equivalence.hpp"
#include "core/sync.hpp"
#include "compose/pipeline.hpp"
#include "serve/hash.hpp"

namespace multival::serve {

class ResultCache {
 public:
  struct Options {
    /// Memory-tier budget (payload bytes + fixed per-entry overhead).
    std::size_t capacity_bytes = 64u << 20;
    /// Empty = no disk tier.  The directory must already exist.
    std::string disk_dir;
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< lookups served (memory or disk)
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< memory-tier entries dropped
    std::uint64_t disk_hits = 0;   ///< hits that came from the disk tier
    std::uint64_t disk_writes = 0;
    std::uint64_t disk_errors = 0; ///< unreadable / corrupt disk entries
    std::uint64_t tmp_swept = 0;   ///< orphaned *.tmp.* files removed on open
  };

  ResultCache();
  explicit ResultCache(Options opts);

  /// Returns the payload for @p key, promoting it to most-recently-used
  /// (and from disk into memory on a disk hit).
  [[nodiscard]] std::optional<std::string> lookup(const CacheKey& key);

  /// Inserts (or refreshes) @p key -> @p payload, evicting least-recently
  /// used entries until the memory tier fits its budget.
  void insert(const CacheKey& key, std::string payload);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Entry {
    CacheKey key;
    std::string payload;
  };

  void insert_locked(const CacheKey& key, std::string payload)
      MV_REQUIRES(mu_);
  void evict_locked() MV_REQUIRES(mu_);
  void sweep_stale_tmp() MV_REQUIRES(mu_);
  [[nodiscard]] std::string disk_path(const CacheKey& key) const;
  // The disk tier maintains the disk_* counters in stats_, so both run
  // under the lock (file I/O under mu_ is acceptable here: the disk tier
  // is an optional cold path).
  [[nodiscard]] std::optional<std::string> disk_load(const CacheKey& key)
      MV_REQUIRES(mu_);
  void disk_store(const CacheKey& key, const std::string& payload)
      MV_REQUIRES(mu_);

  Options opts_;
  mutable core::Mutex mu_;
  std::list<Entry> lru_ MV_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_
      MV_GUARDED_BY(mu_);
  std::size_t bytes_ MV_GUARDED_BY(mu_) = 0;
  Stats stats_ MV_GUARDED_BY(mu_);
};

/// compose::MinimizeCache implementation backed by a ResultCache: the key
/// is the content hash of the pre-minimisation LTS plus the equivalence,
/// the payload is the quotient serialised in the lts_stream binary format.
class PipelineCache final : public compose::MinimizeCache {
 public:
  explicit PipelineCache(ResultCache::Options opts = {});

  [[nodiscard]] std::optional<lts::Lts> lookup(const lts::Lts& input,
                                               bisim::Equivalence e) override;
  void store(const lts::Lts& input, bisim::Equivalence e,
             const lts::Lts& reduced) override;

  /// Plan-keyed subtree tier (compose::Plan sets Node::plan_key): whole
  /// minimised subtrees addressed by their *structural* key, so re-planning
  /// a changed model skips generation of every untouched subtree.
  [[nodiscard]] std::optional<lts::Lts> lookup_subtree(
      const std::string& plan_key) override;
  void store_subtree(const std::string& plan_key,
                     const lts::Lts& reduced) override;

  [[nodiscard]] std::uint64_t hits() const { return cache_.stats().hits; }
  [[nodiscard]] std::uint64_t misses() const { return cache_.stats().misses; }
  [[nodiscard]] ResultCache& result_cache() { return cache_; }

 private:
  static CacheKey key_of(const lts::Lts& input, bisim::Equivalence e);
  static CacheKey subtree_key_of(const std::string& plan_key);

  ResultCache cache_;
};

}  // namespace multival::serve
