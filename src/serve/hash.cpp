#include "serve/hash.hpp"

#include <cstring>

namespace multival::serve {

namespace {

constexpr std::uint64_t kFnvOffsetA = 14695981039346656037ull;
constexpr std::uint64_t kFnvOffsetB = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string CacheKey::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int byte = 7 - (i & 7);
    const auto v = static_cast<unsigned>((word >> (byte * 8)) & 0xff);
    out[static_cast<std::size_t>(2 * i)] = digits[v >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = digits[v & 0xf];
  }
  return out;
}

Hasher::Hasher() : a_(kFnvOffsetA), b_(kFnvOffsetB) {}

void Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    b_ = (b_ ^ (p[i] ^ 0x5c)) * kFnvPrime;
  }
}

void Hasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>((v >> (i * 8)) & 0xff);
  }
  bytes(buf, sizeof buf);
}

void Hasher::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Hasher::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

CacheKey Hasher::key() const {
  return CacheKey{splitmix64(a_), splitmix64(b_ ^ a_)};
}

void hash_append(Hasher& h, const lts::Lts& l) {
  h.str("lts");
  h.u64(l.num_states());
  h.u64(l.num_states() == 0 ? 0 : l.initial_state());
  h.u64(l.num_transitions());
  for (const lts::Transition& t : l.all_transitions()) {
    h.u64(t.src);
    h.str(l.actions().name(t.action));
    h.u64(t.dst);
  }
}

void hash_append(Hasher& h, const imc::Imc& m) {
  h.str("imc");
  h.u64(m.num_states());
  h.u64(m.num_states() == 0 ? 0 : m.initial_state());
  for (imc::StateId s = 0; s < m.num_states(); ++s) {
    const auto inter = m.interactive(s);
    h.u64(inter.size());
    for (const imc::InterEdge& e : inter) {
      h.str(m.actions().name(e.action));
      h.u64(e.dst);
    }
    const auto mark = m.markovian(s);
    h.u64(mark.size());
    for (const imc::MarkEdge& e : mark) {
      h.f64(e.rate);
      h.u64(e.dst);
      h.str(e.label);
    }
  }
}

void hash_append(Hasher& h, const markov::Ctmc& c) {
  h.str("ctmc");
  h.u64(c.num_states());
  for (double p : c.initial_distribution()) {
    h.f64(p);
  }
  h.u64(c.num_transitions());
  for (const markov::RateTransition& t : c.transitions()) {
    h.u64(t.src);
    h.u64(t.dst);
    h.f64(t.rate);
    h.str(t.label);
  }
}

}  // namespace multival::serve
