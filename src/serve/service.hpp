// The concurrent evaluation service: a bounded job queue drained by a
// worker pool, fronted by the content-addressed ResultCache and a request
// coalescer.
//
// Life of a solve request (submit_async):
//   1. prepare: parse and lint the model, derive the canonical CacheKey
//      (ill-formed input completes immediately with kInvalid and the
//      rendered MV0xx diagnostics; see serve/solvers.hpp);
//   2. cache: a hit completes immediately with kOk (checked under the
//      service lock, atomically with steps 3-4, so a result being published
//      can never be missed *and* re-queued);
//   3. coalesce: if the key is already queued or solving, the request joins
//      that flight's waiter list — the solve runs exactly once and fans its
//      result out to every waiter;
//   4. enqueue: if the queue is full the request is *shed* immediately with
//      kOverloaded (bounded memory, no unbounded queueing, the caller
//      learns about saturation within its deadline instead of hanging).
//
// Deadlines are enforced when a flight reaches the head of the queue:
// waiters whose deadline has passed get kTimeout, and if no live waiter
// remains the solve is skipped entirely.  A result that completes after a
// waiter's deadline is still delivered (it is already paid for).
//
// Batching: when the dequeued flight is batchable (Prepared::batch_key is
// non-zero), the worker pulls every queued flight with the same batch_key
// (up to ServiceOptions::max_batch) and answers the whole group in one
// sweep — the shared per-model state (the closed CTMC with its cached
// uniformised DTMC) is built once, each flight is solved against it, and
// each result is published the moment it is ready.  Answers are
// byte-identical to unbatched solves; batch-size telemetry is in
// ServiceMetrics (batches / batched / max_batch).
//
// Per-request metrics (queue wait, solve time, end-to-end latency with
// p50/p99, cache/coalescing/shed counters) are surfaced as a core::report
// table via ServiceMetrics::to_table().
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "core/sync.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/solvers.hpp"

namespace multival::serve {

struct ServiceOptions {
  /// Worker threads; 0 = core::parallel_threads().
  unsigned workers = 0;
  /// Maximum queued (not yet solving) flights before shedding.
  std::size_t queue_capacity = 256;
  /// Deadline applied to requests that do not carry their own.
  std::chrono::milliseconds default_deadline{10000};
  /// Largest group of queued same-model flights a worker answers in one
  /// sweep (see Prepared::batch_key); 1 disables batching.
  std::size_t max_batch = 16;
  /// Admission gate: a solve request whose parsed model exceeds this many
  /// states is rejected pre-queue with Status::kInvalid and an MV042
  /// diagnostic (never reaches a worker).  0 disables the gate.
  std::size_t admission_budget = 0;
  ResultCache::Options cache;
  /// Budget of the pipeline (minimisation/plan-subtree) cache the service
  /// hands to embedding callers via Service::pipeline_cache().
  ResultCache::Options pipeline_cache;
  /// Test seam: invoked by a worker after dequeuing a flight, before the
  /// deadline check and solve.  Lets tests hold a worker to build up
  /// coalescing / saturation deterministically.  Leave empty in production.
  std::function<void(const CacheKey&)> pre_solve_hook;
};

/// Snapshot of the service counters and latency percentiles (milliseconds).
struct ServiceMetrics {
  std::uint64_t accepted = 0;      ///< submissions (including failed ones)
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;        ///< solver or service error
  std::uint64_t invalid = 0;       ///< ill-formed, rejected pre-flight
  std::uint64_t shed = 0;          ///< rejected with kOverloaded
  std::uint64_t timed_out = 0;
  std::uint64_t coalesced = 0;     ///< joined an existing flight
  std::uint64_t cache_hits = 0;
  std::uint64_t solves = 0;        ///< solver invocations (≤ distinct keys)
  std::uint64_t solve_errors = 0;
  std::uint64_t batches = 0;       ///< multi-flight sweeps (size >= 2)
  std::uint64_t batched = 0;       ///< flights answered inside such sweeps
  std::uint64_t max_batch = 0;     ///< largest sweep observed
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double solve_p50_ms = 0.0;
  double solve_p99_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  ResultCache::Stats cache;
  /// Counters of the compose pipeline cache (minimisation results and
  /// plan-keyed subtrees; see Service::pipeline_cache()).
  ResultCache::Stats pipeline;

  [[nodiscard]] core::Table to_table() const;
  /// Machine-readable form (flat JSON object), served by the stats verb
  /// when the request arg is "json".
  [[nodiscard]] std::string to_json() const;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Completion-callback form (the primitive).  @p done is invoked exactly
  /// once, possibly on the calling thread (cache hit / rejection) or on a
  /// worker thread; it must not block for long and must not re-enter the
  /// service synchronously with a lock held by the caller.
  void submit_async(Request r, std::function<void(Response)> done);

  /// Future form.
  [[nodiscard]] std::shared_future<Response> submit(Request r);

  /// Blocking convenience: submit and wait.
  [[nodiscard]] Response evaluate(const Request& r);

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] ResultCache& cache() { return cache_; }
  /// compose::MinimizeCache shared across the pipelines of every embedding
  /// caller of this service (its hit/miss/evict counters surface in the
  /// stats verb next to the result-cache counters).
  [[nodiscard]] PipelineCache& pipeline_cache() { return pipeline_cache_; }

  /// Stops accepting new work, drains the queue (each remaining flight is
  /// still solved) and joins the workers.  Idempotent; called by the
  /// destructor.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    std::uint64_t id = 0;
    Clock::time_point submitted;
    Clock::time_point deadline;
    std::function<void(Response)> done;
  };

  struct Flight {
    CacheKey key;
    std::function<std::string()> run;
    CacheKey batch_key;  ///< zero = not batchable
    std::function<std::shared_ptr<void>()> setup;
    std::function<std::string(void*)> run_shared;
    std::vector<Waiter> waiters;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  void worker_loop();
  void record_sample(std::vector<double>& samples, double ms)
      MV_REQUIRES(mu_);

  ServiceOptions opts_;
  ResultCache cache_;
  // mutable: metrics() const reads its (internally locked) counters.
  mutable PipelineCache pipeline_cache_;

  mutable core::Mutex mu_;
  core::CondVar cv_;
  // Flight::waiters is also guarded by mu_ once the flight is queued (the
  // annotation cannot express a member of a pointed-to struct guarded by
  // the owner's mutex, so that part stays a comment).
  std::deque<FlightPtr> queue_ MV_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, FlightPtr, CacheKeyHash> in_flight_
      MV_GUARDED_BY(mu_);
  bool stopping_ MV_GUARDED_BY(mu_) = false;
  bool joined_ MV_GUARDED_BY(mu_) = false;

  // Counters and latency reservoirs.
  std::uint64_t accepted_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ok_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t invalid_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t timed_out_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t coalesced_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t cache_hits_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t solves_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t solve_errors_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t batched_ MV_GUARDED_BY(mu_) = 0;
  std::uint64_t max_batch_ MV_GUARDED_BY(mu_) = 0;
  std::vector<double> queue_wait_ms_ MV_GUARDED_BY(mu_);
  std::vector<double> solve_ms_ MV_GUARDED_BY(mu_);
  std::vector<double> latency_ms_ MV_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace multival::serve
