// Consistent-hash routing across serve replicas.
//
// A Router owns a hash ring built from the replica endpoint strings (each
// replica contributes Options::vnodes virtual points, hashed with the same
// canonical Hasher the cache keys use).  A request's 128-bit content
// CacheKey maps to a ring position; the owning replica is the first ring
// node at or clockwise after that position.  Identical models therefore
// always land on the replica that owns their cache entry — routing locality
// is what turns N independent caches into one sharded cache.
//
// Health is shared: a transport failure marks the replica down for
// Options::down_cooldown, and routing falls over to the next *distinct*
// live replica on the ring (the classic consistent-hash failover order, so
// only keys owned by the dead replica move).  One Router is meant to be
// shared by many RoutedClients (e.g. one per thread); the Router itself is
// thread-safe and holds no connections.
//
// A RoutedClient adds the per-replica connections (serve::Client is
// one-outstanding-request, so use one RoutedClient per thread), retries a
// failed call on the failover replica, and keeps routing metrics: how many
// calls landed on the owning replica (locality), how many fell over, and
// per-replica request/failure counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "serve/hash.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace multival::serve {

struct RouterOptions {
  /// Virtual ring points per replica; more points = smoother key spread.
  unsigned vnodes = 64;
  /// How long a replica stays out of the rotation after a failure.
  std::chrono::milliseconds down_cooldown{2000};
};

class Router {
 public:
  /// At least one endpoint is required; duplicates are rejected.
  explicit Router(std::vector<std::string> endpoints, RouterOptions opts = {});

  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }
  [[nodiscard]] const std::string& endpoint(std::size_t replica) const {
    return endpoints_[replica];
  }

  /// The ring owner of @p key, ignoring health: the replica whose cache
  /// should hold this entry.
  [[nodiscard]] std::size_t owner(const CacheKey& key) const;

  /// All replicas in ring order starting at @p key's owner, each exactly
  /// once — the failover order.
  [[nodiscard]] std::vector<std::size_t> preference(const CacheKey& key) const;

  /// The first live replica in preference order.  Throws std::runtime_error
  /// when every replica is down.
  [[nodiscard]] std::size_t route(const CacheKey& key) const;

  void mark_down(std::size_t replica);
  void mark_up(std::size_t replica);
  [[nodiscard]] bool is_down(std::size_t replica) const;

 private:
  struct Node {
    std::uint64_t point;
    std::size_t replica;
  };
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] static std::uint64_t key_point(const CacheKey& key);
  /// Index into ring_ of the first node at or after the key's position.
  [[nodiscard]] std::size_t ring_start(const CacheKey& key) const;

  RouterOptions opts_;
  std::vector<std::string> endpoints_;
  std::vector<Node> ring_;  // sorted by point

  mutable core::Mutex mu_;
  std::vector<Clock::time_point> down_until_ MV_GUARDED_BY(mu_);
};

/// Per-replica counters of one RoutedClient (single-threaded like the
/// client itself).
struct RoutedClientStats {
  std::uint64_t calls = 0;      ///< requests attempted
  std::uint64_t primary = 0;    ///< answered by the ring owner
  std::uint64_t failover = 0;   ///< answered by a non-owner (owner down)
  std::uint64_t transport_errors = 0;  ///< connect/send/receive failures
  std::vector<std::uint64_t> per_replica;  ///< answered per replica

  /// Fraction of answered calls served by the key's owning replica.
  [[nodiscard]] double locality() const {
    const std::uint64_t answered = primary + failover;
    return answered == 0 ? 0.0
                         : static_cast<double>(primary) /
                               static_cast<double>(answered);
  }
};

class RoutedClient {
 public:
  /// @p connect_timeout / @p receive_timeout are per-replica Client
  /// settings (see serve::Client).
  explicit RoutedClient(std::shared_ptr<Router> router,
                        std::chrono::milliseconds connect_timeout =
                            std::chrono::milliseconds{0},
                        std::chrono::milliseconds receive_timeout =
                            std::chrono::milliseconds{0});

  RoutedClient(const RoutedClient&) = delete;
  RoutedClient& operator=(const RoutedClient&) = delete;

  /// Routes by the request's canonical content key (computed via
  /// prepare_request; control verbs route by their encoded line instead).
  [[nodiscard]] Response call(const Request& r);

  /// Routes by a key the caller already computed (dse does, per slot).
  /// Walks the preference ring: a replica that fails the transport is
  /// marked down in the shared Router and the call retries on the next
  /// distinct replica; throws only when every replica failed.
  [[nodiscard]] Response call(const Request& r, const CacheKey& key);

  [[nodiscard]] const RoutedClientStats& stats() const { return stats_; }
  [[nodiscard]] Router& router() { return *router_; }

 private:
  std::shared_ptr<Router> router_;
  std::chrono::milliseconds connect_timeout_;
  std::chrono::milliseconds receive_timeout_;
  std::vector<std::unique_ptr<Client>> clients_;  // lazy, per replica
  RoutedClientStats stats_;
};

}  // namespace multival::serve
