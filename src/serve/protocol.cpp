#include "serve/protocol.hpp"

#include <charconv>
#include <vector>

namespace multival::serve {

namespace {

constexpr std::string_view kTag = "mv1";

std::uint64_t parse_u64(std::string_view text, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ProtocolError(std::string("protocol: bad ") + what + " '" +
                        std::string(text) + "'");
  }
  return v;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

std::string_view to_string(Verb v) {
  switch (v) {
    case Verb::kPing:
      return "ping";
    case Verb::kStats:
      return "stats";
    case Verb::kShutdown:
      return "shutdown";
    case Verb::kReach:
      return "reach";
    case Verb::kBounds:
      return "bounds";
    case Verb::kCheck:
      return "check";
    case Verb::kThroughput:
      return "throughput";
  }
  return "?";
}

std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kError:
      return "error";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kTimeout:
      return "timeout";
    case Status::kInvalid:
      return "invalid";
  }
  return "?";
}

Verb parse_verb(std::string_view text) {
  for (Verb v : {Verb::kPing, Verb::kStats, Verb::kShutdown, Verb::kReach,
                 Verb::kBounds, Verb::kCheck, Verb::kThroughput}) {
    if (text == to_string(v)) {
      return v;
    }
  }
  throw ProtocolError("protocol: unknown verb '" + std::string(text) + "'");
}

Status parse_status(std::string_view text) {
  for (Status s : {Status::kOk, Status::kError, Status::kOverloaded,
                   Status::kTimeout, Status::kInvalid}) {
    if (text == to_string(s)) {
      return s;
    }
  }
  throw ProtocolError("protocol: unknown status '" + std::string(text) + "'");
}

std::string escape_field(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      throw ProtocolError("protocol: dangling escape");
    }
    switch (field[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      default:
        throw ProtocolError("protocol: bad escape \\" +
                            std::string(1, field[i]));
    }
  }
  return out;
}

std::string encode_request(const Request& r) {
  std::string line(kTag);
  line += '\t';
  line += std::to_string(r.id);
  line += '\t';
  line += to_string(r.verb);
  line += '\t';
  line += std::to_string(r.deadline.count());
  line += '\t';
  line += escape_field(r.arg);
  line += '\t';
  line += escape_field(r.payload);
  return line;
}

Request decode_request(std::string_view line) {
  const auto fields = split_fields(line);
  if (fields.size() != 6 || fields[0] != kTag) {
    throw ProtocolError("protocol: malformed request line (" +
                        std::to_string(fields.size()) + " fields)");
  }
  Request r;
  r.id = parse_u64(fields[1], "request id");
  r.verb = parse_verb(fields[2]);
  r.deadline =
      std::chrono::milliseconds(parse_u64(fields[3], "deadline"));
  r.arg = unescape_field(fields[4]);
  r.payload = unescape_field(fields[5]);
  return r;
}

std::string encode_response(const Response& r) {
  std::string line(kTag);
  line += '\t';
  line += std::to_string(r.id);
  line += '\t';
  line += to_string(r.status);
  line += '\t';
  line += escape_field(r.body);
  return line;
}

Response decode_response(std::string_view line) {
  const auto fields = split_fields(line);
  if (fields.size() != 4 || fields[0] != kTag) {
    throw ProtocolError("protocol: malformed response line (" +
                        std::to_string(fields.size()) + " fields)");
  }
  Response r;
  r.id = parse_u64(fields[1], "response id");
  r.status = parse_status(fields[2]);
  r.body = unescape_field(fields[3]);
  return r;
}

}  // namespace multival::serve
