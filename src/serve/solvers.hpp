// Request evaluation for the service: parses the payload, derives the
// canonical cache key and runs the corresponding solver.
//
// The same code path is used by the service workers and by tests that
// assert served results are bitwise identical to direct in-process solves:
// every solver underneath is deterministic for any thread count (see
// core/parallel), and results are formatted with round-trip precision
// (%.17g), so equal models always produce byte-identical bodies.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/diag.hpp"
#include "serve/hash.hpp"
#include "serve/protocol.hpp"

namespace multival::serve {

/// True for verbs that run a solver (reach/bounds/check/throughput);
/// control verbs (ping/stats/shutdown) are handled by the service/server.
[[nodiscard]] bool is_solve_verb(Verb v);

/// An ill-formed request: unparseable model/formula/argument, or a model the
/// verb can never solve (e.g. a nondeterministic IMC submitted to reach).
/// Detected by the syntax-polynomial pre-flight in prepare_request, i.e.
/// before any worker runs; the service answers Status::kInvalid with the
/// rendered diagnostics as the body.
class InvalidRequest : public std::runtime_error {
 public:
  explicit InvalidRequest(std::vector<core::Diagnostic> diagnostics)
      : std::runtime_error(core::render_text(diagnostics)),
        diagnostics_(std::move(diagnostics)) {}

  [[nodiscard]] const std::vector<core::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<core::Diagnostic> diagnostics_;
};

/// A parsed, keyed request ready to run on any worker thread.
///
/// Batching: requests that share the *model* (but differ in argument — e.g.
/// reach with several time bounds, throughput with several label globs)
/// carry the same non-zero batch_key.  The service groups queued flights by
/// batch_key and answers a whole group in one sweep: setup() builds the
/// shared per-model state (the closed CTMC with its cached uniformised
/// DTMC/CSR matrix) exactly once, then each flight's run_shared() reuses
/// it.  Flights without batch support leave batch_key zero and are solved
/// through run().
struct Prepared {
  CacheKey key;
  std::function<std::string()> run;  ///< deterministic; throws on failure

  /// States of the parsed model payload, known before any worker runs (the
  /// serve tier receives already-generated models, so the "predicted size"
  /// of a request is exact).  The service's admission gate compares it
  /// against ServiceOptions::admission_budget and rejects over-budget
  /// requests with Status::kInvalid and an MV042 diagnostic pre-queue.
  std::size_t model_states = 0;

  CacheKey batch_key;  ///< zero = not batchable
  /// Builds the state shared by every flight of the batch (e.g. the closed
  /// CTMC).  Run once per sweep, on the solving worker.
  std::function<std::shared_ptr<void>()> setup;
  /// Solves this flight against the shared state; deterministic, and
  /// byte-identical to run() on the same request.
  std::function<std::string(void*)> run_shared;
};

/// Parses and keys @p r.  Throws InvalidRequest (with MV0xx diagnostics) on
/// malformed payloads/arguments and on models the verb can never solve;
/// std::runtime_error on non-solve verbs.
[[nodiscard]] Prepared prepare_request(const Request& r);

/// Convenience: prepare + run in one call (the "direct in-process solve").
[[nodiscard]] std::string solve_request(const Request& r);

/// Round-trip formatting used for all numeric results ("%.17g").
[[nodiscard]] std::string format_double(double v);

}  // namespace multival::serve
