// Request evaluation for the service: parses the payload, derives the
// canonical cache key and runs the corresponding solver.
//
// The same code path is used by the service workers and by tests that
// assert served results are bitwise identical to direct in-process solves:
// every solver underneath is deterministic for any thread count (see
// core/parallel), and results are formatted with round-trip precision
// (%.17g), so equal models always produce byte-identical bodies.
#pragma once

#include <functional>
#include <string>

#include "serve/hash.hpp"
#include "serve/protocol.hpp"

namespace multival::serve {

/// True for verbs that run a solver (reach/bounds/check/throughput);
/// control verbs (ping/stats/shutdown) are handled by the service/server.
[[nodiscard]] bool is_solve_verb(Verb v);

/// A parsed, keyed request ready to run on any worker thread.
struct Prepared {
  CacheKey key;
  std::function<std::string()> run;  ///< deterministic; throws on failure
};

/// Parses and keys @p r.  Throws std::runtime_error (including ParseError /
/// ProtocolError) on malformed payloads, non-solve verbs or bad arguments.
[[nodiscard]] Prepared prepare_request(const Request& r);

/// Convenience: prepare + run in one call (the "direct in-process solve").
[[nodiscard]] std::string solve_request(const Request& r);

/// Round-trip formatting used for all numeric results ("%.17g").
[[nodiscard]] std::string format_double(double v);

}  // namespace multival::serve
