// Canonical content hashing for the evaluation service (src/serve).
//
// A CacheKey is a 128-bit digest of the *semantic* object being solved —
// an LTS, an IMC, a CTMC or a mu-calculus formula — not of its textual
// encoding, so two .aut renderings of the same model (different whitespace,
// different label-interning order) map to the same key.  The digest covers
// everything the solvers observe: state count, initial state/distribution,
// and every transition in insertion order with its label *text* (label ids
// are an artefact of interning order and are never hashed).
//
// The hash is two independent FNV-1a-64 lanes finalised with a splitmix64
// mix.  It is a content-address for caching, not a cryptographic digest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "imc/imc.hpp"
#include "lts/lts.hpp"
#include "markov/ctmc.hpp"

namespace multival::serve {

/// 128-bit content key.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  /// 32 lowercase hex characters (used as the on-disk file name).
  [[nodiscard]] std::string hex() const;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental canonical hasher.  All multi-byte values are fed in a fixed
/// little-endian order and strings are length-prefixed, so the digest does
/// not depend on platform layout or on field concatenation ambiguities.
class Hasher {
 public:
  Hasher();

  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  /// Length-prefixed, so str("ab")+str("c") != str("a")+str("bc").
  void str(std::string_view s);
  /// Hashes the IEEE-754 bit pattern (rates are compared bitwise by the
  /// solvers, so the key must distinguish them bitwise too).
  void f64(double v);

  [[nodiscard]] CacheKey key() const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

/// Canonical digests of the model types handled by the service.
void hash_append(Hasher& h, const lts::Lts& l);
void hash_append(Hasher& h, const imc::Imc& m);
void hash_append(Hasher& h, const markov::Ctmc& c);

}  // namespace multival::serve
