// Experiment T1 — "LOTOS models are translated into LTSs, which enumerate
// the state space of the model": state-space inventory of every Multival
// case-study model in this reproduction.
#include <iostream>

#include "compose/plan.hpp"
#include "core/report.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "fame/mpi.hpp"
#include "noc/mesh.hpp"
#include "noc/router.hpp"
#include "xstream/queue_model.hpp"

int main() {
  using namespace multival;
  using namespace multival::core;

  Table t("T1: state spaces of the case-study models",
          {"architecture", "model", "states", "transitions"});

  const auto row = [&](const char* arch, const std::string& model,
                       const lts::Lts& l) {
    t.add_row({arch, model, std::to_string(l.num_states()),
               std::to_string(l.num_transitions())});
  };

  for (int cap = 1; cap <= 3; ++cap) {
    xstream::QueueConfig cfg;
    cfg.capacity = cap;
    row("xSTream", "virtual queue (cap " + std::to_string(cap) + ")",
        xstream::virtual_queue_lts(cfg));
  }
  {
    xstream::QueueConfig cfg;
    cfg.variant = xstream::QueueVariant::kEagerCredit;
    row("xSTream", "virtual queue (eager-credit bug)",
        xstream::virtual_queue_lts(cfg));
  }

  row("FAUST", "router (free environment)", noc::router_lts(0));
  row("FAUST", "3x3 centre router (free environment)",
      noc::router_lts(4, noc::MeshDims{3, 3}));
  // T1 inventories the *monolithic* state spaces (what "enumerate the state
  // space" means in the paper); the default pipeline is now the planned
  // compositional one, which returns minimal LTSs — so pin kFlat here.
  row("FAUST", "2x2 mesh, 1 packet 0->3",
      noc::single_packet_lts(0, 3, true, {}, compose::Strategy::kFlat));
  row("FAUST", "2x2 mesh, flows 0->3 & 1->3",
      noc::stream_lts({{0, 3}, {1, 3}}, true, {}, compose::Strategy::kFlat));
  row("FAUST", "3x3 mesh, 1 packet 0->8",
      noc::single_packet_lts(0, 8, true, noc::MeshDims{3, 3},
                             compose::Strategy::kFlat));
  row("FAUST", "3x3 mesh, flows 0->8 & 8->0",
      noc::stream_lts({{0, 8}, {8, 0}}, true, noc::MeshDims{3, 3},
                      compose::Strategy::kFlat));

  row("FAME2", "MSI coherence + observer (2 nodes)",
      fame::coherence_system_lts(fame::Protocol::kMsi));
  row("FAME2", "MESI coherence + observer (2 nodes)",
      fame::coherence_system_lts(fame::Protocol::kMesi));
  row("FAME2", "MESI coherence + observer (3 nodes)",
      fame::coherence_system_n_lts(fame::Protocol::kMesi, 3,
                                   compose::Strategy::kFlat));
  row("FAME2", "MESI coherence + observer (4 nodes)",
      fame::coherence_system_n_lts(fame::Protocol::kMesi, 4,
                                   compose::Strategy::kFlat));
  {
    fame::PingPongConfig cfg;
    cfg.rounds = 2;
    row("FAME2", "MPI ping-pong scenario (eager, 2 rounds)",
        fame::pingpong_lts(cfg));
  }

  t.print(std::cout);
  return 0;
}
