// Ablation studies over this reproduction's own design choices:
//
//  A1 — lumping on/off: how much the branching lump shrinks the closed IMC
//       before CTMC extraction (the "compositional minimisation" knob of
//       the performance flow).
//  A2 — NoC input-buffer depth: functional state-space cost vs streaming
//       throughput gain.
//  A3 — xSTream pipeline depth: latency/throughput scaling of chained
//       virtual queues.
//  A4 — scheduler resolution: how wide the nondeterminism band is that the
//       kUniform policy silently collapses.
#include <iostream>

#include "core/flow.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"
#include "core/report.hpp"
#include "fame/mpi.hpp"
#include "fame/topology.hpp"
#include "imc/compose.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"
#include "noc/perf.hpp"
#include "noc/router.hpp"
#include "xstream/perf.hpp"

int main() {
  using namespace multival;
  using multival::core::fmt;

  // ---- A1: lumping on/off ---------------------------------------------------
  {
    core::Table t("A1: branching lump before CTMC extraction",
                  {"model", "IMC states", "lumped", "reduction"});
    const auto row = [&](const std::string& name, const imc::Imc& m) {
      const auto with = core::close_model(m, imc::NondetPolicy::kUniform,
                                          /*lump=*/true);
      const auto without = core::close_model(m, imc::NondetPolicy::kUniform,
                                             /*lump=*/false);
      t.add_row({name, std::to_string(without.ctmc.num_states()),
                 std::to_string(with.ctmc.num_states()),
                 fmt(static_cast<double>(without.ctmc.num_states()) /
                         static_cast<double>(with.ctmc.num_states()),
                     1) + "x"});
    };
    {
      // Two interleaved identical machines: lumping folds the symmetry.
      using namespace multival::proc;
      Program p;
      p.define("Machine", {},
               prefix("FETCH", prefix("WORK", prefix("SHIP",
                      call("Machine")))));
      p.define("Dispatcher", {}, prefix("FETCH", call("Dispatcher")));
      p.define("Shop", {},
               par(interleaving(call("Machine"), call("Machine")),
                   {"FETCH"}, call("Dispatcher")));
      row("two symmetric machines",
          core::decorate_with_rates(generate(p, "Shop"),
                                    {{"FETCH", 3.0},
                                     {"WORK", 1.0},
                                     {"SHIP", 5.0}}));
    }
    {
      fame::PingPongConfig cfg;
      cfg.rounds = 4;
      const lts::Lts l = fame::pingpong_lts(cfg);
      row("FAME2 ping-pong (4 rounds)",
          core::decorate_with_rates(
              l, fame::topology_rates(cfg.topology, {"M", "S0", "S1"})));
    }
    t.print(std::cout);
    std::cout << "(symmetric systems fold; already-sequential scenarios are "
                 "lump-minimal)\n\n";
  }

  // ---- A2: NoC buffer depth ---------------------------------------------------
  {
    core::Table t("A2: NoC input-buffer depth (2x2 mesh)",
                  {"depth", "router states", "throughput 3x {0->3}"});
    const noc::NocRates rates;
    const std::vector<noc::Flow> flows{{0, 3}, {0, 3}, {0, 3}};
    for (int depth = 1; depth <= 3; ++depth) {
      noc::MeshDims dims;
      dims.buffer_depth = depth;
      t.add_row({std::to_string(depth),
                 std::to_string(noc::router_lts(0, dims).num_states()),
                 fmt(noc::delivery_throughput(flows, rates, dims))});
    }
    t.print(std::cout);
    std::cout << "(depth 2 relieves the injection bottleneck for 3 packets "
                 "in flight, then saturates — at a steep state-space "
                 "premium)\n\n";
  }

  // ---- A3: xSTream pipeline depth ----------------------------------------------
  {
    core::Table t("A3: xSTream pipeline depth (push 1.0, pop 2.0)",
                  {"stages", "throughput", "end-to-end latency",
                   "CTMC states"});
    xstream::PipelinePerfParams p;
    p.push_rate = 1.0;
    p.pop_rate = 2.0;
    for (int stages = 2; stages <= 4; ++stages) {
      const auto r = xstream::analyze_pipeline_n(p, stages);
      t.add_row({std::to_string(stages), fmt(r.throughput),
                 fmt(r.mean_latency), std::to_string(r.ctmc_states)});
    }
    t.print(std::cout);
    std::cout << "(latency grows with depth; throughput stays "
                 "arrival-bound)\n\n";
  }

  // ---- A4: scheduler band width ---------------------------------------------------
  {
    core::Table t("A4: what uniform resolution hides (fast-or-slow race)",
                  {"slow-path rate", "min", "uniform", "max",
                   "band width"});
    for (const double slow : {4.0, 2.0, 1.0, 0.5}) {
      imc::Imc m;
      m.add_states(4);
      m.add_interactive(0, "i", 1);
      m.add_interactive(0, "i", 2);
      m.add_markovian(1, 4.0, 3);
      m.add_markovian(2, slow, 3);
      const auto b = imc::absorption_time_bounds(m);
      const auto e = imc::to_ctmc(m, imc::NondetPolicy::kUniform);
      const double uni =
          markov::expected_absorption_time_from_initial(e.ctmc);
      t.add_row({fmt(slow, 1), fmt(b.min), fmt(uni), fmt(b.max),
                 fmt(b.max - b.min)});
    }
    t.print(std::cout);
    std::cout << "(the band widens as the alternatives diverge — exactly "
                 "the information a point estimate destroys)\n";
  }
  return 0;
}
