// Experiment T9 — "the Markov solvers included in CADP can compute
// steady-state or time-dependent state probabilities and transition
// throughputs": cross-validation of every numerical solver against
// discrete-event simulation (95% confidence intervals) and closed forms.
#include <cmath>
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"
#include "sim/simulator.hpp"
#include "xstream/perf.hpp"

int main() {
  using namespace multival;
  using multival::core::fmt;
  using multival::core::fmt_ci;

  core::Table t("T9: numerical solvers vs Monte-Carlo simulation",
                {"model", "quantity", "solver", "simulation (95% CI)",
                 "in CI"});

  const auto row = [&](const std::string& model, const std::string& what,
                       double exact, const sim::Estimate& e) {
    t.add_row({model, what, fmt(exact), fmt_ci(e.mean, e.half_width),
               e.contains(exact) ? "yes" : "NO"});
  };

  sim::SimOptions steady_opts;
  steady_opts.horizon = 20000.0;
  steady_opts.batches = 30;

  // -- M/M/1/4 ------------------------------------------------------------
  {
    markov::Ctmc c;
    c.add_states(5);
    for (int i = 0; i < 4; ++i) {
      c.add_transition(i, i + 1, 1.0, "arrive");
      c.add_transition(i + 1, i, 1.5, "serve");
    }
    const auto pi = markov::steady_state(c);
    std::vector<double> empty(5, 0.0);
    empty[0] = 1.0;
    row("M/M/1/4", "P[empty]", pi[0],
        sim::simulate_steady_reward(c, empty, steady_opts));
    row("M/M/1/4", "throughput(serve)", markov::throughput(c, pi, "serve"),
        sim::simulate_throughput(c, "serve", steady_opts));
  }

  // -- xSTream virtual queue ------------------------------------------------
  {
    xstream::QueuePerfParams p;
    p.queue.max_value = 0;  // timing-only model (same as the analyzer uses)
    p.push_rate = 1.5;
    p.pop_rate = 2.0;
    const auto r = xstream::analyze_virtual_queue(p);
    // Rebuild the same CTMC for simulation.
    const lts::Lts open = xstream::virtual_queue_lts_open(p.queue);
    const imc::Imc m = core::decorate_with_rates(
        open, {{"PUSH", p.push_rate},
               {"NET", p.net_rate},
               {"CREDIT", p.credit_rate},
               {"POP", p.pop_rate}});
    const auto closed =
        core::close_model(m, imc::NondetPolicy::kReject, false);
    row("xSTream queue", "throughput(POP)", r.throughput,
        sim::simulate_throughput(closed.ctmc, "POP*", steady_opts));
  }

  // -- Erlang absorption ------------------------------------------------------
  {
    markov::Ctmc c;
    c.add_states(5);
    for (int i = 0; i < 4; ++i) {
      c.add_transition(i, i + 1, 2.0);
    }
    sim::SimOptions rep;
    rep.replications = 20000;
    row("Erlang(4, 2)", "E[absorption time]",
        markov::expected_absorption_time_from_initial(c),
        sim::simulate_absorption_time(c, rep));
  }

  // -- transient probability ---------------------------------------------------
  {
    markov::Ctmc c;
    c.add_states(2);
    c.add_transition(0, 1, 2.0);
    c.add_transition(1, 0, 0.5);
    sim::SimOptions rep;
    rep.replications = 20000;
    const double exact =
        markov::transient_probability(c, {false, true}, 0.8);
    row("two-state chain", "P[up at t=0.8]", exact,
        sim::simulate_transient_probability(c, {false, true}, 0.8, rep));
    // Also check uniformisation against the closed form.
    const double closed_form =
        2.0 / 2.5 * (1.0 - std::exp(-2.5 * 0.8));
    t.add_row({"two-state chain", "uniformisation vs closed form",
               fmt(exact), fmt(closed_form),
               std::abs(exact - closed_form) < 1e-9 ? "yes" : "NO"});
  }

  t.print(std::cout);
  return 0;
}
