// Micro-benchmark: partition-refinement minimisation throughput on random
// LTSs of growing size.
#include <benchmark/benchmark.h>

#include <random>

#include "bisim/branching.hpp"
#include "bisim/strong.hpp"
#include "lts/lts.hpp"

namespace {

using namespace multival;

lts::Lts random_lts(std::size_t states, std::size_t labels,
                    double tau_fraction, std::uint32_t seed) {
  std::mt19937 rng(seed);
  lts::Lts l;
  l.add_states(states);
  std::vector<lts::ActionId> ids;
  for (std::size_t i = 0; i < labels; ++i) {
    ids.push_back(l.actions().intern("L" + std::to_string(i)));
  }
  std::uniform_int_distribution<lts::StateId> state(
      0, static_cast<lts::StateId>(states - 1));
  std::uniform_int_distribution<std::size_t> label(0, labels - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t i = 0; i < states * 3; ++i) {
    const auto a = coin(rng) < tau_fraction ? lts::ActionTable::kTau
                                            : ids[label(rng)];
    l.add_transition(state(rng), a, state(rng));
  }
  return l;
}

void BM_StrongMinimization(benchmark::State& state) {
  const auto l = random_lts(static_cast<std::size_t>(state.range(0)), 4, 0.0,
                            7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bisim::minimize_strong(l));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StrongMinimization)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BranchingMinimization(benchmark::State& state) {
  const auto l = random_lts(static_cast<std::size_t>(state.range(0)), 4, 0.3,
                            7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bisim::minimize_branching(l));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BranchingMinimization)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
