// Experiment F8 — "To avoid state space explosion, refined approaches based
// on compositional verification ... are used": peak intermediate state
// count of the compositional strategy (minimise after every join) versus
// the monolithic strategy, on growing xSTream-style pipelines.
//
// The second table drives the *automatic* planner (compose::plan_program,
// the default generator pipeline since the plan refactor) over the case
// studies, reporting planned vs flat peaks and asserting byte-identity.
#include <iostream>
#include <sstream>

#include "compose/pipeline.hpp"
#include "compose/plan.hpp"
#include "core/report.hpp"
#include "explore/lts_stream.hpp"
#include "fame/coherence_n.hpp"
#include "noc/mesh.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

/// A pipeline of @p cells one-value buffers over values 0..2.
Program pipeline_program(int cells) {
  Program p;
  for (int i = 0; i < cells; ++i) {
    const std::string in = i == 0 ? "IN" : "M" + std::to_string(i);
    const std::string out =
        i == cells - 1 ? "OUT" : "M" + std::to_string(i + 1);
    p.define("Cell" + std::to_string(i), {},
             prefix(in, {accept("x", 0, 2)},
                    prefix(out, {emit(evar("x"))},
                           call("Cell" + std::to_string(i)))));
  }
  return p;
}

compose::NodePtr build_tree(const Program& p, int cells) {
  auto cell = [&p](int i) {
    return compose::leaf(
        [&p, i]() { return generate(p, "Cell" + std::to_string(i)); },
        "cell" + std::to_string(i));
  };
  compose::NodePtr acc = cell(0);
  std::vector<std::string> hidden;
  for (int i = 1; i < cells; ++i) {
    const std::string mid = "M" + std::to_string(i);
    acc = compose::minimize_here(
        compose::hide_gates({mid},
                            compose::compose2(acc, {mid}, cell(i))));
    hidden.push_back(mid);
  }
  return acc;
}

}  // namespace

int main() {
  using multival::core::fmt;

  multival::core::Table t(
      "F8: compositional vs monolithic generation (pipeline of 1-place "
      "buffers, values 0..2)",
      {"cells", "monolithic peak", "compositional peak", "final states",
       "peak ratio", "equivalent"});
  for (int cells = 2; cells <= 6; ++cells) {
    const Program p = pipeline_program(cells);
    const auto tree = build_tree(p, cells);
    const auto cmp = compose::compare_strategies(tree);
    const double ratio =
        static_cast<double>(cmp.monolithic.peak_states) /
        static_cast<double>(cmp.compositional.peak_states);
    // Final size = last step of the compositional run.
    const std::size_t final_states =
        cmp.compositional.steps.back().states_after;
    t.add_row({std::to_string(cells),
               std::to_string(cmp.monolithic.peak_states),
               std::to_string(cmp.compositional.peak_states),
               std::to_string(final_states), fmt(ratio, 2) + "x",
               cmp.equivalent ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "(shape: the monolithic peak grows exponentially with the "
               "pipeline depth; interleaved minimisation keeps the peak "
               "near the final size)\n\n";

  // The automatic planner on the case studies: same invariants, no
  // hand-built tree.  Peaks are planned vs flat-to-the-same-normal-form;
  // "identical" is byte-level equality of the two serialised results.
  multival::core::Table auto_t(
      "F8b: automatic composition plans (compose::plan_program, default "
      "generator pipeline)",
      {"model", "flat peak", "planned peak", "final states", "peak/final",
       "identical"});
  struct Case {
    std::string name;
    std::shared_ptr<const Program> program;
    std::string entry;
  };
  const std::vector<Case> cases = {
      {"fame msi 3-node",
       std::make_shared<Program>(
           fame::coherence_system_n_program(fame::Protocol::kMsi, 3)),
       "SystemN"},
      {"fame mesi 3-node",
       std::make_shared<Program>(
           fame::coherence_system_n_program(fame::Protocol::kMesi, 3)),
       "SystemN"},
      {"noc 3x3 single packet",
       std::make_shared<Program>(noc::single_packet_program(
           0, 8, /*hide_links=*/true, noc::MeshDims{3, 3})),
       "Scenario"},
      {"buffer pipeline (6 cells)",
       std::make_shared<Program>(pipeline_program(6)), "Cell0"}};
  bool all_identical = true;
  bool all_bounded = true;
  for (const Case& c : cases) {
    // The pipeline case composes Cell0..Cell5 explicitly; the others plan
    // their entry process.  Both strategies evaluate the same root term.
    const compose::PlanOptions popts;
    TermPtr root = call(c.entry, {});
    if (c.name.rfind("buffer", 0) == 0) {
      std::vector<std::string> gates;
      for (int i = 1; i < 6; ++i) {
        const std::string mid = "M" + std::to_string(i);
        root = par(root, {mid}, call("Cell" + std::to_string(i), {}));
        gates.push_back(mid);
      }
      root = hide(gates, root);
    }
    const compose::Plan plan = compose::plan_term(c.program, root, popts);
    const compose::PlanResult planned = compose::evaluate_plan(plan, popts);
    const compose::PlanResult flat =
        compose::flat_reference(c.program, root, popts);
    std::ostringstream a;
    std::ostringstream b;
    explore::write_lts_stream(a, planned.lts);
    explore::write_lts_stream(b, flat.lts);
    const bool identical = a.str() == b.str();
    all_identical = all_identical && identical;
    const std::size_t final_states = planned.lts.num_states();
    // PR 8 acceptance bound: no planned intermediate may exceed 4x the
    // final minimised LTS (ctest runs this exhibit as a gate).
    all_bounded =
        all_bounded && planned.stats.peak_states <= 4 * final_states;
    auto_t.add_row(
        {c.name, std::to_string(flat.stats.peak_states),
         std::to_string(planned.stats.peak_states),
         std::to_string(final_states),
         fmt(static_cast<double>(planned.stats.peak_states) /
                 static_cast<double>(final_states == 0 ? 1 : final_states),
             2) +
             "x",
         identical ? "yes" : "NO"});
  }
  auto_t.print(std::cout);
  std::cout << "(the planner keeps every intermediate within a small "
               "multiple of the final minimal LTS; both paths end at the "
               "same canonical form)\n";
  return all_identical && all_bounded ? 0 : 1;
}
