// Experiment F8 — "To avoid state space explosion, refined approaches based
// on compositional verification ... are used": peak intermediate state
// count of the compositional strategy (minimise after every join) versus
// the monolithic strategy, on growing xSTream-style pipelines.
#include <iostream>

#include "compose/pipeline.hpp"
#include "core/report.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

/// A pipeline of @p cells one-value buffers over values 0..2.
Program pipeline_program(int cells) {
  Program p;
  for (int i = 0; i < cells; ++i) {
    const std::string in = i == 0 ? "IN" : "M" + std::to_string(i);
    const std::string out =
        i == cells - 1 ? "OUT" : "M" + std::to_string(i + 1);
    p.define("Cell" + std::to_string(i), {},
             prefix(in, {accept("x", 0, 2)},
                    prefix(out, {emit(evar("x"))},
                           call("Cell" + std::to_string(i)))));
  }
  return p;
}

compose::NodePtr build_tree(const Program& p, int cells) {
  auto cell = [&p](int i) {
    return compose::leaf(
        [&p, i]() { return generate(p, "Cell" + std::to_string(i)); },
        "cell" + std::to_string(i));
  };
  compose::NodePtr acc = cell(0);
  std::vector<std::string> hidden;
  for (int i = 1; i < cells; ++i) {
    const std::string mid = "M" + std::to_string(i);
    acc = compose::minimize_here(
        compose::hide_gates({mid},
                            compose::compose2(acc, {mid}, cell(i))));
    hidden.push_back(mid);
  }
  return acc;
}

}  // namespace

int main() {
  using multival::core::fmt;

  multival::core::Table t(
      "F8: compositional vs monolithic generation (pipeline of 1-place "
      "buffers, values 0..2)",
      {"cells", "monolithic peak", "compositional peak", "final states",
       "peak ratio", "equivalent"});
  for (int cells = 2; cells <= 6; ++cells) {
    const Program p = pipeline_program(cells);
    const auto tree = build_tree(p, cells);
    const auto cmp = compose::compare_strategies(tree);
    const double ratio =
        static_cast<double>(cmp.monolithic.peak_states) /
        static_cast<double>(cmp.compositional.peak_states);
    // Final size = last step of the compositional run.
    const std::size_t final_states =
        cmp.compositional.steps.back().states_after;
    t.add_row({std::to_string(cells),
               std::to_string(cmp.monolithic.peak_states),
               std::to_string(cmp.compositional.peak_states),
               std::to_string(final_states), fmt(ratio, 2) + "x",
               cmp.equivalent ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "(shape: the monolithic peak grows exponentially with the "
               "pipeline depth; interleaved minimisation keeps the peak "
               "near the final size)\n";
  return 0;
}
