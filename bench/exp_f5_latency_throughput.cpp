// Experiment F5 — "to predict latency, throughputs in the communication
// architecture": throughput and mean latency of the xSTream virtual queue
// as the consumer service rate sweeps across the saturation point.
#include <iostream>

#include "core/report.hpp"
#include "xstream/perf.hpp"

int main() {
  using namespace multival;
  using namespace multival::xstream;

  core::Table t("F5: xSTream throughput & latency vs consumer rate "
                "(push rate 2.0)",
                {"pop rate", "throughput", "mean latency", "utilisation"});
  for (const double mu : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0}) {
    QueuePerfParams p;
    p.push_rate = 2.0;
    p.pop_rate = mu;
    const QueuePerfResult r = analyze_virtual_queue(p);
    t.add_row({core::fmt(mu, 1), core::fmt(r.throughput),
               core::fmt(r.mean_latency), core::fmt(r.utilisation)});
  }
  t.print(std::cout);
  std::cout << "(shape: throughput saturates at min(push, pop) rate; "
               "latency falls as the consumer speeds up)\n";

  core::Table nets("F5b: effect of NoC transfer rate (push 2.0, pop 2.0)",
                   {"net rate", "throughput", "mean latency"});
  for (const double net : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    QueuePerfParams p;
    p.push_rate = 2.0;
    p.pop_rate = 2.0;
    p.net_rate = net;
    p.credit_rate = net;
    const QueuePerfResult r = analyze_virtual_queue(p);
    nets.add_row({core::fmt(net, 1), core::fmt(r.throughput),
                  core::fmt(r.mean_latency)});
  }
  nets.print(std::cout);

  core::Table pipe("F5c: two-stage pipeline (two virtual queues in series)",
                   {"push rate", "throughput", "latency", "occ stage1",
                    "occ stage2"});
  for (const double lambda : {0.5, 1.0, 2.0, 4.0}) {
    PipelinePerfParams p;
    p.push_rate = lambda;
    p.pop_rate = 2.0;
    const PipelinePerfResult r = analyze_pipeline(p);
    pipe.add_row({core::fmt(lambda, 1), core::fmt(r.throughput),
                  core::fmt(r.mean_latency), core::fmt(r.mean_occ_stage1),
                  core::fmt(r.mean_occ_stage2)});
  }
  pipe.print(std::cout);
  return 0;
}
