// Experiment F4 — "STMicroelectronics explores this flow to predict ...
// occupancy within xSTream queues": steady-state occupancy distribution of
// the virtual queue as the offered load varies.
#include <iostream>

#include "core/report.hpp"
#include "xstream/perf.hpp"

int main() {
  using namespace multival;
  using namespace multival::xstream;

  const double mu = 2.0;
  core::Table t("F4: xSTream queue occupancy distribution (capacity 2+1, "
                "pop rate 2.0)",
                {"load rho", "P[0]", "P[1]", "P[2]", "P[3]", "mean occ"});
  for (const double rho : {0.3, 0.6, 0.9, 1.2, 2.0}) {
    QueuePerfParams p;
    p.push_rate = rho * mu;
    p.pop_rate = mu;
    const QueuePerfResult r = analyze_virtual_queue(p);
    t.add_row({core::fmt(rho, 2), core::fmt(r.occupancy_distribution[0]),
               core::fmt(r.occupancy_distribution[1]),
               core::fmt(r.occupancy_distribution[2]),
               core::fmt(r.occupancy_distribution[3]),
               core::fmt(r.mean_occupancy)});
  }
  t.print(std::cout);
  std::cout << "(shape: mass moves from occupancy 0 towards the full queue "
               "as load crosses 1)\n";
  return 0;
}
