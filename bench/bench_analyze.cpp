// Micro-benchmark: static lint cost versus the state spaces it gates.
//
// The analyzer is polynomial in the *syntax*: the n-cell family below grows
// linearly in text while its interleaved state space grows as 10^n, so the
// pre-flight lint stays in the microsecond range on models whose
// exploration cost grows without bound.  The states_generated counter is
// exported to make the no-exploration contract visible in the output.
//
// The MV04x bound analyzer (analyze/bounds.hpp) rides the same contract:
// BM_PredictBounds* measure the interval fixpoint plus the counting pass,
// and `--json PATH` emits a machine-readable timing/prediction report
// (self-validating: it exits non-zero if a prediction misses its known
// value or any state is generated).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/bounds.hpp"
#include "core/parallel.hpp"
#include "fame/coherence.hpp"
#include "noc/mesh.hpp"
#include "proc/parser.hpp"
#include "proc/process.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;

// n interleaved ten-state counters synchronised with a stuck GO partner:
// ~10^n product states, one MV003 structural deadlock, linear syntax.
std::string cells_model(int n) {
  std::string text;
  std::string left;
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    text += "process Cell" + id + " (v) :=\n";
    text += "    [v < 9] -> INC" + id + " ; Cell" + id + " (v + 1)\n";
    text += " [] [v > 0] -> DEC" + id + " ; Cell" + id + " (v - 1)\n";
    text += "endproc\n";
    const std::string cell = "Cell" + id + " (0)";
    left = i == 0 ? cell : "(" + left + " ||| " + cell + ")";
  }
  text += "process Blocked := GO ; stop endproc\n";
  text += "process System := " + left + " |[GO]| Blocked endproc\n";
  return text;
}

void BM_LintCellsFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const proc::Program p = proc::parse_program(cells_model(n));
  analyze::AnalysisStats stats;
  for (auto _ : state) {
    const analyze::Analysis a = analyze::lint_program(p);
    if (a.clean() || a.stats.states_generated != 0) {
      throw std::logic_error("lint contract violated");
    }
    stats = a.stats;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["product_states"] = benchmark::Counter(std::pow(10.0, n));
  state.counters["terms"] = benchmark::Counter(
      static_cast<double>(stats.terms_visited));
  state.counters["states_generated"] = benchmark::Counter(
      static_cast<double>(stats.states_generated));
}
BENCHMARK(BM_LintCellsFamily)->Arg(3)->Arg(7)->Arg(12);

void BM_LintFameCoherence(benchmark::State& state) {
  const proc::Program p =
      fame::coherence_system_program(fame::Protocol::kMesi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::lint_program(p));
  }
}
BENCHMARK(BM_LintFameCoherence);

void BM_LintNocSinglePacket(benchmark::State& state) {
  const proc::Program p = noc::single_packet_program(0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::lint_program(p));
  }
}
BENCHMARK(BM_LintNocSinglePacket);

// The interval fixpoint + counting pass on the same exponential family:
// the predicted bound is exactly 10^n (each cell is a guard-bounded
// ten-value counter) while the analysis itself stays linear in the text.
void BM_PredictBoundsCellsFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const proc::Program p = proc::parse_program(cells_model(n));
  const proc::TermPtr root = proc::call("System");
  analyze::BoundReport report;
  for (auto _ : state) {
    report = analyze::predicted_bounds(p, root);
    if (report.stats.states_generated != 0) {
      throw std::logic_error("bound analysis explored states");
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["predicted_states"] = benchmark::Counter(
      static_cast<double>(report.total));
  state.counters["fixpoint_passes"] = benchmark::Counter(
      static_cast<double>(report.stats.fixpoint_passes));
}
BENCHMARK(BM_PredictBoundsCellsFamily)->Arg(3)->Arg(7)->Arg(12);

void BM_PredictBoundsFameCoherence(benchmark::State& state) {
  const proc::Program p =
      fame::coherence_system_program(fame::Protocol::kMesi);
  const proc::TermPtr root = proc::call("System");
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::predicted_bounds(p, root));
  }
}
BENCHMARK(BM_PredictBoundsFameCoherence);

// ---- --json mode ------------------------------------------------------------

struct JsonCase {
  std::string name;
  std::uint64_t predicted = 0;
  std::uint64_t want = 0;     ///< 0 = only check soundness flags, not value
  bool want_unbounded = false;
  std::size_t fixpoint_passes = 0;
  std::size_t states_generated = 0;
  double micros = 0.0;
};

// Minimum over a few repetitions: the analyzer runs in microseconds, so
// the min is the least-noisy single-shot estimate without pulling in the
// whole benchmark harness.
template <typename F>
double time_micros(F&& f, int reps = 16) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (i == 0 || us < best) {
      best = us;
    }
  }
  return best;
}

int run_json(const std::string& json_path) {
  std::vector<JsonCase> cases;

  for (const int n : {3, 7, 12}) {
    JsonCase c;
    c.name = "cells-" + std::to_string(n);
    c.want = 1;
    for (int i = 0; i < n; ++i) {
      c.want *= 10;
    }
    const proc::Program p = proc::parse_program(cells_model(n));
    const proc::TermPtr root = proc::call("System");
    analyze::BoundReport r;
    c.micros = time_micros([&] { r = analyze::predicted_bounds(p, root); });
    c.predicted = r.total;
    c.fixpoint_passes = r.stats.fixpoint_passes;
    c.states_generated = r.stats.states_generated;
    cases.push_back(c);
  }
  {
    JsonCase c;
    c.name = "fame-mesi";
    const proc::Program p =
        fame::coherence_system_program(fame::Protocol::kMesi);
    const proc::TermPtr root = proc::call("System");
    analyze::BoundReport r;
    c.micros = time_micros([&] { r = analyze::predicted_bounds(p, root); });
    c.predicted = r.total;
    c.fixpoint_passes = r.stats.fixpoint_passes;
    c.states_generated = r.stats.states_generated;
    cases.push_back(c);
  }
  {
    // The xstream virtual queue: PopSide's credit counter is unbounded
    // standalone, so the honest prediction is "unbounded" (the widening
    // must fire, never a silently-wrong finite number).
    JsonCase c;
    c.name = "xstream-virtual-queue";
    c.want_unbounded = true;
    const proc::Program p = xstream::virtual_queue_program({});
    const proc::TermPtr root = proc::call("VirtualQueue");
    analyze::BoundReport r;
    c.micros = time_micros([&] { r = analyze::predicted_bounds(p, root); });
    c.predicted = r.total;
    c.fixpoint_passes = r.stats.fixpoint_passes;
    c.states_generated = r.stats.states_generated;
    cases.push_back(c);
  }

  bool ok = true;
  for (const JsonCase& c : cases) {
    if (c.states_generated != 0) {
      std::cout << "FAIL: " << c.name << " generated states\n";
      ok = false;
    }
    if (c.want_unbounded && c.predicted != analyze::kUnboundedStates) {
      std::cout << "FAIL: " << c.name << " should predict unbounded\n";
      ok = false;
    }
    if (c.want != 0 && c.predicted != c.want) {
      std::cout << "FAIL: " << c.name << " predicted " << c.predicted
                << ", want " << c.want << "\n";
      ok = false;
    }
    std::cout << c.name << ": predicted "
              << analyze::format_states(c.predicted) << " in " << c.micros
              << " us (" << c.fixpoint_passes << " fixpoint passes)\n";
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "ERROR: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"analyze\",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"threads_used\": " << core::parallel_threads()
      << ",\n  \"bounds\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const JsonCase& c = cases[i];
    out << "    {\"model\": \"" << c.name << "\", \"predicted\": \""
        << analyze::format_states(c.predicted) << "\", \"micros\": "
        << c.micros << ", \"fixpoint_passes\": " << c.fixpoint_passes
        << ", \"states_generated\": " << c.states_generated << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  std::cout << (ok ? "BOUNDS PASS\n" : "BOUNDS FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (!json_path.empty()) {
    return run_json(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
