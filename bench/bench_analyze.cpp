// Micro-benchmark: static lint cost versus the state spaces it gates.
//
// The analyzer is polynomial in the *syntax*: the n-cell family below grows
// linearly in text while its interleaved state space grows as 10^n, so the
// pre-flight lint stays in the microsecond range on models whose
// exploration cost grows without bound.  The states_generated counter is
// exported to make the no-exploration contract visible in the output.
#include <benchmark/benchmark.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "analyze/analyze.hpp"
#include "fame/coherence.hpp"
#include "noc/mesh.hpp"
#include "proc/parser.hpp"
#include "proc/process.hpp"

namespace {

using namespace multival;

// n interleaved ten-state counters synchronised with a stuck GO partner:
// ~10^n product states, one MV003 structural deadlock, linear syntax.
std::string cells_model(int n) {
  std::string text;
  std::string left;
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    text += "process Cell" + id + " (v) :=\n";
    text += "    [v < 9] -> INC" + id + " ; Cell" + id + " (v + 1)\n";
    text += " [] [v > 0] -> DEC" + id + " ; Cell" + id + " (v - 1)\n";
    text += "endproc\n";
    const std::string cell = "Cell" + id + " (0)";
    left = i == 0 ? cell : "(" + left + " ||| " + cell + ")";
  }
  text += "process Blocked := GO ; stop endproc\n";
  text += "process System := " + left + " |[GO]| Blocked endproc\n";
  return text;
}

void BM_LintCellsFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const proc::Program p = proc::parse_program(cells_model(n));
  analyze::AnalysisStats stats;
  for (auto _ : state) {
    const analyze::Analysis a = analyze::lint_program(p);
    if (a.clean() || a.stats.states_generated != 0) {
      throw std::logic_error("lint contract violated");
    }
    stats = a.stats;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["product_states"] = benchmark::Counter(std::pow(10.0, n));
  state.counters["terms"] = benchmark::Counter(
      static_cast<double>(stats.terms_visited));
  state.counters["states_generated"] = benchmark::Counter(
      static_cast<double>(stats.states_generated));
}
BENCHMARK(BM_LintCellsFamily)->Arg(3)->Arg(7)->Arg(12);

void BM_LintFameCoherence(benchmark::State& state) {
  const proc::Program p =
      fame::coherence_system_program(fame::Protocol::kMesi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::lint_program(p));
  }
}
BENCHMARK(BM_LintFameCoherence);

void BM_LintNocSinglePacket(benchmark::State& state) {
  const proc::Program p = noc::single_packet_program(0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::lint_program(p));
  }
}
BENCHMARK(BM_LintNocSinglePacket);

}  // namespace

BENCHMARK_MAIN();
