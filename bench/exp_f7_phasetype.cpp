// Experiment F7 — the paper's conclusion: "representations of fixed-time
// delays, for which there is a space-accuracy tradeoff when approximating
// them in the IMC formalism".
//
// Part A quantifies the trade-off on the distribution itself: Erlang-k
// matches the mean exactly; the residual variability (CV^2 = 1/k) and the
// Wasserstein distance to the unit step fall as k grows, while the phase
// count (state-space cost) grows linearly.
//
// Part B shows the trade-off inside a model: an M/Er(k)/1/3 station whose
// service time approximates a fixed delay; the predicted occupancy
// converges as k grows while the closed IMC grows with k.
#include <climits>
#include <deque>
#include <iostream>
#include <vector>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"
#include "noc/mesh.hpp"
#include "phase/fit.hpp"
#include "proc/generator.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

/// Occupancy labelling over an IMC (ARR = +1, SRV_END = -1), following both
/// interactive and Markovian edges.
std::vector<int> imc_occupancy(const imc::Imc& m) {
  std::vector<int> occ(m.num_states(), INT_MIN);
  std::deque<imc::StateId> queue{m.initial_state()};
  occ[m.initial_state()] = 0;
  const auto visit = [&](imc::StateId dst, int value) {
    if (occ[dst] == INT_MIN) {
      occ[dst] = value;
      queue.push_back(dst);
    }
  };
  while (!queue.empty()) {
    const imc::StateId s = queue.front();
    queue.pop_front();
    for (const imc::InterEdge& e : m.interactive(s)) {
      const std::string_view label = m.actions().name(e.action);
      int delta = 0;
      if (label == "ARR") {
        delta = 1;
      } else if (label == "SRVEND") {
        delta = -1;
      }
      visit(e.dst, occ[s] + delta);
    }
    for (const imc::MarkEdge& e : m.markovian(s)) {
      visit(e.dst, occ[s]);
    }
  }
  return occ;
}

}  // namespace

int main() {
  using multival::core::fmt;

  // ---- Part A: the distribution-level trade-off --------------------------
  multival::core::Table a(
      "F7a: Erlang-k approximation of a fixed delay d = 1",
      {"k", "phases", "mean", "CV^2", "Wasserstein", "Kolmogorov"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto fit = phase::evaluate_fixed_delay_fit(1.0, k, 400);
    const auto dist = phase::erlang_for_fixed_delay(1.0, k);
    a.add_row({std::to_string(k), std::to_string(fit.phases),
               fmt(dist.mean()), fmt(fit.cv2), fmt(fit.wasserstein),
               fmt(fit.kolmogorov)});
  }
  a.print(std::cout);
  std::cout << "(accuracy ~ 1/sqrt(k); cost = k phases — the trade-off)\n\n";

  // ---- Part B: the model-level trade-off ----------------------------------
  // Station with capacity 3, Poisson(0.8) arrivals, fixed service time 1
  // approximated by Erlang-k.
  const int cap = 3;
  Program p;
  {
    std::vector<TermPtr> branches;
    branches.push_back(guard(evar("n") < lit(cap),
                             prefix("ARR", call("Q", {evar("n") + lit(1),
                                                      evar("b")}))));
    branches.push_back(guard(evar("n") > lit(0) && evar("b") == lit(0),
                             prefix("SSTART", call("Q", {evar("n"), lit(1)}))));
    branches.push_back(guard(evar("b") == lit(1),
                             prefix("SEND",
                                    prefix("SRVEND",
                                           call("Q", {evar("n") - lit(1),
                                                      lit(0)})))));
    p.define("Q", {"n", "b"}, choice(std::move(branches)));
    p.define("Gen", {}, prefix("ASTART", prefix("AEND",
                               prefix("ARR", call("Gen")))));
    p.define("Station", {},
             par(call("Q", {lit(0), lit(0)}), {"ARR"}, call("Gen")));
  }
  const lts::Lts functional = generate(p, "Station");

  multival::core::Table b(
      "F7b: M/Er(k)/1/3 station, fixed service time 1, arrivals 0.8",
      {"k", "IMC states", "CTMC states", "mean occupancy", "P[occ=3]"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const std::vector<multival::core::DelaySpec> delays{
        {"ASTART", "AEND", phase::PhaseType::exponential(0.8)},
        {"SSTART", "SEND", phase::erlang_for_fixed_delay(1.0, k)},
    };
    imc::Imc m = multival::core::insert_delays(functional, delays);
    m = imc::trim(m);
    const std::vector<int> occ = imc_occupancy(m);
    // The residual tau nondeterminism is confluent (independent
    // instantaneous events commute), so uniform resolution is exact; we
    // skip lumping to keep the occupancy labelling valid per state.
    const auto closed =
        multival::core::close_model(m, imc::NondetPolicy::kUniform,
                                    /*lump=*/false);
    const auto pi = markov::steady_state(closed.ctmc);
    double mean = 0.0;
    double full = 0.0;
    for (std::size_t cs = 0; cs < pi.size(); ++cs) {
      const int level = occ[closed.imc_state_of[cs]];
      mean += pi[cs] * level;
      if (level == cap) {
        full += pi[cs];
      }
    }
    b.add_row({std::to_string(k), std::to_string(m.num_states()),
               std::to_string(closed.ctmc.num_states()), fmt(mean),
               fmt(full)});
  }
  b.print(std::cout);
  std::cout << "(shape: predictions converge as k grows while the state "
               "space grows linearly in k)\n\n";

  // ---- Part C: fixed-time NoC link delays ---------------------------------
  // A 2-hop packet (0 -> 3) whose link hops take a *fixed* 0.5 time units,
  // approximated by Erlang-k.  The mean end-to-end latency is invariant; the
  // delivery-time distribution sharpens around it as k grows.
  const lts::Lts scenario = noc::single_packet_lts(0, 3,
                                                   /*hide_links=*/false);
  multival::core::Table c(
      "F7c: 2-hop NoC packet with fixed link delay 0.5 (Erlang-k links)",
      {"k", "CTMC states", "mean latency", "P[done by 1.2]",
       "P[done by 1.6]"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::map<std::string, phase::PhaseType> delays;
    for (const std::string& g : noc::mesh_link_gates()) {
      delays.emplace(g, phase::erlang_for_fixed_delay(0.5, k));
    }
    delays.emplace("LI0", phase::PhaseType::exponential(20.0));
    delays.emplace("LO3", phase::PhaseType::exponential(20.0));
    const imc::Imc m =
        multival::core::decorate_with_phase_type(scenario, delays);
    const auto closed = multival::core::close_model(m);
    std::vector<bool> done(closed.ctmc.num_states(), false);
    for (std::size_t st = 0; st < closed.ctmc.num_states(); ++st) {
      done[st] = closed.ctmc.is_absorbing(static_cast<markov::MState>(st));
    }
    c.add_row(
        {std::to_string(k), std::to_string(closed.ctmc.num_states()),
         fmt(markov::expected_absorption_time_from_initial(closed.ctmc)),
         fmt(markov::transient_probability(closed.ctmc, done, 1.2)),
         fmt(markov::transient_probability(closed.ctmc, done, 1.6))});
  }
  c.print(std::cout);
  std::cout << "(shape: the mean is exact for every k; the completion-time "
               "distribution concentrates as k grows, at linear state "
               "cost)\n";
  return 0;
}
