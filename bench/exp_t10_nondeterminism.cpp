// Experiment T10 — the paper's open item: "new algorithms to handle
// nondeterminism (currently not accepted by the Markov solvers of CADP)".
// We compute min/max scheduler bounds by value iteration over the
// interactive nondeterminism and compare them with the uniform-resolution
// point estimate.
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "imc/compose.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "proc/generator.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

/// Two one-shot packets injected at node 0: a short job (dest 1) and a
/// long job (dest 3, two hops).  The injection order is the scheduler's
/// choice and changes the makespan: front-loading the long job overlaps
/// its second hop with the short job's delivery.
lts::Lts contention_scenario() {
  Program p = noc::mesh_program();
  p.define("EnvA", {},
           prefix("LI0", {emit(lit(1))},
                  prefix("LO1", {accept("z", 1, 1)}, stop())));
  p.define("EnvB", {},
           prefix("LI0", {emit(lit(3))},
                  prefix("LO3", {accept("z", 3, 3)}, stop())));
  std::vector<std::string> locals;
  for (int r = 0; r < 4; ++r) {
    locals.push_back("LI" + std::to_string(r));
    locals.push_back("LO" + std::to_string(r));
  }
  p.define("Scenario", {},
           par(call("Mesh"), locals, interleaving(call("EnvA"),
                                                  call("EnvB"))));
  return generate(p, "Scenario");
}

}  // namespace

int main() {
  using multival::core::fmt;

  multival::core::Table t(
      "T10: scheduler bounds on nondeterministic IMCs",
      {"model", "quantity", "min", "uniform", "max"});

  // -- toy race: choice between a fast and a slow path ----------------------
  {
    imc::Imc m;
    m.add_states(4);
    m.add_interactive(0, "i", 1);
    m.add_interactive(0, "i", 2);
    m.add_markovian(1, 4.0, 3);
    m.add_markovian(2, 1.0, 3);
    const auto b = imc::absorption_time_bounds(m);
    const auto e = imc::to_ctmc(m, imc::NondetPolicy::kUniform);
    t.add_row({"fast-or-slow choice", "E[completion time]", fmt(b.min),
               fmt(markov::expected_absorption_time_from_initial(e.ctmc)),
               fmt(b.max)});
  }

  // -- NoC arbitration: two packets racing for node 3 ------------------------
  {
    const lts::Lts l = contention_scenario();
    const noc::NocRates rates;
    std::map<std::string, double> table;
    for (const std::string& g : noc::mesh_link_gates()) {
      table[g] = rates.link_rate;
    }
    // Delivery and link hops are timed; the *injection order* is left as an
    // untimed interactive decision — exactly the nondeterminism the Markov
    // solvers reject and the bounds quantify.
    for (int r = 0; r < 4; ++r) {
      table["LO" + std::to_string(r)] = rates.eject_rate;
    }
    imc::Imc m = core::decorate_with_rates(l, table);
    m = imc::maximal_progress(imc::hide_all(m));
    const auto b = imc::absorption_time_bounds(m);
    const auto e = imc::to_ctmc(m, imc::NondetPolicy::kUniform);
    t.add_row({"NoC: jobs 0->1 and 0->3 share the injector",
               "E[both delivered]", fmt(b.min),
               fmt(markov::expected_absorption_time_from_initial(e.ctmc)),
               fmt(b.max)});

    std::vector<bool> target(m.num_states(), false);
    for (imc::StateId s = 0; s < m.num_states(); ++s) {
      target[s] = m.interactive(s).empty() && m.markovian(s).empty();
    }
    const auto rb = imc::reachability_bounds(m, target);
    t.add_row({"NoC: jobs 0->1 and 0->3 share the injector",
               "P[eventual completion]", fmt(rb.min), "-", fmt(rb.max)});
  }

  t.print(std::cout);
  std::cout << "(the uniform scheduler — what a randomised arbiter gives — "
               "always lies within the [min, max] band)\n";
  return 0;
}
