// bench_dse — replays a fixed design-space sweep against the in-process
// evaluation service and records the repo's perf-trajectory files:
//
//   BENCH_DSE.json    sweep-level numbers (points/sec, probe latency
//                     p50/p99, shed rate, cache hit ratio, front size)
//   BENCH_SERVE.json  the raw serve::ServiceMetrics counter dump
//
// The sweep is submitted --repeat times (default 2): the first pass does
// the distinct solves, later passes are pure cache-hit traffic, so the
// run exercises exactly the duplicate-heavy load the service is built for.
//
// Self-validation (exit 1 on violation):
//   - every swept point evaluates to "ok" (no kInvalid / kTimeout / shed),
//   - the service solved each distinct content hash exactly once
//     (solves == distinct keys), i.e. duplicates never reach a solver.
//
// Flags: --smoke (tiny sweep for CI, <=30s)  --builtin <default|smoke>
//        -j N  --repeat N  --json PATH  --serve-json PATH
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "cli_util.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "dse/driver.hpp"
#include "dse/grid.hpp"
#include "serve/solvers.hpp"

namespace {

using namespace multival;

std::string num(double v) { return serve::format_double(v); }

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot write " + path);
  }
  os << text;
}

std::string dse_json(const dse::SweepResult& r, unsigned repeat,
                     unsigned threads_used, double points_per_sec,
                     double cache_hit_ratio, double shed_rate) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"dse\",\n"
     << "  \"sweep\": \"" << r.name << "\",\n"
     << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "  \"threads_used\": " << threads_used << ",\n"
     << "  \"raw_points\": " << r.raw_points << ",\n"
     << "  \"pruned\": " << r.pruned << ",\n"
     << "  \"evaluated\": " << r.points.size() << ",\n"
     << "  \"front_size\": " << r.front.size() << ",\n"
     << "  \"families\": {\n";
  // Per-family slice: how much of the grid each generator family
  // contributes, and how many of its points survive to the Pareto front.
  std::map<std::string, std::pair<std::size_t, std::size_t>> families;
  for (const dse::PointResult& p : r.points) {
    auto& [evaluated, on_front] = families[p.point.family];
    ++evaluated;
    if (p.rank == 0) ++on_front;
  }
  for (auto it = families.begin(); it != families.end(); ++it) {
    os << "    \"" << it->first << "\": {\"evaluated\": " << it->second.first
       << ", \"on_front\": " << it->second.second << "}"
       << (std::next(it) == families.end() ? "\n" : ",\n");
  }
  os << "  },\n"
     << "  \"probes_per_pass\": " << r.probes_submitted << ",\n"
     << "  \"repeat\": " << repeat << ",\n"
     << "  \"distinct_keys\": " << r.distinct_keys << ",\n"
     << "  \"solves\": " << r.service.solves << ",\n"
     << "  \"pipeline_hits\": " << r.pipeline.hits << ",\n"
     << "  \"pipeline_misses\": " << r.pipeline.misses << ",\n"
     << "  \"pipeline_evictions\": " << r.pipeline.evictions << ",\n"
     << "  \"cache_hit_ratio\": " << num(cache_hit_ratio) << ",\n"
     << "  \"shed_rate\": " << num(shed_rate) << ",\n"
     << "  \"latency_p50_ms\": " << num(r.service.latency_p50_ms) << ",\n"
     << "  \"latency_p99_ms\": " << num(r.service.latency_p99_ms) << ",\n"
     << "  \"wall_ms\": " << num(r.wall_ms) << ",\n"
     << "  \"points_per_sec\": " << num(points_per_sec) << "\n"
     << "}\n";
  return std::move(os).str();
}

std::string serve_json(const serve::ServiceMetrics& m) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"accepted\": " << m.accepted << ",\n"
     << "  \"completed_ok\": " << m.completed_ok << ",\n"
     << "  \"failed\": " << m.failed << ",\n"
     << "  \"invalid\": " << m.invalid << ",\n"
     << "  \"shed\": " << m.shed << ",\n"
     << "  \"timed_out\": " << m.timed_out << ",\n"
     << "  \"coalesced\": " << m.coalesced << ",\n"
     << "  \"cache_hits\": " << m.cache_hits << ",\n"
     << "  \"solves\": " << m.solves << ",\n"
     << "  \"solve_errors\": " << m.solve_errors << ",\n"
     << "  \"queue_wait_p50_ms\": " << num(m.queue_wait_p50_ms) << ",\n"
     << "  \"queue_wait_p99_ms\": " << num(m.queue_wait_p99_ms) << ",\n"
     << "  \"solve_p50_ms\": " << num(m.solve_p50_ms) << ",\n"
     << "  \"solve_p99_ms\": " << num(m.solve_p99_ms) << ",\n"
     << "  \"latency_p50_ms\": " << num(m.latency_p50_ms) << ",\n"
     << "  \"latency_p99_ms\": " << num(m.latency_p99_ms) << ",\n"
     << "  \"cache_insertions\": " << m.cache.insertions << ",\n"
     << "  \"cache_evictions\": " << m.cache.evictions << "\n"
     << "}\n";
  return std::move(os).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string builtin = "default";
  std::string json_path = "BENCH_DSE.json";
  std::string serve_json_path = "BENCH_SERVE.json";
  dse::DriverOptions opts;
  opts.repeat = 2;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--smoke") {
        builtin = "smoke";
      } else if (a == "--builtin" && i + 1 < argc) {
        builtin = argv[++i];
      } else if (a == "-j" && i + 1 < argc) {
        opts.workers = cli::parse_unsigned(argv[++i], "worker count");
      } else if (a == "--repeat" && i + 1 < argc) {
        opts.repeat = cli::parse_unsigned(argv[++i], "repeat count");
        if (opts.repeat == 0) {
          throw cli::UsageError("bench_dse: --repeat must be >= 1");
        }
      } else if (a == "--json" && i + 1 < argc) {
        json_path = argv[++i];
      } else if (a == "--serve-json" && i + 1 < argc) {
        serve_json_path = argv[++i];
      } else {
        throw cli::UsageError("bench_dse: unknown flag " + a);
      }
    }
  } catch (const cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n"
              << "usage: bench_dse [--smoke] [--builtin <default|smoke>] "
                 "[-j N] [--repeat N] [--json PATH] [--serve-json PATH]\n";
    return 2;
  }

  const dse::SweepSpec spec =
      dse::parse_sweep_spec(dse::builtin_sweep_spec(builtin));
  const dse::SweepResult r = dse::run_sweep(spec, opts);

  const double total_requests = static_cast<double>(r.service.accepted);
  const double cache_hit_ratio =
      total_requests > 0.0
          ? static_cast<double>(r.service.cache_hits + r.service.coalesced) /
                total_requests
          : 0.0;
  const double shed_rate =
      total_requests > 0.0
          ? static_cast<double>(r.service.shed) / total_requests
          : 0.0;
  const double points_per_sec =
      r.wall_ms > 0.0
          ? static_cast<double>(r.points.size()) / (r.wall_ms / 1000.0)
          : 0.0;

  core::Table t("dse sweep benchmark (" + r.name + ")", {"metric", "value"});
  t.add_row({"grid points", std::to_string(r.raw_points)});
  t.add_row({"pruned", std::to_string(r.pruned)});
  t.add_row({"evaluated", std::to_string(r.points.size())});
  t.add_row({"Pareto front", std::to_string(r.front.size())});
  t.add_row({"probes/pass", std::to_string(r.probes_submitted)});
  t.add_row({"passes", std::to_string(opts.repeat)});
  t.add_row({"distinct sub-models", std::to_string(r.distinct_keys)});
  t.add_row({"solves", std::to_string(r.service.solves)});
  t.add_row({"cache hit ratio", core::fmt(cache_hit_ratio, 3)});
  t.add_row({"shed rate", core::fmt(shed_rate, 3)});
  t.add_row({"latency p50 (ms)", core::fmt(r.service.latency_p50_ms, 3)});
  t.add_row({"latency p99 (ms)", core::fmt(r.service.latency_p99_ms, 3)});
  t.add_row({"wall (ms)", core::fmt(r.wall_ms, 1)});
  t.add_row({"points/sec", core::fmt(points_per_sec, 1)});
  t.print(std::cout);

  write_file(json_path,
             dse_json(r, opts.repeat,
                      opts.workers != 0 ? opts.workers
                                        : core::parallel_threads(),
                      points_per_sec, cache_hit_ratio, shed_rate));
  write_file(serve_json_path, serve_json(r.service));
  std::cout << "written to " << json_path << " and " << serve_json_path
            << "\n";

  // Self-validation.
  bool ok = true;
  for (const dse::PointResult& p : r.points) {
    if (p.status != "ok") {
      std::cerr << "ERROR: point " << p.point.id << " ended '" << p.status
                << "'\n";
      ok = false;
    }
  }
  if (r.service.solves != r.distinct_keys) {
    std::cerr << "ERROR: expected exactly one solve per distinct content "
                 "hash ("
              << r.distinct_keys << "), got " << r.service.solves << "\n";
    ok = false;
  }
  if (r.service.shed != 0 || r.service.timed_out != 0 ||
      r.service.invalid != 0 || r.service.failed != 0) {
    std::cerr << "ERROR: service rejected work (shed " << r.service.shed
              << ", timeout " << r.service.timed_out << ", invalid "
              << r.service.invalid << ", failed " << r.service.failed
              << ")\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
