// Experiment T6 — "Bull was able to predict the latency of an MPI benchmark
// in different topologies, different software implementations of the MPI
// primitives, and different cache coherency protocols": the full 12-point
// design space.
#include <iostream>

#include <memory>

#include "compose/plan.hpp"
#include "core/report.hpp"
#include "fame/mpi.hpp"
#include "markov/absorption.hpp"
#include "proc/process.hpp"

int main() {
  using namespace multival;
  using namespace multival::fame;

  core::Table t("T6: MPI ping-pong round latency (2-node FAME2 model)",
                {"topology", "coherence", "MPI impl", "round latency",
                 "p95 (4 rounds)", "vs best"});
  struct RowData {
    Topology topo;
    Protocol proto;
    MpiImpl impl;
    double latency;
    double p95;
  };
  std::vector<RowData> rows;
  double best = 1e100;
  for (const Topology topo :
       {Topology::kBus, Topology::kRing, Topology::kCrossbar}) {
    for (const Protocol proto : {Protocol::kMsi, Protocol::kMesi}) {
      for (const MpiImpl impl : {MpiImpl::kEager, MpiImpl::kRendezvous}) {
        PingPongConfig cfg;
        cfg.topology = topo;
        cfg.protocol = proto;
        cfg.impl = impl;
        cfg.rounds = 4;
        const PingPongResult r = pingpong_latency(cfg);
        rows.push_back({topo, proto, impl, r.round_latency, r.p95_total});
        best = std::min(best, r.round_latency);
      }
    }
  }
  for (const RowData& r : rows) {
    t.add_row({to_string(r.topo), to_string(r.proto), to_string(r.impl),
               core::fmt(r.latency), core::fmt(r.p95),
               core::fmt(r.latency / best, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "(shape: crossbar < ring < bus per column; eager < rendezvous;"
               " MESI <= MSI — the orderings the flow must predict)\n\n";

  core::Table bar("T6b: MPI barrier round latency",
                  {"topology", "coherence", "round latency"});
  for (const Topology topo :
       {Topology::kBus, Topology::kRing, Topology::kCrossbar}) {
    for (const Protocol proto : {Protocol::kMsi, Protocol::kMesi}) {
      BarrierConfig cfg;
      cfg.topology = topo;
      cfg.protocol = proto;
      cfg.rounds = 4;
      bar.add_row({to_string(topo), to_string(proto),
                   core::fmt(barrier_latency(cfg).round_latency)});
    }
  }
  bar.print(std::cout);
  std::cout << "(the barrier's two concurrent flag transactions make it "
               "cheaper than a serialised ping-pong round)\n\n";

  // T6c: the pipeline behind the numbers above — peak intermediate states
  // of the default planned strategy vs the monolithic baseline, on the
  // eager/MSI/bus model (all 12 points share the structure).
  core::Table peaks("T6c: ping-pong generation, monolithic vs planned",
                    {"strategy", "peak states", "final states"});
  PingPongConfig cfg;
  cfg.rounds = 4;
  const auto program = std::make_shared<const proc::Program>(
      pingpong_program(cfg));
  const compose::PlanOptions popts;
  const compose::PlanResult planned = compose::evaluate_plan(
      compose::plan_program(program, "PingPong", popts), popts);
  const compose::PlanResult flat =
      compose::flat_reference(program, proc::call("PingPong"), popts);
  peaks.add_row({"monolithic", std::to_string(flat.stats.peak_states),
                 std::to_string(flat.lts.num_states())});
  peaks.add_row({"planned", std::to_string(planned.stats.peak_states),
                 std::to_string(planned.lts.num_states())});
  peaks.print(std::cout);
  return 0;
}
