// Experiment T3 — the functional-verification results the paper reports:
// "two functional issues in xSTream have been highlighted; the FAUST NoC
// router has been verified formally".  One verdict row per property.
#include <iostream>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "fame/coherence.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "noc/mesh.hpp"
#include "noc/router.hpp"
#include "xstream/queue_model.hpp"

int main() {
  using namespace multival;
  using namespace multival::core;

  Table t("T3: functional verification verdicts",
          {"model", "property", "verdict"});
  const auto row = [&](const std::string& model, const std::string& prop,
                       bool holds, bool expected) {
    t.add_row({model, prop,
               std::string(holds ? "PASS" : "FAIL") +
                   (holds == expected ? "" : "  (UNEXPECTED)")});
  };

  // xSTream: the correct queue is clean; both seeded issues are caught.
  {
    xstream::QueueConfig cfg;
    const lts::Lts ok = xstream::virtual_queue_lts(cfg);
    row("xSTream correct", "deadlock freedom",
        mc::check(ok, mc::deadlock_freedom()), true);
    row("xSTream correct", "no packet loss",
        mc::check(ok, mc::never(mc::act("LOSE*"))), true);
    row("xSTream correct", "branching-equivalent to FIFO spec",
        bisim::equivalent(ok, xstream::reference_fifo_lts(cfg),
                          bisim::Equivalence::kBranching),
        true);

    cfg.variant = xstream::QueueVariant::kLostCredit;
    const lts::Lts bug1 = xstream::virtual_queue_lts(cfg);
    row("xSTream issue #1 (lost credit)", "deadlock freedom",
        mc::check(bug1, mc::deadlock_freedom()), false);

    cfg.variant = xstream::QueueVariant::kEagerCredit;
    const lts::Lts bug2 = xstream::virtual_queue_lts(cfg);
    row("xSTream issue #2 (eager credit)", "no packet loss",
        mc::check(bug2, mc::never(mc::act("LOSE*"))), false);
  }

  // FAUST router + mesh.
  {
    const lts::Lts router = noc::router_lts(0);
    row("FAUST router", "deadlock freedom",
        mc::check(router, mc::deadlock_freedom()), true);
    row("FAUST router", "no Y->X turn (XY routing)",
        mc::check(router, mc::never(mc::act("YI0 !1"))) &&
            mc::check(router, mc::never(mc::act("YI0 !2"))) &&
            mc::check(router, mc::never(mc::act("YI0 !3"))),
        true);
    bool delivered = true;
    bool clean = true;
    for (int src = 0; src < 4 && (delivered || clean); ++src) {
      for (int dst = 0; dst < 4; ++dst) {
        if (src == dst) {
          continue;
        }
        const lts::Lts l = noc::single_packet_lts(src, dst);
        delivered =
            delivered &&
            mc::check(l, mc::inevitable(
                             mc::act("LO" + std::to_string(dst) + " *")));
        for (int o = 0; o < 4; ++o) {
          if (o != dst) {
            clean = clean &&
                    mc::check(l, mc::never(mc::act(
                                     "LO" + std::to_string(o) + " *")));
          }
        }
      }
    }
    row("FAUST 2x2 mesh", "every packet inevitably delivered", delivered,
        true);
    row("FAUST 2x2 mesh", "never misdelivered", clean, true);
  }

  // FAME2 coherence.
  for (const auto proto : {fame::Protocol::kMsi, fame::Protocol::kMesi}) {
    const lts::Lts l = fame::coherence_system_lts(proto);
    const std::string name = std::string("FAME2 ") + fame::to_string(proto);
    row(name, "single-writer-multiple-readers",
        mc::check(l, mc::never(mc::act("ERR*"))), true);
    row(name, "deadlock freedom", mc::check(l, mc::deadlock_freedom()),
        true);
    row(name, "livelock freedom", !lts::has_tau_cycle(l), true);
  }

  t.print(std::cout);
  return 0;
}
