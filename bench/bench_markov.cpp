// Micro-benchmark: Markov solver throughput — steady-state (Gauss-Seidel),
// transient (uniformisation) and absorption solves on birth-death chains.
#include <benchmark/benchmark.h>

#include "markov/absorption.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"

namespace {

using namespace multival::markov;

Ctmc birth_death(std::size_t n, double lambda, double mu) {
  Ctmc c;
  c.add_states(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    c.add_transition(static_cast<MState>(i), static_cast<MState>(i + 1),
                     lambda, "arrive");
    c.add_transition(static_cast<MState>(i + 1), static_cast<MState>(i), mu,
                     "serve");
  }
  return c;
}

void BM_SteadyState(benchmark::State& state) {
  const Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)), 0.9,
                             1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(steady_state(c));
  }
}
BENCHMARK(BM_SteadyState)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Transient(benchmark::State& state) {
  const Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)), 0.9,
                             1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transient_distribution(c, 10.0));
  }
}
BENCHMARK(BM_Transient)->Arg(100)->Arg(1000);

void BM_Absorption(benchmark::State& state) {
  // Downward drift into the absorbing bottom state.
  const auto n = static_cast<std::size_t>(state.range(0));
  Ctmc c;
  c.add_states(n);
  for (std::size_t i = 1; i < n; ++i) {
    c.add_transition(static_cast<MState>(i), static_cast<MState>(i - 1), 2.0);
    if (i + 1 < n) {
      c.add_transition(static_cast<MState>(i), static_cast<MState>(i + 1),
                       1.0);
    }
  }
  c.set_initial_state(static_cast<MState>(n - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_time_to_absorption(c));
  }
}
BENCHMARK(BM_Absorption)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
